//! Umbrella crate for the Crescent reproduction's examples and integration
//! tests.
//!
//! The library surface lives in the workspace crates; this crate only
//! re-exports them so `examples/` and `tests/` have a single import root.

#![warn(missing_docs)]

pub use crescent;
pub use crescent_accel as accel;
pub use crescent_kdtree as kdtree;
pub use crescent_memsim as memsim;
pub use crescent_models as models;
pub use crescent_nn as nn;
pub use crescent_pointcloud as pointcloud;
