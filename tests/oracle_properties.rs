//! Property tests of the incremental recall oracle
//! ([`OracleIndex`]): on arbitrary [`ScenarioGen`] frame streams —
//! arbitrary ego trajectories, scenario parameters, density ramps,
//! dropout patterns, zero-query frames — the grid-accelerated oracle,
//! built once on frame 0 and advanced frame to frame, must answer every
//! radius query **bit-identically** to the naive full-scan brute force
//! it replaced in the sweep explorer's scenario setup. Identity covers
//! the whole `Vec<Neighbor>`: the same indices, the same `dist2` bits,
//! in the same order, under the same `max_neighbors` truncation.
//!
//! The case count is `PROPTEST_CASES` (default 12 — the bounded CI
//! budget; raise it for deeper local hunts). The vendored proptest stub
//! does not shrink, so a failing case is re-minimized with
//! [`crescent::testgen::shrink_failing`] and printed ready to check in
//! as a named regression test.

use crescent::pointcloud::{radius_search_bruteforce_into, Neighbor, OracleAdvance, OracleIndex};
use crescent::testgen::{shrink_failing, ScenarioGen};
use crescent::workload::{FrameStream, FrameStreamConfig};
use proptest::strategy::Strategy;
use proptest::ProptestConfig;

/// CI runs a fixed bounded budget; local hunts override the env var.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(12)
}

/// Runs `property` over `cases()` generated configs, re-minimizing and
/// re-raising on violation (same harness as `tests/scenario_fuzz.rs`).
fn fuzz(name: &str, property: fn(&FrameStreamConfig)) {
    let strat = ScenarioGen::default();
    proptest::run_cases(name, ProptestConfig::with_cases(cases()), |rng, case| {
        let cfg = strat.new_value(rng);
        let panics = |c: &FrameStreamConfig| {
            let probe = *c;
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&probe))).is_err()
        };
        if panics(&cfg) {
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let min = shrink_failing(cfg, panics);
            std::panic::set_hook(hook);
            eprintln!("fuzz case {case} violated `{name}`; minimal config:\n{min:#?}");
            property(&min);
            unreachable!("the shrunken config must still fail");
        }
    });
}

/// The oracle's one contract: whatever the stream does — rigid drift it
/// can patch, or arbitrary churn forcing a rebuild — every answer is
/// bit-identical to the naive brute force on the current frame.
fn assert_oracle_matches_bruteforce(cfg: &FrameStreamConfig) {
    let mut oracle: Option<OracleIndex> = None;
    let mut fast: Vec<Neighbor> = Vec::new();
    let mut naive: Vec<Neighbor> = Vec::new();
    for (fi, frame) in FrameStream::new(cfg).enumerate() {
        let advance = match oracle.as_mut() {
            None => {
                oracle = Some(OracleIndex::build(&frame.cloud, cfg.radius));
                None
            }
            Some(o) => Some(o.advance(&frame.cloud)),
        };
        let oracle = oracle.as_ref().expect("oracle built on first frame");
        for (qi, &q) in frame.queries.iter().enumerate() {
            oracle.radius_search_into(q, cfg.max_neighbors, &mut fast);
            radius_search_bruteforce_into(
                &frame.cloud,
                q,
                cfg.radius,
                cfg.max_neighbors,
                &mut naive,
            );
            assert_eq!(
                fast, naive,
                "frame {fi} query {qi} (advance {advance:?}): oracle diverged from brute force"
            );
        }
    }
}

#[test]
fn fuzz_oracle_is_bit_identical_to_bruteforce() {
    fuzz("fuzz_oracle_is_bit_identical_to_bruteforce", assert_oracle_matches_bruteforce);
}

/// The patch criterion is honest on both sides: an exactly-rigid
/// translation is patched (the index survives), and the patched index
/// still answers bit-identically — while a genuinely reshuffled frame
/// forces a rebuild rather than silently answering from stale cells.
fn assert_advance_honesty(cfg: &FrameStreamConfig) {
    let frames: Vec<_> = FrameStream::new(cfg).collect();
    if frames.len() < 2 || frames[0].cloud.is_empty() {
        return;
    }
    // a hand-rigidified stream: every later frame is frame 0 shifted by
    // an exactly-representable (dyadic) offset, so advance() must patch
    let offsets = [
        crescent::pointcloud::Point3::new(0.25, -0.5, 0.125),
        crescent::pointcloud::Point3::new(-0.0625, 1.0, 0.0),
    ];
    let mut fast: Vec<Neighbor> = Vec::new();
    let mut naive: Vec<Neighbor> = Vec::new();
    for off in offsets {
        // fresh build per offset: after a rebuild the oracle re-bases on
        // the cloud it rebuilt from, so the rigidity check below (always
        // against frame 0) only mirrors the oracle's own criterion when
        // frame 0 IS the base
        let mut oracle = OracleIndex::build(&frames[0].cloud, cfg.radius);
        let shifted: crescent::pointcloud::PointCloud =
            frames[0].cloud.iter().map(|&p| p + off).collect();
        // fl(p + off) - p == off does not hold for arbitrary floats, so
        // verify the stream really is float-rigid before demanding a
        // patch (generated coords are arbitrary; dyadic offsets make
        // this hold for the overwhelming majority of cases)
        let base = frames[0].cloud.point(0);
        let eff = shifted.point(0) - base;
        let exactly_rigid = frames[0].cloud.iter().zip(shifted.iter()).all(|(&p, &s)| p + eff == s);
        let advance = oracle.advance(&shifted);
        if exactly_rigid {
            assert_eq!(advance, OracleAdvance::Patched, "rigid stream must be patched");
        }
        for &q in frames[0].queries.iter().take(8) {
            oracle.radius_search_into(q, cfg.max_neighbors, &mut fast);
            radius_search_bruteforce_into(&shifted, q, cfg.radius, cfg.max_neighbors, &mut naive);
            assert_eq!(fast, naive, "post-advance ({advance:?}) answers diverged");
        }
    }
}

#[test]
fn fuzz_advance_patches_rigid_streams_and_stays_exact() {
    fuzz("fuzz_advance_patches_rigid_streams_and_stays_exact", assert_advance_honesty);
}
