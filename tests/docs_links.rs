//! Docs link checker: every relative markdown link in the user-facing
//! docs must point at a file (or directory) that exists in the repo.
//! CI runs this as its own step so a renamed file cannot silently
//! orphan the documentation that references it.

use std::path::{Path, PathBuf};

/// The documents under the link contract: the top-level README, every
/// markdown file in `docs/`, and the vendor-stub README.
fn documents() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut docs = vec![root.join("README.md"), root.join("vendor/README.md")];
    let dir = root.join("docs");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "docs/ must contain markdown files");
    docs.extend(entries);
    docs
}

/// Extracts `[text](target)` link targets from one markdown line,
/// skipping fenced-code context handled by the caller.
fn link_targets(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            let rest = &line[i + 2..];
            if let Some(end) = rest.find(')') {
                out.push(rest[..end].to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[test]
fn relative_links_resolve() {
    let mut dead: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for doc in documents() {
        let text = std::fs::read_to_string(&doc)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc.display()));
        let base = doc.parent().expect("doc has a parent dir");
        let mut in_fence = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for target in link_targets(line) {
                // external links, pure fragments, and mailto are out of
                // scope — only repo-relative paths are checked
                if target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with('#')
                    || target.starts_with("mailto:")
                    || target.is_empty()
                {
                    continue;
                }
                let path = target.split('#').next().unwrap_or(&target);
                if path.is_empty() {
                    continue;
                }
                checked += 1;
                if !base.join(path).exists() {
                    dead.push(format!("{}:{}: {target}", doc.display(), lineno + 1));
                }
            }
        }
        assert!(!in_fence, "{}: unbalanced code fence", doc.display());
    }
    assert!(checked > 0, "the docs should contain at least one relative link");
    assert!(dead.is_empty(), "dead relative links:\n  {}", dead.join("\n  "));
}

#[test]
fn extractor_finds_inline_links() {
    let targets = link_targets("see [a](x.md) and [b](docs/y.md#frag), not (z.md)");
    assert_eq!(targets, vec!["x.md".to_string(), "docs/y.md#frag".to_string()]);
    assert!(link_targets("no links here").is_empty());
}
