//! In-repo edition of the CI serve gate: run the quick service grid and
//! assert the rendered report is **byte-identical** to the checked-in
//! `bench/serve-baseline.json` — the same exactness the `serve-gate`
//! workflow enforces through `repro serve --quick --check`, available
//! to plain `cargo test --release` with no subprocess and no network.
//!
//! Everything in the serve ledger is modeled — admission decisions,
//! EDF dispatch order, wavefront latencies, deadline grades, energy
//! attribution — so any byte of drift is a real behavioural change in
//! the scheduler or the engine underneath it. On intended drift,
//! refresh the baseline (`repro serve --quick --json
//! bench/serve-baseline.json`), commit it, and the schema-versioned
//! header documents the change.

use crescent_serve::{default_workers, run_serve, ServeSpec};

#[cfg_attr(
    debug_assertions,
    ignore = "quick service grid is slow unoptimized; run with --release (CI does)"
)]
#[test]
fn quick_serve_reproduces_the_checked_in_baseline_bytes() {
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/bench/serve-baseline.json");
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));
    let report = run_serve(&ServeSpec::quick(), default_workers()).expect("quick spec is valid");
    let fresh = report.to_json();
    if let Some(drift) = crescent_explorer::diff_reports(&baseline, &fresh) {
        panic!(
            "quick serve drifted from bench/serve-baseline.json:\n{drift}\n\
             if intended, refresh with `cargo run --release -p crescent-bench --bin repro -- \
             serve --quick --json bench/serve-baseline.json` and commit the diff"
        );
    }
    // diff_reports is field-aware; the gate is stricter — bytes
    assert_eq!(baseline, fresh, "comparator passed but bytes differ (renderer drift?)");
}

/// The timings sidecar must never be able to reach the gated bytes:
/// the report renderer has no timing fields, so the words cannot occur.
#[test]
fn serve_report_bytes_carry_no_wall_clock() {
    let mut spec = ServeSpec::quick();
    spec.label = "no-wall-clock".to_string();
    spec.map.scene.total_points = 1_200;
    spec.map.num_frames = 3;
    spec.tenant_base.scene.total_points = 500;
    spec.tenant_base.num_frames = 3;
    spec.tenant_base.queries_per_frame = 16;
    spec.tenant_counts = vec![2];
    spec.fleet_sizes = vec![1];
    spec.elision_depths = vec![0];
    let report = run_serve(&spec, 1).expect("valid spec");
    let json = report.to_json();
    assert!(!json.contains("timings"), "report bytes must not carry a timings section");
    assert!(!json.contains("nanos"), "report bytes must not carry wall-clock fields");
}

/// The quick grid must exercise every ledger regime the schema
/// promises: shared wavefronts (cross-tenant batching firing), deadline
/// misses, at least one rejection, and full admission somewhere — so
/// the gated baseline actually locks down admission control and
/// deadline grading, not just the happy path.
#[cfg_attr(
    debug_assertions,
    ignore = "quick service grid is slow unoptimized; run with --release (CI does)"
)]
#[test]
fn quick_grid_covers_misses_rejections_and_sharing() {
    let report = run_serve(&ServeSpec::quick(), default_workers()).expect("quick spec is valid");
    assert!(report.rows.iter().any(|r| r.shared_wavefronts > 0), "no cross-tenant batching");
    assert!(report.rows.iter().any(|r| r.deadline_misses > 0), "no deadline pressure anywhere");
    assert!(report.rows.iter().any(|r| r.rejected > 0), "admission control never fired");
    assert!(report.rows.iter().any(|r| r.rejected == 0), "every point over capacity");
    // the controller axis is live in the gated bytes: some SLO row
    // moved its knob (a multi-entry h_e histogram), ledgered the recall
    // trade, and the mix's DescendantReuse tenant salvaged fetches
    let slo = |r: &&crescent_serve::ServeRow| r.controller == "slo";
    assert!(
        report.rows.iter().filter(slo).any(|r| r.h_e_cycles.len() > 1),
        "no SLO row ever moved its knob"
    );
    assert!(
        report.rows.iter().filter(slo).any(|r| r.conflicts_elided > 0),
        "controller pressure never ledgered a recall trade"
    );
    assert!(
        report.rows.iter().any(|r| r.conflict_reuses > 0),
        "the DescendantReuse tenant never salvaged an elided fetch fleet-wide"
    );
    for row in &report.rows {
        assert!(row.p50 <= row.p95 && row.p95 <= row.p99, "row {}: percentile order", row.index);
        assert!(row.amortization >= 1.0, "row {}: amortization below 1", row.index);
        // static rows pin their knob for the whole run
        if row.controller == "static" {
            assert_eq!(row.h_e_final, row.elision_depth, "row {}: static knob moved", row.index);
            assert_eq!(row.h_e_cycles.len(), 1, "row {}: static histogram", row.index);
        }
    }
}
