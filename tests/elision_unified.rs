//! The unified timing model's contract, end to end: the streaming
//! wavefront and the per-query lock-step engine are two schedules of the
//! SAME banked-arbitration hardware, so
//!
//! * at `h_e = 0` (stall-only) the wavefront's neighbor sets are
//!   bit-identical to per-query `search_one` on every frame of every
//!   scenario, and its stage-2 conflict-round counts are identical to
//!   the engine model's on the same queues;
//! * raising `h_e` (eliding deeper) never costs stream cycles
//!   (monotonicity) and never invents a neighbor;
//! * the default operating point actually elides, and `h_e = 0`
//!   provably does not — the assertions `examples/streaming_lidar.rs`
//!   doubles as an executable doc for.

use crescent::accel::{run_frame_stream, AcceleratorConfig, StreamSearchConfig};
use crescent::kdtree::{
    BatchSearchConfig, BatchState, ElisionConfig, KdTree, SplitSearchConfig, SplitTree,
};
use crescent::workload::{FrameStream, FrameStreamConfig, StreamScenario};
use crescent::CrescentKnobs;
use crescent_pointcloud::{Point3, PointCloud};

fn stream_cfg(scenario: StreamScenario) -> FrameStreamConfig {
    let mut cfg = FrameStreamConfig::default();
    cfg.scene.total_points = 4_000;
    cfg.scene.seed = 0xE11D;
    cfg.num_frames = 5;
    cfg.queries_per_frame = 96;
    cfg.radius = 0.5;
    cfg.max_neighbors = Some(16);
    cfg.scenario = scenario;
    cfg
}

fn borrowed(frames: &[(PointCloud, Vec<Point3>)]) -> Vec<(&PointCloud, &[Point3])> {
    frames.iter().map(|(c, q)| (c, q.as_slice())).collect()
}

#[test]
fn h_e_zero_matches_search_one_and_engine_rounds_on_every_scenario() {
    let accel = AcceleratorConfig::default();
    let (pes, banks) = (accel.num_pes, accel.tree_buffer.num_banks);
    for scenario in StreamScenario::canonical_matrix() {
        let cfg = stream_cfg(scenario);
        let mut state = BatchState::new();
        for frame in FrameStream::new(&cfg) {
            let tree = KdTree::build(&frame.cloud);
            let ht = CrescentKnobs::default().top_height.min(tree.height().saturating_sub(1));
            let split = SplitTree::new(&tree, ht).unwrap();

            // the wavefront at h_e = 0: banked, stall-only
            let wave_cfg = BatchSearchConfig::banked(cfg.radius, cfg.max_neighbors, pes, banks, 0);
            let (wave, wstats) = split.search_batch(&frame.queries, &wave_cfg, &mut state);

            // (a) bit-identical to the per-query oracle
            for (qi, &q) in frame.queries.iter().enumerate() {
                let single = split.search_one(q, cfg.radius, cfg.max_neighbors);
                assert_eq!(
                    wave[qi],
                    single,
                    "{}: frame {} query {qi}",
                    scenario.label(),
                    frame.index
                );
            }
            assert_eq!(wstats.conflicts_elided, 0, "{}", scenario.label());
            assert_eq!(wstats.nodes_skipped, 0, "{}", scenario.label());

            // (b) identical stage-2 conflict-round counts to the
            // per-query engine model: stall-only stage 1 routes exactly
            // like the wavefront, so the two paths drain IDENTICAL
            // queues through the shared lock-step simulation
            let engine_cfg = SplitSearchConfig {
                radius: cfg.radius,
                max_neighbors: cfg.max_neighbors,
                num_pes: pes,
                elision: Some(ElisionConfig::new(usize::MAX, banks)),
            };
            let (engine, estats) = split.batch_search(&frame.queries, &engine_cfg);
            assert_eq!(engine, wave, "{}: frame {}", scenario.label(), frame.index);
            assert_eq!(
                wstats.subtree_rounds,
                estats.subtree_rounds,
                "{}: frame {} — the two models must count the same stage-2 rounds",
                scenario.label(),
                frame.index
            );
            assert_eq!(wstats.subtree_visits, estats.subtree_visits, "{}", scenario.label());
            assert_eq!(estats.nodes_elided, 0);
        }
    }
}

#[test]
fn stream_cycles_are_non_increasing_in_h_e() {
    // elision monotonicity on the full streaming driver: deepening the
    // elision window converts stalls into drops and sheds subtree work,
    // so pipelined cycles can only go down (DMA is h_e-invariant: the
    // sub-trees still stream from DRAM once per batch either way)
    let accel = AcceleratorConfig::default();
    for scenario in StreamScenario::canonical_matrix() {
        let cfg = stream_cfg(scenario);
        let frames: Vec<(PointCloud, Vec<Point3>)> =
            FrameStream::new(&cfg).map(|f| (f.cloud, f.queries)).collect();
        let mut prev_cycles = u64::MAX;
        let mut prev_neighbors = usize::MAX;
        for depth in [0usize, 2, 4, 8, 32] {
            let search = StreamSearchConfig {
                radius: cfg.radius,
                max_neighbors: cfg.max_neighbors,
                elision_depth: depth,
                ..StreamSearchConfig::default()
            };
            let (results, rep) =
                run_frame_stream(&borrowed(&frames), &search, CrescentKnobs::default(), &accel);
            assert!(
                rep.pipelined_cycles <= prev_cycles,
                "{}: h_e {depth} costs {} cycles > previous {prev_cycles}",
                scenario.label(),
                rep.pipelined_cycles
            );
            let neighbors: usize = results.iter().flatten().map(Vec::len).sum();
            assert!(
                neighbors <= prev_neighbors,
                "{}: h_e {depth} found MORE neighbors ({neighbors} > {prev_neighbors})",
                scenario.label()
            );
            if depth == 0 {
                assert_eq!(rep.total_elided_conflicts(), 0, "{}", scenario.label());
            }
            prev_cycles = rep.pipelined_cycles;
            prev_neighbors = neighbors;
        }
    }
}

#[test]
fn default_depth_elides_and_zero_depth_does_not() {
    let accel = AcceleratorConfig::default();
    let cfg = stream_cfg(StreamScenario::Registered);
    let frames: Vec<(PointCloud, Vec<Point3>)> =
        FrameStream::new(&cfg).map(|f| (f.cloud, f.queries)).collect();
    let run = |depth: usize| {
        let search = StreamSearchConfig {
            radius: cfg.radius,
            max_neighbors: cfg.max_neighbors,
            elision_depth: depth,
            ..StreamSearchConfig::default()
        };
        run_frame_stream(&borrowed(&frames), &search, CrescentKnobs::default(), &accel).1
    };
    let default_depth = StreamSearchConfig::default().elision_depth;
    assert!(default_depth > 0, "the default operating point elides");
    let at_default = run(default_depth);
    let exact = run(0);
    assert!(at_default.total_elided_conflicts() > 0, "default h_e must elide on a real stream");
    assert_eq!(exact.total_elided_conflicts(), 0, "h_e = 0 must never elide");
    assert!(exact.total_bank_conflicts() > 0, "conflicts still happen — they just stall");
    assert!(at_default.pipelined_cycles <= exact.pipelined_cycles);
    // aggregation elision is its own knob: switching it off serializes
    // gathers and can only add cycles, without touching any result
    let mut no_agg = accel;
    no_agg.aggregation_elision = false;
    let search = StreamSearchConfig {
        radius: cfg.radius,
        max_neighbors: cfg.max_neighbors,
        ..StreamSearchConfig::default()
    };
    let mut agg_on = accel;
    agg_on.aggregation_elision = true;
    let (r_off, rep_off) =
        run_frame_stream(&borrowed(&frames), &search, CrescentKnobs::default(), &no_agg);
    let (r_on, rep_on) =
        run_frame_stream(&borrowed(&frames), &search, CrescentKnobs::default(), &agg_on);
    assert_eq!(r_off, r_on, "aggregation elision must never change neighbor sets");
    assert!(rep_on.total_agg_cycles() <= rep_off.total_agg_cycles());
    assert!(rep_on.total_agg_elided() > 0);
    assert_eq!(rep_off.total_agg_elided(), 0);
}
