//! The sharded-sweep contract: splitting a sweep into shards and
//! merging the shard reports is **byte-identical** to running the whole
//! grid in one process.
//!
//! Two layers of evidence:
//!
//! * real shard runs — [`run_sweep_shard`] for every `i/N`,
//!   N ∈ {1, 2, 3, 7}, merged and compared byte-for-byte against
//!   [`run_sweep`] on a pruned quick grid (the full quick grid runs the
//!   same check in release in `examples/design_sweep.rs` and the CI
//!   sharded `sweep-gate`);
//! * property test — *arbitrary* partitions of the grid (not just the
//!   round-robin projection the CLI produces) reassemble to the same
//!   bytes, because the merger only requires a complete disjoint
//!   partition of one spec.

use std::sync::OnceLock;

use proptest::prelude::*;

use crescent_explorer::{
    merge_shards, run_sweep, run_sweep_shard, ShardFile, ShardInfo, SweepReport, SweepSpec,
};

/// The quick spec pruned to one architecture point per scenario ×
/// policy cell (10 points) so the debug-profile test stays fast.
fn shard_spec() -> SweepSpec {
    let mut spec = SweepSpec::quick();
    spec.label = "quick-shard".to_string();
    spec.num_pes = vec![4];
    spec.tree_banks = vec![4];
    spec.elision_depths = vec![4];
    spec
}

/// The single-process reference run, computed once for the whole file.
fn whole() -> &'static SweepReport {
    static WHOLE: OnceLock<SweepReport> = OnceLock::new();
    WHOLE.get_or_init(|| run_sweep(&shard_spec(), 2).expect("shard spec is valid"))
}

#[test]
fn sharded_runs_merge_byte_identical_to_the_whole_run() {
    let spec = shard_spec();
    let reference = whole().to_json();
    for count in [1usize, 2, 3, 7] {
        let mut shards: Vec<ShardFile> = (1..=count)
            .map(|index| {
                let (report, stats) =
                    run_sweep_shard(&spec, index, count, 2).expect("shard spec is valid");
                assert_eq!(report.shard, Some(ShardInfo { index, count }));
                assert_eq!(stats.points, report.rows.len());
                ShardFile { name: format!("shard-{index}.json"), text: report.to_json() }
            })
            .collect();
        // merge order must not matter: feed the files back to front
        shards.reverse();
        let merged = merge_shards(&shards).expect("complete partition merges");
        assert_eq!(merged, reference, "{count}-way shard+merge changed the report bytes");
    }
}

#[test]
fn shard_rows_carry_global_grid_indices() {
    let spec = shard_spec();
    for count in [2usize, 3] {
        let mut seen = Vec::new();
        for index in 1..=count {
            let (report, _) = run_sweep_shard(&spec, index, count, 1).expect("valid shard");
            for row in &report.rows {
                assert_eq!(row.index % count, index - 1, "round-robin projection");
                seen.push(row.index);
            }
        }
        seen.sort_unstable();
        let all: Vec<usize> = (0..spec.num_points()).collect();
        assert_eq!(seen, all, "{count} shards must cover the grid exactly once");
    }
}

/// Splitmix64: a tiny deterministic stream of shard assignments.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ANY partition of the grid's rows into N shard reports — not just
    /// the round-robin projection — merges back to the single-run bytes.
    /// Shards are allowed to be empty (a 7-way split of a small grid
    /// leaves some shards without rows).
    #[test]
    fn any_partition_merges_byte_identically(seed in 0u64..1_000_000, count in 1usize..8) {
        let reference = whole();
        let mut state = seed;
        let mut rows: Vec<Vec<_>> = vec![Vec::new(); count];
        for row in &reference.rows {
            rows[(splitmix(&mut state) % count as u64) as usize].push(row.clone());
        }
        let shards: Vec<ShardFile> = rows
            .into_iter()
            .enumerate()
            .map(|(i, rows)| {
                let report = SweepReport {
                    spec: reference.spec.clone(),
                    shard: Some(ShardInfo { index: i + 1, count }),
                    rows,
                };
                ShardFile { name: format!("part-{}.json", i + 1), text: report.to_json() }
            })
            .collect();
        let merged = merge_shards(&shards).expect("complete partition merges");
        prop_assert_eq!(merged, reference.to_json());
    }
}
