//! The explorer's scenario × maintenance matrix, under the determinism
//! contract the CI `sweep-gate` depends on.
//!
//! Runs every [`StreamScenario`] × both [`TreeMaintenance`] policies
//! through the explorer's quick grid (pruned to one PE count / one
//! `h_e` so the debug-profile test stays fast — the full 160-point grid
//! runs in release in `examples/design_sweep.rs` and the CI gate) and
//! asserts:
//!
//! * (a) neighbor sets are bit-identical across maintenance policies on
//!   every scenario (the refit-correctness invariant, observed through
//!   the report digests);
//! * (b) the report is byte-identical across two runs and across
//!   worker counts (1 vs. N).

use crescent::workload::StreamScenario;
use crescent_accel::TreeMaintenance;
use crescent_explorer::{maintenance_label, run_sweep, SweepReport, SweepSpec};

/// The quick spec pruned to a single architecture point per
/// scenario × policy cell: 10 scenarios × 2 policies = 20 rows.
fn matrix_spec() -> SweepSpec {
    let mut spec = SweepSpec::quick();
    spec.label = "quick-matrix".to_string();
    spec.num_pes = vec![4];
    spec.tree_banks = vec![4];
    spec.elision_depths = vec![4];
    spec
}

fn run_matrix(workers: usize) -> SweepReport {
    run_sweep(&matrix_spec(), workers).expect("matrix spec is valid")
}

#[test]
fn matrix_covers_every_scenario_policy_cell() {
    let report = run_matrix(2);
    assert_eq!(report.rows.len(), 20);
    for &scenario in StreamScenario::canonical_matrix().iter() {
        for maintenance in [TreeMaintenance::RebuildEveryFrame, TreeMaintenance::refit()] {
            let hits = report
                .rows
                .iter()
                .filter(|r| {
                    r.scenario == scenario.label()
                        && r.maintenance == maintenance_label(maintenance)
                })
                .count();
            assert_eq!(
                hits,
                1,
                "cell {} x {} missing or duplicated",
                scenario.label(),
                maintenance_label(maintenance)
            );
        }
    }
}

#[test]
fn neighbor_sets_are_bit_identical_across_policies() {
    let report = run_matrix(2);
    for &scenario in StreamScenario::canonical_matrix().iter() {
        let cell = |policy: &str| {
            report
                .rows
                .iter()
                .find(|r| r.scenario == scenario.label() && r.maintenance == policy)
                .expect("cell exists")
        };
        let rebuild = cell("rebuild");
        let refit = cell("refit");
        assert_eq!(
            rebuild.digest,
            refit.digest,
            "{}: maintenance policy changed the stream's neighbor sets",
            scenario.label()
        );
        assert_eq!(rebuild.recall, refit.recall, "{}", scenario.label());
        assert_eq!(rebuild.neighbors, refit.neighbors, "{}", scenario.label());
        // the standalone engine pass never depends on maintenance at all
        assert_eq!(rebuild.engine_digest, refit.engine_digest, "{}", scenario.label());
        assert_eq!(rebuild.engine_cycles, refit.engine_cycles, "{}", scenario.label());
    }
}

#[test]
fn report_is_deterministic_across_runs_and_worker_counts() {
    let a = run_matrix(1);
    let b = run_matrix(1);
    let c = run_matrix(3);
    let json = a.to_json();
    assert_eq!(json, b.to_json(), "same spec, same bytes");
    assert_eq!(json, c.to_json(), "worker count must not leak into the report");
    // and the digests really carry the result identity: every row is
    // reproduced exactly
    for (x, y) in a.rows.iter().zip(&c.rows) {
        assert_eq!(x.digest, y.digest);
        assert_eq!(x.engine_digest, y.engine_digest);
        assert_eq!(x.pipelined_cycles, y.pipelined_cycles);
        assert_eq!(x.energy.total(), y.energy.total());
    }
}

#[test]
fn streaming_pass_is_h_e_and_bank_sensitive_on_its_own() {
    // the acceptance criterion of the unified model: the explorer no
    // longer needs the standalone engine pass to see h_e — the
    // STREAMING columns move when h_e or the bank count changes
    let mut spec = matrix_spec();
    spec.label = "sensitivity".to_string();
    spec.scenarios = vec![StreamScenario::Registered];
    spec.maintenance = vec![TreeMaintenance::refit()];
    spec.tree_banks = vec![2, 4];
    spec.elision_depths = vec![0, 4];
    let report = run_sweep(&spec, 2).expect("sensitivity spec is valid");
    assert_eq!(report.rows.len(), 4);
    let row = |banks: usize, depth: usize| {
        report
            .rows
            .iter()
            .find(|r| r.tree_banks == banks && r.elision_depth == depth)
            .expect("cell exists")
    };
    for banks in [2, 4] {
        let exact = row(banks, 0);
        let elided = row(banks, 4);
        assert_eq!(exact.elided_conflicts, 0, "banks {banks}: h_e = 0 never elides");
        assert!(elided.elided_conflicts > 0, "banks {banks}: h_e = 4 must elide");
        assert_ne!(exact.digest, elided.digest, "banks {banks}: h_e must move stream results");
        assert!(elided.recall < exact.recall, "banks {banks}: elision costs stream recall");
        assert!(elided.arb_rounds < exact.arb_rounds, "banks {banks}: elision saves rounds");
    }
    for depth in [0, 4] {
        let narrow = row(2, depth);
        let wide = row(4, depth);
        assert!(
            narrow.bank_conflicts > wide.bank_conflicts,
            "h_e {depth}: fewer banks must conflict more"
        );
        assert!(
            narrow.arb_rounds >= wide.arb_rounds,
            "h_e {depth}: fewer banks can only serialize more"
        );
    }
    // and the engine cross-check agrees directionally with the stream
    for banks in [2, 4] {
        assert!(row(banks, 4).nodes_elided > 0, "engine cross-check elides at h_e = 4");
        assert_eq!(row(banks, 0).nodes_elided, 0, "engine cross-check is exact at h_e = 0");
    }
}

#[test]
fn refit_pays_off_exactly_where_the_scenarios_say_it_should() {
    let report = run_matrix(2);
    let cycles = |scenario: &str, policy: &str| {
        report
            .rows
            .iter()
            .find(|r| r.scenario == scenario && r.maintenance == policy)
            .expect("cell exists")
            .pipelined_cycles
    };
    let rebuilds = |scenario: &str, policy: &str| {
        report
            .rows
            .iter()
            .find(|r| r.scenario == scenario && r.maintenance == policy)
            .expect("cell exists")
            .full_rebuilds
    };
    // registered (coherent, order-preserving) streams: refit wins
    assert!(cycles("registered", "refit") < cycles("registered", "rebuild"));
    assert_eq!(rebuilds("registered", "refit"), 1, "only frame 0 builds");
    // raw sweeps re-sort every frame: refit honestly falls back each time
    assert_eq!(rebuilds("sweep", "refit"), report.rows[0].frames);
    // the rebuild policy always rebuilds, everywhere
    for &scenario in StreamScenario::canonical_matrix().iter() {
        assert_eq!(rebuilds(scenario.label(), "rebuild"), report.rows[0].frames);
    }
}
