//! Seed-determinism and size contracts of the synthetic dataset
//! generators. Every experiment in the workspace leans on these
//! generators being reproducible bit-for-bit given a seed, and on their
//! point budgets being honored — a silent change to either invalidates
//! cross-run comparisons of accuracy and performance figures.

use crescent::pointcloud::datasets::{
    generate_scene, shapes, ClassificationConfig, ClassificationDataset, DetectionConfig,
    DetectionDataset, LidarSceneConfig, SegmentationConfig, SegmentationDataset,
};
use crescent::pointcloud::{Point3, PointCloud};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scene_cfg(total_points: usize, seed: u64) -> LidarSceneConfig {
    LidarSceneConfig {
        total_points,
        num_cars: 6,
        num_poles: 12,
        num_walls: 4,
        half_extent: 25.0,
        seed,
    }
}

fn identical(a: &PointCloud, b: &PointCloud) -> bool {
    a.points() == b.points()
}

#[test]
fn scene_is_deterministic_per_seed() {
    let a = generate_scene(&scene_cfg(20_000, 0xC0FFEE));
    let b = generate_scene(&scene_cfg(20_000, 0xC0FFEE));
    assert!(identical(&a.cloud, &b.cloud), "same seed must give identical clouds");
    assert_eq!(a.car_boxes.len(), b.car_boxes.len());
    for (ba, bb) in a.car_boxes.iter().zip(&b.car_boxes) {
        assert_eq!(ba.min, bb.min);
        assert_eq!(ba.max, bb.max);
    }
}

#[test]
fn scene_differs_across_seeds() {
    let a = generate_scene(&scene_cfg(20_000, 1));
    let b = generate_scene(&scene_cfg(20_000, 2));
    assert!(!identical(&a.cloud, &b.cloud), "different seeds must give different clouds");
}

#[test]
fn scene_respects_total_points() {
    // `total_points` is a budget split across ground/walls/cars/poles with
    // integer division; the result must land within a few per-mille of the
    // request (the pole fill rounds up by at most one point per pole).
    for total in [10_000usize, 40_000, 120_000] {
        let cfg = scene_cfg(total, 7);
        let scene = generate_scene(&cfg);
        let n = scene.cloud.len() as i64;
        let slack = (cfg.num_poles + cfg.num_cars + cfg.num_walls) as i64;
        assert!(
            (n - total as i64).abs() <= slack,
            "scene size {n} strays more than {slack} from requested {total}"
        );
    }
}

#[test]
fn shape_generators_are_deterministic_and_sized() {
    type Gen = fn(&mut StdRng, usize) -> Vec<Point3>;
    let generators: &[(&str, Gen)] = &[
        ("sphere", |rng, n| shapes::sphere(rng, n, Point3::new(0.5, -0.25, 1.0), 2.0)),
        ("cuboid", |rng, n| {
            shapes::cuboid(rng, n, Point3::new(0.5, -0.25, 1.0), Point3::new(2.0, 1.0, 0.5))
        }),
        ("cylinder", |rng, n| shapes::cylinder(rng, n, Point3::new(0.5, -0.25, 1.0), 1.0, 3.0)),
        ("cone", |rng, n| shapes::cone(rng, n, Point3::new(0.5, -0.25, 1.0), 1.0, 2.0)),
        ("torus", |rng, n| shapes::torus(rng, n, Point3::new(0.5, -0.25, 1.0), 2.0, 0.5)),
        ("disk", |rng, n| shapes::disk(rng, n, Point3::new(0.5, -0.25, 1.0), 1.5)),
        ("plane_patch", |rng, n| {
            shapes::plane_patch(rng, n, Point3::new(0.5, -0.25, 1.0), 4.0, 3.0)
        }),
        ("helix", |rng, n| shapes::helix(rng, n, Point3::new(0.5, -0.25, 1.0), 1.0, 4.0, 3.0)),
        ("ellipsoid", |rng, n| {
            shapes::ellipsoid(rng, n, Point3::new(0.5, -0.25, 1.0), Point3::new(2.0, 1.0, 0.5))
        }),
        ("segment", |rng, n| {
            shapes::segment(rng, n, Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 4.0), 0.05)
        }),
        ("two_lobes", |rng, n| shapes::two_lobes(rng, n, Point3::new(0.5, -0.25, 1.0), 1.0)),
        ("cross", |rng, n| shapes::cross(rng, n, Point3::new(0.5, -0.25, 1.0), 1.5)),
    ];
    for &(name, gen) in generators {
        for n in [1usize, 7, 256] {
            let a = gen(&mut StdRng::seed_from_u64(99), n);
            let b = gen(&mut StdRng::seed_from_u64(99), n);
            assert_eq!(a.len(), n, "{name} must emit exactly n points");
            assert_eq!(a, b, "{name} must be deterministic per seed");
            for p in &a {
                assert!(
                    p.x.is_finite() && p.y.is_finite() && p.z.is_finite(),
                    "{name} emitted a non-finite point"
                );
            }
        }
        let a = gen(&mut StdRng::seed_from_u64(99), 256);
        let d = gen(&mut StdRng::seed_from_u64(100), 256);
        assert_ne!(a, d, "{name} must vary across seeds");
    }
}

#[test]
fn classification_dataset_is_deterministic() {
    let cfg = ClassificationConfig {
        points_per_cloud: 128,
        train_per_class: 2,
        test_per_class: 1,
        jitter_sigma: 0.01,
        seed: 404,
    };
    let a = ClassificationDataset::generate(&cfg);
    let b = ClassificationDataset::generate(&cfg);
    assert_eq!(a.num_classes, b.num_classes);
    assert_eq!(a.train.len(), a.num_classes * cfg.train_per_class);
    assert_eq!(a.test.len(), a.num_classes * cfg.test_per_class);
    for (sa, sb) in a.train.iter().zip(&b.train).chain(a.test.iter().zip(&b.test)) {
        assert_eq!(sa.label, sb.label);
        assert_eq!(sa.cloud.len(), cfg.points_per_cloud, "points_per_cloud must be honored");
        assert!(identical(&sa.cloud, &sb.cloud));
    }
}

#[test]
fn segmentation_dataset_is_deterministic() {
    let cfg = SegmentationConfig {
        points_per_cloud: 96,
        train_per_category: 2,
        test_per_category: 1,
        seed: 505,
    };
    let a = SegmentationDataset::generate(&cfg);
    let b = SegmentationDataset::generate(&cfg);
    assert_eq!(a.train.len(), b.train.len());
    assert_eq!(a.test.len(), b.test.len());
    for (sa, sb) in a.train.iter().zip(&b.train).chain(a.test.iter().zip(&b.test)) {
        // parts round independently: each category splits the budget over
        // at most 4 parts with integer division, so up to 8 points short
        let n = sa.cloud.len();
        assert!(
            n <= cfg.points_per_cloud && n + 8 > cfg.points_per_cloud,
            "cloud has {n} points for a budget of {}",
            cfg.points_per_cloud
        );
        assert_eq!(sa.labels, sb.labels);
        assert!(identical(&sa.cloud, &sb.cloud));
    }
}

#[test]
fn detection_dataset_is_deterministic() {
    let cfg = DetectionConfig {
        points_per_sample: 160,
        train_samples: 3,
        test_samples: 2,
        car_fraction: 0.3,
        seed: 606,
    };
    let a = DetectionDataset::generate(&cfg);
    let b = DetectionDataset::generate(&cfg);
    assert_eq!(a.train.len(), cfg.train_samples);
    assert_eq!(a.test.len(), cfg.test_samples);
    for (sa, sb) in a.train.iter().zip(&b.train).chain(a.test.iter().zip(&b.test)) {
        assert_eq!(sa.cloud.len(), cfg.points_per_sample, "points_per_sample must be honored");
        assert!(identical(&sa.cloud, &sb.cloud));
        assert_eq!(sa.gt_box.min, sb.gt_box.min);
        assert_eq!(sa.gt_box.max, sb.gt_box.max);
    }
}
