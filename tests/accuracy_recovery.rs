//! Integration test of the Sec 5 claim: approximation-aware training
//! recovers the accuracy that inference-time approximation destroys.
//!
//! Uses a deliberately small dataset/model so it runs in the test suite;
//! the full-scale version is `repro fig13`.

use crescent::models::{
    eval_classifier, eval_segmenter, train_classifier, train_segmenter, ApproxSetting,
    PointNet2Cls, PointNet2Seg, TrainConfig,
};
use crescent::pointcloud::datasets::{
    ClassificationConfig, ClassificationDataset, SegmentationConfig, SegmentationDataset,
};

fn tiny_cls() -> ClassificationDataset {
    ClassificationDataset::generate(&ClassificationConfig {
        points_per_cloud: 128,
        train_per_class: 8,
        test_per_class: 4,
        jitter_sigma: 0.01,
        seed: 0xE2E,
    })
}

/// The Fig 13 signature on the classifier: retrained-under-approximation
/// accuracy exceeds apply-approximation-without-retraining accuracy.
#[test]
fn classifier_retraining_beats_no_retraining() {
    let ds = tiny_cls();
    // aggressive setting so the no-retraining drop is visible even at
    // tiny scale
    let approx = ApproxSetting::ans_bce(4, 4);
    let epochs = 10;

    let mut baseline = PointNet2Cls::new(ds.num_classes, 91);
    train_classifier(&mut baseline, &ds.train, &TrainConfig::exact(epochs));
    let acc_exact = eval_classifier(&mut baseline, &ds.test, &ApproxSetting::exact());
    let acc_no_retrain = eval_classifier(&mut baseline, &ds.test, &approx);

    let mut retrained = PointNet2Cls::new(ds.num_classes, 92);
    train_classifier(&mut retrained, &ds.train, &TrainConfig::dedicated(approx, epochs));
    let acc_retrained = eval_classifier(&mut retrained, &ds.test, &approx);

    assert!(acc_exact > 0.25, "baseline should learn: {acc_exact}");
    assert!(
        acc_retrained > acc_no_retrain,
        "retrained {acc_retrained} must beat no-retrain {acc_no_retrain} (baseline {acc_exact})"
    );
}

/// Same signature on the segmentation network with the mIoU metric.
#[test]
fn segmenter_retraining_beats_no_retraining() {
    let ds = SegmentationDataset::generate(&SegmentationConfig {
        points_per_cloud: 96,
        train_per_category: 6,
        test_per_category: 3,
        seed: 0xE2F,
    });
    let approx = ApproxSetting::ans_bce(4, 3);
    let epochs = 6;

    let mut baseline = PointNet2Seg::new(ds.num_parts, 93);
    train_segmenter(&mut baseline, &ds.train, &TrainConfig::exact(epochs));
    let miou_exact = eval_segmenter(&mut baseline, &ds.test, &ApproxSetting::exact());
    let miou_no_retrain = eval_segmenter(&mut baseline, &ds.test, &approx);

    let mut retrained = PointNet2Seg::new(ds.num_parts, 94);
    train_segmenter(&mut retrained, &ds.train, &TrainConfig::dedicated(approx, epochs));
    let miou_retrained = eval_segmenter(&mut retrained, &ds.test, &approx);

    assert!(miou_exact > 0.25, "baseline should learn: {miou_exact}");
    assert!(
        miou_retrained + 0.02 >= miou_no_retrain,
        "retrained {miou_retrained} must not trail no-retrain {miou_no_retrain}"
    );
}

/// Fig 20's point: a mixed-trained model tolerates inference-time settings
/// it never saw, better than a model trained with minimal approximation.
#[test]
fn mixed_training_generalizes_across_settings() {
    let ds = tiny_cls();
    let epochs = 6;
    let mut mixed = PointNet2Cls::new(ds.num_classes, 95);
    train_classifier(&mut mixed, &ds.train, &TrainConfig::mixed((1, 5), None, epochs));
    let mut dedicated1 = PointNet2Cls::new(ds.num_classes, 96);
    train_classifier(
        &mut dedicated1,
        &ds.train,
        &TrainConfig::dedicated(ApproxSetting::ans(1), epochs),
    );
    // evaluate both at the aggressive end
    let hard = ApproxSetting::ans(5);
    let acc_mixed = eval_classifier(&mut mixed, &ds.test, &hard);
    let acc_ded1 = eval_classifier(&mut dedicated1, &ds.test, &hard);
    // the mixed model must be at least competitive (strictly better is
    // noisy at this scale)
    assert!(acc_mixed + 0.1 >= acc_ded1, "mixed {acc_mixed} vs dedicated-ht1 {acc_ded1} at h_t=5");
}
