//! In-repo edition of the CI sweep gate: run the quick grid and assert
//! the rendered report is **byte-identical** to the checked-in
//! `bench/baseline.json` — the same exactness the `sweep-gate` workflow
//! enforces through `repro sweep --quick --check`, available to plain
//! `cargo test --release` with no subprocess and no network.
//!
//! This is the regression net under the wall-clock fast paths (SoA node
//! columns, recycled scratch arenas, the incremental recall oracle):
//! each of those refactors claims to change *no modeled byte*, and this
//! test is where that claim is pinned. On intended drift, refresh the
//! baseline (`repro sweep --quick --json bench/baseline.json`), commit
//! it, and the schema-versioned header documents the change.
//!
//! The full 160-point grid takes minutes under the debug profile, so
//! the test is release-gated the same way CI runs it
//! (`cargo test --release -q --test sweep_baseline`); under debug it is
//! ignored rather than silently pruned to a weaker grid.

use crescent_explorer::{default_workers, diff_reports, run_sweep, SweepSpec};

#[cfg_attr(
    debug_assertions,
    ignore = "quick grid is minutes-slow unoptimized; run with --release (CI does)"
)]
#[test]
fn quick_sweep_reproduces_the_checked_in_baseline_bytes() {
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/bench/baseline.json");
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));
    let report = run_sweep(&SweepSpec::quick(), default_workers()).expect("quick spec is valid");
    let fresh = report.to_json();
    if let Some(drift) = diff_reports(&baseline, &fresh) {
        panic!(
            "quick sweep drifted from bench/baseline.json:\n{drift}\n\
             if intended, refresh with `cargo run --release -p crescent-bench --bin repro -- \
             sweep --quick --json bench/baseline.json` and commit the diff"
        );
    }
    // diff_reports is field-aware; the gate is stricter — bytes
    assert_eq!(baseline, fresh, "comparator passed but bytes differ (renderer drift?)");
}

/// The timings sidecar must never be able to reach the gated bytes:
/// the report renderer has no timing fields, so the word cannot occur.
#[test]
fn report_bytes_carry_no_wall_clock() {
    let mut spec = SweepSpec::quick();
    spec.label = "no-wall-clock".to_string();
    spec.scenarios.truncate(1);
    spec.maintenance.truncate(1);
    spec.num_pes.truncate(1);
    spec.tree_kb.truncate(1);
    spec.tree_banks.truncate(1);
    spec.dram_bytes_per_cycle.truncate(1);
    spec.aggregation_elision.truncate(1);
    spec.top_heights.truncate(1);
    spec.elision_depths.truncate(1);
    let report = run_sweep(&spec, 1).expect("valid spec");
    let json = report.to_json();
    assert!(!json.contains("timings"), "report bytes must not carry a timings section");
    assert!(!json.contains("nanos"), "report bytes must not carry wall-clock fields");
}
