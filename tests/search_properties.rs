//! Property-based cross-crate invariants (proptest).

use proptest::prelude::*;

use crescent::kdtree::{radius_search, ElisionConfig, KdTree, SplitSearchConfig, SplitTree};
use crescent::memsim::{DramTraceAnalyzer, FullyAssociativeCache};
use crescent::pointcloud::{radius_search_bruteforce, replicate_to_k, Point3, PointCloud};

fn arb_cloud(max_n: usize) -> impl Strategy<Value = PointCloud> {
    prop::collection::vec((-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0), 1..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact K-d search equals brute force on arbitrary clouds.
    #[test]
    fn kd_search_matches_bruteforce(
        cloud in arb_cloud(200),
        qx in -10.0f32..10.0,
        qy in -10.0f32..10.0,
        qz in -10.0f32..10.0,
        radius in 0.1f32..5.0,
    ) {
        let tree = KdTree::build(&cloud);
        let q = Point3::new(qx, qy, qz);
        let mut got: Vec<usize> =
            radius_search(&tree, q, radius, None).iter().map(|n| n.index).collect();
        let mut want: Vec<usize> =
            radius_search_bruteforce(&cloud, q, radius, None).iter().map(|n| n.index).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The K-d tree layout is always complete and permutation-valid.
    #[test]
    fn kd_tree_layout_invariants(cloud in arb_cloud(300)) {
        let tree = KdTree::build(&cloud);
        prop_assert_eq!(tree.len(), cloud.len());
        prop_assert!(tree.check_invariants());
        let mut seen = vec![false; cloud.len()];
        for node in tree.nodes() {
            let pi = node.point_index as usize;
            prop_assert!(pi < cloud.len());
            prop_assert!(!seen[pi]);
            seen[pi] = true;
        }
    }

    /// Approximate (split-tree) search returns a subset of the exact
    /// result for any top height — it may miss, it must never invent.
    #[test]
    fn approximate_is_subset_of_exact(
        cloud in arb_cloud(200),
        top_height in 0usize..6,
        radius in 0.2f32..4.0,
    ) {
        let tree = KdTree::build(&cloud);
        let ht = top_height.min(tree.height().saturating_sub(1));
        let split = SplitTree::new(&tree, ht).unwrap();
        let q = cloud.point(0);
        let exact: Vec<usize> =
            radius_search(&tree, q, radius, None).iter().map(|n| n.index).collect();
        let approx = split.search_one(q, radius, None);
        for n in &approx {
            prop_assert!(exact.contains(&n.index));
        }
        // the query point itself is always found (distance 0, and the
        // query is routed to the sub-tree containing it)
        prop_assert!(approx.iter().any(|n| n.index == 0));
    }

    /// Elision only ever removes results, and the stats add up.
    #[test]
    fn elision_subsets_and_accounts(
        cloud in arb_cloud(300),
        banks in 1usize..8,
        he in 0usize..12,
    ) {
        let tree = KdTree::build(&cloud);
        let ht = 2usize.min(tree.height().saturating_sub(1));
        let split = SplitTree::new(&tree, ht).unwrap();
        let queries: Vec<Point3> = cloud.points().iter().copied().take(16).collect();
        let base_cfg = SplitSearchConfig {
            radius: 2.0, max_neighbors: None, num_pes: 4, elision: None,
        };
        let elide_cfg = SplitSearchConfig {
            elision: Some(ElisionConfig { elision_height: he, num_banks: banks, descendant_reuse: false }),
            ..base_cfg
        };
        let (full, _) = split.batch_search(&queries, &base_cfg);
        let (approx, stats) = split.batch_search(&queries, &elide_cfg);
        for (a, f) in approx.iter().zip(&full) {
            let fidx: Vec<usize> = f.iter().map(|n| n.index).collect();
            for n in a {
                prop_assert!(fidx.contains(&n.index));
            }
        }
        prop_assert_eq!(stats.bank_conflicts, stats.conflict_stalls + stats.nodes_elided);
        prop_assert_eq!(stats.fetch_attempts, stats.nodes_visited + stats.bank_conflicts);
        prop_assert!(stats.nodes_skipped >= stats.nodes_elided);
    }

    /// A DMA-style streamed range is classified as one random head plus
    /// streaming bursts, regardless of geometry.
    #[test]
    fn stream_classification(start in 0u64..1_000_000, len in 1u64..100_000, burst in 1u64..256) {
        let mut a = DramTraceAnalyzer::new();
        a.stream(start, len, burst);
        prop_assert_eq!(a.counters().random_accesses, 1);
        prop_assert_eq!(a.counters().total_bytes(), len);
    }

    /// Cache misses are bounded by accesses, and re-walking the same
    /// footprint that fits in cache is all hits.
    #[test]
    fn cache_bounds(lines in 1u64..64, walk in 1u64..64) {
        let mut c = FullyAssociativeCache::new(lines * 64, 64);
        for _ in 0..3 {
            for i in 0..walk {
                c.access(i * 64);
            }
        }
        let s = *c.stats();
        prop_assert_eq!(s.accesses(), 3 * walk);
        prop_assert!(s.misses >= walk.min(lines));
        if walk <= lines {
            // after the first sweep everything fits: exactly `walk` misses
            prop_assert_eq!(s.misses, walk);
        }
    }

    /// Neighbor replication always produces exactly k entries drawn from
    /// the input (or the fallback).
    #[test]
    fn replication_invariants(
        neighbors in prop::collection::vec(0usize..100, 0..20),
        k in 1usize..32,
        fallback in 0usize..100,
    ) {
        let out = replicate_to_k(&neighbors, k, Some(fallback));
        prop_assert_eq!(out.len(), k);
        for v in &out {
            prop_assert!(neighbors.contains(v) || *v == fallback);
        }
    }
}
