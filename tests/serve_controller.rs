//! The SLO-controller property harness: the closed loop is pinned by
//! the same determinism discipline as the rest of the serve layer.
//!
//! Fuzzed (over [`crescent::testgen::ScenarioGen`] tenant mixes):
//!
//! * **off means off** — a controller whose band is `[0, 0]` runs
//!   bit-identically to the pinned static `h_e = 0` path: answers,
//!   digest, schedule, knob trajectory, maintenance bill, energy;
//! * **band** — whatever the mix and tuning, the chosen `h_e` never
//!   leaves `[0, h_e_max]`;
//! * **determinism** — the full knob trajectory (and the whole report)
//!   is byte-identical across reruns and worker counts 1 / 4;
//! * **monotone pressure** — an overloaded twin of a mix never settles
//!   its knob below the idle twin's steady state: pressure can only
//!   push `h_e` up, slack can only let it decay.
//!
//! Pinned (release profile, where the quick grid is affordable): the
//! calibrated overload corner of `bench/serve-baseline.json` — the
//! 8-tenant / fleet-1 / `h_e`-start-0 SLO row — as exact constants.

use crescent::testgen::ScenarioGen;
use crescent_serve::{
    run_service, run_service_controlled, ControllerConfig, ServeSpec, ServiceContext,
};
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use proptest::ProptestConfig;

/// CI runs a fixed bounded budget; local hunts override the env var.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(6)
}

/// Draws a random service spec around a ScenarioGen tenant base and
/// map: random tempo, backlog, fleet, 2–6 tenants, static axes pinned
/// (the harness calls the scheduler directly).
fn random_spec(rng: &mut TestRng) -> ServeSpec {
    let strat = ScenarioGen { max_points: 1_200, max_frames: 4, max_queries: 24 };
    let mut tenant_base = strat.new_value(rng);
    tenant_base.queries_per_frame = tenant_base.queries_per_frame.max(1);
    let mut map = strat.new_value(rng);
    map.queries_per_frame = 0;
    let mut spec = ServeSpec::quick();
    spec.label = "ctl-fuzz".to_string();
    spec.map = map;
    spec.tenant_base = tenant_base;
    spec.frame_period = 300 + rng.below(3_000);
    spec.base_deadline = 500 + rng.below(5_000);
    spec.max_backlog = 4 + rng.below(28) as usize;
    spec.top_height = 1 + rng.below(6) as usize;
    spec.tenant_counts = vec![2 + rng.below(5) as usize];
    spec.fleet_sizes = vec![1 + rng.below(3) as usize];
    spec.elision_depths = vec![rng.below(6) as usize];
    spec
}

/// Draws a random (valid) controller tuning.
fn random_config(rng: &mut TestRng) -> ControllerConfig {
    ControllerConfig {
        h_e_max: rng.below(5) as usize,
        window: 1 + rng.below(8) as usize,
        miss_budget: rng.below(3) as usize,
        backlog_unit: 1 + rng.below(5) as usize,
    }
}

#[test]
fn fuzz_zero_band_controller_is_bit_identical_to_static() {
    proptest::run_cases(
        "fuzz_zero_band_controller_is_bit_identical_to_static",
        ProptestConfig::with_cases(cases()),
        |rng, case| {
            let spec = random_spec(rng);
            let cfg = ControllerConfig { h_e_max: 0, ..random_config(rng) };
            let ctx = ServiceContext::build(&spec);
            let (tenants, fleet) = (spec.tenant_counts[0], spec.fleet_sizes[0]);
            // any initial h_e: the empty band clamps it to zero up front
            let off = run_service_controlled(&ctx, tenants, fleet, spec.elision_depths[0], &cfg);
            let reference = run_service(&ctx, tenants, fleet, 0);
            assert_eq!(off.results, reference.results, "case {case}: answers drifted");
            assert_eq!(off.ledger.digest, reference.ledger.digest, "case {case}");
            assert_eq!(off.ledger.makespan, reference.ledger.makespan, "case {case}");
            assert_eq!(
                off.ledger.knob_trajectory, reference.ledger.knob_trajectory,
                "case {case}: a disabled controller must trace the static trajectory"
            );
            assert_eq!(off.ledger.fleet_latencies(), reference.ledger.fleet_latencies());
            assert_eq!(off.ledger.map_build_cycles, reference.ledger.map_build_cycles);
            assert_eq!(off.ledger.alt_maintenance_ticks, 0, "case {case}: spec policy only");
            assert_eq!(
                off.ledger.total_energy().total(),
                reference.ledger.total_energy().total(),
                "case {case}: bit-identical energy, not just close"
            );
        },
    );
}

#[test]
fn fuzz_controller_never_leaves_the_band() {
    proptest::run_cases(
        "fuzz_controller_never_leaves_the_band",
        ProptestConfig::with_cases(cases()),
        |rng, case| {
            let spec = random_spec(rng);
            let cfg = random_config(rng);
            let ctx = ServiceContext::build(&spec);
            // a deliberately out-of-band initial depth must be clamped in
            let out = run_service_controlled(
                &ctx,
                spec.tenant_counts[0],
                spec.fleet_sizes[0],
                spec.elision_depths[0] + cfg.h_e_max,
                &cfg,
            );
            for k in &out.ledger.knob_trajectory {
                assert!(
                    k.h_e <= cfg.h_e_max,
                    "case {case}: wavefront {} chose h_e {} above the band max {}",
                    k.wavefront,
                    k.h_e,
                    cfg.h_e_max
                );
            }
            for t in &out.ledger.tenants {
                assert!(t.max_h_e() <= cfg.h_e_max, "case {case}: per-frame mirror left the band");
            }
        },
    );
}

#[test]
fn fuzz_controlled_reports_are_deterministic_across_worker_counts() {
    proptest::run_cases(
        "fuzz_controlled_reports_are_deterministic_across_worker_counts",
        ProptestConfig::with_cases(cases()),
        |rng, case| {
            use crescent_serve::{run_serve, ControlMode};
            let mut spec = random_spec(rng);
            spec.controller_modes = vec![ControlMode::Static, ControlMode::Slo];
            spec.controller =
                ControllerConfig { h_e_max: 1 + random_config(rng).h_e_max, ..random_config(rng) };
            let one = run_serve(&spec, 1).expect("spec is valid");
            let four = run_serve(&spec, 4).expect("spec is valid");
            assert_eq!(
                one.to_json(),
                four.to_json(),
                "case {case}: the knob trajectory (h_e_cycles, h_e_final) and every other \
                 column must not see the worker count"
            );
        },
    );
}

#[test]
fn fuzz_overload_never_settles_below_the_idle_steady_state() {
    proptest::run_cases(
        "fuzz_overload_never_settles_below_the_idle_steady_state",
        ProptestConfig::with_cases(cases()),
        |rng, case| {
            let mut spec = random_spec(rng);
            spec.fleet_sizes = vec![1];
            let cfg = ControllerConfig {
                h_e_max: 1 + rng.below(4) as usize,
                miss_budget: 0,
                ..ControllerConfig::default()
            };
            // twins differ only in the deadline: one mix misses every
            // graded frame, the other can never miss
            spec.base_deadline = 1;
            let over_ctx = ServiceContext::build(&spec);
            spec.base_deadline = 1_000_000_000;
            let idle_ctx = ServiceContext::build(&spec);
            let tenants = spec.tenant_counts[0];
            let over = run_service_controlled(&over_ctx, tenants, 1, 0, &cfg);
            let idle = run_service_controlled(&idle_ctx, tenants, 1, 0, &cfg);
            assert!(over.ledger.deadline_misses() > 0, "case {case}: the twin must overload");
            assert_eq!(idle.ledger.deadline_misses(), 0, "case {case}: the twin must idle");

            let idle_steady = idle.ledger.final_h_e();
            let over_final = over.ledger.final_h_e();
            assert!(
                over_final >= idle_steady,
                "case {case}: overload settled at h_e {over_final}, below the idle steady \
                 state {idle_steady}"
            );
            // once the loop has had room to climb (one step per
            // wavefront plus a full observation window), sustained
            // misses must hold the knob strictly above zero
            if over.ledger.knob_trajectory.len() > cfg.h_e_max + cfg.window {
                assert!(over_final >= 1, "case {case}: sustained misses never lifted the knob");
            }
        },
    );
}

/// The calibrated overload corner, pinned as exact constants (satellite
/// of the closed-loop PR): the quick grid's 8-tenant / fleet-1 /
/// `h_e`-start-0 pair. Any retune of the controller, the service
/// operating point, or the scheduler shows up here as a diff — exactly
/// like the byte gate, but readable.
#[cfg(not(debug_assertions))]
#[test]
fn overload_corner_constants_are_pinned() {
    use crescent_serve::run_serve;
    let report = run_serve(&ServeSpec::quick(), 4).expect("quick spec is valid");
    let corner = &report.rows[16];
    assert_eq!(
        (corner.tenants, corner.fleet, corner.elision_depth, corner.controller.as_str()),
        (8, 1, 0, "static")
    );
    assert_eq!(corner.deadline_misses, 11, "static corner misses");
    assert_eq!(corner.rejected, 4, "static corner rejections");
    assert_eq!(corner.h_e_final, 0, "a static row never moves its knob");

    let twin = &report.rows[17];
    assert_eq!(
        (twin.tenants, twin.fleet, twin.elision_depth, twin.controller.as_str()),
        (8, 1, 0, "slo")
    );
    assert_eq!(twin.deadline_misses, 2, "controller-on corner misses");
    assert_eq!(twin.rejected, 0, "the controller clears the backlog before admission trips");
    assert_eq!(twin.h_e_final, 1, "final controller h_e after the storm decays");
    assert!(twin.deadline_misses < corner.deadline_misses, "the acceptance inequality");
    assert!(twin.conflicts_elided > 0, "the recall trade is ledgered");
}
