//! Property-based invariants of the streaming engine's corrected timing
//! model (proptest): the pipeline fill is charged exactly once per
//! stream, the serial-vs-pipelined gap decomposes exactly into hidden
//! fills plus overlapped build work, and the incremental refit policy is
//! bit-identical to rebuild-every-frame on drifting streams.

use proptest::prelude::*;

use crescent::accel::{
    run_frame_stream, AcceleratorConfig, StreamSearchConfig, TreeMaintenance, PE_PIPELINE_DEPTH,
};
use crescent::kdtree::{KdTree, RefitConfig, RefitOutcome};
use crescent::pointcloud::{Point3, PointCloud};
use crescent::CrescentKnobs;

/// A random base cloud of 32..150 points in a 4-unit box.
fn arb_cloud() -> impl Strategy<Value = PointCloud> {
    prop::collection::vec((-2.0f32..2.0, -2.0f32..2.0, -2.0f32..2.0), 32..150)
        .prop_map(|v| v.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect())
}

/// Per-frame drift translations: each frame shifts the whole cloud by a
/// small random step (rigid translation — the order-preserving coherence
/// class refit guarantees bit-identity on).
fn arb_drifts() -> impl Strategy<Value = Vec<Point3>> {
    prop::collection::vec((-0.05f32..0.05, -0.05f32..0.05, -0.02f32..0.02), 1..6)
        .prop_map(|v| v.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect())
}

/// Materializes the frame sequence: frame f is the base cloud translated
/// by the cumulative drift, querying every 4th point.
fn make_frames(base: &PointCloud, drifts: &[Point3]) -> Vec<(PointCloud, Vec<Point3>)> {
    let mut offset = Point3::ZERO;
    drifts
        .iter()
        .map(|&d| {
            offset += d;
            let cloud: PointCloud = base.iter().map(|&p| p + offset).collect();
            let queries: Vec<Point3> = cloud.iter().copied().step_by(4).collect();
            (cloud, queries)
        })
        .collect()
}

fn borrow(frames: &[(PointCloud, Vec<Point3>)]) -> Vec<(&PointCloud, &[Point3])> {
    frames.iter().map(|(c, q)| (c, q.as_slice())).collect()
}

fn run(
    frames: &[(PointCloud, Vec<Point3>)],
    maintenance: TreeMaintenance,
) -> (Vec<Vec<Vec<crescent::pointcloud::Neighbor>>>, crescent::accel::StreamReport) {
    let search = StreamSearchConfig {
        radius: 0.4,
        max_neighbors: Some(16),
        maintenance,
        ..StreamSearchConfig::default()
    };
    run_frame_stream(
        &borrow(frames),
        &search,
        CrescentKnobs::default(),
        &AcceleratorConfig::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A 1-frame stream has nothing to overlap: pipelined == serial.
    #[test]
    fn one_frame_stream_has_no_overlap_benefit(
        base in arb_cloud(),
        dx in -0.1f32..0.1,
    ) {
        let frames = make_frames(&base, &[Point3::new(dx, 0.0, 0.0)]);
        let (_, rep) = run(&frames, TreeMaintenance::RebuildEveryFrame);
        prop_assert_eq!(rep.pipelined_cycles, rep.serial_cycles);
        prop_assert_eq!(rep.overlapped_build_cycles, 0);
    }

    /// For every stream, the serial-vs-pipelined gap is EXACTLY
    /// (frames − 1) fills plus the build cycles hidden behind search:
    /// the fill is charged once per stream, once per standalone frame,
    /// and nowhere else.
    #[test]
    fn fill_is_charged_exactly_once_per_stream(
        base in arb_cloud(),
        drifts in arb_drifts(),
    ) {
        for maintenance in [TreeMaintenance::RebuildEveryFrame, TreeMaintenance::refit()] {
            let frames = make_frames(&base, &drifts);
            let (_, rep) = run(&frames, maintenance);
            let n = frames.len() as u64;
            prop_assert_eq!(
                rep.serial_cycles - rep.pipelined_cycles,
                (n - 1) * PE_PIPELINE_DEPTH + rep.overlapped_build_cycles
            );
            let build: u64 = rep.frames.iter().map(|f| f.build_slot_cycles).sum();
            let search: u64 = rep.frames.iter().map(|f| f.slot_cycles).sum();
            prop_assert!(rep.overlapped_build_cycles <= build);
            prop_assert_eq!(
                rep.serial_cycles,
                build + search + n * PE_PIPELINE_DEPTH
            );
            prop_assert!(rep.pipelined_cycles >= search + PE_PIPELINE_DEPTH);
        }
    }

    /// Refit-vs-rebuild neighbor-set equality across random drifting
    /// streams: the maintenance policy must never change a single result.
    #[test]
    fn refit_and_rebuild_agree_on_drifting_streams(
        base in arb_cloud(),
        drifts in arb_drifts(),
    ) {
        let frames = make_frames(&base, &drifts);
        let (r_rebuild, _) = run(&frames, TreeMaintenance::RebuildEveryFrame);
        let (r_refit, rep) = run(&frames, TreeMaintenance::refit());
        prop_assert_eq!(r_rebuild, r_refit);
        // rigid translations are order-preserving: no fallback after
        // frame 0, and maintenance gets strictly cheaper
        for f in &rep.frames[1..] {
            prop_assert!(!f.full_rebuild);
            prop_assert!(f.build_cycles > 0);
        }
    }

    /// The refit result is the SAME TREE a fresh build would produce on
    /// order-preserving frames (the guarantee the engine equality rests
    /// on), and an arbitrary same-size cloud never breaks the K-d
    /// invariant — it either refits validly or falls back.
    #[test]
    fn refit_always_leaves_a_valid_tree(
        base in arb_cloud(),
        dx in -0.2f32..0.2,
        dy in -0.2f32..0.2,
    ) {
        let moved: PointCloud = base.iter().map(|&p| p + Point3::new(dx, dy, 0.01)).collect();
        let mut tree = KdTree::build(&base);
        let stats = tree.refit(&moved, &RefitConfig::default());
        prop_assert_eq!(stats.outcome, RefitOutcome::InPlace);
        let fresh = KdTree::build(&moved);
        prop_assert_eq!(tree.nodes(), fresh.nodes());
        prop_assert!(tree.check_invariants());
    }
}
