//! Adversarial scenario fuzzer: random whole-workload streams driven end
//! to end through [`Crescent::run_stream`], hunting for violations of the
//! invariants the rest of the suite pins on hand-picked configs.
//!
//! Each property draws [`ScenarioGen`] configs — arbitrary ego
//! trajectories, arbitrary [`StreamScenario`] parameters, density ramps,
//! dropout patterns, zero-query frames, single-frame streams — and
//! checks one invariant:
//!
//! * bit-exact determinism of the whole outcome;
//! * refit honesty (the maintenance policy never changes a neighbor set);
//! * `h_e = 0` bit-identity against per-query [`SplitTree::search_one`];
//! * the pipeline-fill timing identity
//!   `serial − pipelined == (frames_with_work − 1)·fill + overlapped`;
//! * cycles non-increasing (and recall never gained) in `h_e`;
//! * soundness against the brute-force oracle (every reported neighbor
//!   is a true in-radius neighbor at its true distance).
//!
//! The case count is `PROPTEST_CASES` (default 12 — the bounded CI
//! budget; raise it for deeper local hunts). The vendored proptest stub
//! does not shrink, so a failing case is re-minimized here with
//! [`crescent::testgen::shrink_failing`] and printed ready to check in
//! as a named regression test — `shrunk_single_frame_stream_pays_one_fill`
//! below is one such pinned counterexample.

use crescent::accel::PE_PIPELINE_DEPTH;
use crescent::kdtree::{KdTree, SplitTree};
use crescent::pointcloud::radius_search_bruteforce;
use crescent::testgen::{shrink_failing, ScenarioGen};
use crescent::workload::{FrameStream, FrameStreamConfig};
use crescent::Crescent;
use proptest::strategy::Strategy;
use proptest::ProptestConfig;

/// CI runs a fixed bounded budget; local hunts override the env var.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(12)
}

/// Runs `property` over `cases()` generated configs. On a violation the
/// case is greedily re-minimized (the stub does not shrink) and the
/// property re-raised on the minimal config, with the config printed so
/// it can be checked in as a named regression test.
fn fuzz(name: &str, property: fn(&FrameStreamConfig)) {
    let strat = ScenarioGen::default();
    proptest::run_cases(name, ProptestConfig::with_cases(cases()), |rng, case| {
        let cfg = strat.new_value(rng);
        let panics = |c: &FrameStreamConfig| {
            let probe = *c;
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&probe))).is_err()
        };
        if panics(&cfg) {
            // quiet the probe panics while shrinking, then re-raise on
            // the minimal config with the default hook restored
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let min = shrink_failing(cfg, panics);
            std::panic::set_hook(hook);
            eprintln!("fuzz case {case} violated `{name}`; minimal config:\n{min:#?}");
            property(&min);
            unreachable!("the shrunken config must still fail");
        }
    });
}

fn assert_deterministic(cfg: &FrameStreamConfig) {
    let system = Crescent::new();
    let a = system.run_stream(cfg);
    let b = system.run_stream(cfg);
    assert_eq!(a.neighbor_sets, b.neighbor_sets);
    assert_eq!(a.report.pipelined_cycles, b.report.pipelined_cycles);
    assert_eq!(a.report.serial_cycles, b.report.serial_cycles);
    assert_eq!(a.report.ledger.total(), b.report.ledger.total());
}

#[test]
fn fuzz_streams_are_deterministic() {
    fuzz("fuzz_streams_are_deterministic", assert_deterministic);
}

fn assert_refit_honest(cfg: &FrameStreamConfig) {
    use crescent::accel::TreeMaintenance;
    let system = Crescent::new();
    let mut rebuild_cfg = *cfg;
    rebuild_cfg.maintenance = TreeMaintenance::RebuildEveryFrame;
    let mut refit_cfg = *cfg;
    refit_cfg.maintenance = TreeMaintenance::refit();
    let rebuild = system.run_stream(&rebuild_cfg);
    let refit = system.run_stream(&refit_cfg);
    assert_eq!(
        rebuild.neighbor_sets, refit.neighbor_sets,
        "maintenance policy changed a neighbor set"
    );
}

#[test]
fn fuzz_refit_never_diverges_from_rebuild() {
    fuzz("fuzz_refit_never_diverges_from_rebuild", assert_refit_honest);
}

fn assert_exact_mode_bit_identical(cfg: &FrameStreamConfig) {
    let mut exact = *cfg;
    exact.elision_depth = 0;
    let system = Crescent::new();
    let outcome = system.run_stream(&exact);
    for (fi, frame) in FrameStream::new(&exact).enumerate() {
        let tree = KdTree::build(&frame.cloud);
        let ht = system.knobs.top_height.min(tree.height().saturating_sub(1));
        let split = SplitTree::new(&tree, ht).unwrap();
        for (qi, &q) in frame.queries.iter().enumerate() {
            let single = split.search_one(q, exact.radius, exact.max_neighbors);
            assert_eq!(
                outcome.neighbor_sets[fi][qi], single,
                "h_e = 0 diverged from search_one (frame {fi} query {qi})"
            );
        }
    }
}

#[test]
fn fuzz_h_e_zero_is_bit_identical_to_per_query_search() {
    fuzz("fuzz_h_e_zero_is_bit_identical_to_per_query_search", assert_exact_mode_bit_identical);
}

fn assert_fill_identity(cfg: &FrameStreamConfig) {
    let rep = Crescent::new().run_stream(cfg).report;
    let frames_with_work = rep.frames.iter().filter(|f| f.has_work()).count() as u64;
    let standalone: u64 = rep.frames.iter().map(|f| f.standalone_cycles()).sum();
    assert_eq!(rep.serial_cycles, standalone, "serial = sum of standalone frame costs");
    assert_eq!(
        rep.serial_cycles - rep.pipelined_cycles,
        frames_with_work.saturating_sub(1) * PE_PIPELINE_DEPTH + rep.overlapped_build_cycles,
        "overlap hides (frames_with_work - 1) fills plus the overlapped builds, nothing else"
    );
}

#[test]
fn fuzz_fill_identity_holds_on_arbitrary_streams() {
    fuzz("fuzz_fill_identity_holds_on_arbitrary_streams", assert_fill_identity);
}

fn assert_elision_monotone(cfg: &FrameStreamConfig) {
    let system = Crescent::new();
    let mut exact = *cfg;
    exact.elision_depth = 0;
    let a = system.run_stream(&exact).report;
    let b = system.run_stream(cfg).report;
    let elided_at = |rep: &crescent::accel::StreamReport| -> u64 {
        rep.frames.iter().map(|f| f.search.conflicts_elided as u64).sum()
    };
    assert_eq!(elided_at(&a), 0, "h_e = 0 must never drop a fetch");
    assert!(
        b.pipelined_cycles <= a.pipelined_cycles,
        "elision cost stream cycles: h_e = {} took {} vs {} at h_e = 0",
        cfg.elision_depth,
        b.pipelined_cycles,
        a.pipelined_cycles
    );
    let neighbors = |rep: &crescent::accel::StreamReport| -> u64 {
        rep.frames.iter().map(|f| f.neighbors as u64).sum()
    };
    assert!(neighbors(&b) <= neighbors(&a), "elision can only lose neighbors, never invent them");
}

#[test]
fn fuzz_elision_never_costs_cycles_or_gains_neighbors() {
    fuzz("fuzz_elision_never_costs_cycles_or_gains_neighbors", assert_elision_monotone);
}

fn assert_sound_vs_oracle(cfg: &FrameStreamConfig) {
    let outcome = Crescent::new().run_stream(cfg);
    let r2 = cfg.radius * cfg.radius;
    for (fi, frame) in outcome.frames.iter().enumerate() {
        for (qi, &q) in frame.queries.iter().enumerate() {
            let oracle = radius_search_bruteforce(&frame.cloud, q, cfg.radius, None);
            let truth: std::collections::HashMap<usize, f32> =
                oracle.iter().map(|n| (n.index, n.dist2)).collect();
            let got = &outcome.neighbor_sets[fi][qi];
            if let Some(cap) = cfg.max_neighbors {
                assert!(got.len() <= cap, "frame {fi} query {qi}: cap exceeded");
            }
            let mut seen = std::collections::HashSet::new();
            for n in got {
                assert!(seen.insert(n.index), "frame {fi} query {qi}: duplicate neighbor");
                assert!(n.dist2 <= r2, "frame {fi} query {qi}: out-of-radius neighbor");
                assert_eq!(
                    truth.get(&n.index),
                    Some(&n.dist2),
                    "frame {fi} query {qi}: neighbor {} not a true in-radius point",
                    n.index
                );
            }
        }
    }
}

#[test]
fn fuzz_every_reported_neighbor_is_a_true_neighbor() {
    fuzz("fuzz_every_reported_neighbor_is_a_true_neighbor", assert_sound_vs_oracle);
}

/// Pinned fuzzer counterexample (shrunken with
/// [`crescent::testgen::shrink_failing`] from a
/// `fuzz_fill_identity_holds_on_arbitrary_streams` hunt): a single-frame
/// stream has no inter-frame overlap at all, so the naive identity
/// `serial − pipelined == (num_frames − 1)·fill + overlapped` written
/// against `num_frames` instead of `frames_with_work` only survives
/// because both sides collapse to zero — and the `saturating_sub` in the
/// checker is what keeps the `frames_with_work = 0` corner (a zero-query
/// stream over an idle engine) from underflowing. This pins the minimal
/// shape: one frame, one build, zero queries, exactly one fill charged.
#[test]
fn shrunk_single_frame_stream_pays_one_fill() {
    let mut cfg = FrameStreamConfig::default();
    cfg.scene.total_points = 64;
    cfg.num_frames = 1;
    cfg.queries_per_frame = 0;
    cfg.noise_m = 0.0;
    cfg.elision_depth = 0;
    let rep = Crescent::new().run_stream(&cfg).report;
    // one working frame: serial and pipelined coincide (nothing to
    // overlap), exactly one fill in both bounds
    assert_eq!(rep.serial_cycles, rep.pipelined_cycles);
    assert_eq!(rep.overlapped_build_cycles, 0);
    let build: u64 = rep.frames.iter().map(|f| f.build_slot_cycles).sum();
    assert_eq!(rep.pipelined_cycles, build + PE_PIPELINE_DEPTH);
    assert_fill_identity(&cfg);
}
