//! Multi-tenant service invariants, pinned and fuzzed.
//!
//! The pinned half drives the acceptance trace — an 8-tenant mix
//! covering 8 distinct canonical scenarios — and asserts the ledger is
//! bit-identical across reruns and worker counts, with tail percentiles
//! populated per tenant and fleet-wide.
//!
//! The fuzzed half draws random tenant workloads through
//! [`crescent::testgen::ScenarioGen`] and random service knobs, then
//! checks the three scheduler invariants on every draw:
//!
//! * **conservation** — every admitted frame is served exactly once
//!   (one answer set per query), every rejected frame exactly zero
//!   times, and the schedule is causally sane (arrival ≤ start ≤
//!   completion, misses graded exactly against the tenant deadline);
//! * **determinism** — the same context yields byte-identical ledgers;
//! * **`h_e = 0` bit-identity** — each tenant's neighbor sets in the
//!   multi-tenant run equal a solo re-run of the same frame through the
//!   same wavefront machinery: co-tenants move cycles, never answers.

use std::collections::BTreeSet;

use crescent::testgen::ScenarioGen;
use crescent_accel::{AcceleratorConfig, CrescentKnobs, ServiceInstance, StreamSearchConfig};
use crescent_kdtree::TaggedBatch;
use crescent_serve::{
    run_serve, run_service, ControlMode, ServeSpec, ServiceContext, ServiceOutcome,
};
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use proptest::ProptestConfig;

/// CI runs a fixed bounded budget; local hunts override the env var.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(6)
}

/// A debug-affordable 8-tenant acceptance spec: small clouds, the full
/// canonical scenario diversity of the mix, both fleet sizes.
fn eight_tenant_spec() -> ServeSpec {
    let mut spec = ServeSpec::quick();
    spec.label = "matrix".to_string();
    spec.map.scene.total_points = 1_500;
    spec.map.num_frames = 4;
    spec.tenant_base.scene.total_points = 600;
    spec.tenant_base.num_frames = 4;
    spec.tenant_base.queries_per_frame = 24;
    spec.tenant_counts = vec![8];
    spec.fleet_sizes = vec![1, 2];
    spec.elision_depths = vec![0];
    // static-only: these tests index rows by the fleet axis alone
    spec.controller_modes = vec![ControlMode::Static];
    // a tempo that queues on one instance but not on two (slots are a
    // few hundred cycles at this cloud size), with a backlog deep
    // enough that admission decisions stay fleet-invariant — the digest
    // comparison below covers rejections too
    spec.frame_period = 1_200;
    spec.base_deadline = 1_800;
    spec.max_backlog = 32;
    spec
}

#[test]
fn eight_tenant_mix_is_bit_identical_across_reruns_and_worker_counts() {
    let spec = eight_tenant_spec();
    let a = run_serve(&spec, 1).expect("spec is valid");
    let b = run_serve(&spec, 1).expect("spec is valid");
    let c = run_serve(&spec, 4).expect("spec is valid");
    assert_eq!(a.to_json(), b.to_json(), "rerun must be bit-identical");
    assert_eq!(a.to_json(), c.to_json(), "worker count must not leak into the ledger");

    // the mix really is mixed: 8 tenants, 8 distinct canonical scenarios
    let row = &a.rows[0];
    assert_eq!(row.per_tenant.len(), 8);
    let scenarios: BTreeSet<&str> = row
        .per_tenant
        .iter()
        .map(|t| t.name.split_once('-').expect("names are tNN-scenario").1)
        .collect();
    assert_eq!(scenarios.len(), 8, "8 distinct scenarios in the mix: {scenarios:?}");

    // tail percentiles are populated and ordered, per tenant and fleet-wide
    assert!(row.p50 > 0 && row.p50 <= row.p95 && row.p95 <= row.p99);
    for t in &row.per_tenant {
        if t.admitted > 0 {
            assert!(t.p50 > 0 && t.p50 <= t.p95 && t.p95 <= t.p99, "tenant {}", t.name);
        }
    }

    // h_e = 0: fleet size moves cycles, never answers
    assert_eq!(a.rows[0].digest, a.rows[1].digest, "fleet-size result invariance");
    assert_ne!(a.rows[0].p99, a.rows[1].p99, "fleet size should move the tail here");
}

/// Draws a random service spec: ScenarioGen tenant base and map, random
/// period/deadline/backlog/fleet, 2–6 tenants.
fn random_spec(rng: &mut TestRng) -> ServeSpec {
    let strat = ScenarioGen { max_points: 1_200, max_frames: 4, max_queries: 24 };
    let mut tenant_base = strat.new_value(rng);
    // zero-query tenants make a service trivially idle; keep load real
    tenant_base.queries_per_frame = tenant_base.queries_per_frame.max(1);
    let mut map = strat.new_value(rng);
    map.queries_per_frame = 0;
    let mut spec = ServeSpec::quick();
    spec.label = "fuzz".to_string();
    spec.map = map;
    spec.tenant_base = tenant_base;
    spec.frame_period = 1_000 + rng.below(9_000);
    spec.base_deadline = 2_000 + rng.below(18_000);
    spec.max_backlog = 1 + rng.below(12) as usize;
    spec.top_height = 1 + rng.below(6) as usize;
    spec.tenant_counts = vec![2 + rng.below(5) as usize];
    spec.fleet_sizes = vec![1 + rng.below(3) as usize];
    spec.elision_depths = vec![rng.below(6) as usize];
    spec
}

fn run_random(spec: &ServeSpec) -> (ServiceContext, ServiceOutcome) {
    let ctx = ServiceContext::build(spec);
    let out = run_service(&ctx, spec.tenant_counts[0], spec.fleet_sizes[0], spec.elision_depths[0]);
    (ctx, out)
}

#[test]
fn fuzz_scheduler_conserves_every_admitted_frame() {
    proptest::run_cases(
        "fuzz_scheduler_conserves_every_admitted_frame",
        ProptestConfig::with_cases(cases()),
        |rng, case| {
            let spec = random_spec(rng);
            let (ctx, out) = run_random(&spec);
            let ledger = &out.ledger;
            assert_eq!(ledger.tenants.len(), spec.tenant_counts[0], "case {case}");
            let mut served_queries = 0usize;
            for (ti, tenant) in ledger.tenants.iter().enumerate() {
                assert_eq!(tenant.frames.len(), ctx.queries[ti].len().min(ctx.ticks()));
                for (k, frame) in tenant.frames.iter().enumerate() {
                    let result = &out.results[ti][k];
                    assert_eq!(
                        frame.admitted,
                        result.is_some(),
                        "case {case}: tenant {ti} frame {k}"
                    );
                    match result {
                        Some(answers) => {
                            // exactly one answer set per query of the frame
                            assert_eq!(answers.len(), ctx.queries[ti][k].len(), "case {case}");
                            assert_eq!(frame.queries, answers.len());
                            assert!(frame.arrival <= frame.start, "case {case}: causality");
                            assert!(frame.start <= frame.completion, "case {case}: causality");
                            assert_eq!(frame.latency, frame.completion - frame.arrival);
                            assert_eq!(
                                frame.missed,
                                frame.latency > tenant.deadline_cycles,
                                "case {case}: miss grading"
                            );
                            assert!(frame.wavefront.is_some() && frame.instance.is_some());
                            served_queries += answers.len();
                        }
                        None => {
                            assert_eq!(
                                frame.queries, 0,
                                "case {case}: rejected frames serve nothing"
                            );
                            assert!(!frame.missed, "case {case}: rejections are not misses");
                            assert!(frame.wavefront.is_none() && frame.instance.is_none());
                        }
                    }
                }
            }
            let ledger_queries: usize = ledger.tenants.iter().map(|t| t.queries()).sum();
            assert_eq!(served_queries, ledger_queries, "case {case}: query conservation");
            let instance_waves: usize = ledger.instances.iter().map(|i| i.wavefronts).sum();
            assert_eq!(instance_waves, ledger.wavefronts, "case {case}: wavefront accounting");
            assert!(ledger.shared_wavefronts <= ledger.wavefronts);
        },
    );
}

#[test]
fn fuzz_service_ledgers_are_deterministic() {
    proptest::run_cases(
        "fuzz_service_ledgers_are_deterministic",
        ProptestConfig::with_cases(cases()),
        |rng, case| {
            let spec = random_spec(rng);
            let (_, a) = run_random(&spec);
            let (_, b) = run_random(&spec);
            assert_eq!(a.ledger.digest, b.ledger.digest, "case {case}");
            assert_eq!(a.results, b.results, "case {case}");
            assert_eq!(a.ledger.makespan, b.ledger.makespan, "case {case}");
            assert_eq!(a.ledger.admitted(), b.ledger.admitted(), "case {case}");
            assert_eq!(a.ledger.fleet_latencies(), b.ledger.fleet_latencies(), "case {case}");
            assert_eq!(
                a.ledger.total_energy().total(),
                b.ledger.total_energy().total(),
                "case {case}"
            );
        },
    );
}

#[test]
fn fuzz_he_zero_batching_never_changes_answers() {
    proptest::run_cases(
        "fuzz_he_zero_batching_never_changes_answers",
        ProptestConfig::with_cases(cases()),
        |rng, case| {
            let mut spec = random_spec(rng);
            spec.elision_depths = vec![0];
            let (ctx, out) = run_random(&spec);
            // the solo reference: each admitted frame re-run through the
            // same wavefront machinery with only its own tenant aboard
            let config =
                AcceleratorConfig::builder().aggregation_elision(true).build().expect("valid");
            let knobs = CrescentKnobs { top_height: ctx.top_height, ..CrescentKnobs::default() };
            let search = StreamSearchConfig {
                radius: ctx.radius,
                max_neighbors: ctx.max_neighbors,
                elision_depth: 0,
                ..StreamSearchConfig::default()
            };
            let mut solo = ServiceInstance::new();
            let mut batch = TaggedBatch::new();
            for (ti, per_frame) in out.results.iter().enumerate() {
                for (frame, result) in per_frame.iter().enumerate() {
                    let Some(result) = result else { continue };
                    batch.clear();
                    batch.push_segment(ti as u64, &ctx.queries[ti][frame]);
                    let (tagged, _) =
                        solo.run_wavefront(&ctx.trees[frame].tree, &batch, &search, knobs, &config);
                    assert_eq!(
                        &tagged[0].1, result,
                        "case {case}: tenant {ti} frame {frame}: co-tenants changed answers"
                    );
                }
            }
        },
    );
}

/// A pinned degenerate mix: a 1-deep backlog under an 8-tenant burst on
/// one instance — admission control must reject deterministically and
/// the ledger must still conserve every frame.
#[test]
fn overloaded_service_rejects_deterministically() {
    let mut spec = eight_tenant_spec();
    spec.max_backlog = 1;
    // arrivals of one tick land within a sliver of the period, so the
    // single queue slot is contested while the instance is busy
    spec.frame_period = 1_000;
    spec.base_deadline = 1_500;
    spec.fleet_sizes = vec![1];
    let a = run_serve(&spec, 2).expect("spec is valid");
    let b = run_serve(&spec, 2).expect("spec is valid");
    assert_eq!(a.to_json(), b.to_json());
    let row = &a.rows[0];
    assert!(row.rejected > 0, "a 1-deep backlog cannot admit an 8-tenant burst");
    assert_eq!(row.admitted + row.rejected, 8 * 4, "every frame accounted for");
}

/// The canonical mix construction itself: scenario diversity wraps at
/// ten, phases stay inside the period, deadline tiers cycle.
#[test]
fn mixed_tenants_cover_the_canonical_matrix() {
    let base = crescent::workload::FrameStreamConfig::default();
    let tenants = crescent::tenant::mixed_tenants(12, &base, 6_000, 9_000);
    assert_eq!(tenants.len(), 12);
    let scenarios: BTreeSet<&str> = tenants.iter().map(|t| t.workload.scenario.label()).collect();
    assert_eq!(scenarios.len(), 10, "12 tenants wrap the 10-scenario matrix");
    for t in &tenants {
        assert!(t.arrival_phase < 6_000, "phases stagger within one period");
        assert!(t.deadline_cycles % 9_000 == 0, "deadlines are tier multiples");
    }
}
