//! Cross-crate integration tests: the headline claims of the paper must
//! hold end to end on the simulated system.

use crescent::accel::{run_network, AcceleratorConfig, CrescentKnobs, NetworkSpec, Variant};
use crescent::pointcloud::datasets::{generate_scene, LidarSceneConfig};
use crescent::{Crescent, Point3, PointCloud};

fn scene_cloud(n: usize, seed: u64) -> PointCloud {
    let mut scene = generate_scene(&LidarSceneConfig {
        total_points: n,
        num_cars: 6,
        num_poles: 12,
        num_walls: 3,
        half_extent: 25.0,
        seed,
    });
    scene.cloud.normalize_unit_sphere();
    scene.cloud
}

fn knobs() -> CrescentKnobs {
    CrescentKnobs { top_height: 4, elision_height: 9 }
}

/// Sec 7.2: ANS and ANS+BCE beat Mesorasi on every evaluation network,
/// and the GPU baselines trail far behind.
#[test]
fn speedup_ordering_holds_on_every_network() {
    let cloud = scene_cloud(8192, 1);
    let cfg = AcceleratorConfig::default();
    for spec in NetworkSpec::evaluation_suite() {
        let meso = run_network(&spec, &cloud, Variant::Mesorasi, knobs(), &cfg);
        let ans = run_network(&spec, &cloud, Variant::Ans, knobs(), &cfg);
        let bce = run_network(&spec, &cloud, Variant::AnsBce, knobs(), &cfg);
        let gpu = run_network(&spec, &cloud, Variant::Gpu, knobs(), &cfg);
        assert!(
            ans.total_cycles() < meso.total_cycles(),
            "{}: ANS {} !< Mesorasi {}",
            spec.name,
            ans.total_cycles(),
            meso.total_cycles()
        );
        assert!(bce.total_cycles() < ans.total_cycles(), "{}: BCE should outrun ANS", spec.name);
        assert!(gpu.total_cycles() > meso.total_cycles(), "{}: GPU must trail", spec.name);
    }
}

/// Sec 7.2: both Crescent variants save energy on every network; the GPU
/// burns at least an order of magnitude more.
#[test]
fn energy_ordering_holds_on_every_network() {
    let cloud = scene_cloud(8192, 2);
    let cfg = AcceleratorConfig::default();
    for spec in NetworkSpec::evaluation_suite() {
        let meso = run_network(&spec, &cloud, Variant::Mesorasi, knobs(), &cfg);
        let bce = run_network(&spec, &cloud, Variant::AnsBce, knobs(), &cfg);
        let gpu = run_network(&spec, &cloud, Variant::Gpu, knobs(), &cfg);
        let tgpu = run_network(&spec, &cloud, Variant::TigrisGpu, knobs(), &cfg);
        assert!(bce.energy.total() < meso.energy.total(), "{}", spec.name);
        assert!(gpu.energy.total() > 10.0 * meso.energy.total(), "{}", spec.name);
        assert!(tgpu.energy.total() > 3.0 * meso.energy.total(), "{}", spec.name);
        assert!(gpu.energy.total() > tgpu.energy.total(), "{}", spec.name);
    }
}

/// Sec 3.4: Crescent's DRAM traffic is fully streaming and the engine
/// never issues a random access.
#[test]
fn crescent_search_is_fully_streaming() {
    let cloud = scene_cloud(16384, 3);
    let queries: Vec<Point3> = (0..512).map(|i| cloud.point(i * 32)).collect();
    let system = Crescent::new();
    let (_, report) = system.search(&cloud, &queries, 0.1, Some(32));
    assert_eq!(report.dram_random_bytes, 0);
    assert!(report.dram_streaming_bytes > 0);
}

/// The facade's approximate setting matches its accelerator config, so
/// accuracy models and the performance simulator see the same `h`.
#[test]
fn facade_setting_is_consistent() {
    let system = Crescent::with_knobs(CrescentKnobs { top_height: 6, elision_height: 8 });
    let s = system.approx_setting();
    assert_eq!(s.top_height, 6);
    assert_eq!(s.elision_height, Some(8));
    assert_eq!(s.tree_banks, system.config.tree_buffer.num_banks);
    assert_eq!(s.num_pes, system.config.num_pes);
}

/// Fig 17: BCE cuts both the observed conflicts and the honored node
/// fetches relative to ANS.
#[test]
fn bce_reduces_conflicts_and_node_accesses() {
    let cloud = scene_cloud(8192, 4);
    let cfg = AcceleratorConfig::default();
    let spec = NetworkSpec::densepoint();
    let ans = run_network(&spec, &cloud, Variant::Ans, knobs(), &cfg);
    let bce = run_network(&spec, &cloud, Variant::AnsBce, knobs(), &cfg);
    assert!(bce.search.stats.nodes_elided > 0);
    assert!(
        bce.search.stats.conflict_stalls < ans.search.stats.conflict_stalls,
        "BCE {} stalls vs ANS {}",
        bce.search.stats.conflict_stalls,
        ans.search.stats.conflict_stalls
    );
    assert!(bce.search.stats.nodes_visited < ans.search.stats.nodes_visited);
}

/// The speedup trends are stable across workload scales (the scaling
/// argument DESIGN.md relies on).
#[test]
fn speedup_trend_is_scale_stable() {
    let cfg = AcceleratorConfig::default();
    let spec = NetworkSpec::pointnet2_classification();
    let mut speedups = Vec::new();
    for (n, seed) in [(4096usize, 10u64), (16384, 11)] {
        let cloud = scene_cloud(n, seed);
        let meso = run_network(&spec, &cloud, Variant::Mesorasi, knobs(), &cfg);
        let bce = run_network(&spec, &cloud, Variant::AnsBce, knobs(), &cfg);
        speedups.push(meso.total_cycles() as f64 / bce.total_cycles() as f64);
    }
    for s in &speedups {
        assert!(*s > 1.0, "speedup {s} at some scale");
    }
    // within a factor of two of each other
    assert!(speedups[0] / speedups[1] < 2.0 && speedups[1] / speedups[0] < 2.0, "{speedups:?}");
}
