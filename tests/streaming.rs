//! Integration tests of the streaming multi-frame workload engine: strict
//! determinism (same seed ⇒ bit-identical neighbor sets, cycle counts, and
//! energy totals), batched-equals-per-query search, and the cross-frame
//! accounting invariants.

use crescent::accel::PE_PIPELINE_DEPTH;
use crescent::kdtree::{BatchState, KdTree, SplitTree};
use crescent::workload::{EgoMotion, FrameStream, FrameStreamConfig};
use crescent::Crescent;

fn test_cfg() -> FrameStreamConfig {
    let mut cfg = FrameStreamConfig::default();
    cfg.scene.total_points = 6_000;
    cfg.scene.seed = 0xCAFE;
    cfg.num_frames = 6;
    cfg.queries_per_frame = 96;
    cfg.radius = 0.6;
    cfg.max_neighbors = Some(16);
    cfg
}

#[test]
fn same_seed_is_bit_identical() {
    let cfg = test_cfg();
    let system = Crescent::new();
    let a = system.run_stream(&cfg);
    let b = system.run_stream(&cfg);

    // per-frame neighbor sets: same indices, same distances, same order
    assert_eq!(a.neighbor_sets, b.neighbor_sets);
    // per-frame cycle counts
    for (x, y) in a.report.frames.iter().zip(&b.report.frames) {
        assert_eq!(x.compute_cycles, y.compute_cycles, "frame {}", x.frame);
        assert_eq!(x.dma_cycles, y.dma_cycles, "frame {}", x.frame);
        assert_eq!(x.slot_cycles, y.slot_cycles, "frame {}", x.frame);
        assert_eq!(x.dram_streaming_bytes, y.dram_streaming_bytes, "frame {}", x.frame);
    }
    assert_eq!(a.report.pipelined_cycles, b.report.pipelined_cycles);
    assert_eq!(a.report.serial_cycles, b.report.serial_cycles);
    // energy totals, bitwise (all charges are deterministic f64 sums)
    for (x, y) in a.report.ledger.frames().iter().zip(b.report.ledger.frames()) {
        assert_eq!(x, y);
    }
    assert_eq!(a.report.ledger.total(), b.report.ledger.total());
}

#[test]
fn different_seed_changes_the_stream() {
    let cfg = test_cfg();
    let mut other = cfg;
    other.scene.seed ^= 1;
    let system = Crescent::new();
    let a = system.run_stream(&cfg);
    let b = system.run_stream(&other);
    assert_ne!(a.neighbor_sets, b.neighbor_sets, "a different world must change the results");
}

#[test]
fn batched_search_matches_per_query_on_stream_frames() {
    let cfg = test_cfg();
    let knobs = Crescent::new().knobs;
    let mut state = BatchState::new();
    for frame in FrameStream::new(&cfg) {
        let tree = KdTree::build(&frame.cloud);
        let ht = knobs.top_height.min(tree.height().saturating_sub(1));
        let split = SplitTree::new(&tree, ht).unwrap();
        let (batch, _) =
            split.search_batch(&frame.queries, cfg.radius, cfg.max_neighbors, &mut state);
        for (qi, &q) in frame.queries.iter().enumerate() {
            let single = split.search_one(q, cfg.radius, cfg.max_neighbors);
            assert_eq!(batch[qi], single, "frame {} query {qi}", frame.index);
        }
    }
    assert_eq!(state.frames(), cfg.num_frames);
}

#[test]
fn facade_results_match_manual_batched_runs() {
    // run_stream is just frame generation + the accel driver: its neighbor
    // sets must equal a by-hand batched run over the same frames
    let cfg = test_cfg();
    let system = Crescent::new();
    let outcome = system.run_stream(&cfg);
    let mut state = BatchState::new();
    for (fi, frame) in FrameStream::new(&cfg).enumerate() {
        let tree = KdTree::build(&frame.cloud);
        let ht = system.knobs.top_height.min(tree.height().saturating_sub(1));
        let split = SplitTree::new(&tree, ht).unwrap();
        let (batch, _) =
            split.search_batch(&frame.queries, cfg.radius, cfg.max_neighbors, &mut state);
        assert_eq!(outcome.neighbor_sets[fi], batch, "frame {fi}");
    }
}

#[test]
fn stream_accounting_invariants() {
    let cfg = test_cfg();
    let outcome = Crescent::new().run_stream(&cfg);
    let rep = &outcome.report;
    assert_eq!(rep.num_frames(), cfg.num_frames);
    assert_eq!(rep.ledger.len(), cfg.num_frames);
    // pipelined latency: sum of slots + one fill; serial pays the fill per frame
    let slots: u64 = rep.frames.iter().map(|f| f.slot_cycles).sum();
    assert_eq!(rep.pipelined_cycles, slots + PE_PIPELINE_DEPTH);
    assert_eq!(
        rep.serial_cycles,
        slots + cfg.num_frames as u64 * PE_PIPELINE_DEPTH,
        "serial = slots + a fill per frame"
    );
    assert!(rep.pipelined_cycles < rep.serial_cycles);
    for f in &rep.frames {
        assert_eq!(f.slot_cycles, f.compute_cycles.max(f.dma_cycles));
        assert!(f.dram_streaming_bytes > 0);
        assert_eq!(f.energy.dram_random, 0.0, "the streaming schedule is fully streaming");
        assert!(f.search.top_fetches <= f.search.top_fetches_unamortized);
        assert!(f.queries == cfg.queries_per_frame);
    }
    // energy ledger total equals the sum of the per-frame entries
    let sum: f64 = rep.ledger.frames().iter().map(|l| l.total()).sum();
    assert!((rep.ledger.total().total() - sum).abs() < 1e-9);
}

#[test]
fn stationary_ego_reuses_every_assignment() {
    let mut cfg = test_cfg();
    cfg.ego = EgoMotion { speed_mps: 0.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 };
    cfg.noise_m = 0.0;
    let outcome = Crescent::new().run_stream(&cfg);
    for f in &outcome.report.frames[1..] {
        assert_eq!(
            f.search.assignment_reuses, f.queries,
            "identical frames must reuse every sub-tree assignment (frame {})",
            f.frame
        );
    }
    assert!((outcome.report.mean_reuse_fraction() - 1.0).abs() < 1e-12);
}

#[test]
fn moving_ego_keeps_most_assignments() {
    let cfg = test_cfg();
    let outcome = Crescent::new().run_stream(&cfg);
    let reuse = outcome.report.mean_reuse_fraction();
    assert!(reuse > 0.3, "an urban-speed drift should keep most assignments, got {reuse}");
    assert!(reuse < 1.0, "motion must break some assignments, got {reuse}");
}
