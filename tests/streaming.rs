//! Integration tests of the streaming multi-frame workload engine: strict
//! determinism (same seed ⇒ bit-identical neighbor sets, cycle counts, and
//! energy totals), batched-equals-per-query search, and the cross-frame
//! accounting invariants.

use crescent::accel::{TreeMaintenance, PE_PIPELINE_DEPTH};
use crescent::kdtree::{BatchSearchConfig, BatchState, KdTree, SplitTree};
use crescent::workload::{EgoMotion, FrameStream, FrameStreamConfig, StreamScenario};
use crescent::Crescent;

fn test_cfg() -> FrameStreamConfig {
    let mut cfg = FrameStreamConfig::default();
    cfg.scene.total_points = 6_000;
    cfg.scene.seed = 0xCAFE;
    cfg.num_frames = 6;
    cfg.queries_per_frame = 96;
    cfg.radius = 0.6;
    cfg.max_neighbors = Some(16);
    cfg
}

#[test]
fn same_seed_is_bit_identical() {
    let cfg = test_cfg();
    let system = Crescent::new();
    let a = system.run_stream(&cfg);
    let b = system.run_stream(&cfg);

    // per-frame neighbor sets: same indices, same distances, same order
    assert_eq!(a.neighbor_sets, b.neighbor_sets);
    // per-frame cycle counts
    for (x, y) in a.report.frames.iter().zip(&b.report.frames) {
        assert_eq!(x.compute_cycles, y.compute_cycles, "frame {}", x.frame);
        assert_eq!(x.dma_cycles, y.dma_cycles, "frame {}", x.frame);
        assert_eq!(x.slot_cycles, y.slot_cycles, "frame {}", x.frame);
        assert_eq!(x.dram_streaming_bytes, y.dram_streaming_bytes, "frame {}", x.frame);
    }
    assert_eq!(a.report.pipelined_cycles, b.report.pipelined_cycles);
    assert_eq!(a.report.serial_cycles, b.report.serial_cycles);
    // energy totals, bitwise (all charges are deterministic f64 sums)
    for (x, y) in a.report.ledger.frames().iter().zip(b.report.ledger.frames()) {
        assert_eq!(x, y);
    }
    assert_eq!(a.report.ledger.total(), b.report.ledger.total());
}

#[test]
fn different_seed_changes_the_stream() {
    let cfg = test_cfg();
    let mut other = cfg;
    other.scene.seed ^= 1;
    let system = Crescent::new();
    let a = system.run_stream(&cfg);
    let b = system.run_stream(&other);
    assert_ne!(a.neighbor_sets, b.neighbor_sets, "a different world must change the results");
}

#[test]
fn batched_search_matches_per_query_on_stream_frames() {
    // the h_e = 0 exactness witness: the banked wavefront with elision
    // off (conflicts stall, never drop) must stay bit-identical to
    // per-query search_one on every stream frame
    let cfg = test_cfg();
    let system = Crescent::new();
    let knobs = system.knobs;
    let batch_cfg = BatchSearchConfig::banked(
        cfg.radius,
        cfg.max_neighbors,
        system.config.num_pes,
        system.config.tree_buffer.num_banks,
        0,
    );
    let mut state = BatchState::new();
    for frame in FrameStream::new(&cfg) {
        let tree = KdTree::build(&frame.cloud);
        let ht = knobs.top_height.min(tree.height().saturating_sub(1));
        let split = SplitTree::new(&tree, ht).unwrap();
        let (batch, stats) = split.search_batch(&frame.queries, &batch_cfg, &mut state);
        assert_eq!(stats.conflicts_elided, 0, "h_e = 0 must never drop a fetch");
        for (qi, &q) in frame.queries.iter().enumerate() {
            let single = split.search_one(q, cfg.radius, cfg.max_neighbors);
            assert_eq!(batch[qi], single, "frame {} query {qi}", frame.index);
        }
    }
    assert_eq!(state.frames(), cfg.num_frames);
}

#[test]
fn facade_results_match_manual_batched_runs() {
    // run_stream is just frame generation + the accel driver: its neighbor
    // sets must equal a by-hand banked batched run over the same frames
    // at the same streaming h_e
    let cfg = test_cfg();
    let system = Crescent::new();
    let outcome = system.run_stream(&cfg);
    let batch_cfg = BatchSearchConfig::banked(
        cfg.radius,
        cfg.max_neighbors,
        system.config.num_pes,
        system.config.tree_buffer.num_banks,
        cfg.elision_depth,
    );
    let mut state = BatchState::new();
    for (fi, frame) in FrameStream::new(&cfg).enumerate() {
        let tree = KdTree::build(&frame.cloud);
        let ht = system.knobs.top_height.min(tree.height().saturating_sub(1));
        let split = SplitTree::new(&tree, ht).unwrap();
        let (batch, _) = split.search_batch(&frame.queries, &batch_cfg, &mut state);
        assert_eq!(outcome.neighbor_sets[fi], batch, "frame {fi}");
    }
}

#[test]
fn stream_accounting_invariants() {
    let cfg = test_cfg();
    let outcome = Crescent::new().run_stream(&cfg);
    let rep = &outcome.report;
    assert_eq!(rep.num_frames(), cfg.num_frames);
    assert_eq!(rep.ledger.len(), cfg.num_frames);
    // serial runs every frame standalone: build slot + search slot + one
    // fill per frame; the pipelined schedule charges the fill once per
    // stream and hides builds behind search — the exact identity:
    let search_slots: u64 = rep.frames.iter().map(|f| f.slot_cycles).sum();
    let build_slots: u64 = rep.frames.iter().map(|f| f.build_slot_cycles).sum();
    assert_eq!(
        rep.serial_cycles,
        search_slots + build_slots + cfg.num_frames as u64 * PE_PIPELINE_DEPTH,
        "serial = per-frame build + search + a fill per frame"
    );
    assert_eq!(
        rep.serial_cycles - rep.pipelined_cycles,
        (cfg.num_frames as u64 - 1) * PE_PIPELINE_DEPTH + rep.overlapped_build_cycles,
        "overlap hides (frames - 1) fills plus the overlapped build work, nothing else"
    );
    assert!(rep.overlapped_build_cycles <= build_slots);
    // the pipelined latency can never dip below the serialized search work
    // plus its single fill
    assert!(rep.pipelined_cycles >= search_slots + PE_PIPELINE_DEPTH);
    assert!(rep.pipelined_cycles < rep.serial_cycles);
    for f in &rep.frames {
        assert_eq!(f.slot_cycles, (f.compute_cycles + f.agg_cycles).max(f.dma_cycles));
        assert_eq!(f.build_slot_cycles, f.build_cycles.max(f.build_dma_cycles));
        assert!(f.build_cycles > 0, "tree maintenance is never free (frame {})", f.frame);
        assert!(f.build_dram_bytes > 0);
        assert!(f.energy.tree_build > 0.0);
        assert!(f.dram_streaming_bytes > 0);
        assert_eq!(f.energy.dram_random, 0.0, "the streaming schedule is fully streaming");
        assert!(f.search.top_fetches <= f.search.top_fetches_unamortized);
        assert!(f.queries == cfg.queries_per_frame);
    }
    // energy ledger total equals the sum of the per-frame entries, and the
    // build category is populated
    let sum: f64 = rep.ledger.frames().iter().map(|l| l.total()).sum();
    assert!((rep.ledger.total().total() - sum).abs() < 1e-9);
    assert!(rep.ledger.build_energy() > 0.0);
}

#[test]
fn zero_query_frames_cost_zero_search_compute() {
    // regression for the fill bug: a frame with no queries used to charge
    // leakage against a PE_PIPELINE_DEPTH-cycle slot
    let mut cfg = test_cfg();
    cfg.queries_per_frame = 0;
    let outcome = Crescent::new().run_stream(&cfg);
    for f in &outcome.report.frames {
        assert_eq!(f.compute_cycles, 0, "frame {}", f.frame);
        assert_eq!(f.slot_cycles, 0, "frame {}", f.frame);
        assert!(f.build_cycles > 0, "the tree still gets built (frame {})", f.frame);
    }
    // the stream still pays exactly one fill — for the build pipeline,
    // not per empty frame
    let rep = &outcome.report;
    let build_slots: u64 = rep.frames.iter().map(|f| f.build_slot_cycles).sum();
    assert_eq!(rep.pipelined_cycles, build_slots + PE_PIPELINE_DEPTH);
}

#[test]
fn refit_meets_the_acceptance_bar_on_a_coherent_16_frame_stream() {
    // the ISSUE 3 acceptance criterion: default knobs, 16-frame coherent
    // drifting stream, Refit >= 25% fewer pipelined cycles than
    // RebuildEveryFrame with bit-identical neighbor sets
    let mut cfg = FrameStreamConfig::default();
    cfg.scene.total_points = 8_000;
    cfg.scene.seed = 0xC0FFEE;
    cfg.num_frames = 16;
    cfg.queries_per_frame = 128;
    cfg.scenario = StreamScenario::Registered;
    cfg.noise_m = 0.0; // registered = motion-compensated output
    cfg.ego = EgoMotion { speed_mps: 8.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 };
    let system = Crescent::new();
    cfg.maintenance = TreeMaintenance::RebuildEveryFrame;
    let rebuild = system.run_stream(&cfg);
    cfg.maintenance = TreeMaintenance::refit();
    let refit = system.run_stream(&cfg);
    assert_eq!(rebuild.neighbor_sets, refit.neighbor_sets, "policies must agree bit-for-bit");
    let (r, p) = (rebuild.report.pipelined_cycles, refit.report.pipelined_cycles);
    assert!(p * 4 <= r * 3, "refit must save >= 25%: {p} vs {r}");
    for f in &refit.report.frames {
        assert!(f.build_cycles > 0 && f.build_dram_bytes > 0 && f.energy.tree_build > 0.0);
    }
    for f in &refit.report.frames[1..] {
        assert!(!f.full_rebuild, "coherent frames must refit in place (frame {})", f.frame);
    }
}

#[test]
fn every_canonical_scenario_is_deterministic_end_to_end() {
    // scenario breadth must not cost determinism: every canonical
    // generator — including the occlusion/weather hashes and the
    // multi-sensor composite — is a pure function of the seed
    let system = Crescent::new();
    for &scenario in StreamScenario::canonical_matrix().iter() {
        let mut cfg = test_cfg();
        cfg.scene.total_points = 3_000;
        cfg.num_frames = 4;
        cfg.queries_per_frame = 64;
        cfg.scenario = scenario;
        let a = system.run_stream(&cfg);
        let b = system.run_stream(&cfg);
        assert_eq!(a.neighbor_sets, b.neighbor_sets, "{}", scenario.label());
        assert_eq!(a.report.pipelined_cycles, b.report.pipelined_cycles, "{}", scenario.label());
        assert_eq!(a.report.ledger.total(), b.report.ledger.total(), "{}", scenario.label());
        assert_eq!(
            a.report.total_conflict_reuses(),
            b.report.total_conflict_reuses(),
            "{}",
            scenario.label()
        );
    }
}

#[test]
fn refit_is_honest_on_every_canonical_scenario() {
    // the refit-honesty invariant, stream-level: under the refit policy
    // every frame either refits the standing tree cleanly or falls back
    // to a full rebuild — the neighbor sets never diverge from the
    // rebuild-every-frame policy, on any canonical scenario (the five
    // irregular newcomers included)
    let system = Crescent::new();
    for &scenario in StreamScenario::canonical_matrix().iter() {
        let mut cfg = test_cfg();
        cfg.scene.total_points = 3_000;
        cfg.num_frames = 4;
        cfg.queries_per_frame = 64;
        cfg.scenario = scenario;
        cfg.maintenance = TreeMaintenance::RebuildEveryFrame;
        let rebuild = system.run_stream(&cfg);
        cfg.maintenance = TreeMaintenance::refit();
        let refit = system.run_stream(&cfg);
        assert_eq!(
            rebuild.neighbor_sets,
            refit.neighbor_sets,
            "{}: refit diverged from rebuild",
            scenario.label()
        );
        // fallbacks are an allowed (honest) outcome, silence is not:
        // every frame past the first either refits or rebuilds in full
        for f in &refit.report.frames {
            assert!(
                f.build_cycles > 0,
                "{}: tree maintenance is never free (frame {})",
                scenario.label(),
                f.frame
            );
        }
    }
}

#[test]
fn stationary_ego_reuses_every_assignment() {
    let mut cfg = test_cfg();
    cfg.ego = EgoMotion { speed_mps: 0.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 };
    cfg.noise_m = 0.0;
    let outcome = Crescent::new().run_stream(&cfg);
    for f in &outcome.report.frames[1..] {
        assert_eq!(
            f.search.assignment_reuses, f.queries,
            "identical frames must reuse every sub-tree assignment (frame {})",
            f.frame
        );
    }
    assert!((outcome.report.mean_reuse_fraction() - 1.0).abs() < 1e-12);
}

#[test]
fn moving_ego_keeps_most_assignments() {
    let cfg = test_cfg();
    let outcome = Crescent::new().run_stream(&cfg);
    let reuse = outcome.report.mean_reuse_fraction();
    assert!(reuse > 0.3, "an urban-speed drift should keep most assignments, got {reuse}");
    assert!(reuse < 1.0, "motion must break some assignments, got {reuse}");
}
