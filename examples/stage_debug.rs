//! Internal debugging aid: prints per-stage cycle breakdowns per variant.
use crescent::accel::{run_network, AcceleratorConfig, CrescentKnobs, NetworkSpec, Variant};
use crescent::pointcloud::datasets::{generate_scene, LidarSceneConfig};

fn main() {
    let mut scene = generate_scene(&LidarSceneConfig {
        total_points: 8192,
        num_cars: 8,
        num_poles: 16,
        num_walls: 4,
        half_extent: 30.0,
        seed: 0xF16,
    });
    scene.cloud.normalize_unit_sphere();
    let base = AcceleratorConfig::default();
    let knobs = CrescentKnobs { top_height: 4, elision_height: 9 };
    for spec in NetworkSpec::evaluation_suite() {
        println!("== {}", spec.name);
        for v in Variant::ALL {
            let r = run_network(&spec, &scene.cloud, v, knobs, &base);
            println!(
                "  {:<11} total {:>9}  search {:>9} (cmp {:>9} dma {:>9})  agg {:>8}  mlp {:>8}  E {:>12.0}  visits {:>9} stalls {:>8} elided {:>7}",
                v.name(), r.total_cycles(), r.cycles.search, r.search.compute_cycles, r.search.dma_cycles,
                r.cycles.aggregation, r.cycles.mlp, r.energy.total(),
                r.search.stats.nodes_visited, r.search.stats.conflict_stalls, r.search.stats.nodes_elided,
            );
        }
    }
}
