//! Rebuild-vs-refit tree maintenance across coherent and incoherent
//! streams: what honest build accounting reveals, and what incremental
//! maintenance buys back.
//!
//! ```text
//! cargo run --release --example tree_maintenance
//! ```
//!
//! Two experiments on the same synthetic world:
//!
//! 1. a **coherent registered stream** (motion-compensated frames, pure
//!    forward ego translation): `Refit` updates the tree in place every
//!    frame and must report >= 25% fewer pipelined cycles than
//!    `RebuildEveryFrame` while returning bit-identical neighbor sets;
//! 2. an **incoherence burst** (sudden 0.9 rad ego rotation at frame 5):
//!    the refit validation detects the burst frame, falls back to a full
//!    rebuild exactly there, and the results still match the rebuild
//!    policy bit for bit — incoherence costs cycles, never accuracy.

use crescent::accel::TreeMaintenance;
use crescent::workload::{EgoMotion, FrameStreamConfig, StreamScenario};
use crescent::{format_table, Crescent};

fn coherent_cfg() -> FrameStreamConfig {
    let mut cfg = FrameStreamConfig::default();
    cfg.scene.total_points = 16_000;
    cfg.num_frames = 16;
    cfg.queries_per_frame = 192;
    cfg.scenario = StreamScenario::Registered;
    cfg.noise_m = 0.0; // registered streams are motion-compensated
    cfg.ego = EgoMotion { speed_mps: 8.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 };
    cfg
}

fn main() {
    let system = Crescent::new();

    // ---- experiment 1: coherent stream, both policies ----
    let mut cfg = coherent_cfg();
    cfg.maintenance = TreeMaintenance::RebuildEveryFrame;
    let rebuild = system.run_stream(&cfg);
    cfg.maintenance = TreeMaintenance::refit();
    let refit = system.run_stream(&cfg);

    println!(
        "Coherent registered stream: {} frames, {} queries/frame\n",
        cfg.num_frames, cfg.queries_per_frame
    );
    let rows: Vec<Vec<String>> = rebuild
        .report
        .frames
        .iter()
        .zip(&refit.report.frames)
        .map(|(rb, rf)| {
            vec![
                format!("{}", rb.frame),
                format!("{}", rb.points),
                format!("{}", rb.build_slot_cycles),
                format!("{}", rf.build_slot_cycles),
                format!("{}", rf.subtrees_rebuilt),
                if rf.full_rebuild { "yes".into() } else { "-".into() },
                format!("{}", rb.slot_cycles),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["frame", "points", "rebuild-cyc", "refit-cyc", "repaired", "fallback", "search-cyc"],
            &rows
        )
    );

    let (rc, fc) = (rebuild.report.pipelined_cycles, refit.report.pipelined_cycles);
    let saving = 100.0 * (rc - fc) as f64 / rc as f64;
    println!("pipelined cycles   {rc} rebuild vs {fc} refit  ({saving:.1}% saved)");
    println!(
        "build energy       {:.0} rebuild vs {:.0} refit",
        rebuild.report.ledger.build_energy(),
        refit.report.ledger.build_energy()
    );
    println!(
        "overlap hid        {} of {} rebuild build-cycles behind search",
        rebuild.report.overlapped_build_cycles,
        rebuild.report.total_build_cycles()
    );

    let identical = rebuild.neighbor_sets == refit.neighbor_sets;
    println!("neighbor sets      {}", if identical { "bit-identical" } else { "MISMATCH" });
    assert!(identical, "maintenance policy must never change results");
    assert!(fc * 4 <= rc * 3, "refit must save at least 25% ({fc} vs {rc})");

    // ---- experiment 2: incoherence burst ----
    let mut cfg = coherent_cfg();
    cfg.num_frames = 10;
    cfg.scenario = StreamScenario::RotationBurst { at_frame: 5, yaw_rad: 0.9 };
    cfg.maintenance = TreeMaintenance::refit();
    let burst = system.run_stream(&cfg);
    cfg.maintenance = TreeMaintenance::RebuildEveryFrame;
    let burst_rebuild = system.run_stream(&cfg);

    println!("\nIncoherence burst (0.9 rad ego rotation at frame 5):");
    for f in &burst.report.frames {
        println!(
            "  frame {:>2}  build {:>8} cyc  {}",
            f.frame,
            f.build_slot_cycles,
            if f.full_rebuild { "FULL REBUILD" } else { "refit in place" }
        );
    }
    assert!(burst.report.frames[5].full_rebuild, "the burst frame must fall back");
    assert!(
        burst.report.frames[1..].iter().filter(|f| f.full_rebuild).count() <= 2,
        "only the burst may fall back"
    );
    let burst_identical = burst.neighbor_sets == burst_rebuild.neighbor_sets;
    println!(
        "burst stream results vs rebuild policy: {}",
        if burst_identical { "bit-identical" } else { "MISMATCH" }
    );
    assert!(burst_identical, "incoherence must cost cycles, not accuracy");

    // determinism: the whole comparison is a pure function of the config
    let rerun = system.run_stream(&cfg);
    assert_eq!(rerun.neighbor_sets, burst_rebuild.neighbor_sets);
    println!("\ndeterministic rerun: bit-identical");
}
