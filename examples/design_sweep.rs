//! Domain scenario: the parallel design-space explorer end to end.
//!
//! Runs the CI-scale quick sweep — every canonical streaming scenario ×
//! both tree-maintenance policies × the PE / `h_e` grid — on a worker
//! pool, prints the per-scenario Pareto fronts, and asserts the
//! properties the CI `sweep-gate` relies on: the report is byte-stable
//! across runs and worker counts, sharding the grid and merging the
//! shard reports gives the single-process bytes back, and the
//! maintenance policy never changes a neighbor set (only its cost).
//!
//! ```text
//! cargo run --release --example design_sweep
//! ```

use crescent_bench::sweep::render_summary;
use crescent_explorer::{merge_shards, run_sweep, run_sweep_shard, ShardFile, SweepSpec, SCHEMA};

fn main() {
    let spec = SweepSpec::quick();
    println!("# quick design-space sweep: {} points", spec.num_points());
    let report = run_sweep(&spec, 4).expect("quick spec is valid");
    print!("{}", render_summary(&report));

    // --- the properties the CI gate is built on ---
    assert_eq!(report.rows.len(), spec.num_points());
    let json = report.to_json();
    assert!(json.contains(SCHEMA), "report must carry its schema version");

    // bit-reproducible across reruns and worker counts
    let rerun = run_sweep(&spec, 1).expect("quick spec is valid");
    assert_eq!(json, rerun.to_json(), "report must be byte-identical across runs and workers");

    // sharding is bit-invisible: split the grid i/N for several N,
    // merge the shard reports, and demand the single-process bytes back
    for count in [1usize, 2, 3, 7] {
        let shards: Vec<ShardFile> = (1..=count)
            .map(|index| {
                let (report, _) =
                    run_sweep_shard(&spec, index, count, 4).expect("quick spec is valid");
                ShardFile { name: format!("shard-{index}.json"), text: report.to_json() }
            })
            .collect();
        let merged = merge_shards(&shards).expect("complete partition merges");
        assert_eq!(merged, json, "{count}-way shard+merge must be byte-identical");
    }
    println!("shard+merge is byte-identical for N in {{1, 2, 3, 7}}");

    // the maintenance policy is results-invariant: rows that differ only
    // in the policy produced bit-identical neighbor sets
    for a in &report.rows {
        for b in &report.rows {
            if a.index < b.index
                && a.scenario == b.scenario
                && a.num_pes == b.num_pes
                && a.tree_banks == b.tree_banks
                && a.elision_depth == b.elision_depth
                && a.maintenance != b.maintenance
            {
                assert_eq!(
                    a.digest, b.digest,
                    "policy changed results: rows {} {}",
                    a.index, b.index
                );
                assert_eq!(a.recall, b.recall);
            }
        }
    }

    // the unified model: h_e moves the STREAMING pass on its own — the
    // sweep no longer needs the engine pass for elision sensitivity
    for a in &report.rows {
        for b in &report.rows {
            if a.index < b.index
                && a.scenario == b.scenario
                && a.maintenance == b.maintenance
                && a.num_pes == b.num_pes
                && a.tree_banks == b.tree_banks
                && a.elision_depth == 0
                && b.elision_depth > 0
            {
                assert_eq!(a.elided_conflicts, 0, "row {}: h_e = 0 must not elide", a.index);
                assert!(b.elided_conflicts > 0, "row {}: h_e > 0 must elide", b.index);
                assert!(
                    b.pipelined_cycles <= a.pipelined_cycles,
                    "rows {} {}: elision must never cost stream cycles",
                    a.index,
                    b.index
                );
                assert!(b.recall <= a.recall, "elision can only lose stream recall");
            }
        }
    }

    // the headline the sweep exists to show: on the registered
    // (refit-friendly) scenario the incremental policy is strictly
    // cheaper in stream cycles at equal results
    let stream_cycles = |scenario: &str, maintenance: &str| -> u64 {
        report
            .rows
            .iter()
            .filter(|r| r.scenario == scenario && r.maintenance == maintenance)
            .map(|r| r.pipelined_cycles)
            .min()
            .expect("grid covers this cell")
    };
    let rebuild = stream_cycles("registered", "rebuild");
    let refit = stream_cycles("registered", "refit");
    assert!(refit < rebuild, "refit {refit} must beat rebuild {rebuild} on registered streams");

    // recall is a real measurement: approximate, but not garbage. The
    // stall-only h_e = 0 rows lose neighbors only across sub-tree
    // boundaries (the h_t approximation), so they stay high; elided
    // rows trade real accuracy for rounds and only need a sanity floor
    for r in &report.rows {
        let floor = if r.elision_depth == 0 { 0.5 } else { 0.2 };
        assert!(
            r.recall > floor && r.recall <= 1.0,
            "row {} (h_e {}): recall {}",
            r.index,
            r.elision_depth,
            r.recall
        );
        assert!(
            r.engine_recall > floor && r.engine_recall <= 1.0,
            "row {} (h_e {}): engine recall {}",
            r.index,
            r.elision_depth,
            r.engine_recall
        );
    }
    // and elision actually fires somewhere in the grid — in the stream
    // AND in the engine cross-check — so the accuracy axis of the
    // Pareto fronts is live
    assert!(report.rows.iter().any(|r| r.elided_conflicts > 0), "no stream row elided anything");
    assert!(report.rows.iter().any(|r| r.nodes_elided > 0), "no engine row elided anything");

    println!(
        "\nall sweep invariants hold ({} rows, refit {refit} vs rebuild {rebuild} stream cycles)",
        report.rows.len()
    );
}
