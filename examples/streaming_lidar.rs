//! Streaming multi-frame LiDAR simulation: an ego vehicle drives through a
//! synthetic urban scene while the Crescent engine answers a batch of
//! neighbor queries on every 10 Hz frame, back to back.
//!
//! ```text
//! cargo run --release --example streaming_lidar
//! ```
//!
//! Demonstrates the pieces the streaming workload engine adds on top of
//! single-cloud search: temporally-coherent frame generation
//! (`FrameStream`), the batched two-stage search whose wavefront fetches
//! every top-tree node once per batch AND drains each sub-tree queue
//! through the banked-arbitration model (conflicts stall or are elided
//! per the streaming `h_e`), and inter-frame pipelining with per-frame
//! cycle/energy accounting. The whole run is a pure function of the
//! config — this example runs the stream twice and checks the reruns are
//! bit-identical — and it doubles as an executable doc of the unified
//! elision model: the default `h_e` provably elides conflicts on every
//! frame's accounting, while an `h_e = 0` rerun provably never does
//! (while still paying conflict stalls).

use crescent::workload::FrameStreamConfig;
use crescent::{format_table, Crescent};

fn main() {
    let mut cfg = FrameStreamConfig::default();
    cfg.scene.total_points = 24_000;
    cfg.num_frames = 16;
    cfg.queries_per_frame = 256;

    let system = Crescent::new();
    println!(
        "Streaming {} frames of ~{} points, {} queries/frame (h_t = {}, streaming h_e = {})\n",
        cfg.num_frames,
        cfg.scene.total_points,
        cfg.queries_per_frame,
        system.knobs.top_height,
        cfg.elision_depth
    );

    let outcome = system.run_stream(&cfg);

    let rows: Vec<Vec<String>> = outcome
        .frames
        .iter()
        .zip(&outcome.report.frames)
        .map(|(frame, rep)| {
            vec![
                format!("{}", frame.index),
                format!("{}", frame.cloud.len()),
                format!("{}", rep.neighbors),
                format!("{}", rep.build_slot_cycles),
                format!("{}", rep.slot_cycles),
                format!("{}", rep.conflict_stall_cycles),
                format!("{}", rep.elided_conflicts),
                format!("{:.1}x", rep.search.amortization_factor()),
                format!("{:.0}%", rep.search.reuse_fraction() * 100.0),
                format!("{:.0}", rep.energy.total()),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "frame",
                "points",
                "neighbors",
                "build",
                "search",
                "stalls",
                "elided",
                "top-amort",
                "reuse",
                "energy"
            ],
            &rows
        )
    );

    let rep = &outcome.report;
    println!("totals over {} frames:", rep.num_frames());
    println!("  queries            {}", rep.total_queries());
    println!("  neighbors found    {}", outcome.total_neighbors());
    println!("  DRAM streamed      {} KiB (0 random bytes)", rep.total_dram_bytes() / 1024);
    println!(
        "  cycles             {} pipelined vs {} standalone ({:.3}x from overlap)",
        rep.pipelined_cycles,
        rep.serial_cycles,
        rep.pipelining_speedup()
    );
    println!(
        "  tree maintenance   {} build cycles total, {} hidden behind search",
        rep.total_build_cycles(),
        rep.overlapped_build_cycles
    );
    println!(
        "  energy             {:.0} total, {:.0} mean/frame (peak at frame {})",
        rep.ledger.total().total(),
        rep.ledger.mean_frame_energy(),
        rep.ledger.peak_frame().unwrap_or(0)
    );
    println!(
        "  cross-frame reuse  {:.0}% of queries kept their sub-tree frame-to-frame",
        rep.mean_reuse_fraction() * 100.0
    );
    println!(
        "  bank arbitration   {} stage-2 rounds, {} conflicts ({} stall rounds, {} elided)",
        rep.total_arb_rounds(),
        rep.total_bank_conflicts(),
        rep.total_conflict_stall_cycles(),
        rep.total_elided_conflicts()
    );
    println!(
        "  aggregation        {} gather rounds, {} conflicts replicated away",
        rep.total_agg_cycles(),
        rep.total_agg_elided()
    );

    // --- the unified elision model, asserted per frame ---
    // default h_e: every frame of this dense stream elides conflicts
    assert!(cfg.elision_depth > 0, "the default operating point elides");
    for f in &rep.frames {
        assert!(
            f.elided_conflicts > 0,
            "frame {}: default h_e must elide conflicts on a dense stream",
            f.frame
        );
    }
    // h_e = 0: conflicts still happen, but every one of them stalls —
    // zero elisions, and the neighbor sets grow back to exact two-stage
    let mut exact_cfg = cfg;
    exact_cfg.elision_depth = 0;
    let exact = system.run_stream(&exact_cfg);
    for f in &exact.report.frames {
        assert_eq!(f.elided_conflicts, 0, "frame {}: h_e = 0 must never elide", f.frame);
    }
    assert!(exact.report.total_bank_conflicts() > 0, "conflicts don't vanish, they stall");
    assert!(rep.pipelined_cycles <= exact.report.pipelined_cycles, "elision must not cost cycles");
    assert!(
        outcome.total_neighbors() <= exact.total_neighbors(),
        "elision may only drop neighbors"
    );
    println!(
        "\nh_e = 0 rerun: 0 elisions, {} conflicts all stalled, {} vs {} pipelined cycles",
        exact.report.total_bank_conflicts(),
        exact.report.pipelined_cycles,
        rep.pipelined_cycles
    );

    // the stream is a pure function of the config: rerun and compare
    let rerun = system.run_stream(&cfg);
    let identical = outcome.neighbor_sets == rerun.neighbor_sets
        && rep.pipelined_cycles == rerun.report.pipelined_cycles
        && rep.ledger.total().total() == rerun.report.ledger.total().total();
    println!("\ndeterministic rerun: {}", if identical { "bit-identical" } else { "MISMATCH" });
    assert!(identical, "streaming run must be deterministic");
}
