//! Streaming multi-frame LiDAR simulation: an ego vehicle drives through a
//! synthetic urban scene while the Crescent engine answers a batch of
//! neighbor queries on every 10 Hz frame, back to back.
//!
//! ```text
//! cargo run --release --example streaming_lidar
//! ```
//!
//! Demonstrates the three pieces the streaming workload engine adds on top
//! of single-cloud search: temporally-coherent frame generation
//! (`FrameStream`), the batched two-stage search whose wavefront fetches
//! every top-tree node once per batch, and inter-frame pipelining with
//! per-frame cycle/energy accounting. The whole run is a pure function of
//! the config — this example runs the stream twice and checks the reruns
//! are bit-identical.

use crescent::workload::FrameStreamConfig;
use crescent::{format_table, Crescent};

fn main() {
    let mut cfg = FrameStreamConfig::default();
    cfg.scene.total_points = 24_000;
    cfg.num_frames = 16;
    cfg.queries_per_frame = 256;

    let system = Crescent::new();
    println!(
        "Streaming {} frames of ~{} points, {} queries/frame (h_t = {}, h_e = {})\n",
        cfg.num_frames,
        cfg.scene.total_points,
        cfg.queries_per_frame,
        system.knobs.top_height,
        system.knobs.elision_height
    );

    let outcome = system.run_stream(&cfg);

    let rows: Vec<Vec<String>> = outcome
        .frames
        .iter()
        .zip(&outcome.report.frames)
        .map(|(frame, rep)| {
            vec![
                format!("{}", frame.index),
                format!("{}", frame.cloud.len()),
                format!("{}", rep.neighbors),
                format!("{}", rep.build_slot_cycles),
                format!("{}", rep.slot_cycles),
                format!("{:.1}x", rep.search.amortization_factor()),
                format!("{:.0}%", rep.search.reuse_fraction() * 100.0),
                format!("{:.0}", rep.energy.total()),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["frame", "points", "neighbors", "build", "search", "top-amort", "reuse", "energy"],
            &rows
        )
    );

    let rep = &outcome.report;
    println!("totals over {} frames:", rep.num_frames());
    println!("  queries            {}", rep.total_queries());
    println!("  neighbors found    {}", outcome.total_neighbors());
    println!("  DRAM streamed      {} KiB (0 random bytes)", rep.total_dram_bytes() / 1024);
    println!(
        "  cycles             {} pipelined vs {} standalone ({:.3}x from overlap)",
        rep.pipelined_cycles,
        rep.serial_cycles,
        rep.pipelining_speedup()
    );
    println!(
        "  tree maintenance   {} build cycles total, {} hidden behind search",
        rep.total_build_cycles(),
        rep.overlapped_build_cycles
    );
    println!(
        "  energy             {:.0} total, {:.0} mean/frame (peak at frame {})",
        rep.ledger.total().total(),
        rep.ledger.mean_frame_energy(),
        rep.ledger.peak_frame().unwrap_or(0)
    );
    println!(
        "  cross-frame reuse  {:.0}% of queries kept their sub-tree frame-to-frame",
        rep.mean_reuse_fraction() * 100.0
    );

    // the stream is a pure function of the config: rerun and compare
    let rerun = system.run_stream(&cfg);
    let identical = outcome.neighbor_sets == rerun.neighbor_sets
        && rep.pipelined_cycles == rerun.report.pipelined_cycles
        && rep.ledger.total().total() == rerun.report.ledger.total().total();
    println!("\ndeterministic rerun: {}", if identical { "bit-identical" } else { "MISMATCH" });
    assert!(identical, "streaming run must be deterministic");
}
