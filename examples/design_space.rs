//! Domain scenario: design-space exploration over the approximation knobs.
//!
//! Sweeps `<h_t, h_e>` and the hardware configuration (PE count × bank
//! count) on the simulated accelerator, printing the Fig 22 / Fig 23-style
//! performance-energy trade-off surfaces an architect would use to pick an
//! operating point.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use crescent::accel::{run_network, AcceleratorConfig, CrescentKnobs, NetworkSpec, Variant};
use crescent::format_table;
use crescent::memsim::SramConfig;
use crescent::pointcloud::datasets::{generate_scene, LidarSceneConfig};

fn main() {
    let mut scene = generate_scene(&LidarSceneConfig {
        total_points: 8192,
        num_cars: 8,
        num_poles: 16,
        num_walls: 4,
        half_extent: 30.0,
        seed: 23,
    });
    scene.cloud.normalize_unit_sphere();
    let cloud = scene.cloud;
    let spec = NetworkSpec::pointnet2_classification();
    let base = AcceleratorConfig::default();

    // --- knob sweep: <h_t, h_e> ---
    let meso = run_network(&spec, &cloud, Variant::Mesorasi, CrescentKnobs::default(), &base);
    let mut rows = Vec::new();
    for (ht, he) in [(1usize, 11usize), (2, 10), (4, 9), (6, 8), (8, 7)] {
        let knobs = CrescentKnobs { top_height: ht, elision_height: he };
        let r = run_network(&spec, &cloud, Variant::AnsBce, knobs, &base);
        rows.push(vec![
            format!("<{ht},{he}>"),
            format!("{:.2}", meso.total_cycles() as f64 / r.total_cycles() as f64),
            format!("{:.3}", r.energy.total() / meso.energy.total()),
            format!("{}", r.search.stats.nodes_visited),
            format!("{}", r.search.stats.nodes_elided),
        ]);
    }
    println!("knob sweep on {} (vs Mesorasi):", spec.name);
    print!("{}", format_table(&["<h_t,h_e>", "speedup", "norm_energy", "visits", "elided"], &rows));

    // --- hardware sweep: PEs x banks ---
    let knobs = CrescentKnobs { top_height: 4, elision_height: 9 };
    let mut rows = Vec::new();
    for banks in [2usize, 4, 8, 16] {
        let mut cells = vec![format!("{banks} banks")];
        for pes in [2usize, 4, 8, 16] {
            let mut cfg = base;
            cfg.num_pes = pes;
            cfg.tree_buffer = SramConfig { num_banks: banks, ..cfg.tree_buffer };
            let m = run_network(&spec, &cloud, Variant::Mesorasi, knobs, &cfg);
            let c = run_network(&spec, &cloud, Variant::AnsBce, knobs, &cfg);
            cells.push(format!("{:.2}", m.total_cycles() as f64 / c.total_cycles() as f64));
        }
        rows.push(cells);
    }
    println!("\nspeedup across hardware configurations:");
    print!("{}", format_table(&["", "2 PEs", "4 PEs", "8 PEs", "16 PEs"], &rows));
    println!("\n(speedups shrink on beefier hardware — the Fig 22 trend)");
}
