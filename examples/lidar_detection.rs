//! Domain scenario: autonomous-driving LiDAR perception.
//!
//! Generates a KITTI-like street scene, characterizes the memory
//! irregularity of exact neighbor search on it (the paper's motivation),
//! then runs the F-PointNet pipeline on all five systems of Fig 14.
//!
//! ```text
//! cargo run --release --example lidar_detection
//! ```

use crescent::accel::{run_network, AcceleratorConfig, CrescentKnobs, NetworkSpec, Variant};
use crescent::format_table;
use crescent::kdtree::{radius_search_traced, KdTree, NODE_BYTES};
use crescent::memsim::DramTraceAnalyzer;
use crescent::pointcloud::datasets::{generate_scene, LidarSceneConfig};

fn main() {
    let mut scene = generate_scene(&LidarSceneConfig {
        total_points: 100_000,
        num_cars: 12,
        num_poles: 24,
        num_walls: 6,
        half_extent: 40.0,
        seed: 2022,
    });
    println!("scene: {} points, {} cars", scene.cloud.len(), scene.car_boxes.len());

    // --- motivation: exact search is almost entirely non-streaming ---
    let tree = KdTree::build(&scene.cloud);
    let mut dram = DramTraceAnalyzer::new();
    let queries: Vec<_> = (0..2000).map(|i| scene.cloud.point(i * 50)).collect();
    let mut visits = 0u64;
    for &q in &queries {
        let _ = radius_search_traced(&tree, q, 1.0, None, &mut |idx| {
            visits += 1;
            dram.access(tree.node_addr(idx), NODE_BYTES as u64);
        });
    }
    println!(
        "exact K-d search: {} node fetches, {:.2}% non-streaming DRAM accesses",
        visits,
        dram.counters().non_streaming_fraction() * 100.0
    );

    // --- the Crescent fix: run F-PointNet on every system ---
    scene.cloud.normalize_unit_sphere();
    let spec = NetworkSpec::f_pointnet();
    let cfg = AcceleratorConfig::default();
    let knobs = CrescentKnobs { top_height: 4, elision_height: 9 };
    let meso = run_network(&spec, &scene.cloud, Variant::Mesorasi, knobs, &cfg);
    let mut rows = Vec::new();
    for v in Variant::ALL {
        let r = run_network(&spec, &scene.cloud, v, knobs, &cfg);
        rows.push(vec![
            v.name().to_string(),
            format!("{:.2}", meso.total_cycles() as f64 / r.total_cycles() as f64),
            format!("{:.2}", r.energy.total() / meso.energy.total()),
            format!("{}", r.cycles.search),
            format!("{}", r.cycles.aggregation),
            format!("{}", r.cycles.mlp),
        ]);
    }
    println!("\nF-PointNet across systems (normalized to Mesorasi):");
    print!(
        "{}",
        format_table(
            &["system", "speedup", "norm_energy", "search_cyc", "aggr_cyc", "mlp_cyc"],
            &rows
        )
    );
}
