//! Domain scenario: approximation-aware training (Sec 5).
//!
//! Trains a PointNet++-style classifier three ways on the synthetic
//! ModelNet-like dataset and shows the Fig 13 signature: applying the
//! approximations to a conventionally-trained model wrecks accuracy, while
//! a model trained *with* the approximations in the loop recovers it.
//!
//! ```text
//! cargo run --release --example train_approximate
//! ```

use crescent::models::{
    eval_classifier, train_classifier, ApproxSetting, PointNet2Cls, TrainConfig,
};
use crescent::pointcloud::datasets::{ClassificationConfig, ClassificationDataset};

fn main() {
    let ds = ClassificationDataset::generate(&ClassificationConfig {
        points_per_cloud: 192,
        train_per_class: 8,
        test_per_class: 5,
        jitter_sigma: 0.01,
        seed: 7,
    });
    println!(
        "dataset: {} train / {} test samples, {} classes",
        ds.train.len(),
        ds.test.len(),
        ds.num_classes
    );

    let exact = ApproxSetting::exact();
    // aggressive approximation: h_t = 4, h_e = 4 on these shallow trees
    let approx = ApproxSetting::ans_bce(4, 4);
    let epochs = 10;

    // 1. conventional training, exact inference (the baseline)
    let mut baseline = PointNet2Cls::new(ds.num_classes, 1);
    train_classifier(&mut baseline, &ds.train, &TrainConfig::exact(epochs));
    let acc_baseline = eval_classifier(&mut baseline, &ds.test, &exact);

    // 2. the same model, approximations applied at inference only
    let acc_no_retrain = eval_classifier(&mut baseline, &ds.test, &approx);

    // 3. approximation-aware training for the same setting
    let mut retrained = PointNet2Cls::new(ds.num_classes, 2);
    train_classifier(&mut retrained, &ds.train, &TrainConfig::dedicated(approx, epochs));
    let acc_retrained = eval_classifier(&mut retrained, &ds.test, &approx);

    println!("\naccuracy under <h_t=4, h_e=4> (aggressive approximation):");
    println!("  baseline (exact search)             : {:.1}%", acc_baseline * 100.0);
    println!("  ANS+BCE without retraining          : {:.1}%", acc_no_retrain * 100.0);
    println!("  ANS+BCE with approximation-aware training: {:.1}%", acc_retrained * 100.0);
    println!(
        "\nretraining recovered {:.1} points of the {:.1}-point drop",
        (acc_retrained - acc_no_retrain) * 100.0,
        (acc_baseline - acc_no_retrain) * 100.0
    );
}
