//! Quickstart: build a point cloud, run Crescent's fully-streaming
//! approximate neighbor search, and simulate a full network end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use crescent::{Crescent, NetworkSpec, Point3, PointCloud, Variant};

fn main() {
    // a synthetic cloud: a 16x16x16 jittered grid
    let cloud: PointCloud = (0..4096)
        .map(|i| {
            let (x, y, z) = ((i % 16) as f32, ((i / 16) % 16) as f32, (i / 256) as f32);
            Point3::new(x + 0.01 * z, y + 0.02 * x, z)
        })
        .collect();

    // the paper's default operating point: h_t = 4, h_e = 12, ANS+BCE
    let system = Crescent::new();

    // --- neighbor search ---
    let queries = [Point3::new(8.0, 8.0, 8.0), Point3::new(2.0, 3.0, 4.0)];
    let (results, report) = system.search(&cloud, &queries, 1.8, Some(16));
    println!("Crescent approximate neighbor search");
    for (q, hits) in queries.iter().zip(&results) {
        println!("  query {q}: {} neighbors within r=1.8", hits.len());
    }
    println!(
        "  engine: {} cycles ({} compute, {} DMA), {} tree-node fetches",
        report.cycles, report.compute_cycles, report.dma_cycles, report.tree_buffer_reads
    );
    println!(
        "  DRAM: {} streaming bytes, {} random bytes (fully streaming by construction)",
        report.dram_streaming_bytes, report.dram_random_bytes
    );

    // --- end-to-end network simulation ---
    let spec = NetworkSpec::pointnet2_classification();
    let ours = system.simulate(&spec, &cloud);
    let meso = system.simulate_variant(&spec, &cloud, Variant::Mesorasi);
    println!("\n{} on the simulated accelerator:", spec.name);
    println!(
        "  Mesorasi baseline: {:>9} cycles, energy {:.2e}",
        meso.total_cycles(),
        meso.energy.total()
    );
    println!(
        "  Crescent ANS+BCE : {:>9} cycles, energy {:.2e}",
        ours.total_cycles(),
        ours.energy.total()
    );
    println!(
        "  speedup {:.2}x, energy saving {:.0}%",
        meso.total_cycles() as f64 / ours.total_cycles() as f64,
        (1.0 - ours.energy.total() / meso.energy.total()) * 100.0
    );
}
