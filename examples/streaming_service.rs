//! Domain scenario: the multi-tenant streaming service end to end.
//!
//! Runs the CI-scale quick serve grid — tenant mixes of 2 / 4 / 8 over
//! a shared maintained map, fleets of 1 and 2, `h_e ∈ {0, 4}` — prints
//! the tail-latency ledger, and asserts the properties the CI
//! `serve-gate` relies on: the report is byte-stable across runs and
//! worker counts, `h_e = 0` answers are bit-identical whatever the
//! fleet size (co-tenants move cycles, never answers), and admission
//! control plus deadline grading conserve every frame.
//!
//! ```text
//! cargo run --release --example streaming_service
//! ```

use crescent_bench::serve::render_summary;
use crescent_serve::{run_serve, ServeSpec, SCHEMA};

fn main() {
    let spec = ServeSpec::quick();
    println!(
        "# quick multi-tenant service: {} grid points, up to {} tenants",
        spec.num_points(),
        spec.max_tenants()
    );
    let report = run_serve(&spec, 4).expect("quick spec is valid");
    print!("{}", render_summary(&report));

    // --- the properties the CI gate is built on ---
    assert_eq!(report.rows.len(), spec.num_points());
    let json = report.to_json();
    assert!(json.contains(SCHEMA), "report must carry its schema version");

    // bit-reproducible across reruns and worker counts
    let rerun = run_serve(&spec, 1).expect("quick spec is valid");
    assert_eq!(json, rerun.to_json(), "report must be byte-identical across runs and workers");
    println!("ledger is byte-identical across reruns and worker counts");

    // h_e = 0 answers are fleet-invariant: rows that differ only in
    // fleet size carry the same result digest — batching and dispatch
    // order move latency, never neighbor sets. The digest also covers
    // admission outcomes (a rejected frame digests as a rejection), so
    // the comparison needs rows whose admission decisions agree: pairs
    // where neither side rejected anything. Static rows only: the SLO
    // controller raises h_e under pressure, deliberately trading
    // answers for deadlines.
    let mut compared = 0;
    for a in &report.rows {
        for b in &report.rows {
            if a.index < b.index
                && a.tenants == b.tenants
                && a.elision_depth == b.elision_depth
                && a.fleet != b.fleet
                && a.elision_depth == 0
                && a.controller == "static"
                && b.controller == "static"
                && a.rejected == 0
                && b.rejected == 0
            {
                assert_eq!(
                    a.digest, b.digest,
                    "rows {} and {}: fleet size changed exact answers",
                    a.index, b.index
                );
                compared += 1;
            }
        }
    }
    assert!(compared > 0, "the grid must pair rows differing only in fleet size");
    println!("h_e = 0 answers are fleet-invariant across {compared} row pairs");

    // every tenant frame is conserved: admitted + rejected == issued,
    // and the tail percentiles are ordered wherever frames were served
    for row in &report.rows {
        let issued: usize = row.per_tenant.iter().map(|t| t.admitted + t.rejected).sum();
        assert_eq!(row.admitted + row.rejected, issued, "row {}: frame conservation", row.index);
        assert!(
            row.p50 <= row.p95 && row.p95 <= row.p99,
            "row {}: fleet percentiles out of order",
            row.index
        );
        for t in &row.per_tenant {
            if t.admitted > 0 {
                assert!(
                    t.p50 <= t.p95 && t.p95 <= t.p99,
                    "row {} tenant {}: percentiles out of order",
                    row.index,
                    t.name
                );
            }
        }
    }
    println!("admission control conserves every frame; percentiles are ordered");

    // deadline pressure is visible at this scale: the 8-tenant mix on
    // one instance misses deadlines, the 2-tenant mix on two does not
    let strained = report.rows.iter().filter(|r| r.deadline_misses > 0).count();
    let clean = report.rows.iter().filter(|r| r.deadline_misses == 0).count();
    assert!(strained > 0 && clean > 0, "the grid must straddle the deadline boundary");
    println!("{strained} strained rows, {clean} clean rows — the ledger separates the regimes");

    // the closed loop earns its keep at the overload corner: the SLO
    // controller twin of the 8-tenant / fleet-1 / h_e-start-0 row must
    // beat its static counterpart on misses, paying in elided conflicts
    let corner = report
        .rows
        .iter()
        .find(|r| {
            r.tenants == 8 && r.fleet == 1 && r.elision_depth == 0 && r.controller == "static"
        })
        .expect("the overload corner is on the quick grid");
    let twin = report
        .rows
        .iter()
        .find(|r| r.tenants == 8 && r.fleet == 1 && r.elision_depth == 0 && r.controller == "slo")
        .expect("its controller-on twin is on the quick grid");
    assert!(
        twin.deadline_misses < corner.deadline_misses,
        "controller must strictly cut misses at the overload corner ({} vs {})",
        twin.deadline_misses,
        corner.deadline_misses
    );
    assert!(twin.conflicts_elided > 0, "the recall trade must be ledgered, not hidden");
    println!(
        "SLO controller cuts overload-corner misses {} -> {} (final h_e {}, {} conflicts elided)",
        corner.deadline_misses, twin.deadline_misses, twin.h_e_final, twin.conflicts_elided
    );
}
