//! # Crescent — taming memory irregularities for deep point-cloud analytics
//!
//! A full-system Rust reproduction of *Crescent: Taming Memory
//! Irregularities for Accelerating Deep Point Cloud Analytics*
//! (Feng, Hammonds, Gan, Zhu — ISCA 2022).
//!
//! Crescent is an algorithm–hardware co-design with three parts, all
//! implemented here:
//!
//! 1. **Fully-streaming approximate neighbor search** (Sec 3) — a K-d tree
//!    split into a top tree and sub-trees; queries are routed in one pass
//!    and answered with backtracking confined to a sub-tree, so every DRAM
//!    transfer is a stream ([`crescent_kdtree`]).
//! 2. **Selective bank-conflict elision** (Sec 4) — conflicted SRAM reads
//!    below the elision height are dropped (search) or answered with the
//!    winner's data (aggregation) instead of stalling
//!    ([`crescent_memsim`], [`crescent_accel`]).
//! 3. **Approximation-aware training** (Sec 5) — the approximations and a
//!    bank-conflict model run inside the forward pass during training, so
//!    the network keeps its accuracy under approximation
//!    ([`crescent_models`]).
//!
//! The [`Crescent`] facade bundles an accelerator configuration with the
//! approximation knobs `h = <h_t, h_e>` and exposes one-call search,
//! end-to-end network simulation, and — via the [`workload`] module's
//! seeded [`FrameStream`] — streaming multi-frame simulation
//! ([`Crescent::run_stream`]); the individual crates remain fully usable
//! on their own.
//!
//! ```
//! use crescent::Crescent;
//! use crescent_pointcloud::{Point3, PointCloud};
//!
//! let cloud: PointCloud = (0..1000)
//!     .map(|i| Point3::new((i % 10) as f32, ((i / 10) % 10) as f32, (i / 100) as f32))
//!     .collect();
//! let (hits, report) = Crescent::new().search(&cloud, &[Point3::splat(5.0)], 1.5, Some(16));
//! assert!(!hits[0].is_empty());
//! assert_eq!(report.dram_random_bytes, 0); // fully streaming
//! ```

#![warn(missing_docs)]

pub mod facade;
pub mod tenant;
pub mod testgen;
pub mod workload;

pub use facade::{format_table, Crescent};
pub use tenant::{mixed_tenants, TenantSpec};
pub use workload::{
    EgoMotion, Frame, FrameStream, FrameStreamConfig, StreamOutcome, StreamScenario,
};

// Re-export the component crates under one roof.
pub use crescent_accel as accel;
pub use crescent_kdtree as kdtree;
pub use crescent_memsim as memsim;
pub use crescent_models as models;
pub use crescent_nn as nn;
pub use crescent_pointcloud as pointcloud;

// The most commonly used items, flattened.
pub use crescent_accel::{AcceleratorConfig, CrescentKnobs, NetworkSpec, PipelineReport, Variant};
pub use crescent_kdtree::{KdTree, SplitSearchConfig, SplitTree};
pub use crescent_models::{ApproxSetting, SettingSampler};
pub use crescent_pointcloud::{Aabb, Point3, PointCloud};
