//! Streaming multi-frame LiDAR workloads: seeded sequences of
//! temporally-coherent frames plus the glue that runs them through the
//! accelerator's streaming pipeline driver.
//!
//! The paper's headline numbers are about sustained throughput on real
//! point-cloud pipelines, which consume consecutive sensor sweeps, not
//! isolated clouds. [`FrameStream`] opens that workload dimension: it
//! generates one static synthetic world with the
//! [`generate_scene`] generator, then renders it from a moving ego
//! vehicle — per frame the
//! sensor pose advances by the configured [`EgoMotion`] and the world is
//! transformed into the sensor frame with per-frame measurement noise.
//! Consecutive frames therefore share most of their geometry (the
//! temporal coherence the batched search and the engine's incremental
//! tree maintenance exploit) while every frame still has a fresh noise
//! realization.
//!
//! The [`StreamScenario`] knob shapes the stream to stress the
//! [`TreeMaintenance`] policy from different angles: raw azimuthal
//! sweeps (unstable point identity), registered motion-compensated
//! streams (the refit-friendly case), dynamic objects entering and
//! leaving the scene, oscillating point density, a sudden ego-rotation
//! burst (one incoherent frame in a coherent stream), urban-canyon
//! occlusion with multipath dropouts, highway speeds over sparse
//! long-range returns, overlapping staggered-phase multi-sensor rigs,
//! weather-degraded returns, and a locality-heavy clustered-query
//! stream that exercises descendant reuse in the banked arbiter.
//!
//! Everything is a pure function of [`FrameStreamConfig`]: two streams
//! built from the same config yield bit-identical frames, queries, and —
//! through [`Crescent::run_stream`](crate::Crescent::run_stream) —
//! bit-identical neighbor sets, cycle counts, and energy totals.

use serde::{Deserialize, Serialize};

use crescent_accel::{run_frame_stream, StreamReport, StreamSearchConfig, TreeMaintenance};
use crescent_pointcloud::datasets::{generate_scene, LidarSceneConfig};
use crescent_pointcloud::sampling::gaussian;
use crescent_pointcloud::{Neighbor, Point3, PointCloud};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::facade::Crescent;

/// Constant-rate ego motion of the sensor between frames.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EgoMotion {
    /// Forward speed along the current heading, meters per second.
    pub speed_mps: f32,
    /// Yaw rate, radians per second (positive = counter-clockwise).
    pub yaw_rate_rps: f32,
    /// Frame period in seconds (0.1 s ≈ a 10 Hz spinning LiDAR).
    pub frame_period_s: f32,
}

impl Default for EgoMotion {
    fn default() -> Self {
        // a gentle urban arc: ~29 km/h with a slow left turn at 10 Hz
        EgoMotion { speed_mps: 8.0, yaw_rate_rps: 0.05, frame_period_s: 0.1 }
    }
}

/// The shape of a streamed workload — chosen to stress the engine's
/// [`TreeMaintenance`] policy in qualitatively different ways.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum StreamScenario {
    /// Raw spinning-LiDAR frames: range cull plus a fresh azimuthal
    /// re-sort every frame. Point *identity* is not stable across
    /// frames, so an incremental refit always detects incoherence —
    /// this is the honest baseline workload.
    Sweep,
    /// Motion-compensated (registered) stream: the full world rendered
    /// into the moving sensor frame with stable point identity (no
    /// cull, no re-sort). The workload incremental tree maintenance is
    /// built for.
    Registered,
    /// Registered stream plus dynamic objects: point clusters follow
    /// straight world paths and enter/leave the sensor range, changing
    /// the cloud size on transition frames (which forces the refit
    /// size-mismatch fallback exactly there).
    DynamicObjects {
        /// Number of moving clusters.
        movers: usize,
    },
    /// Registered stream with the point density oscillating between
    /// `min_keep_pct`% and 100% of the world over `period` frames —
    /// every frame has a different size, so refit must fall back each
    /// time (the worst case for incremental maintenance).
    VariableDensity {
        /// Minimum percentage of world points kept in a frame.
        min_keep_pct: u8,
        /// Oscillation period in frames.
        period: usize,
    },
    /// Registered stream with a sudden ego-rotation at `at_frame`
    /// (heading step of `yaw_rad`): one incoherence burst in an
    /// otherwise coherent stream — the canonical fallback test.
    RotationBurst {
        /// Frame index at which the heading jumps.
        at_frame: usize,
        /// Heading step in radians.
        yaw_rad: f32,
    },
    /// Registered stream through an urban canyon: `sectors` azimuthal
    /// building wedges (fixed around the moving sensor) occlude returns,
    /// and a per-frame pseudo-random `dropout_pct`% of the surviving
    /// points flickers away to multipath. The visible set changes every
    /// frame as the ego moves past the wedges, so the cloud size is
    /// never stable — a rebuild-heavy, spatially-nonuniform workload.
    UrbanCanyon {
        /// Number of occluded azimuthal wedges around the sensor.
        sectors: usize,
        /// Percentage of points lost to multipath each frame (0–100).
        dropout_pct: u8,
    },
    /// Highway driving: the ego speed is multiplied by `speed_mult` and
    /// only a constant `keep_pct`% of the world returns (sparse
    /// long-range hits). The kept subset is frame-invariant, so point
    /// identity stays stable — refit survives even the large per-frame
    /// displacement.
    Highway {
        /// Multiplier on [`EgoMotion::speed_mps`].
        speed_mult: f32,
        /// Constant percentage of world points kept each frame.
        keep_pct: u8,
    },
    /// A rig of `sensors` overlapping LiDARs: each sensor renders the
    /// full registered world from its own mounting offset with a
    /// staggered trigger phase, and the frame concatenates the clouds.
    /// Density (and bank pressure) multiplies by the sensor count while
    /// the stream stays rigid — refit-friendly at doubled conflict load.
    MultiSensor {
        /// Number of sensors on the rig.
        sensors: usize,
    },
    /// Weather-degraded returns (rain/fog): measurement noise is
    /// tripled and a per-frame-varying dropout around `dropout_pct`%
    /// thins the cloud differently every frame, so the size never
    /// repeats — the adversarial case for incremental maintenance.
    Weather {
        /// Mean percentage of returns lost per frame (0–100).
        dropout_pct: u8,
    },
    /// Registered stream whose queries are packed into `clusters` tight
    /// spatial groups instead of a uniform stride. Clustered queries
    /// collide on the same subtree banks, which is exactly the workload
    /// descendant reuse salvages — this is the only canonical scenario
    /// that turns [`descendant_reuse`](StreamScenario::descendant_reuse)
    /// on.
    DescendantReuse {
        /// Number of query clusters per frame.
        clusters: usize,
    },
}

impl StreamScenario {
    /// The canonical scenario matrix: one instance of every variant with
    /// the parameters the test suite and the design-space explorer
    /// standardize on (3 movers, a 40 %–100 % density swing over 4
    /// frames, a 0.9 rad heading burst at frame 3, 6 canyon wedges with
    /// 12 % multipath, 4× highway speed over 35 % returns, a 2-sensor
    /// rig, 25 % weather dropout, 4 query clusters). Sweeps iterate this
    /// to cover every qualitative workload shape; anything needing other
    /// parameters constructs the variant directly.
    pub fn canonical_matrix() -> [StreamScenario; 10] {
        [
            StreamScenario::Sweep,
            StreamScenario::Registered,
            StreamScenario::DynamicObjects { movers: 3 },
            StreamScenario::VariableDensity { min_keep_pct: 40, period: 4 },
            StreamScenario::RotationBurst { at_frame: 3, yaw_rad: 0.9 },
            StreamScenario::UrbanCanyon { sectors: 6, dropout_pct: 12 },
            StreamScenario::Highway { speed_mult: 4.0, keep_pct: 35 },
            StreamScenario::MultiSensor { sensors: 2 },
            StreamScenario::Weather { dropout_pct: 25 },
            StreamScenario::DescendantReuse { clusters: 4 },
        ]
    }

    /// Stable machine-readable name of the variant (parameters elided) —
    /// the key sweep reports and baselines use, so it must never change
    /// for an existing variant.
    pub fn label(&self) -> &'static str {
        match self {
            StreamScenario::Sweep => "sweep",
            StreamScenario::Registered => "registered",
            StreamScenario::DynamicObjects { .. } => "dynamic_objects",
            StreamScenario::VariableDensity { .. } => "variable_density",
            StreamScenario::RotationBurst { .. } => "rotation_burst",
            StreamScenario::UrbanCanyon { .. } => "urban_canyon",
            StreamScenario::Highway { .. } => "highway",
            StreamScenario::MultiSensor { .. } => "multi_sensor",
            StreamScenario::Weather { .. } => "weather",
            StreamScenario::DescendantReuse { .. } => "descendant_reuse",
        }
    }

    /// Whether streams of this scenario run the banked arbiter with
    /// descendant reuse enabled (see
    /// [`StreamSearchConfig::descendant_reuse`]): `true` only for
    /// [`StreamScenario::DescendantReuse`], so every other scenario's
    /// timing stays byte-identical to the stall/elide-only model.
    pub fn descendant_reuse(&self) -> bool {
        matches!(self, StreamScenario::DescendantReuse { .. })
    }
}

/// Configuration of a [`FrameStream`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FrameStreamConfig {
    /// The static world the sensor drives through.
    pub scene: LidarSceneConfig,
    /// Number of frames to emit.
    pub num_frames: usize,
    /// Sensor trajectory between frames.
    pub ego: EgoMotion,
    /// Sensor range: world points farther than this (in x/y) from the
    /// sensor are culled from the frame (only in
    /// [`StreamScenario::Sweep`]; registered scenarios keep the full
    /// world so point identity stays stable, and movers use it as their
    /// visibility range).
    pub max_range: f32,
    /// Per-frame Gaussian measurement noise (standard deviation, meters).
    pub noise_m: f32,
    /// Queries issued per frame (stride-sampled from the frame cloud).
    pub queries_per_frame: usize,
    /// Neighbor-search radius, in frame (= world) units.
    pub radius: f32,
    /// Cap on returned neighbors per query.
    pub max_neighbors: Option<usize>,
    /// Workload shape (see [`StreamScenario`]).
    pub scenario: StreamScenario,
    /// Per-frame tree-maintenance policy handed to the engine.
    pub maintenance: TreeMaintenance,
    /// The streaming `h_e` handed to the engine: conflicted tree-buffer
    /// fetches in this many of the deepest tree levels are elided
    /// instead of stalling (`0` = exact stall-only search; see
    /// [`StreamSearchConfig::elision_depth`]).
    pub elision_depth: usize,
}

impl Default for FrameStreamConfig {
    fn default() -> Self {
        FrameStreamConfig {
            scene: LidarSceneConfig {
                total_points: 24_000,
                num_cars: 8,
                num_poles: 16,
                num_walls: 4,
                half_extent: 30.0,
                seed: 0x5EED_F00D,
            },
            num_frames: 16,
            ego: EgoMotion::default(),
            max_range: 25.0,
            noise_m: 0.01,
            queries_per_frame: 256,
            radius: 0.5,
            max_neighbors: Some(32),
            scenario: StreamScenario::Sweep,
            maintenance: TreeMaintenance::RebuildEveryFrame,
            elision_depth: crescent_accel::DEFAULT_STREAM_ELISION_DEPTH,
        }
    }
}

/// One rendered frame of a stream.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Frame {
    /// 0-based frame index.
    pub index: usize,
    /// Sensor position in world coordinates when the frame was taken.
    pub ego_position: Point3,
    /// Sensor heading (yaw) in radians.
    pub ego_heading: f32,
    /// The frame's point cloud, in the sensor frame, azimuthal sweep order.
    pub cloud: PointCloud,
    /// The frame's query points (stride-sampled from `cloud`).
    pub queries: Vec<Point3>,
}

/// A seeded iterator of temporally-coherent LiDAR frames.
///
/// # Examples
///
/// ```
/// use crescent::workload::{FrameStream, FrameStreamConfig};
///
/// let mut cfg = FrameStreamConfig::default();
/// cfg.scene.total_points = 2_000;
/// cfg.num_frames = 3;
/// let frames: Vec<_> = FrameStream::new(&cfg).collect();
/// assert_eq!(frames.len(), 3);
/// assert!(frames.iter().all(|f| !f.cloud.is_empty()));
/// // same config ⇒ bit-identical frames
/// let again: Vec<_> = FrameStream::new(&cfg).collect();
/// assert_eq!(frames[2].cloud, again[2].cloud);
/// ```
#[derive(Clone, Debug)]
pub struct FrameStream {
    cfg: FrameStreamConfig,
    world: PointCloud,
    movers: Vec<Mover>,
    frame: usize,
    position: Point3,
    heading: f32,
}

/// A dynamic object: a rigid point cluster on a straight world path.
#[derive(Clone, Debug)]
struct Mover {
    start: Point3,
    velocity: Point3,
    offsets: Vec<Point3>,
}

impl Mover {
    fn center(&self, frame: usize, dt: f32) -> Point3 {
        self.start + self.velocity * (frame as f32 * dt)
    }
}

impl FrameStream {
    /// Builds the world scene and positions the sensor at the origin,
    /// heading along +x.
    pub fn new(cfg: &FrameStreamConfig) -> Self {
        let world = generate_scene(&cfg.scene).cloud;
        let movers = match cfg.scenario {
            StreamScenario::DynamicObjects { movers } => {
                let mut rng = StdRng::seed_from_u64(cfg.scene.seed ^ 0xD10B_1EC7);
                (0..movers)
                    .map(|m| {
                        // start outside the visible range on a bearing
                        // that carries the cluster through the scene
                        let theta = (m as f32 + rng.random::<f32>()) * 2.4;
                        let start = Point3::new(
                            1.4 * cfg.max_range * theta.cos(),
                            1.4 * cfg.max_range * theta.sin(),
                            0.8,
                        );
                        let speed = 5.0 + 4.0 * rng.random::<f32>();
                        let velocity = (Point3::ZERO - start) * (speed / start.norm().max(1e-6));
                        let offsets = (0..24)
                            .map(|_| {
                                Point3::new(
                                    gaussian(&mut rng) * 0.6,
                                    gaussian(&mut rng) * 0.6,
                                    gaussian(&mut rng) * 0.4,
                                )
                            })
                            .collect();
                        Mover { start, velocity, offsets }
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        FrameStream { cfg: *cfg, world, movers, frame: 0, position: Point3::ZERO, heading: 0.0 }
    }

    /// The stream's configuration.
    pub fn config(&self) -> &FrameStreamConfig {
        &self.cfg
    }

    /// The static world cloud the frames are rendered from.
    pub fn world(&self) -> &PointCloud {
        &self.world
    }

    /// Renders the frame for the current pose without advancing it.
    fn render(&self) -> Frame {
        let cfg = &self.cfg;
        // Decorrelate per-frame noise from the scene RNG and from other
        // frames (SplitMix64 increment as the per-frame stream offset).
        let noise_seed =
            cfg.scene.seed ^ (self.frame as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(noise_seed);
        let cloud = match cfg.scenario {
            StreamScenario::Sweep => self.render_sweep(&mut rng),
            StreamScenario::MultiSensor { sensors } => self.render_multi_sensor(sensors, &mut rng),
            _ => self.render_registered(&mut rng),
        };
        let queries = match cfg.scenario {
            StreamScenario::DescendantReuse { clusters } => {
                cluster_queries(&cloud, cfg.queries_per_frame, clusters)
            }
            _ => stride_queries(&cloud, cfg.queries_per_frame),
        };
        Frame {
            index: self.frame,
            ego_position: self.position,
            ego_heading: self.heading,
            cloud,
            queries,
        }
    }

    /// Raw spinning-LiDAR render: range cull + azimuthal sweep re-sort.
    fn render_sweep(&self, rng: &mut StdRng) -> PointCloud {
        let cfg = &self.cfg;
        let range2 = cfg.max_range * cfg.max_range;
        // (azimuth, point) pairs so the sweep sort computes atan2 once per
        // point instead of once per comparison
        let mut pts: Vec<(f32, Point3)> = Vec::new();
        for &p in &self.world {
            // world → sensor frame: translate to the sensor, undo heading
            let d = (p - self.position).rotated_z(-self.heading);
            if d.x * d.x + d.y * d.y > range2 {
                continue;
            }
            let noise = Point3::new(gaussian(rng), gaussian(rng), gaussian(rng)) * cfg.noise_m;
            let q = d + noise;
            pts.push((q.y.atan2(q.x), q));
        }
        // a spinning LiDAR emits points in azimuthal sweep order
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        PointCloud::from_points(pts.into_iter().map(|(_, p)| p).collect())
    }

    /// Registered (motion-compensated) render: stable point identity —
    /// world order is preserved, nothing is culled or re-sorted. The
    /// density filter, per-scenario dropout/occlusion filters, and the
    /// dynamic movers of the richer scenarios are layered on top.
    fn render_registered(&self, rng: &mut StdRng) -> PointCloud {
        self.render_registered_at(self.position, rng)
    }

    /// [`render_registered`](Self::render_registered) from an explicit
    /// sensor position (the multi-sensor rig renders once per mounting
    /// point); the heading is shared across the rig.
    fn render_registered_at(&self, position: Point3, rng: &mut StdRng) -> PointCloud {
        let cfg = &self.cfg;
        let heading = self.heading + self.burst_yaw();
        let keep_pct = self.keep_pct();
        let noise_m = cfg.noise_m * self.noise_mult();
        let mut pts: Vec<Point3> = Vec::with_capacity(self.world.len());
        for (i, &p) in self.world.iter().enumerate() {
            // spread the density filter across the cloud with a prime
            // stride so kept points stay spatially uniform
            if keep_pct < 100 && (i * 7919) % 100 >= keep_pct {
                continue;
            }
            if self.dropped(i, p, position) {
                continue;
            }
            let d = (p - position).rotated_z(-heading);
            let noise = Point3::new(gaussian(rng), gaussian(rng), gaussian(rng)) * noise_m;
            pts.push(d + noise);
        }
        // dynamic objects append after the static world; a cluster is
        // visible only while its center is inside the sensor range
        let dt = cfg.ego.frame_period_s;
        for mover in &self.movers {
            let center = mover.center(self.frame, dt);
            let rel = center - position;
            if rel.x * rel.x + rel.y * rel.y > cfg.max_range * cfg.max_range {
                continue;
            }
            for &off in &mover.offsets {
                let d = (center + off - position).rotated_z(-heading);
                let noise = Point3::new(gaussian(rng), gaussian(rng), gaussian(rng)) * noise_m;
                pts.push(d + noise);
            }
        }
        PointCloud::from_points(pts)
    }

    /// Multi-sensor rig render: one registered pass per sensor from its
    /// own mounting point, concatenated in rig order. Mounting offsets
    /// fan out laterally across the rig; trigger phases stagger along
    /// the direction of travel (sensor `s` fires `s/sensors` of a frame
    /// period later). Both offsets are constant in the ego frame, so on
    /// a straight trajectory the concatenated cloud still translates
    /// rigidly frame to frame.
    fn render_multi_sensor(&self, sensors: usize, rng: &mut StdRng) -> PointCloud {
        let cfg = &self.cfg;
        let sensors = sensors.max(1);
        let forward = Point3::new(self.heading.cos(), self.heading.sin(), 0.0);
        let lateral = Point3::new(-self.heading.sin(), self.heading.cos(), 0.0);
        let step = cfg.ego.speed_mps * self.speed_mult() * cfg.ego.frame_period_s;
        let mut pts: Vec<Point3> = Vec::with_capacity(sensors * self.world.len());
        for s in 0..sensors {
            let mount = lateral * ((s as f32 - 0.5 * (sensors - 1) as f32) * 0.8);
            let phase = forward * (step * s as f32 / sensors as f32);
            let sub = self.render_registered_at(self.position + mount + phase, rng);
            pts.extend_from_slice(sub.points());
        }
        PointCloud::from_points(pts)
    }

    /// Extra heading applied from the rotation-burst frame onward.
    fn burst_yaw(&self) -> f32 {
        match self.cfg.scenario {
            StreamScenario::RotationBurst { at_frame, yaw_rad } if self.frame >= at_frame => {
                yaw_rad
            }
            _ => 0.0,
        }
    }

    /// Percentage of world points kept this frame (100 outside the
    /// variable-density and highway scenarios).
    fn keep_pct(&self) -> usize {
        match self.cfg.scenario {
            StreamScenario::VariableDensity { min_keep_pct, period } => {
                let min = usize::from(min_keep_pct.min(100));
                let phase = std::f32::consts::TAU * self.frame as f32 / period.max(1) as f32;
                min + (((100 - min) as f32) * 0.5 * (1.0 + phase.cos())).round() as usize
            }
            StreamScenario::Highway { keep_pct, .. } => usize::from(keep_pct.min(100)),
            _ => 100,
        }
    }

    /// Multiplier on the ego speed (1 outside the highway scenario).
    fn speed_mult(&self) -> f32 {
        match self.cfg.scenario {
            StreamScenario::Highway { speed_mult, .. } => speed_mult,
            _ => 1.0,
        }
    }

    /// Multiplier on the measurement noise (weather triples it).
    fn noise_mult(&self) -> f32 {
        match self.cfg.scenario {
            StreamScenario::Weather { .. } => 3.0,
            _ => 1.0,
        }
    }

    /// Per-point dropout and occlusion filters layered on the
    /// registered render. Everything is a pure hash of the point index,
    /// the frame index, and the pose — no RNG state is consumed, so the
    /// noise stream of the surviving points stays decoupled from the
    /// filter.
    fn dropped(&self, i: usize, p: Point3, position: Point3) -> bool {
        match self.cfg.scenario {
            StreamScenario::UrbanCanyon { sectors, dropout_pct } => {
                // multipath: a pseudo-random subset flickers per frame
                let h = i.wrapping_mul(6151).wrapping_add(self.frame.wrapping_mul(7907));
                if h % 100 < usize::from(dropout_pct.min(100)) {
                    return true;
                }
                // building occlusion: fixed azimuthal wedges around the
                // sensor swallow 35 % of each sector's returns
                let rel = p - position;
                let bearing = rel.y.atan2(rel.x);
                let t = (bearing / std::f32::consts::TAU + 0.5) * sectors.max(1) as f32;
                t.fract() < 0.35
            }
            StreamScenario::Weather { dropout_pct } => {
                // the storm front breathes: the effective dropout drifts
                // around the mean so no two frames keep the same count
                let pct = (usize::from(dropout_pct.min(90)) + (self.frame * 7) % 17).min(95);
                i.wrapping_mul(4391).wrapping_add(self.frame.wrapping_mul(9973)) % 100 < pct
            }
            _ => false,
        }
    }
}

impl Iterator for FrameStream {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        if self.frame >= self.cfg.num_frames {
            return None;
        }
        let frame = self.render();
        // advance the pose for the next frame (frame 0 is at the origin)
        let dt = self.cfg.ego.frame_period_s;
        let step = Point3::new(self.heading.cos(), self.heading.sin(), 0.0)
            * (self.cfg.ego.speed_mps * self.speed_mult() * dt);
        self.position += step;
        self.heading += self.cfg.ego.yaw_rate_rps * dt;
        self.frame += 1;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.cfg.num_frames - self.frame.min(self.cfg.num_frames);
        (left, Some(left))
    }
}

/// Deterministic stride subsample of `n` query points from a frame cloud.
fn stride_queries(cloud: &PointCloud, n: usize) -> Vec<Point3> {
    let len = cloud.len();
    if n == 0 || len == 0 {
        return Vec::new();
    }
    if n >= len {
        return cloud.points().to_vec();
    }
    (0..n).map(|i| cloud.point(i * len / n)).collect()
}

/// Deterministic clustered subsample of `n` query points: queries pack
/// into `clusters` runs of consecutive cloud indices (consecutive
/// generation order is spatially local in the synthetic scenes), so the
/// batch's traversals collide on the same subtree banks — the workload
/// shape descendant reuse is built for.
fn cluster_queries(cloud: &PointCloud, n: usize, clusters: usize) -> Vec<Point3> {
    let len = cloud.len();
    if n == 0 || len == 0 {
        return Vec::new();
    }
    if n >= len {
        return cloud.points().to_vec();
    }
    let clusters = clusters.clamp(1, n);
    (0..n)
        .map(|j| {
            let base = (j % clusters) * len / clusters;
            cloud.point((base + j / clusters) % len)
        })
        .collect()
}

/// Everything a [`Crescent::run_stream`](crate::Crescent::run_stream) call
/// produces: the rendered frames, the per-frame neighbor sets, and the
/// engine's timing/energy report.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    /// The rendered frames, in order.
    pub frames: Vec<Frame>,
    /// Per-frame, per-query neighbor lists (identical to per-query
    /// [`SplitTree::search_one`](crescent_kdtree::SplitTree::search_one)).
    pub neighbor_sets: Vec<Vec<Vec<Neighbor>>>,
    /// Per-frame cycle and energy accounting.
    pub report: StreamReport,
}

impl StreamOutcome {
    /// Total neighbors found across the whole stream.
    pub fn total_neighbors(&self) -> usize {
        self.neighbor_sets.iter().flatten().map(Vec::len).sum()
    }
}

impl Crescent {
    /// Simulates a streaming multi-frame workload end to end: renders the
    /// [`FrameStream`] for `cfg`, then drives every frame back-to-back
    /// through the engine with this system's knobs and hardware
    /// configuration (batched two-stage search, inter-frame double
    /// buffering, per-frame energy ledger).
    ///
    /// The outcome is a pure function of `cfg` and `self` — see
    /// `tests/streaming.rs` for the bit-identical-rerun guarantee.
    ///
    /// # Examples
    ///
    /// ```
    /// use crescent::workload::FrameStreamConfig;
    /// use crescent::Crescent;
    ///
    /// let mut cfg = FrameStreamConfig::default();
    /// cfg.scene.total_points = 2_000;
    /// cfg.num_frames = 4;
    /// cfg.queries_per_frame = 32;
    /// let outcome = Crescent::new().run_stream(&cfg);
    /// assert_eq!(outcome.frames.len(), 4);
    /// assert_eq!(outcome.report.ledger.len(), 4);
    /// assert!(outcome.report.pipelined_cycles < outcome.report.serial_cycles);
    /// ```
    pub fn run_stream(&self, cfg: &FrameStreamConfig) -> StreamOutcome {
        let frames: Vec<Frame> = FrameStream::new(cfg).collect();
        let inputs: Vec<(&PointCloud, &[Point3])> =
            frames.iter().map(|f| (&f.cloud, f.queries.as_slice())).collect();
        let search = StreamSearchConfig {
            radius: cfg.radius,
            max_neighbors: cfg.max_neighbors,
            maintenance: cfg.maintenance,
            elision_depth: cfg.elision_depth,
            descendant_reuse: cfg.scenario.descendant_reuse(),
        };
        let (neighbor_sets, report) = run_frame_stream(&inputs, &search, self.knobs, &self.config);
        StreamOutcome { frames, neighbor_sets, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FrameStreamConfig {
        let mut cfg = FrameStreamConfig::default();
        cfg.scene.total_points = 4_000;
        cfg.scene.seed = 7;
        cfg.num_frames = 5;
        cfg.queries_per_frame = 64;
        cfg
    }

    #[test]
    fn canonical_matrix_covers_every_variant_with_unique_labels() {
        let matrix = StreamScenario::canonical_matrix();
        let labels: Vec<&str> = matrix.iter().map(StreamScenario::label).collect();
        assert_eq!(
            labels,
            [
                "sweep",
                "registered",
                "dynamic_objects",
                "variable_density",
                "rotation_burst",
                "urban_canyon",
                "highway",
                "multi_sensor",
                "weather",
                "descendant_reuse"
            ]
        );
        // every scenario renders a non-empty, deterministic stream
        for scenario in matrix {
            let mut cfg = small_cfg();
            cfg.scenario = scenario;
            let a: Vec<Frame> = FrameStream::new(&cfg).collect();
            let b: Vec<Frame> = FrameStream::new(&cfg).collect();
            assert_eq!(a.len(), 5, "{}", scenario.label());
            assert!(a.iter().all(|f| !f.cloud.is_empty()), "{}", scenario.label());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.cloud, y.cloud, "{}", scenario.label());
            }
        }
    }

    #[test]
    fn stream_emits_configured_frames() {
        let cfg = small_cfg();
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        assert_eq!(frames.len(), 5);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.index, i);
            assert!(!f.cloud.is_empty());
            assert_eq!(f.queries.len(), 64);
        }
    }

    #[test]
    fn frames_are_deterministic() {
        let cfg = small_cfg();
        let a: Vec<Frame> = FrameStream::new(&cfg).collect();
        let b: Vec<Frame> = FrameStream::new(&cfg).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cloud, y.cloud);
            assert_eq!(x.queries, y.queries);
            assert_eq!(x.ego_position, y.ego_position);
        }
    }

    #[test]
    fn ego_actually_moves() {
        let cfg = small_cfg();
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        assert_eq!(frames[0].ego_position, Point3::ZERO);
        let last = frames.last().unwrap();
        assert!(last.ego_position.norm() > 1.0, "ego barely moved: {}", last.ego_position);
        // the world is static but the renders differ frame to frame
        assert_ne!(frames[0].cloud, frames[1].cloud);
    }

    #[test]
    fn frames_are_temporally_coherent() {
        // consecutive frames overlap heavily; distant frames less so
        let cfg = small_cfg();
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        let n0 = frames[0].cloud.len() as f64;
        let n1 = frames[1].cloud.len() as f64;
        assert!((n0 - n1).abs() / n0 < 0.2, "adjacent frame sizes {n0} vs {n1}");
    }

    #[test]
    fn frames_respect_range_cull_and_sweep_order() {
        let cfg = small_cfg();
        for f in FrameStream::new(&cfg) {
            for p in &f.cloud {
                let r = (p.x * p.x + p.y * p.y).sqrt();
                assert!(r <= cfg.max_range + 0.5, "point at range {r}");
            }
            let angles: Vec<f32> = f.cloud.iter().map(|p| p.y.atan2(p.x)).collect();
            assert!(angles.windows(2).all(|w| w[0] <= w[1] + 1e-6), "frame {}", f.index);
        }
    }

    #[test]
    fn zero_motion_freezes_geometry_except_noise() {
        let mut cfg = small_cfg();
        cfg.ego = EgoMotion { speed_mps: 0.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 };
        cfg.noise_m = 0.0;
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        assert_eq!(frames[0].cloud, frames[3].cloud, "no motion + no noise = identical frames");
    }

    #[test]
    fn run_stream_end_to_end() {
        let cfg = small_cfg();
        let outcome = Crescent::new().run_stream(&cfg);
        assert_eq!(outcome.frames.len(), 5);
        assert_eq!(outcome.neighbor_sets.len(), 5);
        assert_eq!(outcome.report.ledger.len(), 5);
        assert!(outcome.total_neighbors() > 0);
        assert!(outcome.report.mean_reuse_fraction() > 0.3, "stream should show locality");
    }

    #[test]
    fn registered_frames_keep_point_identity() {
        let mut cfg = small_cfg();
        cfg.scenario = StreamScenario::Registered;
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        let n = frames[0].cloud.len();
        for f in &frames {
            assert_eq!(f.cloud.len(), n, "registered stream must keep a stable size");
        }
        // point i stays the same physical point: across one frame of
        // gentle ego motion it moves by much less than the scene extent
        let moved = (frames[1].cloud.point(7) - frames[0].cloud.point(7)).norm();
        assert!(moved < 2.0, "point 7 jumped {moved} — identity lost");
    }

    #[test]
    fn registered_stream_refits_cheaper_with_identical_results() {
        let mut cfg = small_cfg();
        cfg.scenario = StreamScenario::Registered;
        cfg.num_frames = 8;
        // a registration pipeline outputs motion-compensated, denoised
        // points: the stream is a per-frame rigid translation, which is
        // order-preserving — the regime refit is built for (per-frame
        // independent noise or rotation would trip the cross-plane
        // validation and honestly fall back every frame)
        cfg.noise_m = 0.0;
        cfg.ego = EgoMotion { speed_mps: 8.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 };
        let system = Crescent::new();
        cfg.maintenance = TreeMaintenance::RebuildEveryFrame;
        let rebuild = system.run_stream(&cfg);
        cfg.maintenance = TreeMaintenance::refit();
        let refit = system.run_stream(&cfg);
        assert_eq!(
            rebuild.neighbor_sets, refit.neighbor_sets,
            "maintenance policy must never change results"
        );
        assert!(
            refit.report.pipelined_cycles < rebuild.report.pipelined_cycles,
            "refit {} vs rebuild {}",
            refit.report.pipelined_cycles,
            rebuild.report.pipelined_cycles
        );
    }

    #[test]
    fn dynamic_objects_enter_and_leave() {
        let mut cfg = small_cfg();
        cfg.scenario = StreamScenario::DynamicObjects { movers: 3 };
        cfg.num_frames = 12;
        cfg.max_range = 12.0;
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        let sizes: Vec<usize> = frames.iter().map(|f| f.cloud.len()).collect();
        assert!(
            sizes.windows(2).any(|w| w[0] != w[1]),
            "movers must change the cloud size at some point: {sizes:?}"
        );
        // the engine survives the size changes under refit, results equal
        cfg.maintenance = TreeMaintenance::refit();
        let refit = Crescent::new().run_stream(&cfg);
        cfg.maintenance = TreeMaintenance::RebuildEveryFrame;
        let rebuild = Crescent::new().run_stream(&cfg);
        assert_eq!(refit.neighbor_sets, rebuild.neighbor_sets);
    }

    #[test]
    fn variable_density_oscillates_and_forces_fallback() {
        let mut cfg = small_cfg();
        cfg.scenario = StreamScenario::VariableDensity { min_keep_pct: 40, period: 4 };
        cfg.num_frames = 8;
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        let sizes: Vec<usize> = frames.iter().map(|f| f.cloud.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!((min as f64) < 0.7 * max as f64, "oscillation too shallow: {sizes:?}");
        cfg.maintenance = TreeMaintenance::refit();
        let outcome = Crescent::new().run_stream(&cfg);
        // every size-changing frame is an honest full rebuild
        for (w, f) in sizes.windows(2).zip(&outcome.report.frames[1..]) {
            if w[0] != w[1] {
                assert!(f.full_rebuild, "frame {} changed size but did not rebuild", f.frame);
            }
        }
    }

    #[test]
    fn rotation_burst_triggers_exactly_one_fallback() {
        let mut cfg = small_cfg();
        cfg.scenario = StreamScenario::RotationBurst { at_frame: 3, yaw_rad: 0.9 };
        cfg.num_frames = 7;
        cfg.noise_m = 0.0;
        cfg.ego = EgoMotion { speed_mps: 2.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 };
        cfg.maintenance = TreeMaintenance::refit();
        let system = Crescent::new();
        let refit = system.run_stream(&cfg);
        cfg.maintenance = TreeMaintenance::RebuildEveryFrame;
        let rebuild = system.run_stream(&cfg);
        assert_eq!(
            refit.neighbor_sets, rebuild.neighbor_sets,
            "the burst must not cost correctness"
        );
        assert!(
            refit.report.frames[3].full_rebuild,
            "a 0.9 rad heading jump must be detected as incoherent"
        );
        let fallbacks = refit.report.frames[1..].iter().filter(|f| f.full_rebuild).count();
        assert!(fallbacks <= 2, "only the burst (±1 settling frame) may rebuild: {fallbacks}");
    }

    #[test]
    fn urban_canyon_occludes_and_flickers() {
        let mut cfg = small_cfg();
        cfg.scenario = StreamScenario::UrbanCanyon { sectors: 6, dropout_pct: 12 };
        let canyon: Vec<Frame> = FrameStream::new(&cfg).collect();
        cfg.scenario = StreamScenario::Registered;
        let open: Vec<Frame> = FrameStream::new(&cfg).collect();
        for (c, o) in canyon.iter().zip(&open) {
            let (nc, no) = (c.cloud.len() as f64, o.cloud.len() as f64);
            assert!(
                nc < 0.8 * no,
                "frame {}: wedges + multipath must occlude: {nc} vs {no}",
                c.index
            );
            assert!(nc > 0.3 * no, "frame {}: occlusion ate the frame: {nc} vs {no}", c.index);
        }
        // multipath flicker + moving wedges: the visible set never
        // settles, so the size keeps changing somewhere in the stream
        let sizes: Vec<usize> = canyon.iter().map(|f| f.cloud.len()).collect();
        assert!(sizes.windows(2).any(|w| w[0] != w[1]), "canyon sizes frozen: {sizes:?}");
        // and the engine survives it with policy-invariant results
        cfg.scenario = StreamScenario::UrbanCanyon { sectors: 6, dropout_pct: 12 };
        cfg.maintenance = TreeMaintenance::refit();
        let refit = Crescent::new().run_stream(&cfg);
        cfg.maintenance = TreeMaintenance::RebuildEveryFrame;
        let rebuild = Crescent::new().run_stream(&cfg);
        assert_eq!(refit.neighbor_sets, rebuild.neighbor_sets);
    }

    #[test]
    fn highway_is_sparse_fast_and_still_refit_friendly() {
        let mut cfg = small_cfg();
        cfg.scenario = StreamScenario::Highway { speed_mult: 4.0, keep_pct: 35 };
        cfg.noise_m = 0.0;
        cfg.ego = EgoMotion { speed_mps: 8.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 };
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        // the kept subset is frame-invariant: constant size, stable identity
        let n = frames[0].cloud.len();
        assert!(frames.iter().all(|f| f.cloud.len() == n), "highway keep set must be stable");
        assert!((n as f64) < 0.45 * 4_000.0, "35 % keep must thin the cloud: {n}");
        // 4x speed: the ego covers 4x the default distance
        let end = frames.last().unwrap().ego_position.norm();
        assert!((end - 4.0 * 8.0 * 0.1 * 4.0).abs() < 1e-3, "4 frames at 3.2 m: {end}");
        // large per-frame translation is still order-preserving: refit
        // never falls back after frame 0 and results stay identical
        cfg.maintenance = TreeMaintenance::refit();
        let refit = Crescent::new().run_stream(&cfg);
        cfg.maintenance = TreeMaintenance::RebuildEveryFrame;
        let rebuild = Crescent::new().run_stream(&cfg);
        assert_eq!(refit.neighbor_sets, rebuild.neighbor_sets);
        assert!(refit.report.frames[1..].iter().all(|f| !f.full_rebuild));
        assert!(refit.report.pipelined_cycles < rebuild.report.pipelined_cycles);
    }

    #[test]
    fn multi_sensor_rig_doubles_density_and_stays_rigid() {
        let mut cfg = small_cfg();
        cfg.noise_m = 0.0;
        cfg.ego = EgoMotion { speed_mps: 6.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 };
        cfg.scenario = StreamScenario::Registered;
        let single: Vec<Frame> = FrameStream::new(&cfg).collect();
        cfg.scenario = StreamScenario::MultiSensor { sensors: 2 };
        let rig: Vec<Frame> = FrameStream::new(&cfg).collect();
        for (r, s) in rig.iter().zip(&single) {
            assert_eq!(r.cloud.len(), 2 * s.cloud.len(), "frame {}", r.index);
        }
        // constant mounting offsets + straight ego: the concatenated
        // cloud translates rigidly, so refit never falls back
        cfg.maintenance = TreeMaintenance::refit();
        let refit = Crescent::new().run_stream(&cfg);
        cfg.maintenance = TreeMaintenance::RebuildEveryFrame;
        let rebuild = Crescent::new().run_stream(&cfg);
        assert_eq!(refit.neighbor_sets, rebuild.neighbor_sets);
        assert!(refit.report.frames[1..].iter().all(|f| !f.full_rebuild));
    }

    #[test]
    fn weather_never_repeats_a_frame_size() {
        let mut cfg = small_cfg();
        cfg.scenario = StreamScenario::Weather { dropout_pct: 25 };
        cfg.num_frames = 8;
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        let sizes: Vec<usize> = frames.iter().map(|f| f.cloud.len()).collect();
        assert!(
            sizes.windows(2).all(|w| w[0] != w[1]),
            "the drifting dropout must change the size every frame: {sizes:?}"
        );
        // every size change is an honest full rebuild, and the policy
        // still never changes a result
        cfg.maintenance = TreeMaintenance::refit();
        let refit = Crescent::new().run_stream(&cfg);
        for f in &refit.report.frames[1..] {
            assert!(f.full_rebuild, "frame {} changed size but did not rebuild", f.frame);
        }
        cfg.maintenance = TreeMaintenance::RebuildEveryFrame;
        let rebuild = Crescent::new().run_stream(&cfg);
        assert_eq!(refit.neighbor_sets, rebuild.neighbor_sets);
    }

    #[test]
    fn descendant_reuse_scenario_actually_fires_reuse() {
        // only the DescendantReuse scenario turns the knob on
        for scenario in StreamScenario::canonical_matrix() {
            assert_eq!(
                scenario.descendant_reuse(),
                scenario.label() == "descendant_reuse",
                "{}",
                scenario.label()
            );
        }
        let mut cfg = small_cfg();
        cfg.scenario = StreamScenario::DescendantReuse { clusters: 4 };
        let outcome = Crescent::new().run_stream(&cfg);
        assert!(
            outcome.report.total_conflict_reuses() > 0,
            "clustered queries at the default h_e must salvage some elisions"
        );
        // a registered stream with the knob off reports zero reuses
        cfg.scenario = StreamScenario::Registered;
        let plain = Crescent::new().run_stream(&cfg);
        assert_eq!(plain.report.total_conflict_reuses(), 0);
    }
}
