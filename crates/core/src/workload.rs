//! Streaming multi-frame LiDAR workloads: seeded sequences of
//! temporally-coherent frames plus the glue that runs them through the
//! accelerator's streaming pipeline driver.
//!
//! The paper's headline numbers are about sustained throughput on real
//! point-cloud pipelines, which consume consecutive sensor sweeps, not
//! isolated clouds. [`FrameStream`] opens that workload dimension: it
//! generates one static synthetic world with the
//! [`generate_scene`] generator, then renders it from a moving ego
//! vehicle — per frame the
//! sensor pose advances by the configured [`EgoMotion`], the world is
//! transformed into the sensor frame, range-culled, perturbed with
//! per-frame measurement noise, and re-emitted in azimuthal sweep order.
//! Consecutive frames therefore share most of their geometry (the
//! temporal coherence the batched search exploits) while every frame still
//! has a fresh sweep order and noise realization.
//!
//! Everything is a pure function of [`FrameStreamConfig`]: two streams
//! built from the same config yield bit-identical frames, queries, and —
//! through [`Crescent::run_stream`](crate::Crescent::run_stream) —
//! bit-identical neighbor sets, cycle counts, and energy totals.

use serde::{Deserialize, Serialize};

use crescent_accel::{run_frame_stream, StreamReport, StreamSearchConfig};
use crescent_pointcloud::datasets::{generate_scene, LidarSceneConfig};
use crescent_pointcloud::sampling::gaussian;
use crescent_pointcloud::{Neighbor, Point3, PointCloud};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::facade::Crescent;

/// Constant-rate ego motion of the sensor between frames.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EgoMotion {
    /// Forward speed along the current heading, meters per second.
    pub speed_mps: f32,
    /// Yaw rate, radians per second (positive = counter-clockwise).
    pub yaw_rate_rps: f32,
    /// Frame period in seconds (0.1 s ≈ a 10 Hz spinning LiDAR).
    pub frame_period_s: f32,
}

impl Default for EgoMotion {
    fn default() -> Self {
        // a gentle urban arc: ~29 km/h with a slow left turn at 10 Hz
        EgoMotion { speed_mps: 8.0, yaw_rate_rps: 0.05, frame_period_s: 0.1 }
    }
}

/// Configuration of a [`FrameStream`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FrameStreamConfig {
    /// The static world the sensor drives through.
    pub scene: LidarSceneConfig,
    /// Number of frames to emit.
    pub num_frames: usize,
    /// Sensor trajectory between frames.
    pub ego: EgoMotion,
    /// Sensor range: world points farther than this (in x/y) from the
    /// sensor are culled from the frame.
    pub max_range: f32,
    /// Per-frame Gaussian measurement noise (standard deviation, meters).
    pub noise_m: f32,
    /// Queries issued per frame (stride-sampled from the frame cloud).
    pub queries_per_frame: usize,
    /// Neighbor-search radius, in frame (= world) units.
    pub radius: f32,
    /// Cap on returned neighbors per query.
    pub max_neighbors: Option<usize>,
}

impl Default for FrameStreamConfig {
    fn default() -> Self {
        FrameStreamConfig {
            scene: LidarSceneConfig {
                total_points: 24_000,
                num_cars: 8,
                num_poles: 16,
                num_walls: 4,
                half_extent: 30.0,
                seed: 0x5EED_F00D,
            },
            num_frames: 16,
            ego: EgoMotion::default(),
            max_range: 25.0,
            noise_m: 0.01,
            queries_per_frame: 256,
            radius: 0.5,
            max_neighbors: Some(32),
        }
    }
}

/// One rendered frame of a stream.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Frame {
    /// 0-based frame index.
    pub index: usize,
    /// Sensor position in world coordinates when the frame was taken.
    pub ego_position: Point3,
    /// Sensor heading (yaw) in radians.
    pub ego_heading: f32,
    /// The frame's point cloud, in the sensor frame, azimuthal sweep order.
    pub cloud: PointCloud,
    /// The frame's query points (stride-sampled from `cloud`).
    pub queries: Vec<Point3>,
}

/// A seeded iterator of temporally-coherent LiDAR frames.
///
/// # Examples
///
/// ```
/// use crescent::workload::{FrameStream, FrameStreamConfig};
///
/// let mut cfg = FrameStreamConfig::default();
/// cfg.scene.total_points = 2_000;
/// cfg.num_frames = 3;
/// let frames: Vec<_> = FrameStream::new(&cfg).collect();
/// assert_eq!(frames.len(), 3);
/// assert!(frames.iter().all(|f| !f.cloud.is_empty()));
/// // same config ⇒ bit-identical frames
/// let again: Vec<_> = FrameStream::new(&cfg).collect();
/// assert_eq!(frames[2].cloud, again[2].cloud);
/// ```
#[derive(Clone, Debug)]
pub struct FrameStream {
    cfg: FrameStreamConfig,
    world: PointCloud,
    frame: usize,
    position: Point3,
    heading: f32,
}

impl FrameStream {
    /// Builds the world scene and positions the sensor at the origin,
    /// heading along +x.
    pub fn new(cfg: &FrameStreamConfig) -> Self {
        let world = generate_scene(&cfg.scene).cloud;
        FrameStream { cfg: *cfg, world, frame: 0, position: Point3::ZERO, heading: 0.0 }
    }

    /// The stream's configuration.
    pub fn config(&self) -> &FrameStreamConfig {
        &self.cfg
    }

    /// The static world cloud the frames are rendered from.
    pub fn world(&self) -> &PointCloud {
        &self.world
    }

    /// Renders the frame for the current pose without advancing it.
    fn render(&self) -> Frame {
        let cfg = &self.cfg;
        // Decorrelate per-frame noise from the scene RNG and from other
        // frames (SplitMix64 increment as the per-frame stream offset).
        let noise_seed =
            cfg.scene.seed ^ (self.frame as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(noise_seed);
        let range2 = cfg.max_range * cfg.max_range;
        // (azimuth, point) pairs so the sweep sort computes atan2 once per
        // point instead of once per comparison
        let mut pts: Vec<(f32, Point3)> = Vec::new();
        for &p in &self.world {
            // world → sensor frame: translate to the sensor, undo heading
            let d = (p - self.position).rotated_z(-self.heading);
            if d.x * d.x + d.y * d.y > range2 {
                continue;
            }
            let noise = Point3::new(gaussian(&mut rng), gaussian(&mut rng), gaussian(&mut rng))
                * cfg.noise_m;
            let q = d + noise;
            pts.push((q.y.atan2(q.x), q));
        }
        // a spinning LiDAR emits points in azimuthal sweep order
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let cloud = PointCloud::from_points(pts.into_iter().map(|(_, p)| p).collect());
        let queries = stride_queries(&cloud, cfg.queries_per_frame);
        Frame {
            index: self.frame,
            ego_position: self.position,
            ego_heading: self.heading,
            cloud,
            queries,
        }
    }
}

impl Iterator for FrameStream {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        if self.frame >= self.cfg.num_frames {
            return None;
        }
        let frame = self.render();
        // advance the pose for the next frame (frame 0 is at the origin)
        let dt = self.cfg.ego.frame_period_s;
        let step = Point3::new(self.heading.cos(), self.heading.sin(), 0.0)
            * (self.cfg.ego.speed_mps * dt);
        self.position += step;
        self.heading += self.cfg.ego.yaw_rate_rps * dt;
        self.frame += 1;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.cfg.num_frames - self.frame.min(self.cfg.num_frames);
        (left, Some(left))
    }
}

/// Deterministic stride subsample of `n` query points from a frame cloud.
fn stride_queries(cloud: &PointCloud, n: usize) -> Vec<Point3> {
    let len = cloud.len();
    if n == 0 || len == 0 {
        return Vec::new();
    }
    if n >= len {
        return cloud.points().to_vec();
    }
    (0..n).map(|i| cloud.point(i * len / n)).collect()
}

/// Everything a [`Crescent::run_stream`](crate::Crescent::run_stream) call
/// produces: the rendered frames, the per-frame neighbor sets, and the
/// engine's timing/energy report.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    /// The rendered frames, in order.
    pub frames: Vec<Frame>,
    /// Per-frame, per-query neighbor lists (identical to per-query
    /// [`SplitTree::search_one`](crescent_kdtree::SplitTree::search_one)).
    pub neighbor_sets: Vec<Vec<Vec<Neighbor>>>,
    /// Per-frame cycle and energy accounting.
    pub report: StreamReport,
}

impl StreamOutcome {
    /// Total neighbors found across the whole stream.
    pub fn total_neighbors(&self) -> usize {
        self.neighbor_sets.iter().flatten().map(Vec::len).sum()
    }
}

impl Crescent {
    /// Simulates a streaming multi-frame workload end to end: renders the
    /// [`FrameStream`] for `cfg`, then drives every frame back-to-back
    /// through the engine with this system's knobs and hardware
    /// configuration (batched two-stage search, inter-frame double
    /// buffering, per-frame energy ledger).
    ///
    /// The outcome is a pure function of `cfg` and `self` — see
    /// `tests/streaming.rs` for the bit-identical-rerun guarantee.
    ///
    /// # Examples
    ///
    /// ```
    /// use crescent::workload::FrameStreamConfig;
    /// use crescent::Crescent;
    ///
    /// let mut cfg = FrameStreamConfig::default();
    /// cfg.scene.total_points = 2_000;
    /// cfg.num_frames = 4;
    /// cfg.queries_per_frame = 32;
    /// let outcome = Crescent::new().run_stream(&cfg);
    /// assert_eq!(outcome.frames.len(), 4);
    /// assert_eq!(outcome.report.ledger.len(), 4);
    /// assert!(outcome.report.pipelined_cycles < outcome.report.serial_cycles);
    /// ```
    pub fn run_stream(&self, cfg: &FrameStreamConfig) -> StreamOutcome {
        let frames: Vec<Frame> = FrameStream::new(cfg).collect();
        let inputs: Vec<(&PointCloud, &[Point3])> =
            frames.iter().map(|f| (&f.cloud, f.queries.as_slice())).collect();
        let search = StreamSearchConfig { radius: cfg.radius, max_neighbors: cfg.max_neighbors };
        let (neighbor_sets, report) = run_frame_stream(&inputs, &search, self.knobs, &self.config);
        StreamOutcome { frames, neighbor_sets, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FrameStreamConfig {
        let mut cfg = FrameStreamConfig::default();
        cfg.scene.total_points = 4_000;
        cfg.scene.seed = 7;
        cfg.num_frames = 5;
        cfg.queries_per_frame = 64;
        cfg
    }

    #[test]
    fn stream_emits_configured_frames() {
        let cfg = small_cfg();
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        assert_eq!(frames.len(), 5);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.index, i);
            assert!(!f.cloud.is_empty());
            assert_eq!(f.queries.len(), 64);
        }
    }

    #[test]
    fn frames_are_deterministic() {
        let cfg = small_cfg();
        let a: Vec<Frame> = FrameStream::new(&cfg).collect();
        let b: Vec<Frame> = FrameStream::new(&cfg).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cloud, y.cloud);
            assert_eq!(x.queries, y.queries);
            assert_eq!(x.ego_position, y.ego_position);
        }
    }

    #[test]
    fn ego_actually_moves() {
        let cfg = small_cfg();
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        assert_eq!(frames[0].ego_position, Point3::ZERO);
        let last = frames.last().unwrap();
        assert!(last.ego_position.norm() > 1.0, "ego barely moved: {}", last.ego_position);
        // the world is static but the renders differ frame to frame
        assert_ne!(frames[0].cloud, frames[1].cloud);
    }

    #[test]
    fn frames_are_temporally_coherent() {
        // consecutive frames overlap heavily; distant frames less so
        let cfg = small_cfg();
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        let n0 = frames[0].cloud.len() as f64;
        let n1 = frames[1].cloud.len() as f64;
        assert!((n0 - n1).abs() / n0 < 0.2, "adjacent frame sizes {n0} vs {n1}");
    }

    #[test]
    fn frames_respect_range_cull_and_sweep_order() {
        let cfg = small_cfg();
        for f in FrameStream::new(&cfg) {
            for p in &f.cloud {
                let r = (p.x * p.x + p.y * p.y).sqrt();
                assert!(r <= cfg.max_range + 0.5, "point at range {r}");
            }
            let angles: Vec<f32> = f.cloud.iter().map(|p| p.y.atan2(p.x)).collect();
            assert!(angles.windows(2).all(|w| w[0] <= w[1] + 1e-6), "frame {}", f.index);
        }
    }

    #[test]
    fn zero_motion_freezes_geometry_except_noise() {
        let mut cfg = small_cfg();
        cfg.ego = EgoMotion { speed_mps: 0.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 };
        cfg.noise_m = 0.0;
        let frames: Vec<Frame> = FrameStream::new(&cfg).collect();
        assert_eq!(frames[0].cloud, frames[3].cloud, "no motion + no noise = identical frames");
    }

    #[test]
    fn run_stream_end_to_end() {
        let cfg = small_cfg();
        let outcome = Crescent::new().run_stream(&cfg);
        assert_eq!(outcome.frames.len(), 5);
        assert_eq!(outcome.neighbor_sets.len(), 5);
        assert_eq!(outcome.report.ledger.len(), 5);
        assert!(outcome.total_neighbors() > 0);
        assert!(outcome.report.mean_reuse_fraction() > 0.3, "stream should show locality");
    }
}
