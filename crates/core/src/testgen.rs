//! Test-support generators: adversarial random stream scenarios.
//!
//! Property tests and the scenario fuzzer (`tests/scenario_fuzz.rs`)
//! need whole random *workloads*, not just random values: an arbitrary
//! ego trajectory, an arbitrary [`StreamScenario`] with arbitrary
//! parameters, arbitrary density/dropout/query-count knobs — composed
//! into one [`FrameStreamConfig`] and driven end to end through
//! [`Crescent::run_stream`](crate::Crescent::run_stream). This module
//! packages that composition as a reusable proptest [`Strategy`]
//! ([`ScenarioGen`]) plus a greedy structural shrinker
//! ([`shrink_failing`]) for the vendored proptest stub, which does not
//! shrink on its own.
//!
//! It ships in the library (rather than a `#[cfg(test)]` module) so the
//! workspace-level integration tests can reuse it; it has no other
//! runtime role.

use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

use crate::workload::{EgoMotion, FrameStreamConfig, StreamScenario};
use crescent_accel::TreeMaintenance;

/// Strategy generating adversarial [`FrameStreamConfig`]s.
///
/// Every draw picks one of the ten [`StreamScenario`] shapes with
/// randomized parameters (occlusion wedges, dropout rates, speed
/// multipliers, sensor counts, query clusters, …), a random ego
/// trajectory (including stationary and spinning-in-place ones), a
/// random world size/seed, and random search knobs — deliberately
/// including the edges: zero queries per frame, single-frame streams,
/// `h_e = 0`, unlimited neighbor caps.
///
/// The bounds keep a single case affordable in CI; raise them for
/// deeper local hunts.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioGen {
    /// Upper bound (exclusive) on the world's point count.
    pub max_points: usize,
    /// Upper bound (inclusive) on the number of frames.
    pub max_frames: usize,
    /// Upper bound (inclusive) on queries per frame (0 is always a
    /// candidate — zero-query frames are a known-sharp edge).
    pub max_queries: usize,
}

impl Default for ScenarioGen {
    fn default() -> Self {
        ScenarioGen { max_points: 2_000, max_frames: 6, max_queries: 64 }
    }
}

impl ScenarioGen {
    fn scenario(&self, rng: &mut TestRng, num_frames: usize) -> StreamScenario {
        match rng.below(10) {
            0 => StreamScenario::Sweep,
            1 => StreamScenario::Registered,
            2 => StreamScenario::DynamicObjects { movers: 1 + rng.below(5) as usize },
            3 => StreamScenario::VariableDensity {
                min_keep_pct: 10 + rng.below(81) as u8,
                period: 2 + rng.below(5) as usize,
            },
            4 => StreamScenario::RotationBurst {
                at_frame: rng.below(num_frames.max(1) as u64) as usize,
                yaw_rad: (rng.unit_f64() as f32 - 0.5) * 4.0,
            },
            5 => StreamScenario::UrbanCanyon {
                sectors: 1 + rng.below(9) as usize,
                dropout_pct: rng.below(61) as u8,
            },
            6 => StreamScenario::Highway {
                speed_mult: 1.0 + rng.unit_f64() as f32 * 5.0,
                keep_pct: 5 + rng.below(96) as u8,
            },
            7 => StreamScenario::MultiSensor { sensors: 1 + rng.below(3) as usize },
            8 => StreamScenario::Weather { dropout_pct: rng.below(81) as u8 },
            _ => StreamScenario::DescendantReuse { clusters: 1 + rng.below(7) as usize },
        }
    }
}

impl Strategy for ScenarioGen {
    type Value = FrameStreamConfig;

    fn new_value(&self, rng: &mut TestRng) -> FrameStreamConfig {
        let mut cfg = FrameStreamConfig::default();
        cfg.scene.total_points =
            400 + rng.below(self.max_points.saturating_sub(400).max(1) as u64) as usize;
        cfg.scene.seed = rng.next_u64();
        cfg.num_frames = 1 + rng.below(self.max_frames.max(1) as u64) as usize;
        cfg.queries_per_frame = rng.below(self.max_queries as u64 + 1) as usize;
        cfg.ego = EgoMotion {
            speed_mps: rng.unit_f64() as f32 * 15.0,
            yaw_rate_rps: (rng.unit_f64() as f32 - 0.5),
            frame_period_s: 0.05 + rng.unit_f64() as f32 * 0.1,
        };
        cfg.max_range = 8.0 + rng.unit_f64() as f32 * 22.0;
        cfg.noise_m = rng.unit_f64() as f32 * 0.05;
        cfg.radius = 0.15 + rng.unit_f64() as f32 * 0.75;
        cfg.max_neighbors = match rng.below(4) {
            0 => None,
            _ => Some(1 + rng.below(40) as usize),
        };
        cfg.scenario = self.scenario(rng, cfg.num_frames);
        cfg.maintenance = if rng.below(2) == 0 {
            TreeMaintenance::RebuildEveryFrame
        } else {
            TreeMaintenance::refit()
        };
        cfg.elision_depth = rng.below(8) as usize;
        cfg
    }
}

/// Greedy structural shrinker for a failing [`FrameStreamConfig`].
///
/// The vendored proptest stub reproduces failures deterministically but
/// does not shrink them. This helper closes the gap: given a config on
/// which `fails` returns `true`, it repeatedly tries order-reducing
/// transformations — fewer frames, fewer points, fewer queries, zero
/// noise, a stationary ego, simpler scenario parameters — keeping each
/// step only if the failure survives, until no transformation makes the
/// case smaller. The result is the minimal config to check in as a
/// named regression test.
pub fn shrink_failing<F: Fn(&FrameStreamConfig) -> bool>(
    start: FrameStreamConfig,
    fails: F,
) -> FrameStreamConfig {
    assert!(fails(&start), "shrink_failing needs a failing case to start from");
    let mut cfg = start;
    loop {
        let mut shrunk = false;
        let candidates: [fn(&FrameStreamConfig) -> FrameStreamConfig; 8] = [
            |c| {
                let mut n = *c;
                n.num_frames = (n.num_frames / 2).max(1);
                n
            },
            |c| {
                let mut n = *c;
                n.num_frames = n.num_frames.saturating_sub(1).max(1);
                n
            },
            |c| {
                let mut n = *c;
                n.scene.total_points = (n.scene.total_points / 2).max(64);
                n
            },
            |c| {
                let mut n = *c;
                n.queries_per_frame /= 2;
                n
            },
            |c| {
                let mut n = *c;
                n.noise_m = 0.0;
                n
            },
            |c| {
                let mut n = *c;
                n.ego = EgoMotion { speed_mps: 0.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 };
                n
            },
            |c| {
                let mut n = *c;
                n.scenario = StreamScenario::Registered;
                n
            },
            |c| {
                let mut n = *c;
                n.elision_depth = 0;
                n
            },
        ];
        for candidate in &candidates {
            let next = candidate(&cfg);
            if !same_config(&next, &cfg) && fails(&next) {
                cfg = next;
                shrunk = true;
            }
        }
        if !shrunk {
            return cfg;
        }
    }
}

/// Structural equality on the fields [`shrink_failing`] mutates (the
/// config does not implement `PartialEq` because of its float fields).
fn same_config(a: &FrameStreamConfig, b: &FrameStreamConfig) -> bool {
    a.num_frames == b.num_frames
        && a.scene.total_points == b.scene.total_points
        && a.queries_per_frame == b.queries_per_frame
        && a.noise_m == b.noise_m
        && a.ego.speed_mps == b.ego.speed_mps
        && a.ego.yaw_rate_rps == b.ego.yaw_rate_rps
        && a.scenario == b.scenario
        && a.elision_depth == b.elision_depth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_label() {
        let strat = ScenarioGen::default();
        let mut a = TestRng::deterministic("testgen");
        let mut b = TestRng::deterministic("testgen");
        for _ in 0..32 {
            let x = strat.new_value(&mut a);
            let y = strat.new_value(&mut b);
            assert!(same_config(&x, &y));
            assert_eq!(x.scene.seed, y.scene.seed);
        }
    }

    #[test]
    fn generator_hits_every_scenario_shape_and_the_sharp_edges() {
        let strat = ScenarioGen::default();
        let mut rng = TestRng::deterministic("coverage");
        let mut labels = std::collections::BTreeSet::new();
        let mut saw_zero_queries = false;
        let mut saw_single_frame = false;
        let mut saw_exact = false;
        for _ in 0..256 {
            let cfg = strat.new_value(&mut rng);
            labels.insert(cfg.scenario.label());
            saw_zero_queries |= cfg.queries_per_frame == 0;
            saw_single_frame |= cfg.num_frames == 1;
            saw_exact |= cfg.elision_depth == 0;
            assert!(cfg.num_frames >= 1 && cfg.num_frames <= strat.max_frames);
            assert!(cfg.scene.total_points >= 400);
            assert!(cfg.queries_per_frame <= strat.max_queries);
        }
        assert_eq!(labels.len(), 10, "all ten scenario shapes drawn: {labels:?}");
        assert!(saw_zero_queries && saw_single_frame && saw_exact);
    }

    #[test]
    fn shrinker_reaches_a_fixpoint_and_preserves_failure() {
        let strat = ScenarioGen::default();
        let mut rng = TestRng::deterministic("shrink");
        let cfg = strat.new_value(&mut rng);
        // a synthetic "failure": any stream with at least one frame
        let fails = |c: &FrameStreamConfig| c.num_frames >= 1;
        let min = shrink_failing(cfg, fails);
        assert!(fails(&min));
        assert_eq!(min.num_frames, 1);
        assert_eq!(min.scene.total_points, 64);
        assert_eq!(min.queries_per_frame, 0);
        assert_eq!(min.noise_m, 0.0);
        assert_eq!(min.elision_depth, 0);
        assert!(min.scenario == StreamScenario::Registered);
    }
}
