//! Tenant workload types for the multi-tenant streaming service
//! (`crescent-serve`).
//!
//! A *tenant* is one subscriber of the shared neighbor-search service: a
//! seeded [`FrameStream`](crate::FrameStream) acting as its query
//! source, plus the service-level contract attached to it — when its
//! frames arrive relative to the service tick ([`TenantSpec::arrival_phase`])
//! and how long each frame may take before it counts as a deadline miss
//! ([`TenantSpec::deadline_cycles`]). The scheduler in `crescent-serve`
//! admits tenant frames, batches their ready queries into shared
//! wavefronts, and grades every frame against this contract.
//!
//! [`mixed_tenants`] builds the canonical deterministic N-tenant mix the
//! serve grid and its CI baseline use: scenarios cycle through
//! [`StreamScenario::canonical_matrix`], seeds and phases are derived
//! from the tenant index alone, and deadlines cycle through three
//! latency tiers so deadline-aware dispatch has something to reorder.

use serde::{Deserialize, Serialize};

use crate::workload::{FrameStreamConfig, StreamScenario};

/// One tenant of the streaming service: a seeded query workload plus its
/// arrival phase and per-frame latency contract.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Stable tenant name (report key; `"t03-urban_canyon"` style for
    /// the canonical mixes).
    pub name: String,
    /// The tenant's frame stream. Its `scenario` shapes the query
    /// distribution; frame `k`'s queries are issued to the service at
    /// `k · frame_period + arrival_phase` modeled cycles.
    pub workload: FrameStreamConfig,
    /// Offset of this tenant's frame arrivals within the service frame
    /// period, in modeled cycles.
    pub arrival_phase: u64,
    /// Per-frame latency budget in modeled cycles: a frame whose
    /// completion minus arrival exceeds this is a deadline miss (it is
    /// still answered — the miss is recorded, not enforced by dropping).
    pub deadline_cycles: u64,
}

impl TenantSpec {
    /// Absolute deadline of frame `k` given the service frame period.
    pub fn deadline_at(&self, frame: usize, frame_period: u64) -> u64 {
        self.arrival_at(frame, frame_period) + self.deadline_cycles
    }

    /// Arrival time of frame `k` given the service frame period.
    pub fn arrival_at(&self, frame: usize, frame_period: u64) -> u64 {
        frame as u64 * frame_period + self.arrival_phase
    }
}

/// Splitmix64 — the same deterministic index-to-seed mixer the workload
/// layer uses for per-frame noise, reused here so tenant seeds are a
/// pure function of the tenant index.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deadline tiers of the canonical mix, as multiples of the base budget:
/// tenant `i` gets tier `i % 3` — interactive (1×), standard (2×),
/// batch (4×) — so EDF dispatch actually reorders arrivals.
pub const DEADLINE_TIERS: [u64; 3] = [1, 2, 4];

/// Builds the canonical deterministic mix of `count` tenants from a
/// shared base workload.
///
/// Tenant `i` (zero-based):
///
/// * runs scenario `canonical_matrix()[i % 10]` — a ≥ 10-tenant mix
///   covers every canonical workload shape — except that in mixes of
///   2..=9 tenants the **last** tenant runs
///   [`StreamScenario::DescendantReuse`] instead, so every multi-tenant
///   mix exercises the banked arbiter's reuse-salvage path (which the
///   matrix otherwise parks at index 9, out of reach of the canonical
///   8-tenant serve mixes);
/// * reseeds the base scene with `splitmix(i + 1)` so no two tenants
///   share a point cloud or query sequence;
/// * arrives at phase `i · frame_period / count`, spreading the mix
///   evenly across the service period;
/// * gets deadline tier `i % 3` ([`DEADLINE_TIERS`] × `base_deadline`).
///
/// Everything is a pure function of `(count, base, frame_period,
/// base_deadline)` — the property the byte-exact serve baseline relies
/// on.
pub fn mixed_tenants(
    count: usize,
    base: &FrameStreamConfig,
    frame_period: u64,
    base_deadline: u64,
) -> Vec<TenantSpec> {
    let matrix = StreamScenario::canonical_matrix();
    (0..count)
        .map(|i| {
            let scenario = if i + 1 == count && (2..matrix.len()).contains(&count) {
                StreamScenario::DescendantReuse { clusters: 4 }
            } else {
                matrix[i % matrix.len()]
            };
            let mut workload = *base;
            workload.scenario = scenario;
            workload.scene.seed = base.scene.seed ^ splitmix(i as u64 + 1);
            TenantSpec {
                name: format!("t{i:02}-{}", scenario.label()),
                workload,
                arrival_phase: (i as u64).wrapping_mul(frame_period) / count.max(1) as u64,
                deadline_cycles: base_deadline * DEADLINE_TIERS[i % DEADLINE_TIERS.len()],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> FrameStreamConfig {
        FrameStreamConfig::default()
    }

    #[test]
    fn mix_is_a_pure_function_of_its_inputs() {
        let a = mixed_tenants(8, &base(), 6_000, 12_000);
        let b = mixed_tenants(8, &base(), 6_000, 12_000);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.arrival_phase, y.arrival_phase);
            assert_eq!(x.deadline_cycles, y.deadline_cycles);
            assert_eq!(x.workload.scene.seed, y.workload.scene.seed);
        }
    }

    #[test]
    fn small_mixes_end_with_a_descendant_reuse_tenant() {
        // mixes of 2..=9 swap their last tenant to DescendantReuse so
        // batched dispatch exercises the reuse-salvage path; 1-tenant
        // and >= 10-tenant mixes follow the matrix untouched
        for count in 2..10 {
            let tenants = mixed_tenants(count, &base(), 6_000, 12_000);
            let last = &tenants[count - 1];
            assert_eq!(
                last.name,
                format!("t{:02}-descendant_reuse", count - 1),
                "mix of {count} must cover reuse"
            );
            assert!(last.workload.scenario.descendant_reuse());
            assert!(
                tenants[..count - 1].iter().all(|t| !t.workload.scenario.descendant_reuse()),
                "only the last tenant is overridden"
            );
        }
        assert_eq!(mixed_tenants(1, &base(), 6_000, 12_000)[0].name, "t00-sweep");
        let ten = mixed_tenants(10, &base(), 6_000, 12_000);
        assert_eq!(ten[9].name, "t09-descendant_reuse", "index 9 is reuse by the matrix itself");
    }

    #[test]
    fn mix_covers_scenarios_and_staggers_contracts() {
        let tenants = mixed_tenants(12, &base(), 6_000, 12_000);
        // scenarios cycle through the canonical matrix
        assert_eq!(tenants[0].name, "t00-sweep");
        assert_eq!(tenants[1].name, "t01-registered");
        assert_eq!(tenants[10].name, "t10-sweep", "11th tenant wraps the matrix");
        // seeds are all distinct
        let mut seeds: Vec<u64> = tenants.iter().map(|t| t.workload.scene.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12, "no two tenants share a scene seed");
        // phases spread inside one period, in order
        for w in tenants.windows(2) {
            assert!(w[0].arrival_phase <= w[1].arrival_phase);
        }
        assert!(tenants.iter().all(|t| t.arrival_phase < 6_000));
        // deadline tiers cycle 1x / 2x / 4x
        assert_eq!(tenants[0].deadline_cycles, 12_000);
        assert_eq!(tenants[1].deadline_cycles, 24_000);
        assert_eq!(tenants[2].deadline_cycles, 48_000);
        assert_eq!(tenants[3].deadline_cycles, 12_000);
    }

    #[test]
    fn arrival_and_deadline_schedules() {
        let t = &mixed_tenants(4, &base(), 1_000, 500)[1];
        assert_eq!(t.arrival_phase, 250);
        assert_eq!(t.arrival_at(0, 1_000), 250);
        assert_eq!(t.arrival_at(3, 1_000), 3_250);
        assert_eq!(t.deadline_at(3, 1_000), 3_250 + t.deadline_cycles);
    }

    #[test]
    fn zero_count_mix_is_empty() {
        assert!(mixed_tenants(0, &base(), 1_000, 500).is_empty());
    }
}
