//! High-level entry point tying the hardware simulator and the
//! approximation-aware networks together.

use serde::{Deserialize, Serialize};

use crescent_accel::{
    run_crescent_search, run_network, AcceleratorConfig, CrescentKnobs, NetworkSpec,
    PipelineReport, SearchEngineReport, Variant,
};
use crescent_kdtree::KdTree;
use crescent_models::ApproxSetting;
use crescent_pointcloud::{Neighbor, Point3, PointCloud};

/// The Crescent system: an accelerator configuration plus the active
/// approximation knobs `h = <h_t, h_e>`.
///
/// # Examples
///
/// ```
/// use crescent::Crescent;
/// use crescent_pointcloud::{Point3, PointCloud};
///
/// let cloud: PointCloud = (0..2048)
///     .map(|i| Point3::new((i % 16) as f32, ((i / 16) % 16) as f32, (i / 256) as f32))
///     .collect();
/// let system = Crescent::new();
/// let queries = [Point3::new(8.0, 8.0, 4.0)];
/// let (results, report) = system.search(&cloud, &queries, 2.0, Some(16));
/// assert!(!results[0].is_empty());
/// assert_eq!(report.dram_random_bytes, 0, "Crescent DRAM is fully streaming");
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Crescent {
    /// Hardware configuration (Sec 6 defaults).
    pub config: AcceleratorConfig,
    /// Approximation knobs.
    pub knobs: CrescentKnobs,
}

impl Default for Crescent {
    fn default() -> Self {
        Crescent::new()
    }
}

impl Crescent {
    /// The paper's default operating point: the Sec 6 hardware with
    /// `h_t = 4`, `h_e = 12`, and both elisions on (ANS+BCE).
    pub fn new() -> Self {
        let knobs = CrescentKnobs::default();
        Crescent { config: AcceleratorConfig::ans_bce(knobs.elision_height), knobs }
    }

    /// Crescent with custom knobs (still ANS+BCE).
    pub fn with_knobs(knobs: CrescentKnobs) -> Self {
        Crescent { config: AcceleratorConfig::ans_bce(knobs.elision_height), knobs }
    }

    /// The ANS-only configuration (no bank-conflict elision).
    pub fn ans_only(top_height: usize) -> Self {
        Crescent {
            config: AcceleratorConfig::ans(),
            knobs: CrescentKnobs { top_height, elision_height: usize::MAX },
        }
    }

    /// The [`ApproxSetting`] equivalent of this system's knobs, for use
    /// with the `crescent-models` accuracy stack.
    pub fn approx_setting(&self) -> ApproxSetting {
        ApproxSetting {
            top_height: self.knobs.top_height,
            elision_height: self.config.search_elision.map(|e| e.elision_height),
            tree_banks: self.config.tree_buffer.num_banks,
            num_pes: self.config.num_pes,
            point_banks: self.config.point_buffer.num_banks,
            elide_aggregation: self.config.aggregation_elision,
        }
    }

    /// Runs the fully-streaming approximate neighbor search on the
    /// simulated engine.
    pub fn search(
        &self,
        cloud: &PointCloud,
        queries: &[Point3],
        radius: f32,
        max_neighbors: Option<usize>,
    ) -> (Vec<Vec<Neighbor>>, SearchEngineReport) {
        let tree = KdTree::build(cloud);
        run_crescent_search(
            &tree,
            self.knobs.top_height,
            queries,
            radius,
            max_neighbors,
            &self.config,
        )
    }

    /// Simulates one evaluation network end-to-end on this system
    /// (ANS+BCE by default).
    pub fn simulate(&self, spec: &NetworkSpec, cloud: &PointCloud) -> PipelineReport {
        run_network(spec, cloud, Variant::AnsBce, self.knobs, &self.config)
    }

    /// Simulates one network on an arbitrary system variant, sharing this
    /// system's hardware configuration and knobs.
    pub fn simulate_variant(
        &self,
        spec: &NetworkSpec,
        cloud: &PointCloud,
        variant: Variant,
    ) -> PipelineReport {
        run_network(spec, cloud, variant, self.knobs, &self.config)
    }
}

/// Formats a simple aligned text table (used by the repro harness and the
/// examples).
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!("{cell:<w$}  "));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(headers.iter().map(|s| s.to_string()).collect(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point3::new(rng.random::<f32>(), rng.random::<f32>(), rng.random::<f32>()))
            .collect()
    }

    #[test]
    fn default_is_paper_operating_point() {
        let c = Crescent::new();
        assert_eq!(c.knobs.top_height, 4);
        assert_eq!(c.knobs.elision_height, 12);
        assert!(c.config.aggregation_elision);
        let s = c.approx_setting();
        assert_eq!(s.top_height, 4);
        assert_eq!(s.elision_height, Some(12));
        assert!(s.elide_aggregation);
    }

    #[test]
    fn ans_only_disables_elision() {
        let c = Crescent::ans_only(3);
        let s = c.approx_setting();
        assert_eq!(s.top_height, 3);
        assert_eq!(s.elision_height, None);
        assert!(!s.elide_aggregation);
    }

    #[test]
    fn search_is_streaming() {
        let cloud = random_cloud(4096, 1);
        let c = Crescent::new();
        let queries: Vec<Point3> = random_cloud(32, 2).into_points();
        let (results, report) = c.search(&cloud, &queries, 0.2, Some(8));
        assert_eq!(results.len(), 32);
        assert_eq!(report.dram_random_bytes, 0);
        assert!(report.dram_streaming_bytes > 0);
    }

    #[test]
    fn simulate_beats_mesorasi() {
        let cloud = random_cloud(8192, 3);
        let c = Crescent::new();
        let spec = NetworkSpec::f_pointnet();
        let ours = c.simulate(&spec, &cloud);
        let meso = c.simulate_variant(&spec, &cloud, Variant::Mesorasi);
        assert!(ours.total_cycles() < meso.total_cycles());
    }

    #[test]
    fn table_formatting() {
        let t = format_table(
            &["net", "speedup"],
            &[vec!["DensePoint".into(), "3.1".into()], vec!["avg".into(), "1.9".into()]],
        );
        assert!(t.contains("DensePoint"));
        assert!(t.lines().count() == 4);
    }
}
