//! Aggregation-unit simulator (the Mesorasi-style neighbor gather of
//! Sec 2.3 / Fig 12, with Crescent's elision of Sec 4.2).
//!
//! For every output point, the unit fetches the point's `k` neighbors from
//! the banked Point Buffer using the neighbor-index matrix. Points are
//! interleaved across banks by index. Up to `ports` fetches issue per
//! cycle:
//!
//! * **baseline** — conflicted fetches serialize (extra rounds);
//! * **elision** — conflicted fetches return the winner's data in the same
//!   round, which implicitly *replicates* a neighbor (the MLP input matrix
//!   keeps its expected size, Sec 4.2).

use serde::{Deserialize, Serialize};

use crescent_memsim::{BankedSram, SramConfig};

/// Outcome of simulating an aggregation pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregationReport {
    /// SRAM arbitration rounds (cycle-count proxy for the gather).
    pub rounds: u64,
    /// Total neighbor-fetch requests issued (including re-issues).
    pub requests: u64,
    /// Fetches that returned their own data.
    pub grants: u64,
    /// Conflicted fetches (stalled or elided).
    pub conflicts: u64,
    /// Conflicted fetches resolved by replication (elision mode).
    pub elided: u64,
}

impl AggregationReport {
    /// Fraction of requests that bank-conflicted — the Fig 5 metric.
    pub fn conflict_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.requests as f64
        }
    }

    /// Merges another report.
    pub fn merge(&mut self, other: &AggregationReport) {
        self.rounds += other.rounds;
        self.requests += other.requests;
        self.grants += other.grants;
        self.conflicts += other.conflicts;
        self.elided += other.elided;
    }
}

/// Simulates gathering each `neighbor_lists[i]` from a Point Buffer with
/// configuration `sram`, issuing at most `ports` requests per cycle.
///
/// Returns the report; when `elide` is set, the replicated fetch count is
/// in [`AggregationReport::elided`].
///
/// # Panics
///
/// Panics if `ports == 0`.
pub fn simulate_aggregation(
    neighbor_lists: &[Vec<usize>],
    sram: SramConfig,
    ports: usize,
    elide: bool,
) -> AggregationReport {
    assert!(ports > 0, "aggregation needs at least one port");
    let mut bank = BankedSram::new(sram);
    let word = sram.word_bytes as u64;
    let mut report = AggregationReport::default();
    // fixed per-chunk work: reading the neighbor-index words from the
    // Neighbor Index Buffer and writing the gathered rows onward
    const CHUNK_OVERHEAD: u64 = 2;
    // recycled gather buffer — the loop below runs once per simulated
    // chunk, so per-chunk allocation is hot
    let mut addrs: Vec<u64> = Vec::with_capacity(ports);
    for list in neighbor_lists {
        for chunk in list.chunks(ports) {
            if elide {
                // everything is eligible, so the per-port outcomes carry no
                // information beyond the SRAM counters — fold with an empty
                // sink and read `elided` off the counters afterwards
                bank.arbitrate_fold(
                    chunk.len(),
                    |i| Some(chunk[i] as u64 * word),
                    |_| true,
                    |_, _, _| {},
                );
                report.rounds += 1 + CHUNK_OVERHEAD;
            } else {
                addrs.clear();
                addrs.extend(chunk.iter().map(|&i| i as u64 * word));
                report.rounds += bank.gather_serializing(&addrs) + CHUNK_OVERHEAD;
            }
        }
    }
    let c = bank.counters();
    report.requests = c.requests;
    report.grants = c.grants;
    report.conflicts = c.conflicts;
    report.elided = c.elided;
    report
}

/// Measures the single-round conflict rate of issuing each neighbor list
/// as one batch of concurrent requests — the Fig 5 experiment (16 banks,
/// 16 concurrent requests, no retries counted).
pub fn conflict_rate_single_issue(neighbor_lists: &[Vec<usize>], sram: SramConfig) -> f64 {
    let mut bank = BankedSram::new(sram);
    let word = sram.word_bytes as u64;
    for list in neighbor_lists {
        for chunk in list.chunks(sram.num_banks.max(1)) {
            let addrs: Vec<Option<u64>> = chunk.iter().map(|&i| Some(i as u64 * word)).collect();
            bank.arbitrate(&addrs, true);
        }
    }
    bank.counters().conflict_rate()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(banks: usize) -> SramConfig {
        SramConfig { num_banks: banks, word_bytes: 4, capacity_bytes: 64 << 10 }
    }

    #[test]
    fn conflict_free_lists_take_one_round_each() {
        // neighbors hit distinct banks
        let lists = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]];
        let r = simulate_aggregation(&lists, cfg(4), 4, false);
        // 1 gather round + 2 overhead rounds per chunk
        assert_eq!(r.rounds, 6);
        assert_eq!(r.conflicts, 0);
        assert_eq!(r.grants, 8);
    }

    #[test]
    fn serializing_conflicts_add_rounds() {
        // all four neighbors in the same bank
        let lists = vec![vec![0, 4, 8, 12]];
        let r = simulate_aggregation(&lists, cfg(4), 4, false);
        // 4 serialized gather rounds + 2 overhead rounds
        assert_eq!(r.rounds, 6);
        assert_eq!(r.conflicts, 3 + 2 + 1);
    }

    #[test]
    fn eliding_caps_rounds_at_one_per_chunk() {
        let lists = vec![vec![0, 4, 8, 12], vec![1, 5, 9, 13]];
        let r = simulate_aggregation(&lists, cfg(4), 4, true);
        // (1 gather + 2 overhead) per chunk
        assert_eq!(r.rounds, 6);
        assert_eq!(r.elided, 6);
        // elided fetches replicate: grants + elided == requests
        assert_eq!(r.grants + r.elided, r.requests);
    }

    #[test]
    fn elision_never_slower() {
        let mut x = 7u64;
        let lists: Vec<Vec<usize>> = (0..50)
            .map(|_| {
                (0..16)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        ((x >> 11) % 1024) as usize
                    })
                    .collect()
            })
            .collect();
        let base = simulate_aggregation(&lists, cfg(16), 16, false);
        let el = simulate_aggregation(&lists, cfg(16), 16, true);
        assert!(el.rounds <= base.rounds);
        assert!(base.conflicts > 0, "random indices should conflict");
        assert_eq!(el.rounds, 150, "three rounds per 16-wide chunk");
    }

    #[test]
    fn single_issue_conflict_rate_in_fig5_range() {
        // random neighbor indices over a big cloud, 16 banks, 16 requests:
        // the paper reports 38-57% across networks
        let mut x = 3u64;
        let lists: Vec<Vec<usize>> = (0..200)
            .map(|_| {
                (0..16)
                    .map(|_| {
                        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                        ((x >> 17) % 4096) as usize
                    })
                    .collect()
            })
            .collect();
        let rate = conflict_rate_single_issue(&lists, cfg(16));
        assert!(rate > 0.25 && rate < 0.70, "rate {rate}");
    }

    #[test]
    fn empty_lists() {
        let r = simulate_aggregation(&[], cfg(4), 4, false);
        assert_eq!(r, AggregationReport::default());
        let r = simulate_aggregation(&[vec![]], cfg(4), 4, true);
        assert_eq!(r.rounds, 0);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        let _ = simulate_aggregation(&[], cfg(4), 0, false);
    }

    #[test]
    fn merge_reports() {
        let a = AggregationReport { rounds: 1, requests: 2, grants: 2, conflicts: 0, elided: 0 };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.rounds, 2);
        assert_eq!(b.requests, 4);
    }
}
