//! End-to-end pipeline simulation for the four evaluation networks
//! (Tbl 1) across the five systems of Fig 14: GPU, Tigris+GPU, Mesorasi,
//! ANS, and ANS+BCE.
//!
//! A network is a sequence of set-abstraction-style layers (search →
//! aggregate → shared MLP) plus a head MLP; the per-layer point/centroid
//! counts are drawn from an input point cloud, so the search statistics
//! come from real traversals rather than analytic formulas. The layer
//! shapes are scaled-down versions of the published architectures, chosen
//! so the neighbor-search time share matches the paper's characterization
//! (DensePoint search-dominated at ~80 %, the others near 50/50 on the
//! baseline accelerator).

use serde::{Deserialize, Serialize};

use crescent_kdtree::{KdTree, NODE_BYTES};
use crescent_memsim::EnergyLedger;
use crescent_pointcloud::{replicate_to_k, Point3, PointCloud, POINT_BYTES};

use crate::aggregation::{simulate_aggregation, AggregationReport};
use crate::config::AcceleratorConfig;
use crate::engine::{run_crescent_search, run_tigris_search, SearchEngineReport};
use crate::gpu::GpuModel;
use crate::systolic::{mlp_report, SystolicReport};

/// Which system executes the network (the Fig 14 legend).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Mobile Pascal GPU for everything.
    Gpu,
    /// Tigris neighbor-search accelerator + GPU feature computation.
    TigrisGpu,
    /// Mesorasi: Tigris search + systolic feature computation, no elision.
    Mesorasi,
    /// Crescent with approximate neighbor search only.
    Ans,
    /// Crescent with approximate search and bank-conflict elision.
    AnsBce,
}

impl Variant {
    /// All variants in the paper's plotting order.
    pub const ALL: [Variant; 5] =
        [Variant::Ans, Variant::AnsBce, Variant::Mesorasi, Variant::TigrisGpu, Variant::Gpu];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Gpu => "GPU",
            Variant::TigrisGpu => "Tigris+GPU",
            Variant::Mesorasi => "Mesorasi",
            Variant::Ans => "ANS",
            Variant::AnsBce => "ANS+BCE",
        }
    }
}

/// Crescent's approximation knobs `h = <h_t, h_e>` (Sec 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrescentKnobs {
    /// Top-tree height `h_t`.
    pub top_height: usize,
    /// Elision height `h_e`.
    pub elision_height: usize,
}

impl Default for CrescentKnobs {
    fn default() -> Self {
        // the Fig 13 operating point
        CrescentKnobs { top_height: 4, elision_height: 12 }
    }
}

/// One search→aggregate→MLP layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Input points searched over.
    pub n_points: usize,
    /// Output centroids (queries).
    pub n_centroids: usize,
    /// Neighbors aggregated per centroid.
    pub k: usize,
    /// Search radius (on unit-sphere-normalized clouds).
    pub radius: f32,
    /// Shared-MLP widths starting at the input channel count.
    pub mlp_dims: Vec<usize>,
}

/// A full network: layers plus a head MLP applied to the final features.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Network name (Tbl 1).
    pub name: String,
    /// Set-abstraction-style layers.
    pub layers: Vec<LayerSpec>,
    /// Head MLP widths (applied to the last layer's centroid features).
    pub head_dims: Vec<usize>,
}

impl NetworkSpec {
    /// PointNet++ classification (c): three SA layers + global head.
    pub fn pointnet2_classification() -> Self {
        NetworkSpec {
            name: "PointNet++ (c)".into(),
            layers: vec![
                LayerSpec {
                    n_points: 4096,
                    n_centroids: 2048,
                    k: 32,
                    radius: 0.05,
                    mlp_dims: vec![3, 32, 64],
                },
                LayerSpec {
                    n_points: 1024,
                    n_centroids: 512,
                    k: 32,
                    radius: 0.1,
                    mlp_dims: vec![67, 96],
                },
                LayerSpec {
                    n_points: 512,
                    n_centroids: 128,
                    k: 32,
                    radius: 0.2,
                    mlp_dims: vec![99, 128],
                },
            ],
            head_dims: vec![128, 128, 10],
        }
    }

    /// PointNet++ segmentation (s): SA encoder + per-point decoder MLPs.
    pub fn pointnet2_segmentation() -> Self {
        NetworkSpec {
            name: "PointNet++ (s)".into(),
            layers: vec![
                LayerSpec {
                    n_points: 4096,
                    n_centroids: 2048,
                    k: 32,
                    radius: 0.05,
                    mlp_dims: vec![3, 32, 64],
                },
                LayerSpec {
                    n_points: 1024,
                    n_centroids: 512,
                    k: 48,
                    radius: 0.1,
                    mlp_dims: vec![67, 96],
                },
                LayerSpec {
                    n_points: 512,
                    n_centroids: 128,
                    k: 32,
                    radius: 0.2,
                    mlp_dims: vec![99, 128],
                },
                // feature-propagation stage modeled as one more
                // gather+MLP layer over the dense points
                LayerSpec {
                    n_points: 2048,
                    n_centroids: 2048,
                    k: 3,
                    radius: 0.15,
                    mlp_dims: vec![128, 96],
                },
            ],
            head_dims: vec![96, 64, 50],
        }
    }

    /// DensePoint-like: many narrow, densely-connected layers; neighbor
    /// search dominates its runtime (81 % per Sec 7.2).
    pub fn densepoint() -> Self {
        let mut layers = Vec::new();
        // a stalk of dense blocks: every point queries its neighborhood
        // (n_centroids == n_points) with a narrow growth-rate MLP, so
        // neighbor search dominates the runtime
        for i in 0..6 {
            layers.push(LayerSpec {
                n_points: 4096,
                n_centroids: 4096,
                k: 16,
                radius: 0.05 + 0.01 * i as f32,
                mlp_dims: vec![3 + 24 * i, 32, 24],
            });
        }
        NetworkSpec { name: "DensePoint".into(), layers, head_dims: vec![147, 128, 10] }
    }

    /// F-PointNet-like: frustum segmentation + box-estimation nets.
    pub fn f_pointnet() -> Self {
        NetworkSpec {
            name: "F-PointNet".into(),
            layers: vec![
                LayerSpec {
                    n_points: 2048,
                    n_centroids: 1024,
                    k: 32,
                    radius: 0.06,
                    mlp_dims: vec![3, 32, 64],
                },
                LayerSpec {
                    n_points: 512,
                    n_centroids: 256,
                    k: 32,
                    radius: 0.12,
                    mlp_dims: vec![67, 96],
                },
                LayerSpec {
                    n_points: 128,
                    n_centroids: 64,
                    k: 32,
                    radius: 0.25,
                    mlp_dims: vec![99, 128],
                },
            ],
            head_dims: vec![128, 64, 7],
        }
    }

    /// All four evaluation networks in Tbl 1 order.
    pub fn evaluation_suite() -> Vec<NetworkSpec> {
        vec![
            NetworkSpec::pointnet2_classification(),
            NetworkSpec::pointnet2_segmentation(),
            NetworkSpec::densepoint(),
            NetworkSpec::f_pointnet(),
        ]
    }
}

/// Per-stage cycle breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCycles {
    /// Neighbor-search cycles.
    pub search: u64,
    /// Aggregation cycles.
    pub aggregation: u64,
    /// MLP (systolic / GPU GEMM) cycles.
    pub mlp: u64,
}

impl StageCycles {
    /// Total cycles (stages serialized).
    pub fn total(&self) -> u64 {
        self.search + self.aggregation + self.mlp
    }
}

/// Result of simulating one network on one system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PipelineReport {
    /// The simulated system.
    pub variant: Variant,
    /// Network name.
    pub network: String,
    /// Cycle breakdown.
    pub cycles: StageCycles,
    /// Energy breakdown.
    pub energy: EnergyLedger,
    /// Aggregated neighbor-search counters.
    pub search: SearchEngineReport,
    /// Aggregated gather counters.
    pub aggregation: AggregationReport,
    /// Aggregated systolic counters (zero for GPU variants).
    pub systolic: SystolicReport,
}

impl PipelineReport {
    /// Total latency in cycles.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.total()
    }
}

/// Deterministic stride subsample of `n` points (cheap stand-in for FPS in
/// the performance pipeline; the accuracy pipeline in `crescent-models`
/// uses true FPS).
fn stride_sample(cloud: &PointCloud, n: usize) -> Vec<Point3> {
    let len = cloud.len();
    if n == 0 || len == 0 {
        return Vec::new();
    }
    if n >= len {
        return cloud.points().to_vec();
    }
    (0..n).map(|i| cloud.point(i * len / n)).collect()
}

/// Simulates `spec` over `cloud` on `variant`.
///
/// `knobs` applies to the Crescent variants ([`Variant::Ans`] ignores
/// `elision_height`); baselines use exact or Tigris-style search.
pub fn run_network(
    spec: &NetworkSpec,
    cloud: &PointCloud,
    variant: Variant,
    knobs: CrescentKnobs,
    base: &AcceleratorConfig,
) -> PipelineReport {
    let config = match variant {
        Variant::Ans => {
            // ANS hardware still has a banked tree buffer: conflicts stall
            // (elision height above any tree ⇒ no fetch is ever dropped)
            let mut c = *base;
            c.search_elision = Some(crescent_kdtree::ElisionConfig {
                elision_height: usize::MAX,
                num_banks: base.tree_buffer.num_banks,
                descendant_reuse: false,
            });
            c.aggregation_elision = false;
            c
        }
        Variant::AnsBce => {
            let mut c = *base;
            c.search_elision = Some(crescent_kdtree::ElisionConfig {
                elision_height: knobs.elision_height,
                num_banks: base.tree_buffer.num_banks,
                descendant_reuse: false,
            });
            c.aggregation_elision = true;
            c
        }
        _ => {
            let mut c = *base;
            c.search_elision = None;
            c.aggregation_elision = false;
            c
        }
    };
    let gpu = GpuModel::default();
    let em = &config.energy;

    let mut cycles = StageCycles::default();
    let mut energy = EnergyLedger::new();
    let mut search_total = SearchEngineReport::default();
    let mut agg_total = AggregationReport::default();
    let mut sys_total = SystolicReport::default();

    for layer in &spec.layers {
        let points: PointCloud = stride_sample(cloud, layer.n_points).into_iter().collect();
        let queries = stride_sample(&points, layer.n_centroids);
        let tree = KdTree::build(&points);

        // ---- neighbor search ----
        let (results, ns) = match variant {
            Variant::Gpu => {
                // brute force on the GPU; neighbor sets are exact
                let g = gpu.neighbor_search(points.len(), queries.len());
                cycles.search += g.ns_cycles;
                energy.compute += g.energy;
                let res: Vec<Vec<crescent_pointcloud::Neighbor>> = queries
                    .iter()
                    .map(|&q| crescent_kdtree::radius_search(&tree, q, layer.radius, Some(layer.k)))
                    .collect();
                (res, SearchEngineReport::default())
            }
            Variant::TigrisGpu | Variant::Mesorasi => {
                let (res, rep) = run_tigris_search(
                    &tree,
                    knobs.top_height,
                    &queries,
                    layer.radius,
                    Some(layer.k),
                    &config,
                );
                cycles.search += rep.cycles;
                charge_search_energy(&mut energy, em, &rep);
                (res, rep)
            }
            Variant::Ans | Variant::AnsBce => {
                let (res, rep) = run_crescent_search(
                    &tree,
                    knobs.top_height,
                    &queries,
                    layer.radius,
                    Some(layer.k),
                    &config,
                );
                cycles.search += rep.cycles;
                charge_search_energy(&mut energy, em, &rep);
                (res, rep)
            }
        };
        merge_search(&mut search_total, &ns);

        // ---- aggregation ----
        let lists: Vec<Vec<usize>> = results
            .iter()
            .map(|hits| {
                let idx: Vec<usize> = hits.iter().map(|n| n.index).collect();
                replicate_to_k(&idx, layer.k, Some(0))
            })
            .collect();
        // delayed aggregation gathers post-MLP features: one fetch moves
        // an out_ch-wide feature vector
        let out_ch = *layer.mlp_dims.last().unwrap_or(&3);
        let fetch_bytes = (out_ch * 4) as u64;
        match variant {
            Variant::Gpu | Variant::TigrisGpu => {
                // all systems run the Mesorasi-optimized (delayed
                // aggregation) networks per Sec 6: the shared MLP is
                // applied once per input point, then features are gathered
                let gathers = (queries.len() * layer.k) as u64;
                let macs = feature_macs(layer.n_points, &layer.mlp_dims);
                let g = gpu.feature_computation(gathers, macs);
                cycles.aggregation += g.feature_cycles / 2;
                cycles.mlp += g.feature_cycles - g.feature_cycles / 2;
                energy.compute += g.energy;
            }
            _ => {
                // ---- shared MLP over the input points (delayed
                // aggregation, Mesorasi-style) on the systolic array ----
                let rep = mlp_report(
                    layer.n_points,
                    &layer.mlp_dims,
                    config.systolic_rows,
                    config.systolic_cols,
                );
                cycles.mlp += rep.cycles;
                energy.charge_macs(em, rep.macs);
                energy.charge_sram_global(em, rep.sram_read_bytes + rep.sram_write_bytes);
                // weights streamed from DRAM once per layer
                let weight_bytes: u64 =
                    layer.mlp_dims.windows(2).map(|w| (w[0] * w[1] * 4) as u64).sum();
                energy.charge_dram_streaming(em, weight_bytes);
                sys_total.merge(&rep);

                // ---- aggregation: gather each centroid's k neighbor
                // feature vectors from the banked Point Buffer ----
                let agg = simulate_aggregation(
                    &lists,
                    config.point_buffer,
                    config.point_buffer.num_banks,
                    config.aggregation_elision,
                );
                cycles.aggregation += agg.rounds;
                energy.sram_aggregation += em.sram_per_byte
                    * ((agg.grants * fetch_bytes) as f64
                        // neighbor-index buffer reads: one index word per fetch
                        + (agg.requests * 4) as f64);
                agg_total.merge(&agg);
            }
        }
    }

    // ---- head MLP ----
    let last = spec.layers.last();
    let head_rows = last.map_or(1, |l| l.n_centroids);
    match variant {
        Variant::Gpu | Variant::TigrisGpu => {
            let macs = feature_macs(head_rows, &spec.head_dims);
            let g = gpu.feature_computation(0, macs);
            cycles.mlp += g.feature_cycles;
            energy.compute += g.energy;
        }
        _ => {
            let rep =
                mlp_report(head_rows, &spec.head_dims, config.systolic_rows, config.systolic_cols);
            cycles.mlp += rep.cycles;
            energy.charge_macs(em, rep.macs);
            energy.charge_sram_global(em, rep.sram_read_bytes + rep.sram_write_bytes);
            sys_total.merge(&rep);
        }
    }

    // input cloud streamed in once (all variants)
    energy.charge_dram_streaming(em, (cloud.len().min(4096) * POINT_BYTES) as u64);
    energy.charge_leakage(em, cycles.total());

    PipelineReport {
        variant,
        network: spec.name.clone(),
        cycles,
        energy,
        search: search_total,
        aggregation: agg_total,
        systolic: sys_total,
    }
}

fn feature_macs(rows: usize, dims: &[usize]) -> u64 {
    dims.windows(2).map(|w| (rows * w[0] * w[1]) as u64).sum()
}

fn charge_search_energy(
    energy: &mut EnergyLedger,
    em: &crescent_memsim::EnergyModel,
    rep: &SearchEngineReport,
) {
    energy.charge_dram_streaming(em, rep.dram_streaming_bytes);
    energy.charge_dram_random(em, rep.dram_random_bytes);
    energy.charge_sram_search(em, rep.tree_buffer_reads * NODE_BYTES as u64);
}

fn merge_search(total: &mut SearchEngineReport, rep: &SearchEngineReport) {
    total.compute_cycles += rep.compute_cycles;
    total.dma_cycles += rep.dma_cycles;
    total.cycles += rep.cycles;
    total.dram_streaming_bytes += rep.dram_streaming_bytes;
    total.dram_random_bytes += rep.dram_random_bytes;
    total.tree_buffer_reads += rep.tree_buffer_reads;
    total.stats.merge(&rep.stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crescent_pointcloud::datasets::{generate_scene, LidarSceneConfig};

    fn test_cloud() -> PointCloud {
        let cfg = LidarSceneConfig {
            total_points: 8192,
            num_cars: 4,
            num_poles: 8,
            num_walls: 2,
            half_extent: 20.0,
            seed: 77,
        };
        let mut scene = generate_scene(&cfg);
        scene.cloud.normalize_unit_sphere();
        scene.cloud
    }

    fn small_spec() -> NetworkSpec {
        NetworkSpec {
            name: "tiny".into(),
            layers: vec![
                LayerSpec {
                    n_points: 2048,
                    n_centroids: 512,
                    k: 16,
                    radius: 0.05,
                    mlp_dims: vec![3, 32, 64],
                },
                LayerSpec {
                    n_points: 512,
                    n_centroids: 128,
                    k: 16,
                    radius: 0.1,
                    mlp_dims: vec![67, 64, 128],
                },
            ],
            head_dims: vec![128, 64, 10],
        }
    }

    #[test]
    fn crescent_beats_mesorasi_end_to_end() {
        let cloud = test_cloud();
        let spec = small_spec();
        let base = AcceleratorConfig::default();
        let knobs = CrescentKnobs { top_height: 4, elision_height: 9 };
        let meso = run_network(&spec, &cloud, Variant::Mesorasi, knobs, &base);
        let ans = run_network(&spec, &cloud, Variant::Ans, knobs, &base);
        let bce = run_network(&spec, &cloud, Variant::AnsBce, knobs, &base);
        assert!(
            ans.total_cycles() < meso.total_cycles(),
            "ANS {} vs Mesorasi {}",
            ans.total_cycles(),
            meso.total_cycles()
        );
        assert!(bce.total_cycles() <= ans.total_cycles());
        assert!(ans.energy.total() < meso.energy.total());
    }

    #[test]
    fn gpu_baselines_are_slower_and_hungrier() {
        let cloud = test_cloud();
        let spec = small_spec();
        let base = AcceleratorConfig::default();
        let knobs = CrescentKnobs { top_height: 4, elision_height: 9 };
        let meso = run_network(&spec, &cloud, Variant::Mesorasi, knobs, &base);
        let tg = run_network(&spec, &cloud, Variant::TigrisGpu, knobs, &base);
        let gpu = run_network(&spec, &cloud, Variant::Gpu, knobs, &base);
        assert!(gpu.total_cycles() > meso.total_cycles());
        assert!(tg.total_cycles() > meso.total_cycles());
        assert!(gpu.total_cycles() >= tg.total_cycles());
        let e_meso = meso.energy.total();
        assert!(gpu.energy.total() / e_meso > 5.0, "GPU should be far hungrier");
        assert!(tg.energy.total() / e_meso > 2.0);
        assert!(gpu.energy.total() > tg.energy.total());
    }

    #[test]
    fn search_share_is_layer_shape_dependent() {
        // DensePoint must be search-dominated on the baseline accelerator
        let cloud = test_cloud();
        let base = AcceleratorConfig::default();
        let knobs = CrescentKnobs { top_height: 4, elision_height: 9 };
        let dp = run_network(&NetworkSpec::densepoint(), &cloud, Variant::Mesorasi, knobs, &base);
        let share = dp.cycles.search as f64 / dp.total_cycles() as f64;
        assert!(share > 0.6, "DensePoint search share {share}");
    }

    #[test]
    fn evaluation_suite_has_four_networks() {
        let suite = NetworkSpec::evaluation_suite();
        assert_eq!(suite.len(), 4);
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"DensePoint"));
        assert!(names.contains(&"F-PointNet"));
    }

    #[test]
    fn stage_cycles_sum() {
        let c = StageCycles { search: 1, aggregation: 2, mlp: 3 };
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn variant_names() {
        for v in Variant::ALL {
            assert!(!v.name().is_empty());
        }
    }
}
