//! Fleet instance model for the multi-tenant streaming service: one
//! modeled Crescent accelerator per instance, executing cross-tenant
//! *wavefronts* (tenant-tagged query batches against a shared map tree).
//!
//! The per-wavefront timing and energy model is the search half of the
//! single-stream driver ([`crate::run_frame_stream_on_trees`]) — same
//! [`SplitTree::resplit`] top/sub split, same banked
//! [`search_batch`](SplitTree::search_batch) arbitration, same
//! Point-Buffer aggregation gather, same
//! `max(compute + aggregation, DMA)` double-buffered slot, same energy
//! charges. It is deliberately *not* shared code with that driver's
//! loop, because the scheduling differs (a service dispatches wavefronts
//! when tenants are ready, a stream runs frames back to back), but every
//! formula is kept field-for-field identical so a one-tenant service and
//! a solo stream agree on the modeled physics.
//!
//! Tree **maintenance** is not modeled here: the service maintains one
//! shared map tree per tick (via [`crate::maintain_tree_sequence`]) and
//! charges it once, fleet-wide — an instance only ever *searches*.

use crescent_kdtree::{
    BatchSearchConfig, BatchSearchStats, BatchState, KdTree, SplitTree, TaggedBatch, TaggedResults,
    NODE_BYTES,
};
use crescent_memsim::EnergyLedger;
use crescent_pointcloud::POINT_BYTES;

use crate::aggregation::simulate_aggregation;
use crate::config::AcceleratorConfig;
use crate::engine::PE_PIPELINE_DEPTH;
use crate::pipeline::CrescentKnobs;
use crate::streaming::StreamSearchConfig;

/// Modeled outcome of one cross-tenant wavefront on one instance.
#[derive(Clone, Debug)]
pub struct WavefrontReport {
    /// Queries in the wavefront (all tenants).
    pub queries: usize,
    /// Neighbors returned across all queries.
    pub neighbors: usize,
    /// Search compute: amortized top-tree fetches + lock-step sub-tree
    /// rounds (bank conflicts already serialized in).
    pub compute_cycles: u64,
    /// Aggregation-unit gather rounds through the banked Point Buffer.
    pub agg_cycles: u64,
    /// Streaming-DMA cycles for the wavefront's DRAM bytes.
    pub dma_cycles: u64,
    /// Occupancy of the instance: `max(compute + agg, dma)` — the
    /// double-buffered slot, excluding pipeline fill.
    pub slot_cycles: u64,
    /// Dispatch-to-completion latency: the slot plus the PE pipeline
    /// fill (a service wavefront is latency-critical, so unlike the
    /// back-to-back stream bound the fill is paid per wavefront).
    pub latency_cycles: u64,
    /// The underlying batched-search statistics (amortization, conflict,
    /// and DRAM counters).
    pub search: BatchSearchStats,
    /// Energy of the wavefront (search + aggregation + leakage during
    /// the slot; map maintenance is charged fleet-wide by the service).
    pub energy: EnergyLedger,
}

/// One modeled accelerator instance of the service fleet: recycled
/// search state plus its dispatch schedule.
#[derive(Debug, Default)]
pub struct ServiceInstance {
    state: BatchState,
    roots_pool: Vec<usize>,
    neighbor_lists: Vec<Vec<usize>>,
    /// The modeled cycle at which this instance finishes its current
    /// wavefront and can accept the next one.
    pub free_at: u64,
    /// Total slot cycles this instance has executed.
    pub busy_cycles: u64,
    /// Wavefronts dispatched to this instance.
    pub wavefronts: usize,
}

impl ServiceInstance {
    /// Creates an idle instance.
    pub fn new() -> Self {
        ServiceInstance::default()
    }

    /// Executes one tenant-tagged wavefront against the shared map
    /// `tree`, returning per-segment neighbor lists (via
    /// [`SplitTree::search_batch_tagged`], so tags cannot perturb the
    /// engine) and the wavefront's modeled timing/energy.
    ///
    /// The caller owns the dispatch schedule: this method models the
    /// wavefront in isolation and updates only the instance-local
    /// counters (`busy_cycles`, `wavefronts`); set [`Self::free_at`]
    /// from the returned latency at the chosen start cycle.
    pub fn run_wavefront(
        &mut self,
        tree: &KdTree,
        batch: &TaggedBatch,
        search: &StreamSearchConfig,
        knobs: CrescentKnobs,
        config: &AcceleratorConfig,
    ) -> (TaggedResults, WavefrontReport) {
        self.run_wavefront_at(tree, batch, search, search.elision_depth, knobs, config)
    }

    /// [`Self::run_wavefront`] with a per-dispatch elision-depth
    /// override: the wavefront runs at `elision_depth` instead of
    /// `search.elision_depth`. This is the actuator of `crescent-serve`'s
    /// SLO controller — the controller moves `h_e` dispatch by dispatch
    /// while every other search parameter stays pinned by the spec.
    /// `run_wavefront(..)` ≡ `run_wavefront_at(.., search.elision_depth, ..)`.
    pub fn run_wavefront_at(
        &mut self,
        tree: &KdTree,
        batch: &TaggedBatch,
        search: &StreamSearchConfig,
        elision_depth: usize,
        knobs: CrescentKnobs,
        config: &AcceleratorConfig,
    ) -> (TaggedResults, WavefrontReport) {
        let em = &config.energy;
        // same clamp as the stream driver: a degenerate tree grants h_t = 0
        let ht =
            if tree.is_empty() { 0 } else { knobs.top_height.min(tree.height().saturating_sub(1)) };
        let split = SplitTree::resplit(tree, ht, std::mem::take(&mut self.roots_pool))
            .expect("clamped top height is valid");
        let batch_cfg = BatchSearchConfig::banked(
            search.radius,
            search.max_neighbors,
            config.num_pes,
            config.tree_buffer.num_banks,
            elision_depth,
        )
        .with_descendant_reuse(search.descendant_reuse);
        let (tagged, stats) = split.search_batch_tagged(batch, &batch_cfg, &mut self.state);
        self.roots_pool = split.into_subtree_roots();

        // aggregation gathers every query's neighbor list from the
        // banked Point Buffer, across segment boundaries — the gather
        // unit is as tenant-blind as the search engine
        let n = batch.len();
        if self.neighbor_lists.len() < n {
            self.neighbor_lists.resize_with(n, Vec::new);
        }
        let flat = tagged.iter().flat_map(|(_, seg)| seg.iter());
        for (list, hits) in self.neighbor_lists.iter_mut().zip(flat) {
            list.clear();
            list.extend(hits.iter().map(|h| h.index));
        }
        let agg = simulate_aggregation(
            &self.neighbor_lists[..n],
            config.point_buffer,
            config.point_buffer.num_banks,
            config.aggregation_elision,
        );

        let compute = stats.top_fetches as u64 + stats.subtree_rounds as u64;
        let dma = config.dram.stream_cycles(stats.dram_bytes);
        let slot = (compute + agg.rounds).max(dma);
        let has_work = n > 0 && !tree.is_empty();
        let latency = if has_work { slot + PE_PIPELINE_DEPTH } else { 0 };

        let mut energy = EnergyLedger::new();
        energy.charge_dram_streaming(em, stats.dram_bytes);
        let reads = (stats.top_fetches + stats.subtree_visits) as u64;
        energy.charge_sram_search(em, reads * NODE_BYTES as u64);
        energy.charge_sram_aggregation(em, agg.grants * POINT_BYTES as u64 + agg.requests * 4);
        energy.charge_leakage(em, slot);

        self.busy_cycles += latency;
        self.wavefronts += 1;
        let report = WavefrontReport {
            queries: n,
            neighbors: tagged.iter().map(|(_, seg)| seg.iter().map(Vec::len).sum::<usize>()).sum(),
            compute_cycles: compute,
            agg_cycles: agg.rounds,
            dma_cycles: dma,
            slot_cycles: slot,
            latency_cycles: latency,
            search: stats,
            energy,
        };
        (tagged, report)
    }
}

/// A fleet of [`ServiceInstance`]s with deterministic earliest-free
/// selection (ties broken by lowest index).
#[derive(Debug, Default)]
pub struct Fleet {
    instances: Vec<ServiceInstance>,
}

impl Fleet {
    /// Creates `size` idle instances.
    pub fn new(size: usize) -> Self {
        Fleet { instances: (0..size).map(|_| ServiceInstance::new()).collect() }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the fleet has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The instances, for read-only inspection.
    pub fn instances(&self) -> &[ServiceInstance] {
        &self.instances
    }

    /// Index and free time of the instance that frees up first; ties go
    /// to the lowest index so dispatch is deterministic. `None` on an
    /// empty fleet.
    pub fn earliest_free(&self) -> Option<(usize, u64)> {
        self.instances
            .iter()
            .enumerate()
            .min_by_key(|&(i, inst)| (inst.free_at, i))
            .map(|(i, inst)| (i, inst.free_at))
    }

    /// Mutable access to one instance for dispatch.
    pub fn instance_mut(&mut self, index: usize) -> &mut ServiceInstance {
        &mut self.instances[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crescent_pointcloud::{Point3, PointCloud};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                )
            })
            .collect()
    }

    fn random_queries(n: usize, seed: u64) -> Vec<Point3> {
        random_cloud(n, seed).into_points()
    }

    fn search() -> StreamSearchConfig {
        StreamSearchConfig {
            radius: 0.3,
            max_neighbors: Some(16),
            elision_depth: 0,
            ..Default::default()
        }
    }

    #[test]
    fn wavefront_matches_the_stream_drivers_search_physics() {
        // a one-segment wavefront must agree with the single-stream
        // driver on results, slot timing, and search/agg energy
        let cloud = random_cloud(3000, 11);
        let queries = random_queries(96, 12);
        let tree = KdTree::build(&cloud);
        let cfg = AcceleratorConfig::default();
        let knobs = CrescentKnobs::default();

        let mut batch = TaggedBatch::new();
        batch.push_segment(0, &queries);
        let mut inst = ServiceInstance::new();
        let (tagged, wf) = inst.run_wavefront(&tree, &batch, &search(), knobs, &cfg);

        let frames: Vec<(&PointCloud, &[Point3])> = vec![(&cloud, queries.as_slice())];
        let (stream_results, report) =
            crate::streaming::run_frame_stream(&frames, &search(), knobs, &cfg);
        let frame = &report.frames[0];

        assert_eq!(tagged[0].1, stream_results[0], "identical neighbor sets");
        assert_eq!(wf.compute_cycles, frame.compute_cycles);
        assert_eq!(wf.agg_cycles, frame.agg_cycles);
        assert_eq!(wf.dma_cycles, frame.dma_cycles);
        assert_eq!(wf.slot_cycles, frame.slot_cycles);
        assert_eq!(wf.latency_cycles, frame.slot_cycles + PE_PIPELINE_DEPTH);
        // the wavefront carries no build charges; everything else matches
        assert_eq!(wf.energy.tree_build, 0.0);
        assert_eq!(wf.energy.sram_search, frame.energy.sram_search);
        assert_eq!(wf.energy.sram_aggregation, frame.energy.sram_aggregation);
        assert_eq!(inst.busy_cycles, wf.latency_cycles);
        assert_eq!(inst.wavefronts, 1);
    }

    #[test]
    fn per_dispatch_elision_override_matches_the_config_path() {
        // run_wavefront_at(h_e) must be indistinguishable from baking
        // the same h_e into the search config — the controller's
        // actuator cannot be a second timing model
        let cloud = random_cloud(2_000, 17);
        let queries = random_queries(64, 18);
        let tree = KdTree::build(&cloud);
        let cfg = AcceleratorConfig::default();
        let knobs = CrescentKnobs::default();
        let mut batch = TaggedBatch::new();
        batch.push_segment(0, &queries);
        for h_e in [0usize, 2, 4] {
            let baked = StreamSearchConfig { elision_depth: h_e, ..search() };
            let mut a = ServiceInstance::new();
            let (res_a, wf_a) = a.run_wavefront(&tree, &batch, &baked, knobs, &cfg);
            let mut b = ServiceInstance::new();
            let (res_b, wf_b) = b.run_wavefront_at(&tree, &batch, &search(), h_e, knobs, &cfg);
            assert_eq!(res_a, res_b, "override must not change answers at h_e = {h_e}");
            assert_eq!(wf_a.slot_cycles, wf_b.slot_cycles);
            assert_eq!(wf_a.latency_cycles, wf_b.latency_cycles);
            assert_eq!(wf_a.search.conflicts_elided, wf_b.search.conflicts_elided);
            assert_eq!(wf_a.energy.total(), wf_b.energy.total());
        }
    }

    #[test]
    fn empty_wavefront_costs_nothing() {
        let cloud = random_cloud(500, 13);
        let tree = KdTree::build(&cloud);
        let mut inst = ServiceInstance::new();
        let (tagged, wf) = inst.run_wavefront(
            &tree,
            &TaggedBatch::new(),
            &search(),
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert!(tagged.is_empty());
        assert_eq!(wf.latency_cycles, 0, "no work, no fill");
        assert_eq!(wf.neighbors, 0);
    }

    #[test]
    fn fleet_picks_the_earliest_instance_with_stable_ties() {
        let mut fleet = Fleet::new(3);
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_empty());
        assert_eq!(fleet.earliest_free(), Some((0, 0)), "ties break to the lowest index");
        fleet.instance_mut(0).free_at = 100;
        fleet.instance_mut(1).free_at = 40;
        fleet.instance_mut(2).free_at = 40;
        assert_eq!(fleet.earliest_free(), Some((1, 40)));
        assert!(Fleet::new(0).earliest_free().is_none());
        assert!(Fleet::new(0).is_empty());
        assert!(fleet.instances()[0].free_at == 100);
    }
}
