//! Analytic mobile-GPU cost model (the Jetson TX2 Pascal baseline).
//!
//! The paper's GPU numbers only anchor the comparison — the headline claims
//! are ANS / ANS+BCE vs. Mesorasi, which we simulate directly. The GPU
//! model is therefore analytic: work counts (neighbor-search point visits,
//! MACs, gather fetches) divided by effective throughputs, with per-event
//! energies calibrated so the end-to-end ratios land near the paper's
//! (GPU ≈ 38× Mesorasi energy, Tigris+GPU ≈ 25×; both are far slower than
//! the accelerators). The calibration is recorded in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// Throughput and energy constants of the GPU model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GpuModel {
    /// Brute-force neighbor-search point visits retired per cycle
    /// (memory-bound).
    pub ns_visits_per_cycle: f64,
    /// Effective MACs per cycle on the small GEMMs of point-cloud MLPs
    /// (low utilization of the SMs).
    pub macs_per_cycle: f64,
    /// Neighbor-gather fetches per cycle (irregular global loads).
    pub gather_per_cycle: f64,
    /// Energy per neighbor-search point visit.
    pub energy_per_visit: f64,
    /// Energy per MAC.
    pub energy_per_mac: f64,
    /// Energy per gather fetch.
    pub energy_per_gather: f64,
    /// Idle/static energy per cycle.
    pub energy_per_cycle: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            ns_visits_per_cycle: 48.0,
            macs_per_cycle: 64.0,
            gather_per_cycle: 4.0,
            energy_per_visit: 15.0,
            energy_per_mac: 6.0,
            energy_per_gather: 150.0,
            energy_per_cycle: 6.0,
        }
    }
}

/// Cycles and energy of one GPU kernel mix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuReport {
    /// Neighbor-search cycles.
    pub ns_cycles: u64,
    /// Feature-computation cycles (gather + GEMM).
    pub feature_cycles: u64,
    /// Total energy.
    pub energy: f64,
}

impl GpuReport {
    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.ns_cycles + self.feature_cycles
    }

    /// Merges another report.
    pub fn merge(&mut self, other: &GpuReport) {
        self.ns_cycles += other.ns_cycles;
        self.feature_cycles += other.feature_cycles;
        self.energy += other.energy;
    }
}

impl GpuModel {
    /// Models a brute-force neighbor search of `queries` over `points`.
    pub fn neighbor_search(&self, points: usize, queries: usize) -> GpuReport {
        let visits = (points * queries) as f64;
        let cycles = (visits / self.ns_visits_per_cycle).ceil() as u64;
        GpuReport {
            ns_cycles: cycles,
            feature_cycles: 0,
            energy: visits * self.energy_per_visit + cycles as f64 * self.energy_per_cycle,
        }
    }

    /// Models the feature computation: `gathers` neighbor fetches plus
    /// `macs` multiply-accumulates.
    pub fn feature_computation(&self, gathers: u64, macs: u64) -> GpuReport {
        let cycles = (gathers as f64 / self.gather_per_cycle).ceil() as u64
            + (macs as f64 / self.macs_per_cycle).ceil() as u64;
        GpuReport {
            ns_cycles: 0,
            feature_cycles: cycles,
            energy: gathers as f64 * self.energy_per_gather
                + macs as f64 * self.energy_per_mac
                + cycles as f64 * self.energy_per_cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_scales_with_work() {
        let m = GpuModel::default();
        let a = m.neighbor_search(1000, 10);
        let b = m.neighbor_search(1000, 20);
        assert!(b.ns_cycles > a.ns_cycles);
        assert!((b.energy / a.energy - 2.0).abs() < 0.05);
    }

    #[test]
    fn feature_combines_gather_and_macs() {
        let m = GpuModel::default();
        let r = m.feature_computation(1000, 100_000);
        assert!(r.feature_cycles >= (1000.0 / m.gather_per_cycle) as u64);
        assert!(r.energy > 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let m = GpuModel::default();
        let mut total = GpuReport::default();
        total.merge(&m.neighbor_search(100, 10));
        total.merge(&m.feature_computation(10, 100));
        assert_eq!(total.cycles(), total.ns_cycles + total.feature_cycles);
        assert!(total.energy > 0.0);
    }

    #[test]
    fn zero_work_zero_cost() {
        let m = GpuModel::default();
        assert_eq!(m.neighbor_search(0, 0), GpuReport::default());
        assert_eq!(m.feature_computation(0, 0), GpuReport::default());
    }
}
