//! Neighbor-search engine timing (the Fig 7 hardware).
//!
//! The engine couples the algorithmic lock-step simulation from
//! `crescent-kdtree` (which yields rounds, conflicts, elisions, and the
//! neighbor results) with the DRAM timing model: all Crescent transfers are
//! streaming and double-buffered, so engine latency is
//! `max(compute, DMA) + pipeline fill`.

use serde::{Deserialize, Serialize};

use crescent_kdtree::{
    crescent_dram_bytes, split_exhaustive_search, KdTree, SplitSearchConfig, SplitSearchStats,
    SplitTree, NODE_BYTES,
};
use crescent_pointcloud::{Neighbor, Point3, POINT_BYTES};

use crate::config::AcceleratorConfig;

/// Depth of the PE pipeline (RS → FN → CD → SR → US, Fig 7).
pub const PE_PIPELINE_DEPTH: u64 = 5;

/// Timing + statistics of a neighbor-search engine run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SearchEngineReport {
    /// Datapath cycles (lock-step rounds only; the pipeline fill is
    /// charged exactly once, in [`SearchEngineReport::cycles`]).
    pub compute_cycles: u64,
    /// DMA cycles for all DRAM transfers.
    pub dma_cycles: u64,
    /// Engine latency with double buffering: `max(compute, dma)` plus the
    /// pipeline fill.
    pub cycles: u64,
    /// Total DRAM bytes moved (all streaming for Crescent).
    pub dram_streaming_bytes: u64,
    /// DRAM bytes that are random accesses (0 for Crescent / Tigris).
    pub dram_random_bytes: u64,
    /// Tree-buffer reads (honored fetches).
    pub tree_buffer_reads: u64,
    /// Algorithmic statistics of the run.
    pub stats: SplitSearchStats,
}

/// Runs the Crescent two-stage search on the engine and returns the
/// neighbor results plus the timing report.
///
/// `top_height` is clamped into the feasible range for the tree and the
/// configured tree buffer.
pub fn run_crescent_search(
    tree: &KdTree,
    top_height: usize,
    queries: &[Point3],
    radius: f32,
    max_neighbors: Option<usize>,
    config: &AcceleratorConfig,
) -> (Vec<Vec<Neighbor>>, SearchEngineReport) {
    let ht = clamp_top_height(tree, top_height);
    let split = SplitTree::new(tree, ht).expect("clamped top height is valid");
    let search_cfg = SplitSearchConfig {
        radius,
        max_neighbors,
        num_pes: config.num_pes,
        elision: config.search_elision,
    };
    let (results, stats) = split.batch_search(queries, &search_cfg);

    let dram_bytes = crescent_dram_bytes(&split, queries, radius);
    let compute = stats.rounds as u64;
    let dma = config.dram.stream_cycles(dram_bytes);
    let report = SearchEngineReport {
        compute_cycles: compute,
        dma_cycles: dma,
        cycles: compute.max(dma) + PE_PIPELINE_DEPTH,
        dram_streaming_bytes: dram_bytes,
        dram_random_bytes: 0,
        tree_buffer_reads: stats.nodes_visited as u64,
        stats,
    };
    (results, report)
}

/// Runs the Tigris-style baseline search (split tree + exhaustive sub-tree
/// scan + sub-tree reloading) — the neighbor-search component of the
/// Mesorasi and Tigris+GPU baselines.
///
/// `queue_capacity` is the on-chip query-buffer capacity in queries
/// (derived from the config's query buffer by default).
pub fn run_tigris_search(
    tree: &KdTree,
    top_height: usize,
    queries: &[Point3],
    radius: f32,
    max_neighbors: Option<usize>,
    config: &AcceleratorConfig,
) -> (Vec<Vec<Neighbor>>, SearchEngineReport) {
    let ht = clamp_top_height(tree, top_height);
    let split = SplitTree::new(tree, ht).expect("clamped top height is valid");
    let queue_capacity = (config.query_buffer_bytes / POINT_BYTES / 2).max(1); // double-buffered
    let base = split_exhaustive_search(&split, queries, radius, max_neighbors, queue_capacity);

    // The exhaustive scan reads the sub-tree as one sequential stream,
    // one node per PE per cycle with no backtracking. Sequential streams
    // cannot bank-conflict (consecutive nodes hit consecutive banks), so
    // unlike the pointer-chasing two-stage paths — whose conflicts both
    // the engine model and the streaming wavefront now arbitrate — the
    // Tigris datapath genuinely has no conflict term.
    let compute = (base.nodes_visited as u64).div_ceil(config.pe_divisor());
    // Tigris/QuickNN flush partial query queues to scattered per-sub-tree
    // regions whenever a buffer fills: those write-backs are random, unlike
    // Crescent's phased staging (Sec 3.4)
    let random_bytes = (queries.len() * POINT_BYTES) as u64;
    let dma = config.dram.stream_cycles(base.dram_bytes)
        + config.dram.random_cycles(random_bytes.div_ceil(config.dram.burst_bytes), 4);
    let stats = SplitSearchStats { nodes_visited: base.nodes_visited, ..Default::default() };
    let report = SearchEngineReport {
        compute_cycles: compute,
        dma_cycles: dma,
        cycles: compute.max(dma) + PE_PIPELINE_DEPTH,
        dram_streaming_bytes: base.dram_bytes,
        dram_random_bytes: random_bytes,
        tree_buffer_reads: base.nodes_visited as u64,
        stats,
    };
    (base.results, report)
}

/// Exact (unsplit) K-d search with the tree resident in DRAM — what a
/// GPU-style baseline does. Every node fetch beyond the on-chip working
/// set is a random DRAM access (Fig 2/3 behaviour).
pub fn run_unsplit_search(
    tree: &KdTree,
    queries: &[Point3],
    radius: f32,
    max_neighbors: Option<usize>,
    config: &AcceleratorConfig,
) -> (Vec<Vec<Neighbor>>, SearchEngineReport) {
    let mut results = Vec::with_capacity(queries.len());
    let mut visits: u64 = 0;
    for &q in queries {
        let (hits, stats) =
            crescent_kdtree::radius_search_traced(tree, q, radius, max_neighbors, &mut |_| {});
        visits += stats.nodes_visited as u64;
        results.push(hits);
    }
    // on-chip buffer covers a fraction of the tree; the rest are random
    // DRAM node fetches
    let resident = config.tree_buffer_nodes() as u64;
    let total_nodes = tree.len() as u64;
    let hit_frac =
        if total_nodes == 0 { 1.0 } else { (resident as f64 / total_nodes as f64).min(1.0) };
    let dram_fetches = ((visits as f64) * (1.0 - hit_frac)) as u64;
    let dram_random_bytes = dram_fetches * NODE_BYTES as u64;
    let compute = visits.div_ceil(config.pe_divisor());
    let dma = config.dram.random_cycles(dram_fetches, config.pe_divisor());
    let stats = SplitSearchStats { nodes_visited: visits as usize, ..Default::default() };
    let report = SearchEngineReport {
        compute_cycles: compute,
        dma_cycles: dma,
        // random accesses stall the datapath: latencies add, plus one fill
        cycles: compute + dma + PE_PIPELINE_DEPTH,
        dram_streaming_bytes: (queries.len() * POINT_BYTES) as u64,
        dram_random_bytes,
        tree_buffer_reads: visits,
        stats,
    };
    (results, report)
}

fn clamp_top_height(tree: &KdTree, requested: usize) -> usize {
    if tree.is_empty() {
        0
    } else {
        requested.min(tree.height().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crescent_pointcloud::{Point3, PointCloud};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                )
            })
            .collect()
    }

    fn queries(n: usize, seed: u64) -> Vec<Point3> {
        random_cloud(n, seed).into_points()
    }

    #[test]
    fn crescent_vs_tigris_results_match_without_elision() {
        let cloud = random_cloud(2048, 40);
        let tree = KdTree::build(&cloud);
        let qs = queries(64, 41);
        let cfg = AcceleratorConfig::ans();
        let (a, _) = run_crescent_search(&tree, 4, &qs, 0.25, Some(16), &cfg);
        let (b, _) = run_tigris_search(&tree, 4, &qs, 0.25, Some(16), &cfg);
        for (x, y) in a.iter().zip(&b) {
            let xi: Vec<usize> = x.iter().map(|n| n.index).collect();
            let yi: Vec<usize> = y.iter().map(|n| n.index).collect();
            assert_eq!(xi, yi);
        }
    }

    #[test]
    fn crescent_visits_fewer_nodes_than_tigris() {
        let cloud = random_cloud(8192, 42);
        let tree = KdTree::build(&cloud);
        let qs = queries(2048, 43);
        // small on-chip query buffer => the Tigris baseline must reload
        // sub-trees many times (the Fig 24b effect)
        let mut cfg = AcceleratorConfig::ans();
        cfg.query_buffer_bytes = 8 * POINT_BYTES * 2;
        let (_, ours) = run_crescent_search(&tree, 5, &qs, 0.15, None, &cfg);
        let (_, tigris) = run_tigris_search(&tree, 5, &qs, 0.15, None, &cfg);
        assert!(
            ours.stats.nodes_visited < tigris.stats.nodes_visited,
            "{} vs {}",
            ours.stats.nodes_visited,
            tigris.stats.nodes_visited
        );
        assert!(
            ours.dram_streaming_bytes < tigris.dram_streaming_bytes,
            "{} vs {}",
            ours.dram_streaming_bytes,
            tigris.dram_streaming_bytes
        );
    }

    #[test]
    fn bce_speeds_up_search() {
        let cloud = random_cloud(8192, 44);
        let tree = KdTree::build(&cloud);
        let qs = queries(128, 45);
        let ans = AcceleratorConfig::ans();
        let bce = AcceleratorConfig::ans_bce(6);
        let (_, a) = run_crescent_search(&tree, 4, &qs, 0.2, None, &ans);
        let (_, b) = run_crescent_search(&tree, 4, &qs, 0.2, None, &bce);
        assert!(b.stats.nodes_visited <= a.stats.nodes_visited);
        assert!(b.compute_cycles <= a.compute_cycles);
        assert!(b.stats.nodes_elided > 0);
    }

    #[test]
    fn unsplit_search_pays_random_dram() {
        let cloud = random_cloud(16384, 46);
        let tree = KdTree::build(&cloud);
        let qs = queries(64, 47);
        let cfg = AcceleratorConfig::ans();
        let (res, rep) = run_unsplit_search(&tree, &qs, 0.2, None, &cfg);
        assert_eq!(res.len(), 64);
        assert!(rep.dram_random_bytes > 0);
        assert!(rep.cycles > rep.compute_cycles, "random DMA adds stall cycles");
    }

    #[test]
    fn double_buffering_takes_max() {
        let cloud = random_cloud(4096, 48);
        let tree = KdTree::build(&cloud);
        let qs = queries(64, 49);
        let cfg = AcceleratorConfig::ans();
        let (_, rep) = run_crescent_search(&tree, 4, &qs, 0.2, None, &cfg);
        assert!(rep.cycles >= rep.compute_cycles.max(rep.dma_cycles));
        // exactly one pipeline fill on top of the overlapped slot — the
        // fill used to be double-counted (inside compute AND after max)
        assert_eq!(rep.cycles, rep.compute_cycles.max(rep.dma_cycles) + PE_PIPELINE_DEPTH);
    }

    #[test]
    fn top_height_clamped() {
        let cloud = random_cloud(100, 50); // height 7
        let tree = KdTree::build(&cloud);
        let qs = queries(4, 51);
        let cfg = AcceleratorConfig::ans();
        // requesting an absurd top height must not panic
        let (res, _) = run_crescent_search(&tree, 30, &qs, 0.5, Some(4), &cfg);
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn zero_pe_config_degrades_to_one_pe_everywhere() {
        // regression: the Tigris path divided by the raw field and
        // panicked on num_pes == 0 while the unsplit path saturated; all
        // engine paths now share the pe_divisor() guard and match the
        // timing of an explicit 1-PE config
        let cloud = random_cloud(2048, 52);
        let tree = KdTree::build(&cloud);
        let qs = queries(32, 53);
        let mut zero = AcceleratorConfig::ans();
        zero.num_pes = 0;
        let mut one = AcceleratorConfig::ans();
        one.num_pes = 1;
        assert!(zero.validate().is_err(), "builder-style validation rejects it");
        let (rc0, c0) = run_crescent_search(&tree, 4, &qs, 0.25, Some(16), &zero);
        let (rc1, c1) = run_crescent_search(&tree, 4, &qs, 0.25, Some(16), &one);
        assert_eq!(rc0, rc1);
        assert_eq!(c0.cycles, c1.cycles);
        let (rt0, t0) = run_tigris_search(&tree, 4, &qs, 0.25, Some(16), &zero);
        let (rt1, t1) = run_tigris_search(&tree, 4, &qs, 0.25, Some(16), &one);
        assert_eq!(rt0, rt1);
        assert_eq!(t0.cycles, t1.cycles);
        let (ru0, u0) = run_unsplit_search(&tree, &qs, 0.25, Some(16), &zero);
        let (ru1, u1) = run_unsplit_search(&tree, &qs, 0.25, Some(16), &one);
        assert_eq!(ru0, ru1);
        assert_eq!(u0.cycles, u1.cycles);
    }

    #[test]
    fn empty_workload() {
        let tree = KdTree::build(&PointCloud::new());
        let cfg = AcceleratorConfig::ans();
        let (res, rep) = run_crescent_search(&tree, 3, &[], 0.2, None, &cfg);
        assert!(res.is_empty());
        assert_eq!(rep.stats.nodes_visited, 0);
    }
}
