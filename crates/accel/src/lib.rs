//! Cycle-level point-cloud accelerator simulator for the Crescent
//! (ISCA 2022) reproduction.
//!
//! The crate composes the Fig 12 architecture:
//!
//! * [`engine`] — the neighbor-search engine of Fig 7 (lock-step PEs,
//!   banked tree buffer, streaming/double-buffered DMA), plus the
//!   Tigris-style and unsplit baselines;
//! * [`aggregation`] — the Mesorasi-style neighbor gather over the banked
//!   Point Buffer, with Crescent's conflict elision;
//! * [`systolic`] — the 16×16 TPU-style MAC array timing model;
//! * [`gpu`] — the analytic Jetson-TX2-class GPU baseline;
//! * [`pipeline`] — end-to-end network simulation across the five systems
//!   of Fig 14 (GPU, Tigris+GPU, Mesorasi, ANS, ANS+BCE);
//! * [`streaming`] — the back-to-back multi-frame pipeline driver (batched
//!   two-stage search per frame, per-frame tree maintenance under a
//!   [`TreeMaintenance`] policy with honest build/refit cost accounting,
//!   inter-frame double buffering that overlaps the next frame's build
//!   with the current frame's search, per-frame cycle and energy
//!   accounting);
//! * [`service`] — the multi-tenant fleet instance model: cross-tenant
//!   tagged wavefronts executed with the streaming driver's search
//!   physics, dispatched by the `crescent-serve` scheduler;
//! * [`config`] — the Sec 6 hardware configuration (buffer sizes, banking,
//!   PE count) including the Sec 3.3 top-tree-height feasibility range.
//!
//! # Example
//!
//! ```
//! use crescent_accel::{run_network, AcceleratorConfig, CrescentKnobs, NetworkSpec, Variant};
//! use crescent_pointcloud::{Point3, PointCloud};
//!
//! let cloud: PointCloud = (0..4096)
//!     .map(|i| Point3::new((i % 16) as f32, ((i / 16) % 16) as f32, (i / 256) as f32))
//!     .collect();
//! let spec = NetworkSpec::pointnet2_classification();
//! let cfg = AcceleratorConfig::default();
//! let meso = run_network(&spec, &cloud, Variant::Mesorasi, CrescentKnobs::default(), &cfg);
//! let bce = run_network(&spec, &cloud, Variant::AnsBce, CrescentKnobs::default(), &cfg);
//! assert!(bce.total_cycles() < meso.total_cycles());
//! ```

#![warn(missing_docs)]

pub mod aggregation;
pub mod config;
pub mod engine;
pub mod gpu;
pub mod pipeline;
pub mod service;
pub mod streaming;
pub mod systolic;

pub use aggregation::{conflict_rate_single_issue, simulate_aggregation, AggregationReport};
pub use config::{AcceleratorConfig, ConfigBuilder, ConfigError};
pub use engine::{
    run_crescent_search, run_tigris_search, run_unsplit_search, SearchEngineReport,
    PE_PIPELINE_DEPTH,
};
pub use gpu::{GpuModel, GpuReport};
pub use pipeline::{
    run_network, CrescentKnobs, LayerSpec, NetworkSpec, PipelineReport, StageCycles, Variant,
};
pub use service::{Fleet, ServiceInstance, WavefrontReport};
pub use streaming::{
    maintain_tree_sequence, run_frame_stream, run_frame_stream_on_trees, FrameReport,
    MaintainedTree, StreamReport, StreamSearchConfig, TreeMaintenance,
    DEFAULT_STREAM_ELISION_DEPTH,
};
pub use systolic::{gemm_report, mlp_report, SystolicReport};
