//! Accelerator configuration (the Sec 6 "Architecture Design").

use std::fmt;

use serde::{Deserialize, Serialize};

use crescent_kdtree::ElisionConfig;
use crescent_memsim::{DramTiming, EnergyModel, SramConfig};

/// Static configuration of the full point-cloud accelerator of Fig 12:
/// neighbor-search engine + aggregation unit + systolic array, with the
/// paper's SRAM partitioning.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of neighbor-search PEs (paper: 4).
    pub num_pes: usize,
    /// Tree buffer (paper: 6 KB, 4 banks) — holds the top tree or the
    /// current sub-tree; supports selective elision.
    pub tree_buffer: SramConfig,
    /// Query buffer (paper: 3 KB, 1 bank, double-buffered).
    pub query_buffer_bytes: usize,
    /// Point buffer for aggregation (paper: 64 KB, 16 banks).
    pub point_buffer: SramConfig,
    /// Neighbor-index buffer (paper: 12 KB, single bank).
    pub neighbor_index_buffer_bytes: usize,
    /// Global buffer for weights/activations (paper: 1.5 MB).
    pub global_buffer_bytes: usize,
    /// Systolic MAC array dimensions (paper: 16 × 16, TPU-style).
    pub systolic_rows: usize,
    /// Systolic array columns.
    pub systolic_cols: usize,
    /// DRAM timing model.
    pub dram: DramTiming,
    /// Energy model.
    pub energy: EnergyModel,
    /// Bank-conflict elision in neighbor search (`None` = stall on every
    /// conflict, the ANS-only variant).
    pub search_elision: Option<ElisionConfig>,
    /// Elide bank conflicts in aggregation (neighbor replication).
    pub aggregation_elision: bool,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            num_pes: 4,
            tree_buffer: SramConfig::tree_buffer(),
            query_buffer_bytes: 3 << 10,
            point_buffer: SramConfig::point_buffer(),
            neighbor_index_buffer_bytes: 12 << 10,
            global_buffer_bytes: 1536 << 10,
            systolic_rows: 16,
            systolic_cols: 16,
            dram: DramTiming::default(),
            energy: EnergyModel::default(),
            search_elision: None,
            aggregation_elision: false,
        }
    }
}

impl AcceleratorConfig {
    /// The ANS configuration: approximate neighbor search, conflicts stall.
    pub fn ans() -> Self {
        AcceleratorConfig::default()
    }

    /// A validated builder starting from the Sec 6 defaults — the way
    /// sweep engines construct configs without duplicating every field
    /// (see [`ConfigBuilder`]).
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// The PE count as a non-zero divisor. Every timing path that spreads
    /// work across the PEs divides by this instead of by the raw field,
    /// so a hand-rolled `num_pes == 0` config (which the builder rejects,
    /// but the fields are public) degrades to single-PE timing instead of
    /// panicking in one path and saturating in another.
    pub fn pe_divisor(&self) -> u64 {
        self.num_pes.max(1) as u64
    }

    /// Validates the invariants the timing model relies on. The builder
    /// calls this on [`ConfigBuilder::build`]; hand-constructed configs
    /// can call it directly.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_pes == 0 {
            return Err(ConfigError::ZeroPes);
        }
        if self.tree_buffer.num_banks == 0 || self.point_buffer.num_banks == 0 {
            return Err(ConfigError::ZeroBanks);
        }
        if self.tree_buffer_nodes() == 0 {
            return Err(ConfigError::TreeBufferTooSmall { bytes: self.tree_buffer.capacity_bytes });
        }
        if self.systolic_rows == 0 || self.systolic_cols == 0 {
            return Err(ConfigError::ZeroSystolic);
        }
        if self.dram.stream_bytes_per_cycle <= 0.0 || self.dram.stream_bytes_per_cycle.is_nan() {
            return Err(ConfigError::ZeroDramBandwidth);
        }
        Ok(())
    }

    /// The ANS+BCE configuration with the paper's default knobs
    /// (`h_e = 12`, tree-buffer banking).
    pub fn ans_bce(elision_height: usize) -> Self {
        let mut cfg = AcceleratorConfig::default();
        cfg.search_elision = Some(ElisionConfig {
            elision_height,
            num_banks: cfg.tree_buffer.num_banks,
            descendant_reuse: false,
        });
        cfg.aggregation_elision = true;
        cfg
    }

    /// Capacity of the tree buffer in tree nodes.
    pub fn tree_buffer_nodes(&self) -> usize {
        self.tree_buffer.capacity_bytes / crescent_kdtree::NODE_BYTES
    }

    /// Permissible top-tree height range `[lo, hi]` for a tree of height
    /// `total_height` per the Sec 3.3 inequalities
    /// `2^{h_t} − 1 ≤ S` and `2^{H − h_t + 1} − 1 ≤ S`,
    /// where `S` is the tree-buffer capacity in nodes.
    ///
    /// Returns `None` if no height satisfies both (the buffer is too small
    /// for this tree).
    pub fn top_height_range(&self, total_height: usize) -> Option<(usize, usize)> {
        let s = self.tree_buffer_nodes();
        let cap_height = |n: usize| {
            // largest h with 2^h - 1 <= n
            let mut h = 0usize;
            while (1usize << (h + 1)) - 1 <= n && h + 1 < 63 {
                h += 1;
            }
            h
        };
        let hi = cap_height(s).min(total_height.saturating_sub(1));
        // sub-tree height H - h_t must satisfy 2^{H-h_t+1} - 1 <= ... i.e.
        // subtree (height H - h_t) has at most 2^{H-h_t} - 1 nodes; require
        // that <= S  =>  H - h_t <= cap_height(S)
        let lo = total_height.saturating_sub(cap_height(s));
        (lo <= hi).then_some((lo, hi))
    }

    /// Total on-chip SRAM in bytes.
    pub fn total_sram_bytes(&self) -> usize {
        self.tree_buffer.capacity_bytes
            + self.query_buffer_bytes
            + self.point_buffer.capacity_bytes
            + self.neighbor_index_buffer_bytes
            + self.global_buffer_bytes
    }
}

/// Why a configuration was rejected by [`AcceleratorConfig::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `num_pes == 0`: the timing model divides lock-step work across
    /// the PEs, so a zero-PE engine has no defined schedule.
    ZeroPes,
    /// An SRAM was configured with zero banks.
    ZeroBanks,
    /// The tree buffer cannot hold even one tree node.
    TreeBufferTooSmall {
        /// The rejected capacity.
        bytes: usize,
    },
    /// The systolic array has a zero dimension.
    ZeroSystolic,
    /// DRAM streaming bandwidth must be positive.
    ZeroDramBandwidth,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroPes => write!(f, "num_pes must be >= 1"),
            ConfigError::ZeroBanks => write!(f, "SRAM bank counts must be >= 1"),
            ConfigError::TreeBufferTooSmall { bytes } => {
                write!(f, "tree buffer of {bytes} B cannot hold a single node")
            }
            ConfigError::ZeroSystolic => write!(f, "systolic array dimensions must be >= 1"),
            ConfigError::ZeroDramBandwidth => {
                write!(f, "DRAM stream_bytes_per_cycle must be > 0")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder over [`AcceleratorConfig`]: starts from the Sec 6 defaults,
/// overrides only the knobs a sweep point varies, and validates on
/// [`build`](ConfigBuilder::build) — so design-space engines never
/// duplicate the config field-by-field and can never construct a
/// zero-PE (or otherwise degenerate) simulation.
///
/// # Examples
///
/// ```
/// use crescent_accel::AcceleratorConfig;
///
/// let cfg = AcceleratorConfig::builder()
///     .num_pes(8)
///     .tree_buffer_kb(12)
///     .elision_height(10)
///     .build()
///     .expect("valid sweep point");
/// assert_eq!(cfg.num_pes, 8);
/// assert_eq!(cfg.tree_buffer.capacity_bytes, 12 << 10);
/// assert!(cfg.aggregation_elision);
/// assert!(AcceleratorConfig::builder().num_pes(0).build().is_err());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ConfigBuilder {
    cfg: Option<AcceleratorConfig>,
}

impl ConfigBuilder {
    fn cfg(&mut self) -> &mut AcceleratorConfig {
        self.cfg.get_or_insert_with(AcceleratorConfig::default)
    }

    /// Sets the neighbor-search PE count.
    pub fn num_pes(mut self, n: usize) -> Self {
        self.cfg().num_pes = n;
        self
    }

    /// Resizes the tree buffer (cache geometry knob), keeping its
    /// banking and word size.
    pub fn tree_buffer_kb(mut self, kb: usize) -> Self {
        self.cfg().tree_buffer.capacity_bytes = kb << 10;
        self
    }

    /// Sets the tree-buffer bank count (and keeps any elision config in
    /// sync — the elision hardware arbitrates exactly these banks).
    pub fn tree_banks(mut self, banks: usize) -> Self {
        let c = self.cfg();
        c.tree_buffer.num_banks = banks;
        if let Some(e) = &mut c.search_elision {
            e.num_banks = banks;
        }
        self
    }

    /// Sets the sustained streaming DRAM bandwidth in bytes per cycle.
    pub fn dram_stream_bytes_per_cycle(mut self, bpc: f64) -> Self {
        self.cfg().dram.stream_bytes_per_cycle = bpc;
        self
    }

    /// Enables ANS+BCE-style elision at height `h_e` (search elision on
    /// the current tree-buffer banking plus aggregation elision) — the
    /// same shape as [`AcceleratorConfig::ans_bce`].
    pub fn elision_height(mut self, h_e: usize) -> Self {
        let c = self.cfg();
        c.search_elision = Some(ElisionConfig {
            elision_height: h_e,
            num_banks: c.tree_buffer.num_banks,
            descendant_reuse: false,
        });
        c.aggregation_elision = true;
        self
    }

    /// Sets aggregation elision independently of search elision — sweep
    /// engines treat the two as separate axes (the streaming driver
    /// models the Point-Buffer gather per frame, so this knob moves
    /// stream cycles on its own).
    pub fn aggregation_elision(mut self, on: bool) -> Self {
        self.cfg().aggregation_elision = on;
        self
    }

    /// Disables both elisions (the pure-ANS variant).
    pub fn no_elision(mut self) -> Self {
        let c = self.cfg();
        c.search_elision = None;
        c.aggregation_elision = false;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<AcceleratorConfig, ConfigError> {
        let cfg = self.cfg.unwrap_or_default();
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_sizes() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.num_pes, 4);
        assert_eq!(c.tree_buffer.capacity_bytes, 6 << 10);
        assert_eq!(c.tree_buffer.num_banks, 4);
        assert_eq!(c.point_buffer.capacity_bytes, 64 << 10);
        assert_eq!(c.point_buffer.num_banks, 16);
        assert_eq!(c.systolic_rows * c.systolic_cols, 256);
        assert!(c.total_sram_bytes() > 1536 << 10);
    }

    #[test]
    fn ans_bce_enables_both_elisions() {
        let c = AcceleratorConfig::ans_bce(12);
        assert!(c.aggregation_elision);
        let e = c.search_elision.expect("elision set");
        assert_eq!(e.elision_height, 12);
        assert_eq!(e.num_banks, 4);
        assert!(!AcceleratorConfig::ans().aggregation_elision);
    }

    #[test]
    fn top_height_range_respects_capacity() {
        let c = AcceleratorConfig::default();
        let s = c.tree_buffer_nodes(); // 6KB/16B = 384 nodes -> height 8 fits
        assert_eq!(s, 384);
        let (lo, hi) = c.top_height_range(14).expect("feasible");
        // top tree of height hi must fit
        assert!((1usize << hi) - 1 <= s);
        // sub-trees of height 14 - lo must fit
        assert!((1usize << (14 - lo)) - 1 <= s);
        assert!(lo <= hi);
        // an enormous tree cannot fit at all
        assert!(c.top_height_range(40).is_none());
    }

    #[test]
    fn builder_starts_from_defaults_and_overrides_selectively() {
        let cfg = AcceleratorConfig::builder()
            .num_pes(16)
            .tree_buffer_kb(3)
            .tree_banks(8)
            .dram_stream_bytes_per_cycle(10.24)
            .elision_height(9)
            .build()
            .expect("valid");
        assert_eq!(cfg.num_pes, 16);
        assert_eq!(cfg.tree_buffer.capacity_bytes, 3 << 10);
        assert_eq!(cfg.tree_buffer.num_banks, 8);
        assert_eq!(cfg.dram.stream_bytes_per_cycle, 10.24);
        let e = cfg.search_elision.expect("elision enabled");
        assert_eq!(e.elision_height, 9);
        assert_eq!(e.num_banks, 8, "elision banking follows the tree buffer");
        // untouched fields keep the Sec 6 defaults
        let d = AcceleratorConfig::default();
        assert_eq!(cfg.point_buffer.capacity_bytes, d.point_buffer.capacity_bytes);
        assert_eq!(cfg.global_buffer_bytes, d.global_buffer_bytes);
        // banks set after elision still propagate
        let cfg2 = AcceleratorConfig::builder().elision_height(9).tree_banks(2).build().unwrap();
        assert_eq!(cfg2.search_elision.unwrap().num_banks, 2);
        // and no_elision clears both
        let cfg3 = AcceleratorConfig::builder().elision_height(9).no_elision().build().unwrap();
        assert!(cfg3.search_elision.is_none());
        assert!(!cfg3.aggregation_elision);
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert_eq!(
            AcceleratorConfig::builder().num_pes(0).build().unwrap_err(),
            ConfigError::ZeroPes
        );
        assert_eq!(
            AcceleratorConfig::builder().tree_banks(0).build().unwrap_err(),
            ConfigError::ZeroBanks
        );
        assert!(matches!(
            AcceleratorConfig::builder().tree_buffer_kb(0).build(),
            Err(ConfigError::TreeBufferTooSmall { .. })
        ));
        assert_eq!(
            AcceleratorConfig::builder().dram_stream_bytes_per_cycle(0.0).build().unwrap_err(),
            ConfigError::ZeroDramBandwidth
        );
        assert!(format!("{}", ConfigError::ZeroPes).contains("num_pes"));
    }

    #[test]
    fn pe_divisor_never_zero() {
        let mut cfg = AcceleratorConfig::default();
        assert_eq!(cfg.pe_divisor(), 4);
        cfg.num_pes = 0;
        assert_eq!(cfg.pe_divisor(), 1, "hand-rolled zero-PE config degrades to one PE");
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn top_height_range_small_tree() {
        let c = AcceleratorConfig::default();
        let (lo, hi) = c.top_height_range(5).expect("feasible");
        assert_eq!(lo, 0, "whole tree fits on-chip");
        assert_eq!(hi, 4, "top height below total height");
    }
}
