//! Accelerator configuration (the Sec 6 "Architecture Design").

use serde::{Deserialize, Serialize};

use crescent_kdtree::ElisionConfig;
use crescent_memsim::{DramTiming, EnergyModel, SramConfig};

/// Static configuration of the full point-cloud accelerator of Fig 12:
/// neighbor-search engine + aggregation unit + systolic array, with the
/// paper's SRAM partitioning.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of neighbor-search PEs (paper: 4).
    pub num_pes: usize,
    /// Tree buffer (paper: 6 KB, 4 banks) — holds the top tree or the
    /// current sub-tree; supports selective elision.
    pub tree_buffer: SramConfig,
    /// Query buffer (paper: 3 KB, 1 bank, double-buffered).
    pub query_buffer_bytes: usize,
    /// Point buffer for aggregation (paper: 64 KB, 16 banks).
    pub point_buffer: SramConfig,
    /// Neighbor-index buffer (paper: 12 KB, single bank).
    pub neighbor_index_buffer_bytes: usize,
    /// Global buffer for weights/activations (paper: 1.5 MB).
    pub global_buffer_bytes: usize,
    /// Systolic MAC array dimensions (paper: 16 × 16, TPU-style).
    pub systolic_rows: usize,
    /// Systolic array columns.
    pub systolic_cols: usize,
    /// DRAM timing model.
    pub dram: DramTiming,
    /// Energy model.
    pub energy: EnergyModel,
    /// Bank-conflict elision in neighbor search (`None` = stall on every
    /// conflict, the ANS-only variant).
    pub search_elision: Option<ElisionConfig>,
    /// Elide bank conflicts in aggregation (neighbor replication).
    pub aggregation_elision: bool,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            num_pes: 4,
            tree_buffer: SramConfig::tree_buffer(),
            query_buffer_bytes: 3 << 10,
            point_buffer: SramConfig::point_buffer(),
            neighbor_index_buffer_bytes: 12 << 10,
            global_buffer_bytes: 1536 << 10,
            systolic_rows: 16,
            systolic_cols: 16,
            dram: DramTiming::default(),
            energy: EnergyModel::default(),
            search_elision: None,
            aggregation_elision: false,
        }
    }
}

impl AcceleratorConfig {
    /// The ANS configuration: approximate neighbor search, conflicts stall.
    pub fn ans() -> Self {
        AcceleratorConfig::default()
    }

    /// The ANS+BCE configuration with the paper's default knobs
    /// (`h_e = 12`, tree-buffer banking).
    pub fn ans_bce(elision_height: usize) -> Self {
        let mut cfg = AcceleratorConfig::default();
        cfg.search_elision = Some(ElisionConfig {
            elision_height,
            num_banks: cfg.tree_buffer.num_banks,
            descendant_reuse: false,
        });
        cfg.aggregation_elision = true;
        cfg
    }

    /// Capacity of the tree buffer in tree nodes.
    pub fn tree_buffer_nodes(&self) -> usize {
        self.tree_buffer.capacity_bytes / crescent_kdtree::NODE_BYTES
    }

    /// Permissible top-tree height range `[lo, hi]` for a tree of height
    /// `total_height` per the Sec 3.3 inequalities
    /// `2^{h_t} − 1 ≤ S` and `2^{H − h_t + 1} − 1 ≤ S`,
    /// where `S` is the tree-buffer capacity in nodes.
    ///
    /// Returns `None` if no height satisfies both (the buffer is too small
    /// for this tree).
    pub fn top_height_range(&self, total_height: usize) -> Option<(usize, usize)> {
        let s = self.tree_buffer_nodes();
        let cap_height = |n: usize| {
            // largest h with 2^h - 1 <= n
            let mut h = 0usize;
            while (1usize << (h + 1)) - 1 <= n && h + 1 < 63 {
                h += 1;
            }
            h
        };
        let hi = cap_height(s).min(total_height.saturating_sub(1));
        // sub-tree height H - h_t must satisfy 2^{H-h_t+1} - 1 <= ... i.e.
        // subtree (height H - h_t) has at most 2^{H-h_t} - 1 nodes; require
        // that <= S  =>  H - h_t <= cap_height(S)
        let lo = total_height.saturating_sub(cap_height(s));
        (lo <= hi).then_some((lo, hi))
    }

    /// Total on-chip SRAM in bytes.
    pub fn total_sram_bytes(&self) -> usize {
        self.tree_buffer.capacity_bytes
            + self.query_buffer_bytes
            + self.point_buffer.capacity_bytes
            + self.neighbor_index_buffer_bytes
            + self.global_buffer_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_sizes() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.num_pes, 4);
        assert_eq!(c.tree_buffer.capacity_bytes, 6 << 10);
        assert_eq!(c.tree_buffer.num_banks, 4);
        assert_eq!(c.point_buffer.capacity_bytes, 64 << 10);
        assert_eq!(c.point_buffer.num_banks, 16);
        assert_eq!(c.systolic_rows * c.systolic_cols, 256);
        assert!(c.total_sram_bytes() > 1536 << 10);
    }

    #[test]
    fn ans_bce_enables_both_elisions() {
        let c = AcceleratorConfig::ans_bce(12);
        assert!(c.aggregation_elision);
        let e = c.search_elision.expect("elision set");
        assert_eq!(e.elision_height, 12);
        assert_eq!(e.num_banks, 4);
        assert!(!AcceleratorConfig::ans().aggregation_elision);
    }

    #[test]
    fn top_height_range_respects_capacity() {
        let c = AcceleratorConfig::default();
        let s = c.tree_buffer_nodes(); // 6KB/16B = 384 nodes -> height 8 fits
        assert_eq!(s, 384);
        let (lo, hi) = c.top_height_range(14).expect("feasible");
        // top tree of height hi must fit
        assert!((1usize << hi) - 1 <= s);
        // sub-trees of height 14 - lo must fit
        assert!((1usize << (14 - lo)) - 1 <= s);
        assert!(lo <= hi);
        // an enormous tree cannot fit at all
        assert!(c.top_height_range(40).is_none());
    }

    #[test]
    fn top_height_range_small_tree() {
        let c = AcceleratorConfig::default();
        let (lo, hi) = c.top_height_range(5).expect("feasible");
        assert_eq!(lo, 0, "whole tree fits on-chip");
        assert_eq!(hi, 4, "top height below total height");
    }
}
