//! Systolic-array timing/energy model for the MLP stage.
//!
//! The paper's feature computation runs on a 16 × 16 TPU-style MAC array
//! (Sec 6). We model a weight-stationary schedule: weights for an
//! `S_r × S_c` tile are loaded once, then `M` activation rows stream
//! through. Cycle count for a `[M, K] × [K, N]` GEMM:
//!
//! ```text
//! tiles = ceil(K / S_r) * ceil(N / S_c)
//! cycles = tiles * (S_r + M)        // fill + drain per tile
//! ```
//!
//! plus global-buffer traffic for activations, weights, and outputs.

use serde::{Deserialize, Serialize};

/// Timing/energy outcome of running a GEMM on the systolic array.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystolicReport {
    /// Datapath cycles.
    pub cycles: u64,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// Global-buffer bytes read (activations + weights).
    pub sram_read_bytes: u64,
    /// Global-buffer bytes written (outputs).
    pub sram_write_bytes: u64,
}

impl SystolicReport {
    /// Merges another report.
    pub fn merge(&mut self, other: &SystolicReport) {
        self.cycles += other.cycles;
        self.macs += other.macs;
        self.sram_read_bytes += other.sram_read_bytes;
        self.sram_write_bytes += other.sram_write_bytes;
    }
}

/// Models one `[m, k] × [k, n]` GEMM on an `rows × cols` array.
///
/// Returns a zero report when any dimension is zero.
pub fn gemm_report(m: usize, k: usize, n: usize, rows: usize, cols: usize) -> SystolicReport {
    if m == 0 || k == 0 || n == 0 {
        return SystolicReport::default();
    }
    let rows = rows.max(1);
    let cols = cols.max(1);
    let tiles = k.div_ceil(rows) as u64 * n.div_ceil(cols) as u64;
    let cycles = tiles * (rows as u64 + m as u64);
    let macs = (m * k * n) as u64;
    // per tile: weights rows*cols, activations m*rows; outputs written once
    let sram_read_bytes = tiles * 4 * (rows as u64 * cols as u64 + m as u64 * rows as u64);
    let sram_write_bytes = (m * n * 4) as u64;
    SystolicReport { cycles, macs, sram_read_bytes, sram_write_bytes }
}

/// Models a full MLP (sequence of GEMMs `dims[0] → dims[1] → …`) applied to
/// `m` input rows.
pub fn mlp_report(m: usize, dims: &[usize], rows: usize, cols: usize) -> SystolicReport {
    let mut total = SystolicReport::default();
    for w in dims.windows(2) {
        total.merge(&gemm_report(m, w[0], w[1], rows, cols));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tile_gemm() {
        let r = gemm_report(100, 16, 16, 16, 16);
        assert_eq!(r.macs, 100 * 16 * 16);
        assert_eq!(r.cycles, 16 + 100);
        assert!(r.sram_read_bytes > 0 && r.sram_write_bytes == 100 * 16 * 4);
    }

    #[test]
    fn tiling_scales_cycles() {
        let small = gemm_report(64, 16, 16, 16, 16);
        let wide = gemm_report(64, 16, 64, 16, 16); // 4 column tiles
        assert_eq!(wide.cycles, 4 * small.cycles);
        assert_eq!(wide.macs, 4 * small.macs);
    }

    #[test]
    fn bigger_array_is_faster() {
        let small = gemm_report(256, 128, 128, 8, 8);
        let big = gemm_report(256, 128, 128, 32, 32);
        assert!(big.cycles < small.cycles);
        assert_eq!(big.macs, small.macs, "work is invariant");
    }

    #[test]
    fn zero_dims_are_free() {
        assert_eq!(gemm_report(0, 16, 16, 16, 16), SystolicReport::default());
        assert_eq!(gemm_report(16, 0, 16, 16, 16), SystolicReport::default());
    }

    #[test]
    fn mlp_sums_layers() {
        let a = gemm_report(10, 8, 16, 16, 16);
        let b = gemm_report(10, 16, 4, 16, 16);
        let m = mlp_report(10, &[8, 16, 4], 16, 16);
        assert_eq!(m.cycles, a.cycles + b.cycles);
        assert_eq!(m.macs, a.macs + b.macs);
        // degenerate MLPs
        assert_eq!(mlp_report(10, &[8], 16, 16), SystolicReport::default());
        assert_eq!(mlp_report(10, &[], 16, 16), SystolicReport::default());
    }
}
