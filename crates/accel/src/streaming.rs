//! Back-to-back multi-frame pipeline driver — the streaming workload
//! engine's timing and energy model.
//!
//! A LiDAR pipeline never sees one cloud: it sees a 10–20 Hz stream of
//! consecutive frames. This module simulates that regime on the Crescent
//! engine: each frame is K-d-tree-built, split, and searched with the
//! batched two-stage search ([`SplitTree::search_batch`]), whose wavefront
//! descent fetches every top-tree node once per batch; a single
//! [`BatchState`] is threaded through the whole sequence so the descent
//! buffers are recycled and cross-frame sub-tree locality is measured.
//!
//! Timing follows the engine's double-buffering discipline
//! ([`run_crescent_search`](crate::run_crescent_search)) and extends it
//! across frames: within a frame, compute overlaps DMA
//! (`slot = max(compute, dma)`); across frames, frame `i+1`'s streaming
//! DMA overlaps frame `i`'s compute, so the whole sequence costs
//! `Σ slotᵢ` plus one pipeline fill ([`StreamReport::pipelined_cycles`])
//! instead of the serialized `Σ (slotᵢ + fill)`
//! ([`StreamReport::serial_cycles`]). Energy lands in a per-frame
//! [`StreamLedger`].

use serde::{Deserialize, Serialize};

use crescent_kdtree::{BatchSearchStats, BatchState, KdTree, SplitTree, NODE_BYTES};
use crescent_memsim::{EnergyLedger, StreamLedger};
use crescent_pointcloud::{Neighbor, Point3, PointCloud};

use crate::config::AcceleratorConfig;
use crate::engine::PE_PIPELINE_DEPTH;
use crate::pipeline::CrescentKnobs;

/// Search parameters applied to every frame of a stream.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StreamSearchConfig {
    /// Search radius (frame-cloud units).
    pub radius: f32,
    /// Cap on returned neighbors per query (`None` = unbounded).
    pub max_neighbors: Option<usize>,
}

impl Default for StreamSearchConfig {
    fn default() -> Self {
        StreamSearchConfig { radius: 0.5, max_neighbors: Some(32) }
    }
}

/// Timing and statistics of one frame in a stream.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FrameReport {
    /// 0-based frame index.
    pub frame: usize,
    /// Points in the frame cloud.
    pub points: usize,
    /// Queries issued against the frame.
    pub queries: usize,
    /// Total neighbors returned across all queries.
    pub neighbors: usize,
    /// Datapath cycles (amortized top-tree stage + sub-tree stage +
    /// pipeline fill).
    pub compute_cycles: u64,
    /// Streaming-DMA cycles for the frame's DRAM traffic.
    pub dma_cycles: u64,
    /// The frame's pipeline-slot occupancy: `max(compute, dma)`. With
    /// back-to-back frames the fill is paid once per stream, not per frame.
    pub slot_cycles: u64,
    /// DRAM bytes moved (all streaming — the Crescent schedule has no
    /// random accesses).
    pub dram_streaming_bytes: u64,
    /// Tree-buffer reads (top-tree fetches + sub-tree node visits).
    pub tree_buffer_reads: u64,
    /// Algorithmic statistics of the batched search.
    pub search: BatchSearchStats,
    /// Energy charged to this frame.
    pub energy: EnergyLedger,
}

impl FrameReport {
    /// The frame's standalone latency (slot plus pipeline fill), i.e. what
    /// the frame would cost if it were not overlapped with its neighbors.
    pub fn standalone_cycles(&self) -> u64 {
        self.slot_cycles + PE_PIPELINE_DEPTH
    }
}

/// Aggregate report of a frame-sequence simulation.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StreamReport {
    /// Per-frame reports, in frame order.
    pub frames: Vec<FrameReport>,
    /// Per-frame energy ledger (same order; totals included).
    pub ledger: StreamLedger,
    /// Sequence latency with inter-frame double buffering: the sum of the
    /// per-frame slots plus a single pipeline fill.
    pub pipelined_cycles: u64,
    /// Sequence latency with every frame run standalone (the
    /// no-overlap upper bound).
    pub serial_cycles: u64,
}

impl StreamReport {
    /// Number of simulated frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Total queries across the stream.
    pub fn total_queries(&self) -> usize {
        self.frames.iter().map(|f| f.queries).sum()
    }

    /// Total DRAM traffic across the stream (bytes, all streaming).
    pub fn total_dram_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.dram_streaming_bytes).sum()
    }

    /// Mean cross-frame sub-tree assignment reuse over frames 1.., the
    /// temporal-locality figure of merit (0.0 for streams of < 2 frames).
    pub fn mean_reuse_fraction(&self) -> f64 {
        if self.frames.len() < 2 {
            return 0.0;
        }
        let later = &self.frames[1..];
        later.iter().map(|f| f.search.reuse_fraction()).sum::<f64>() / later.len() as f64
    }

    /// Cycles saved by overlapping frames, relative to standalone frames.
    pub fn pipelining_speedup(&self) -> f64 {
        if self.pipelined_cycles == 0 {
            1.0
        } else {
            self.serial_cycles as f64 / self.pipelined_cycles as f64
        }
    }
}

/// Simulates a sequence of back-to-back frames on the Crescent engine.
///
/// Each item of `frames` is one frame's `(cloud, queries)`. Per frame the
/// driver builds the K-d tree, splits it below `knobs.top_height` (clamped
/// to the tree like [`run_crescent_search`](crate::run_crescent_search)
/// does), runs the batched two-stage search, and charges cycles and energy;
/// the shared [`BatchState`] carries descent buffers and the cross-frame
/// locality metric from frame to frame. Returns each frame's per-query
/// neighbor lists (identical to per-query [`SplitTree::search_one`] — see
/// `tests/streaming.rs`) alongside the report.
pub fn run_frame_stream(
    frames: &[(&PointCloud, &[Point3])],
    search: &StreamSearchConfig,
    knobs: CrescentKnobs,
    config: &AcceleratorConfig,
) -> (Vec<Vec<Vec<Neighbor>>>, StreamReport) {
    let mut results = Vec::with_capacity(frames.len());
    let mut report = StreamReport::default();
    let mut state = BatchState::new();
    let em = &config.energy;

    for (frame_idx, &(cloud, queries)) in frames.iter().enumerate() {
        let tree = KdTree::build(cloud);
        let ht =
            if tree.is_empty() { 0 } else { knobs.top_height.min(tree.height().saturating_sub(1)) };
        let split = SplitTree::new(&tree, ht).expect("clamped top height is valid");
        let (frame_results, stats) =
            split.search_batch(queries, search.radius, search.max_neighbors, &mut state);

        // ---- timing ----
        // Top stage: the wavefront issues one fetch per touched top-tree
        // node; each fetch is one lock-step round whose payload is shared
        // by every query on the node. Sub-tree stage: the PEs traverse
        // independent queries in parallel.
        let compute = stats.top_fetches as u64
            + (stats.subtree_visits as u64).div_ceil(config.num_pes.max(1) as u64)
            + PE_PIPELINE_DEPTH;
        let dma = config.dram.stream_cycles(stats.dram_bytes);
        let slot = compute.max(dma);

        // ---- energy ----
        let mut energy = EnergyLedger::new();
        energy.charge_dram_streaming(em, stats.dram_bytes);
        let reads = (stats.top_fetches + stats.subtree_visits) as u64;
        energy.charge_sram_search(em, reads * NODE_BYTES as u64);
        energy.charge_leakage(em, slot);

        report.frames.push(FrameReport {
            frame: frame_idx,
            points: cloud.len(),
            queries: queries.len(),
            neighbors: frame_results.iter().map(Vec::len).sum(),
            compute_cycles: compute,
            dma_cycles: dma,
            slot_cycles: slot,
            dram_streaming_bytes: stats.dram_bytes,
            tree_buffer_reads: reads,
            search: stats,
            energy,
        });
        report.ledger.push_frame(energy);
        results.push(frame_results);
    }

    // an empty stream does no work and pays no fill
    if !report.frames.is_empty() {
        report.pipelined_cycles =
            report.frames.iter().map(|f| f.slot_cycles).sum::<u64>() + PE_PIPELINE_DEPTH;
        report.serial_cycles = report.frames.iter().map(FrameReport::standalone_cycles).sum();
    }
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                )
            })
            .collect()
    }

    fn drifting_frames(count: usize, n: usize, seed: u64) -> Vec<(PointCloud, Vec<Point3>)> {
        let base = random_cloud(n, seed);
        (0..count)
            .map(|f| {
                let drift = Point3::new(0.01, -0.005, 0.0) * f as f32;
                let cloud: PointCloud = base.iter().map(|&p| p + drift).collect();
                let queries: Vec<Point3> = (0..64).map(|i| cloud.point(i * n / 64)).collect();
                (cloud, queries)
            })
            .collect()
    }

    fn borrow(frames: &[(PointCloud, Vec<Point3>)]) -> Vec<(&PointCloud, &[Point3])> {
        frames.iter().map(|(c, q)| (c, q.as_slice())).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let frames = drifting_frames(6, 2048, 80);
        let search = StreamSearchConfig { radius: 0.2, max_neighbors: Some(16) };
        let cfg = AcceleratorConfig::default();
        let knobs = CrescentKnobs::default();
        let (r1, a) = run_frame_stream(&borrow(&frames), &search, knobs, &cfg);
        let (r2, b) = run_frame_stream(&borrow(&frames), &search, knobs, &cfg);
        assert_eq!(r1, r2, "neighbor sets must be bit-identical");
        assert_eq!(a.pipelined_cycles, b.pipelined_cycles);
        assert_eq!(a.serial_cycles, b.serial_cycles);
        assert_eq!(a.ledger.total().total(), b.ledger.total().total());
    }

    #[test]
    fn pipelining_beats_serial() {
        let frames = drifting_frames(8, 2048, 81);
        let (_, rep) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig::default(),
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert_eq!(rep.num_frames(), 8);
        assert!(rep.pipelined_cycles < rep.serial_cycles);
        assert!(rep.pipelining_speedup() > 1.0);
        // overlap only hides fills, never work
        let slots: u64 = rep.frames.iter().map(|f| f.slot_cycles).sum();
        assert_eq!(rep.pipelined_cycles, slots + PE_PIPELINE_DEPTH);
    }

    #[test]
    fn drifting_frames_show_temporal_locality() {
        let frames = drifting_frames(5, 4096, 82);
        let (_, rep) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig { radius: 0.2, max_neighbors: None },
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert_eq!(rep.frames[0].search.assignment_reuses, 0, "first frame has no history");
        assert!(
            rep.mean_reuse_fraction() > 0.5,
            "small drift must preserve most assignments, got {}",
            rep.mean_reuse_fraction()
        );
    }

    #[test]
    fn ledger_matches_frames() {
        let frames = drifting_frames(4, 1024, 83);
        let (_, rep) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig::default(),
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert_eq!(rep.ledger.len(), 4);
        for (f, l) in rep.frames.iter().zip(rep.ledger.frames()) {
            assert_eq!(&f.energy, l);
            assert!(f.energy.dram_streaming > 0.0);
            assert_eq!(f.energy.dram_random, 0.0, "streaming schedule has no random DRAM");
        }
        let sum: f64 = rep.frames.iter().map(|f| f.energy.total()).sum();
        assert!((rep.ledger.total().total() - sum).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_and_empty_frames() {
        let (res, rep) = run_frame_stream(
            &[],
            &StreamSearchConfig::default(),
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert!(res.is_empty());
        assert_eq!(rep.num_frames(), 0);
        assert_eq!(rep.pipelined_cycles, 0, "no frames, no work, no fill");
        assert_eq!(rep.serial_cycles, 0);
        assert_eq!(rep.pipelining_speedup(), 1.0);

        let frames = vec![(PointCloud::new(), vec![Point3::ZERO])];
        let (res, rep) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig::default(),
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert!(res[0][0].is_empty());
        assert_eq!(rep.total_dram_bytes(), 0);
    }
}
