//! Back-to-back multi-frame pipeline driver — the streaming workload
//! engine's timing and energy model, including honest tree-maintenance
//! accounting.
//!
//! A LiDAR pipeline never sees one cloud: it sees a 10–20 Hz stream of
//! consecutive frames. This module simulates that regime on the Crescent
//! engine. Per frame the driver first *maintains* the K-d tree under the
//! configured [`TreeMaintenance`] policy — a full [`KdTree::build`] or an
//! incremental [`KdTree::refit`](crescent_kdtree::refit) — and charges its
//! cycles, DRAM bytes, and energy (nothing about tree construction is
//! free; it is the most DRAM-intensive phase of a frame). It then splits
//! the tree through the cheap [`SplitTree::resplit`] re-validation path
//! and answers the frame's queries with the batched two-stage search
//! ([`SplitTree::search_batch`]), whose wavefront descent fetches every
//! top-tree node once per batch; a single [`BatchState`] is threaded
//! through the whole sequence so the descent buffers are recycled and
//! cross-frame sub-tree locality is measured.
//!
//! # Timing model
//!
//! The search stage runs the **unified banked-arbitration model**: the
//! wavefront's stage-2 sub-tree traversals go through the same
//! lock-step, bank-arbitrated tree buffer as the standalone engine
//! ([`crate::run_crescent_search`]), so bank conflicts serialize rounds
//! and the depth-from-leaves elision knob
//! ([`StreamSearchConfig::elision_depth`], the streaming `h_e`) trades
//! neighbors for cycles *inside the stream* — no second engine pass is
//! needed to see `h_e`. After the search, the aggregation unit gathers
//! every query's neighbors from the banked Point Buffer
//! ([`crate::simulate_aggregation`]), honoring
//! `AcceleratorConfig::aggregation_elision`.
//!
//! Within a frame, the datapath work (search rounds, then gather
//! rounds) is double-buffered against the frame's streaming DMA:
//! the build stage occupies `max(build compute, build DMA)` cycles
//! ([`FrameReport::build_slot_cycles`]) and the search+aggregate stage
//! `max(search compute + aggregation, search DMA)`
//! ([`FrameReport::slot_cycles`]). Across frames, two overlaps apply:
//!
//! * frame `i+1`'s **build** (its DMA and partitioning) runs while frame
//!   `i` is still **searching** — the build unit writes the next tree
//!   image into the spare tree buffer, so builds hide behind search
//!   compute whenever they fit;
//! * the PE pipeline **fill** is paid exactly **once per stream** in
//!   [`StreamReport::pipelined_cycles`] (and once per frame in the
//!   standalone upper bound [`StreamReport::serial_cycles`]). The fill
//!   used to be triple-charged — inside per-frame compute, again on the
//!   stream total, and again in the standalone bound; the corrected
//!   model charges it exactly once per stream / once per standalone
//!   frame, and a frame with no work at all costs zero cycles.
//!
//! The exact bookkeeping identity (asserted in
//! `tests/streaming_properties.rs`):
//! `serial − pipelined == (frames_with_work − 1) · fill +
//! overlapped_build_cycles` — fully idle frames pay no fill in either
//! bound, so they drop out of the coefficient.
//! Energy lands in a per-frame [`StreamLedger`], with tree maintenance in
//! its own `tree_build` category.

use serde::{Deserialize, Serialize};

use crescent_kdtree::{
    BatchSearchConfig, BatchSearchStats, BatchState, KdTree, RefitConfig, RefitScratch, SplitTree,
    NODE_BYTES,
};
use crescent_memsim::{EnergyLedger, StreamLedger};
use crescent_pointcloud::{Neighbor, Point3, PointCloud, POINT_BYTES};

use crate::aggregation::simulate_aggregation;
use crate::config::AcceleratorConfig;
use crate::engine::PE_PIPELINE_DEPTH;
use crate::pipeline::CrescentKnobs;

/// Per-frame K-d-tree maintenance policy of [`run_frame_stream`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum TreeMaintenance {
    /// Build the tree from scratch every frame (the honest baseline; its
    /// cost is now charged instead of silently modeled as free).
    #[default]
    RebuildEveryFrame,
    /// Maintain the tree incrementally with
    /// [`KdTree::refit`](crescent_kdtree::refit): in-place coordinate
    /// update + validation, rebuilding only dirty sub-trees, falling
    /// back to a full rebuild on incoherent frames. On a clean refit the
    /// resulting tree — and therefore every neighbor set — is identical
    /// to what [`TreeMaintenance::RebuildEveryFrame`] produces.
    Refit {
        /// Fraction of sub-trees that may be dirty before the frame is
        /// declared incoherent (see [`RefitConfig::rebuild_threshold`]).
        rebuild_threshold: f64,
    },
}

impl TreeMaintenance {
    /// The default incremental policy (`rebuild_threshold` from
    /// [`RefitConfig::default`]).
    pub fn refit() -> Self {
        TreeMaintenance::Refit { rebuild_threshold: RefitConfig::default().rebuild_threshold }
    }
}

/// The default streaming elision depth: conflicted fetches in the 4
/// deepest tree levels are dropped — the streaming-side counterpart of
/// the paper's Fig 13 operating point (`h_e = 12` level-based on the
/// ~16-level evaluation trees ⇒ 4 elidable levels above the leaves).
pub const DEFAULT_STREAM_ELISION_DEPTH: usize = 4;

/// Search parameters applied to every frame of a stream.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StreamSearchConfig {
    /// Search radius (frame-cloud units).
    pub radius: f32,
    /// Cap on returned neighbors per query (`None` = unbounded).
    pub max_neighbors: Option<usize>,
    /// Per-frame tree maintenance policy.
    pub maintenance: TreeMaintenance,
    /// The streaming `h_e`: conflicted tree-buffer fetches in this many
    /// of the deepest tree levels are elided (dropped with their
    /// subtree) instead of stalling. `0` disables elision — every
    /// conflict serializes and results are bit-identical to per-query
    /// [`SplitTree::search_one`]. Depth-from-leaves keeps the knob
    /// meaningful across frames whose tree heights differ; each frame
    /// converts it to the engine's level threshold `height − depth`.
    pub elision_depth: usize,
    /// Descendant reuse in the banked arbiter: an elision-eligible fetch
    /// that loses arbitration to an *ancestor* of its own node continues
    /// beneath the winner instead of dropping its subtree (see
    /// [`BatchBankModel::descendant_reuse`](crescent_kdtree::BatchBankModel)).
    /// Only meaningful with `elision_depth > 0` — at depth 0 no fetch is
    /// elision-eligible, so the knob is inert and results stay
    /// bit-identical to the stall-only model.
    pub descendant_reuse: bool,
}

impl Default for StreamSearchConfig {
    fn default() -> Self {
        StreamSearchConfig {
            radius: 0.5,
            max_neighbors: Some(32),
            maintenance: TreeMaintenance::default(),
            elision_depth: DEFAULT_STREAM_ELISION_DEPTH,
            descendant_reuse: false,
        }
    }
}

/// Timing and statistics of one frame in a stream.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FrameReport {
    /// 0-based frame index.
    pub frame: usize,
    /// Points in the frame cloud.
    pub points: usize,
    /// Queries issued against the frame.
    pub queries: usize,
    /// Total neighbors returned across all queries.
    pub neighbors: usize,
    /// Search datapath cycles: amortized top-tree fetches plus the
    /// stage-2 lock-step arbitration rounds of the unified banked model
    /// (conflict stalls lengthen them, `h_e` elision shortens them). The
    /// pipeline fill is *not* in here — it is charged once per stream; a
    /// frame that does no search work costs zero.
    pub compute_cycles: u64,
    /// Aggregation-unit cycles: banked Point-Buffer gather rounds for
    /// every query's neighbor list (serializing on conflicts unless
    /// `AcceleratorConfig::aggregation_elision` replicates them away).
    pub agg_cycles: u64,
    /// Streaming-DMA cycles for the frame's search DRAM traffic.
    pub dma_cycles: u64,
    /// The search stage's pipeline-slot occupancy:
    /// `max(compute + aggregation, dma)`.
    pub slot_cycles: u64,
    /// Search rounds in which at least one tree-buffer fetch stalled on
    /// a bank conflict — the serialization cycles a conflict-free SRAM
    /// (or deeper elision) would win back.
    pub conflict_stall_cycles: u64,
    /// Conflicted tree-buffer fetches dropped by `h_e` elision this
    /// frame (0 whenever `elision_depth == 0`).
    pub elided_conflicts: u64,
    /// Point-Buffer gather conflicts during aggregation.
    pub agg_conflicts: u64,
    /// Aggregation conflicts resolved by neighbor replication instead of
    /// serialization (0 with `aggregation_elision` off).
    pub agg_elided: u64,
    /// Tree-maintenance datapath cycles (build partitioning, or refit
    /// patch + validation + sub-tree repairs).
    pub build_cycles: u64,
    /// Streaming-DMA cycles for the maintenance traffic.
    pub build_dma_cycles: u64,
    /// The build stage's slot occupancy: `max(build compute, build DMA)`.
    pub build_slot_cycles: u64,
    /// DRAM bytes moved by tree maintenance (cloud in, tree image out;
    /// for refit also the old image in).
    pub build_dram_bytes: u64,
    /// Sub-trees rebuilt in place by an incremental refit (0 under
    /// [`TreeMaintenance::RebuildEveryFrame`]).
    pub subtrees_rebuilt: usize,
    /// Whether this frame's tree was (re)built from scratch — always
    /// true under [`TreeMaintenance::RebuildEveryFrame`] and on frame 0;
    /// true under `Refit` only when the incoherence fallback fired.
    pub full_rebuild: bool,
    /// DRAM bytes moved by the search (all streaming — the Crescent
    /// schedule has no random accesses).
    pub dram_streaming_bytes: u64,
    /// Tree-buffer reads (top-tree fetches + sub-tree node visits).
    pub tree_buffer_reads: u64,
    /// Algorithmic statistics of the batched search.
    pub search: BatchSearchStats,
    /// Energy charged to this frame (maintenance in `tree_build`).
    pub energy: EnergyLedger,
}

impl FrameReport {
    /// Whether the frame did any modeled work at all (build or search).
    pub fn has_work(&self) -> bool {
        self.slot_cycles > 0 || self.build_slot_cycles > 0
    }

    /// The frame's standalone latency: build slot + search slot + one
    /// pipeline fill — what the frame would cost with no inter-frame
    /// overlap. A frame with no work costs zero (no fill is charged for
    /// an idle engine).
    pub fn standalone_cycles(&self) -> u64 {
        if self.has_work() {
            self.build_slot_cycles + self.slot_cycles + PE_PIPELINE_DEPTH
        } else {
            0
        }
    }
}

/// Aggregate report of a frame-sequence simulation.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StreamReport {
    /// Per-frame reports, in frame order.
    pub frames: Vec<FrameReport>,
    /// Per-frame energy ledger (same order; totals included).
    pub ledger: StreamLedger,
    /// Sequence latency with inter-frame double buffering: frame `i+1`'s
    /// build overlaps frame `i`'s search, and a single pipeline fill is
    /// charged for the whole stream.
    pub pipelined_cycles: u64,
    /// Sequence latency with every frame run standalone (the no-overlap
    /// upper bound: per-frame build + search + fill).
    pub serial_cycles: u64,
    /// Build-slot cycles hidden behind search compute by the inter-frame
    /// overlap (the tree-maintenance work the stream gets for free —
    /// `serial − pipelined == (frames_with_work − 1) · fill + this`,
    /// where idle frames pay no fill in either bound).
    pub overlapped_build_cycles: u64,
}

impl StreamReport {
    /// Number of simulated frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Total queries across the stream.
    pub fn total_queries(&self) -> usize {
        self.frames.iter().map(|f| f.queries).sum()
    }

    /// Total DRAM traffic across the stream, search + tree maintenance
    /// (bytes, all streaming).
    pub fn total_dram_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.dram_streaming_bytes + f.build_dram_bytes).sum()
    }

    /// Total tree-maintenance slot cycles across the stream.
    pub fn total_build_cycles(&self) -> u64 {
        self.frames.iter().map(|f| f.build_slot_cycles).sum()
    }

    /// Total stage-2 lock-step arbitration rounds across the stream —
    /// the banked tree buffer's share of the search compute.
    pub fn total_arb_rounds(&self) -> u64 {
        self.frames.iter().map(|f| f.search.subtree_rounds as u64).sum()
    }

    /// Total tree-buffer fetch attempts that lost bank arbitration.
    pub fn total_bank_conflicts(&self) -> u64 {
        self.frames.iter().map(|f| f.search.bank_conflicts as u64).sum()
    }

    /// Total rounds in which at least one fetch stalled on a conflict.
    pub fn total_conflict_stall_cycles(&self) -> u64 {
        self.frames.iter().map(|f| f.conflict_stall_cycles).sum()
    }

    /// Total conflicted fetches dropped by `h_e` elision.
    pub fn total_elided_conflicts(&self) -> u64 {
        self.frames.iter().map(|f| f.elided_conflicts).sum()
    }

    /// Total elision-eligible conflicts salvaged by descendant reuse —
    /// losers that continued beneath an ancestor winner instead of
    /// dropping their subtree (0 unless
    /// [`StreamSearchConfig::descendant_reuse`] is on).
    pub fn total_conflict_reuses(&self) -> u64 {
        self.frames.iter().map(|f| f.search.conflict_reuses as u64).sum()
    }

    /// Total aggregation-unit gather rounds across the stream.
    pub fn total_agg_cycles(&self) -> u64 {
        self.frames.iter().map(|f| f.agg_cycles).sum()
    }

    /// Total aggregation conflicts resolved by replication.
    pub fn total_agg_elided(&self) -> u64 {
        self.frames.iter().map(|f| f.agg_elided).sum()
    }

    /// Mean cross-frame sub-tree assignment reuse over frames 1.., the
    /// temporal-locality figure of merit (0.0 for streams of < 2 frames).
    pub fn mean_reuse_fraction(&self) -> f64 {
        if self.frames.len() < 2 {
            return 0.0;
        }
        let later = &self.frames[1..];
        later.iter().map(|f| f.search.reuse_fraction()).sum::<f64>() / later.len() as f64
    }

    /// Cycles saved by overlapping frames, relative to standalone frames.
    pub fn pipelining_speedup(&self) -> f64 {
        if self.pipelined_cycles == 0 {
            1.0
        } else {
            self.serial_cycles as f64 / self.pipelined_cycles as f64
        }
    }
}

/// Simulates a sequence of back-to-back frames on the Crescent engine.
///
/// Each item of `frames` is one frame's `(cloud, queries)`. Per frame the
/// driver maintains the K-d tree under `search.maintenance` (charging
/// build/refit cycles, DMA, and energy), re-splits it below
/// `knobs.top_height` through the allocation-recycling
/// [`SplitTree::resplit`] path, runs the batched two-stage search through
/// the banked tree-buffer arbitration model (`config.num_pes` lock-step
/// PEs over `config.tree_buffer.num_banks` banks, conflicts stalling or
/// eliding per `search.elision_depth`), gathers the neighbor lists
/// through the banked Point Buffer, and charges cycles and energy; the
/// shared [`BatchState`] carries descent buffers and the cross-frame
/// locality metric from frame to frame.
///
/// At `search.elision_depth == 0` the returned neighbor lists are
/// bit-identical to per-query [`SplitTree::search_one`] (see
/// `tests/elision_unified.rs`); with a positive depth, elision drops
/// neighbors (never invents one) in exchange for fewer arbitration
/// rounds.
///
/// For [`TreeMaintenance::Refit`], frame `i`'s cloud must give frame
/// `i−1`'s points at the same indices (temporally coherent, identity-
/// stable streams); anything else is detected by the refit validation
/// and handled as an incoherent frame via the full-rebuild fallback, so
/// results are *always* correct — incoherence costs cycles, not
/// accuracy.
pub fn run_frame_stream(
    frames: &[(&PointCloud, &[Point3])],
    search: &StreamSearchConfig,
    knobs: CrescentKnobs,
    config: &AcceleratorConfig,
) -> (Vec<Vec<Vec<Neighbor>>>, StreamReport) {
    let clouds: Vec<&PointCloud> = frames.iter().map(|&(cloud, _)| cloud).collect();
    let trees = maintain_tree_sequence(&clouds, search.maintenance, knobs.top_height);
    run_frame_stream_on_trees(frames, &trees, search, knobs, config)
}

/// One frame's maintained tree plus the modeled cost of maintaining it —
/// the per-frame element of [`maintain_tree_sequence`]'s output.
///
/// Everything downstream of maintenance (split, search, aggregation,
/// timing, energy) reads only this snapshot, which is what lets the
/// sweep explorer compute a scenario's tree sequence once and share it
/// across every grid point whose maintenance inputs coincide.
#[derive(Clone, Debug)]
pub struct MaintainedTree {
    /// The tree as it stands after this frame's maintenance.
    pub tree: KdTree,
    /// Modeled maintenance cycles (full build or refit work).
    pub build_cycles: u64,
    /// DRAM bytes the maintenance streamed.
    pub build_dram_bytes: u64,
    /// Dirty sub-trees a refit rebuilt (`0` for full builds).
    pub subtrees_rebuilt: usize,
    /// Whether this frame (re)built the whole tree from scratch.
    pub full_rebuild: bool,
}

/// Runs the tree-maintenance phase alone over a stream of clouds,
/// returning each frame's tree snapshot and modeled maintenance cost.
///
/// The sequence depends only on the clouds, the `maintenance` policy,
/// and — for [`TreeMaintenance::Refit`] — `check_height` (the refit
/// validator walks the top `check_height` levels, i.e. the granted
/// `h_t`). In particular it is **independent of every other
/// architecture knob** (PE count, banking, elision, DRAM bandwidth),
/// which is the invariant the explorer's tree-sequence memo relies on.
///
/// [`run_frame_stream`] is exactly `maintain_tree_sequence` +
/// [`run_frame_stream_on_trees`]; callers that run many knob points
/// over one stream call the two halves themselves and reuse the
/// sequence.
pub fn maintain_tree_sequence(
    clouds: &[&PointCloud],
    maintenance: TreeMaintenance,
    check_height: usize,
) -> Vec<MaintainedTree> {
    let mut out: Vec<MaintainedTree> = Vec::with_capacity(clouds.len());
    let mut refit_scratch = RefitScratch::default();
    for &cloud in clouds {
        let entry = match (out.last(), maintenance) {
            // frame 0 always builds from scratch, whatever the policy
            (None, _) | (Some(_), TreeMaintenance::RebuildEveryFrame) => {
                let tree = KdTree::build(cloud);
                let b = *tree.build_stats();
                MaintainedTree {
                    tree,
                    build_cycles: b.cycles,
                    build_dram_bytes: b.dram_bytes,
                    subtrees_rebuilt: 0,
                    full_rebuild: true,
                }
            }
            (Some(prev), TreeMaintenance::Refit { rebuild_threshold }) => {
                let cfg = RefitConfig { check_height, rebuild_threshold, ..RefitConfig::default() };
                let mut tree = prev.tree.clone();
                let r = tree.refit_with_scratch(cloud, &cfg, &mut refit_scratch);
                MaintainedTree {
                    tree,
                    build_cycles: r.cycles,
                    build_dram_bytes: r.dram_bytes,
                    subtrees_rebuilt: r.subtrees_rebuilt,
                    full_rebuild: r.is_full_rebuild(),
                }
            }
        };
        out.push(entry);
    }
    out
}

/// The search/aggregation/timing/energy half of [`run_frame_stream`],
/// applied to a pre-maintained tree sequence (one [`MaintainedTree`] per
/// frame, as produced by [`maintain_tree_sequence`] on the same clouds,
/// policy, and granted `h_t`). Byte-identical to calling
/// [`run_frame_stream`] directly — the split exists so the explorer can
/// amortize maintenance across knob points, not to change the model.
///
/// # Panics
///
/// Panics if `trees.len() != frames.len()`.
pub fn run_frame_stream_on_trees(
    frames: &[(&PointCloud, &[Point3])],
    trees: &[MaintainedTree],
    search: &StreamSearchConfig,
    knobs: CrescentKnobs,
    config: &AcceleratorConfig,
) -> (Vec<Vec<Vec<Neighbor>>>, StreamReport) {
    assert_eq!(trees.len(), frames.len(), "one maintained tree per frame");
    let mut results = Vec::with_capacity(frames.len());
    let mut report = StreamReport::default();
    let mut state = BatchState::new();
    let em = &config.energy;

    let mut roots_pool: Vec<usize> = Vec::new();
    // recycled working memory: the aggregation unit's per-query index
    // lists live across frames so the steady-state loop allocates
    // nothing per frame
    let mut neighbor_lists: Vec<Vec<usize>> = Vec::new();
    // pipeline schedule state: when the build unit / search engine free
    // up, plus the search-completion time two frames back (the spare
    // tree buffer only frees once the search reading it finishes)
    let mut build_end: u64 = 0;
    let mut search_end: u64 = 0;
    let mut search_end_prev: u64 = 0;

    for (frame_idx, (&(cloud, queries), maintained)) in frames.iter().zip(trees).enumerate() {
        // ---- tree maintenance (pre-computed) ----
        let MaintainedTree {
            ref tree,
            build_cycles,
            build_dram_bytes,
            subtrees_rebuilt,
            full_rebuild,
        } = *maintained;
        let tree_ref = tree;

        // ---- search ----
        let ht = if tree_ref.is_empty() {
            0
        } else {
            knobs.top_height.min(tree_ref.height().saturating_sub(1))
        };
        let split = SplitTree::resplit(tree_ref, ht, std::mem::take(&mut roots_pool))
            .expect("clamped top height is valid");
        let batch_cfg = BatchSearchConfig::banked(
            search.radius,
            search.max_neighbors,
            config.num_pes,
            config.tree_buffer.num_banks,
            search.elision_depth,
        )
        .with_descendant_reuse(search.descendant_reuse);
        let (frame_results, stats) = split.search_batch(queries, &batch_cfg, &mut state);
        roots_pool = split.into_subtree_roots();

        // ---- aggregation ----
        // The aggregation unit gathers every query's neighbor list from
        // the banked Point Buffer; conflicted gathers serialize unless
        // aggregation elision replicates the winner's neighbor.
        if neighbor_lists.len() < frame_results.len() {
            neighbor_lists.resize_with(frame_results.len(), Vec::new);
        }
        for (list, hits) in neighbor_lists.iter_mut().zip(&frame_results) {
            list.clear();
            list.extend(hits.iter().map(|n| n.index));
        }
        let agg = simulate_aggregation(
            &neighbor_lists[..frame_results.len()],
            config.point_buffer,
            config.point_buffer.num_banks,
            config.aggregation_elision,
        );

        // ---- timing ----
        // Search stage: the wavefront issues one fetch per touched
        // top-tree node (payload shared by every query on the node); the
        // PEs then drain each sub-tree queue in lock-step through the
        // banked tree buffer, so the round count already carries both PE
        // parallelism and conflict serialization. No fill in here — it
        // is charged once per stream below, and a frame with no work
        // costs nothing.
        let compute = stats.top_fetches as u64 + stats.subtree_rounds as u64;
        let dma = config.dram.stream_cycles(stats.dram_bytes);
        let slot = (compute + agg.rounds).max(dma);
        // Build stage: internally double-buffered the same way.
        let build_dma = config.dram.stream_cycles(build_dram_bytes);
        let build_slot = build_cycles.max(build_dma);

        // ---- inter-frame schedule ----
        // One build unit, one search engine, two tree buffers: frame i's
        // build may start once the build unit is free AND the buffer
        // frame i−2 was searched from has drained.
        let build_start = build_end.max(search_end_prev);
        build_end = build_start + build_slot;
        let search_start = search_end.max(build_end);
        search_end_prev = search_end;
        search_end = search_start + slot;

        // ---- energy ----
        let mut energy = EnergyLedger::new();
        energy.charge_dram_streaming(em, stats.dram_bytes + build_dram_bytes);
        energy.charge_tree_build(em, build_cycles);
        // only honored fetches read data out of the tree buffer; stalled
        // re-issues retry, elided ones never return their own node
        let reads = (stats.top_fetches + stats.subtree_visits) as u64;
        energy.charge_sram_search(em, reads * NODE_BYTES as u64);
        // granted gathers move one point record each; every issue also
        // reads one 4-byte word of the neighbor-index matrix; elided
        // gathers reuse the winner's data for free
        energy.charge_sram_aggregation(em, agg.grants * POINT_BYTES as u64 + agg.requests * 4);
        energy.charge_leakage(em, build_slot + slot);

        report.frames.push(FrameReport {
            frame: frame_idx,
            points: cloud.len(),
            queries: queries.len(),
            neighbors: frame_results.iter().map(Vec::len).sum(),
            compute_cycles: compute,
            agg_cycles: agg.rounds,
            dma_cycles: dma,
            slot_cycles: slot,
            conflict_stall_cycles: stats.stall_rounds as u64,
            elided_conflicts: stats.conflicts_elided as u64,
            agg_conflicts: agg.conflicts,
            agg_elided: agg.elided,
            build_cycles,
            build_dma_cycles: build_dma,
            build_slot_cycles: build_slot,
            build_dram_bytes,
            subtrees_rebuilt,
            full_rebuild,
            dram_streaming_bytes: stats.dram_bytes,
            tree_buffer_reads: reads,
            search: stats,
            energy,
        });
        report.ledger.push_frame(energy);
        results.push(frame_results);
    }

    // A stream that never did any work pays no fill; otherwise the fill
    // is charged exactly once for the whole pipelined sequence.
    let any_work = report.frames.iter().any(FrameReport::has_work);
    if any_work {
        let fill = PE_PIPELINE_DEPTH;
        let total_search: u64 = report.frames.iter().map(|f| f.slot_cycles).sum();
        let total_build: u64 = report.frames.iter().map(|f| f.build_slot_cycles).sum();
        // search-engine idle time is exactly the build time the overlap
        // could NOT hide (exposed build)
        let exposed_build = search_end - total_search;
        report.pipelined_cycles = search_end + fill;
        report.serial_cycles = report.frames.iter().map(FrameReport::standalone_cycles).sum();
        report.overlapped_build_cycles = total_build - exposed_build;
    }
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                )
            })
            .collect()
    }

    fn drifting_frames(count: usize, n: usize, seed: u64) -> Vec<(PointCloud, Vec<Point3>)> {
        let base = random_cloud(n, seed);
        (0..count)
            .map(|f| {
                let drift = Point3::new(0.01, -0.005, 0.0) * f as f32;
                let cloud: PointCloud = base.iter().map(|&p| p + drift).collect();
                let queries: Vec<Point3> = (0..64).map(|i| cloud.point(i * n / 64)).collect();
                (cloud, queries)
            })
            .collect()
    }

    fn borrow(frames: &[(PointCloud, Vec<Point3>)]) -> Vec<(&PointCloud, &[Point3])> {
        frames.iter().map(|(c, q)| (c, q.as_slice())).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let frames = drifting_frames(6, 2048, 80);
        let search =
            StreamSearchConfig { radius: 0.2, max_neighbors: Some(16), ..Default::default() };
        let cfg = AcceleratorConfig::default();
        let knobs = CrescentKnobs::default();
        let (r1, a) = run_frame_stream(&borrow(&frames), &search, knobs, &cfg);
        let (r2, b) = run_frame_stream(&borrow(&frames), &search, knobs, &cfg);
        assert_eq!(r1, r2, "neighbor sets must be bit-identical");
        assert_eq!(a.pipelined_cycles, b.pipelined_cycles);
        assert_eq!(a.serial_cycles, b.serial_cycles);
        assert_eq!(a.ledger.total().total(), b.ledger.total().total());
    }

    #[test]
    fn pipelining_beats_serial() {
        let frames = drifting_frames(8, 2048, 81);
        let (_, rep) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig::default(),
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert_eq!(rep.num_frames(), 8);
        assert!(rep.pipelined_cycles < rep.serial_cycles);
        assert!(rep.pipelining_speedup() > 1.0);
        // the overlap hides fills and build slots, never search work: the
        // exact bookkeeping identity
        assert_eq!(
            rep.serial_cycles - rep.pipelined_cycles,
            7 * PE_PIPELINE_DEPTH + rep.overlapped_build_cycles
        );
        assert!(rep.overlapped_build_cycles <= rep.total_build_cycles());
        // and the pipelined latency is never below the raw work
        let search: u64 = rep.frames.iter().map(|f| f.slot_cycles).sum();
        assert!(rep.pipelined_cycles >= search + PE_PIPELINE_DEPTH);
    }

    #[test]
    fn build_is_charged_in_every_frame() {
        let frames = drifting_frames(5, 2048, 85);
        for maintenance in [TreeMaintenance::RebuildEveryFrame, TreeMaintenance::refit()] {
            let (_, rep) = run_frame_stream(
                &borrow(&frames),
                &StreamSearchConfig { maintenance, ..Default::default() },
                CrescentKnobs::default(),
                &AcceleratorConfig::default(),
            );
            for f in &rep.frames {
                assert!(f.build_cycles > 0, "{maintenance:?} frame {}", f.frame);
                assert!(f.build_dram_bytes > 0, "{maintenance:?} frame {}", f.frame);
                assert!(f.energy.tree_build > 0.0, "{maintenance:?} frame {}", f.frame);
            }
            assert!(rep.ledger.build_energy() > 0.0);
            assert!(rep.frames[0].full_rebuild, "frame 0 always builds");
        }
    }

    #[test]
    fn refit_policy_is_cheaper_and_bit_identical_on_coherent_streams() {
        let frames = drifting_frames(16, 4096, 86);
        let base =
            StreamSearchConfig { radius: 0.2, max_neighbors: Some(16), ..Default::default() };
        let knobs = CrescentKnobs::default();
        let cfg = AcceleratorConfig::default();
        let (r_rebuild, rep_rebuild) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig { maintenance: TreeMaintenance::RebuildEveryFrame, ..base },
            knobs,
            &cfg,
        );
        let (r_refit, rep_refit) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig { maintenance: TreeMaintenance::refit(), ..base },
            knobs,
            &cfg,
        );
        assert_eq!(r_rebuild, r_refit, "coherent refit must be bit-identical");
        assert!(
            rep_refit.pipelined_cycles * 4 <= rep_rebuild.pipelined_cycles * 3,
            "refit must save >= 25%: {} vs {}",
            rep_refit.pipelined_cycles,
            rep_rebuild.pipelined_cycles
        );
        // no fallback fired after frame 0
        for f in &rep_refit.frames[1..] {
            assert!(!f.full_rebuild, "coherent frame {} must refit in place", f.frame);
        }
    }

    #[test]
    fn incoherent_stream_falls_back_without_correctness_loss() {
        // frame 2 is a completely different cloud (same size): refit
        // must detect it and fall back, matching the rebuild policy
        let mut frames = drifting_frames(4, 2048, 87);
        let scrambled = random_cloud(2048, 999);
        let queries: Vec<Point3> = (0..64).map(|i| scrambled.point(i * 32)).collect();
        frames[2] = (scrambled, queries);
        let base =
            StreamSearchConfig { radius: 0.2, max_neighbors: Some(16), ..Default::default() };
        let (r_rebuild, _) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig { maintenance: TreeMaintenance::RebuildEveryFrame, ..base },
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        let (r_refit, rep) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig { maintenance: TreeMaintenance::refit(), ..base },
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert_eq!(r_rebuild, r_refit, "fallback must preserve results");
        assert!(rep.frames[2].full_rebuild, "the incoherent frame must trigger the fallback");
    }

    #[test]
    fn zero_query_frames_cost_zero_search_cycles() {
        // regression: an empty-work frame used to charge leakage against
        // a fill-deep slot and still push a fill into the totals
        let cloud = random_cloud(1024, 88);
        let frames = vec![(cloud, Vec::<Point3>::new())];
        let (res, rep) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig::default(),
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert!(res[0].is_empty());
        let f = &rep.frames[0];
        assert_eq!(f.compute_cycles, 0, "no queries, no datapath work");
        assert_eq!(f.slot_cycles, 0);
        assert_eq!(f.dram_streaming_bytes, 0);
        // the tree still had to be built — that work is real
        assert!(f.build_cycles > 0);
        // leakage covers the build slot only, not a phantom fill
        let em = AcceleratorConfig::default().energy;
        assert!(
            (f.energy.leakage - em.leakage_per_cycle * f.build_slot_cycles as f64).abs() < 1e-9
        );
    }

    #[test]
    fn drifting_frames_show_temporal_locality() {
        let frames = drifting_frames(5, 4096, 82);
        let (_, rep) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig { radius: 0.2, max_neighbors: None, ..Default::default() },
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert_eq!(rep.frames[0].search.assignment_reuses, 0, "first frame has no history");
        assert!(
            rep.mean_reuse_fraction() > 0.5,
            "small drift must preserve most assignments, got {}",
            rep.mean_reuse_fraction()
        );
    }

    #[test]
    fn ledger_matches_frames() {
        let frames = drifting_frames(4, 1024, 83);
        let (_, rep) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig::default(),
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert_eq!(rep.ledger.len(), 4);
        for (f, l) in rep.frames.iter().zip(rep.ledger.frames()) {
            assert_eq!(&f.energy, l);
            assert!(f.energy.dram_streaming > 0.0);
            assert!(f.energy.tree_build > 0.0);
            assert_eq!(f.energy.dram_random, 0.0, "streaming schedule has no random DRAM");
        }
        let sum: f64 = rep.frames.iter().map(|f| f.energy.total()).sum();
        assert!((rep.ledger.total().total() - sum).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_and_empty_frames() {
        let (res, rep) = run_frame_stream(
            &[],
            &StreamSearchConfig::default(),
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert!(res.is_empty());
        assert_eq!(rep.num_frames(), 0);
        assert_eq!(rep.pipelined_cycles, 0, "no frames, no work, no fill");
        assert_eq!(rep.serial_cycles, 0);
        assert_eq!(rep.pipelining_speedup(), 1.0);

        // an empty cloud does no work at all: zero cycles, zero fill
        let frames = vec![(PointCloud::new(), vec![Point3::ZERO])];
        let (res, rep) = run_frame_stream(
            &borrow(&frames),
            &StreamSearchConfig::default(),
            CrescentKnobs::default(),
            &AcceleratorConfig::default(),
        );
        assert!(res[0][0].is_empty());
        assert_eq!(rep.total_dram_bytes(), 0);
        assert_eq!(rep.pipelined_cycles, 0, "an all-idle stream pays no fill");
        assert_eq!(rep.serial_cycles, 0);
        assert_eq!(rep.ledger.total().total(), 0.0);
    }
}
