//! Set-abstraction building blocks (the PointNet++ layer of Fig 1):
//! neighbor search → grouping (relative coordinates + features) → shared
//! MLP → max-pool.
//!
//! Gradients flow only through the MLP and the feature gather — neighbor
//! search and grouping construct inputs and are non-differentiable, exactly
//! as in Fig 11.

use crescent_nn::{GroupMaxPool, Layer, Mlp, Param, Tensor};
use crescent_pointcloud::{farthest_point_sample, PointCloud};

use crate::search::{neighbor_lists, ApproxSetting};

/// A set-abstraction layer: samples `m` centroids by FPS, finds each
/// centroid's `k` neighbors within `radius` (under the active
/// [`ApproxSetting`]), and produces one feature row per centroid.
#[derive(Debug)]
pub struct SetAbstraction {
    /// Number of output centroids; `None` keeps every input point as a
    /// centroid (DensePoint-style dense blocks).
    pub m: Option<usize>,
    /// Neighbors per centroid.
    pub k: usize,
    /// Search radius.
    pub radius: f32,
    mlp: Mlp,
    pool: GroupMaxPool,
    // caches for backward
    neighbor_flat: Vec<usize>,
    in_rows: usize,
    in_channels: usize,
}

impl SetAbstraction {
    /// Creates a layer. `mlp_dims[0]` must be `3 + in_channels` (relative
    /// position concatenated with the gathered features).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `mlp_dims` has fewer than two entries.
    pub fn new(m: Option<usize>, k: usize, radius: f32, mlp_dims: &[usize], seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        SetAbstraction {
            m,
            k,
            radius,
            mlp: Mlp::new(mlp_dims, true, seed),
            pool: GroupMaxPool::new(k),
            neighbor_flat: Vec::new(),
            in_rows: 0,
            in_channels: mlp_dims[0] - 3,
        }
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }

    /// Forward pass.
    ///
    /// `features` is `[n, C]` aligned with `points` (or `None` for the
    /// first layer, `C = 0`). Returns the centroid sub-cloud and its
    /// `[m, C']` features.
    ///
    /// # Panics
    ///
    /// Panics if `features` row count mismatches `points`, or the feature
    /// width mismatches the MLP input.
    pub fn forward(
        &mut self,
        points: &PointCloud,
        features: Option<&Tensor>,
        setting: &ApproxSetting,
        train: bool,
    ) -> (PointCloud, Tensor) {
        let n = points.len();
        let c = features.map_or(0, Tensor::cols);
        assert_eq!(c, self.in_channels, "feature width mismatch");
        if let Some(f) = features {
            assert_eq!(f.rows(), n, "feature/point count mismatch");
        }
        let centroid_idx = match self.m {
            Some(m) => farthest_point_sample(points, m),
            None => (0..n).collect(),
        };
        let lists = neighbor_lists(points, &centroid_idx, self.radius, self.k, setting);

        let m_actual = centroid_idx.len();
        self.neighbor_flat.clear();
        let mut rows = Tensor::zeros(m_actual * self.k, 3 + c);
        for (ci, (&cidx, list)) in centroid_idx.iter().zip(&lists).enumerate() {
            let cp = points.point(cidx);
            for (j, &nidx) in list.iter().enumerate() {
                let r = ci * self.k + j;
                let np = points.point(nidx);
                let rel = np - cp;
                let row = rows.row_mut(r);
                row[0] = rel.x;
                row[1] = rel.y;
                row[2] = rel.z;
                if let Some(f) = features {
                    row[3..].copy_from_slice(f.row(nidx));
                }
                self.neighbor_flat.push(nidx);
            }
        }
        self.in_rows = n;

        let y = self.mlp.forward(&rows, train);
        let pooled = self.pool.forward(&y);
        let centroids: PointCloud = centroid_idx.iter().map(|&i| points.point(i)).collect();
        (centroids, pooled)
    }

    /// Backward pass: gradient w.r.t. the **input features** `[n, C]`
    /// (zero-width if the layer had no input features). Position gradients
    /// are discarded (coordinates are inputs, not parameters).
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g_rows = self.pool.backward(grad);
        let g_in = self.mlp.backward(&g_rows);
        let c = self.in_channels;
        let mut g_feat = Tensor::zeros(self.in_rows, c);
        if c > 0 {
            let (_, g_feature_cols) = g_in.split_cols(3);
            g_feat.scatter_add_rows(&self.neighbor_flat, &g_feature_cols);
        }
        g_feat
    }

    /// Visits the MLP parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.mlp.visit_params(f);
    }
}

/// Global-feature layer: shared MLP over `[n, 3 + C]` (absolute position +
/// feature) followed by a global max-pool to a single `[1, C']` row — the
/// "group all" final stage of PointNet++-style classifiers.
#[derive(Debug)]
pub struct GlobalFeature {
    mlp: Mlp,
    argmax: Vec<usize>,
    in_rows: usize,
    in_channels: usize,
}

impl GlobalFeature {
    /// Creates the layer; `mlp_dims[0]` must be `3 + in_channels`.
    pub fn new(mlp_dims: &[usize], seed: u64) -> Self {
        GlobalFeature {
            mlp: Mlp::new(mlp_dims, true, seed),
            argmax: Vec::new(),
            in_rows: 0,
            in_channels: mlp_dims[0] - 3,
        }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }

    /// Forward pass to a single global feature row.
    pub fn forward(
        &mut self,
        points: &PointCloud,
        features: Option<&Tensor>,
        train: bool,
    ) -> Tensor {
        let n = points.len();
        let c = features.map_or(0, Tensor::cols);
        assert_eq!(c, self.in_channels, "feature width mismatch");
        let mut rows = Tensor::zeros(n, 3 + c);
        for (i, p) in points.iter().enumerate() {
            let row = rows.row_mut(i);
            row[0] = p.x;
            row[1] = p.y;
            row[2] = p.z;
            if let Some(f) = features {
                row[3..].copy_from_slice(f.row(i));
            }
        }
        self.in_rows = n;
        let y = self.mlp.forward(&rows, train);
        let (pooled, argmax) = crescent_nn::global_max_pool(&y);
        self.argmax = argmax;
        pooled
    }

    /// Backward pass: gradient w.r.t. the input features `[n, C]`.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g_rows = crescent_nn::global_max_pool_backward(grad, &self.argmax, self.in_rows);
        let g_in = self.mlp.backward(&g_rows);
        if self.in_channels == 0 {
            Tensor::zeros(self.in_rows, 0)
        } else {
            let (_, g_feat) = g_in.split_cols(3);
            g_feat
        }
    }

    /// Visits the MLP parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.mlp.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crescent_pointcloud::Point3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point3::new(rng.random::<f32>(), rng.random::<f32>(), rng.random::<f32>()))
            .collect()
    }

    #[test]
    fn sa_shapes() {
        let cloud = random_cloud(64, 1);
        let mut sa = SetAbstraction::new(Some(16), 8, 0.3, &[3, 16, 32], 2);
        let (cents, feats) = sa.forward(&cloud, None, &ApproxSetting::exact(), true);
        assert_eq!(cents.len(), 16);
        assert_eq!(feats.shape(), (16, 32));
        assert_eq!(sa.out_dim(), 32);
        let g = sa.backward(&Tensor::full(16, 32, 1.0));
        assert_eq!(g.shape(), (64, 0));
    }

    #[test]
    fn sa_with_features_backprops_to_inputs() {
        let cloud = random_cloud(32, 3);
        let feats = Tensor::he_init(32, 4, 4);
        let mut sa = SetAbstraction::new(Some(8), 4, 0.5, &[7, 16], 5);
        let (_, out) = sa.forward(&cloud, Some(&feats), &ApproxSetting::exact(), true);
        assert_eq!(out.shape(), (8, 16));
        let g = sa.backward(&Tensor::full(8, 16, 1.0));
        assert_eq!(g.shape(), (32, 4));
        assert!(g.sq_norm() > 0.0, "some input features must receive gradient");
    }

    #[test]
    fn sa_dense_mode_keeps_all_points() {
        let cloud = random_cloud(24, 6);
        let mut sa = SetAbstraction::new(None, 4, 0.5, &[3, 8], 7);
        let (cents, feats) = sa.forward(&cloud, None, &ApproxSetting::exact(), true);
        assert_eq!(cents.len(), 24);
        assert_eq!(feats.rows(), 24);
        assert_eq!(cents, cloud);
    }

    #[test]
    fn sa_feature_gradient_check() {
        // finite differences through gather + MLP + pool
        let cloud = random_cloud(12, 8);
        let mut feats = Tensor::he_init(12, 2, 9);
        let mut sa = SetAbstraction::new(Some(4), 3, 0.8, &[5, 6], 10);
        let loss_of = |sa: &mut SetAbstraction, f: &Tensor| {
            let (_, out) = sa.forward(&cloud, Some(f), &ApproxSetting::exact(), false);
            out.data().iter().sum::<f32>()
        };
        let base = loss_of(&mut sa, &feats);
        let _ = base;
        // analytic grad of sum(out)
        let (_, out) = sa.forward(&cloud, Some(&feats), &ApproxSetting::exact(), false);
        let g = sa.backward(&Tensor::full(out.rows(), out.cols(), 1.0));
        let eps = 1e-2;
        for idx in [(0usize, 0usize), (5, 1), (11, 0)] {
            feats[idx] += eps;
            let lp = loss_of(&mut sa, &feats);
            feats[idx] -= 2.0 * eps;
            let lm = loss_of(&mut sa, &feats);
            feats[idx] += eps;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (g[idx] - numeric).abs() < 0.05 * numeric.abs().max(1.0),
                "at {idx:?}: analytic {} vs numeric {numeric}",
                g[idx]
            );
        }
    }

    #[test]
    fn approximate_setting_changes_features() {
        let cloud = random_cloud(256, 11);
        let mut sa = SetAbstraction::new(Some(64), 8, 0.25, &[3, 16], 12);
        let (_, exact) = sa.forward(&cloud, None, &ApproxSetting::exact(), false);
        let (_, approx) = sa.forward(&cloud, None, &ApproxSetting::ans_bce(3, 4), false);
        assert_eq!(exact.shape(), approx.shape());
        assert_ne!(exact, approx, "aggressive approximation must perturb features");
    }

    #[test]
    fn global_feature_shapes_and_backward() {
        let cloud = random_cloud(20, 13);
        let feats = Tensor::he_init(20, 6, 14);
        let mut gf = GlobalFeature::new(&[9, 16, 24], 15);
        let out = gf.forward(&cloud, Some(&feats), true);
        assert_eq!(out.shape(), (1, 24));
        let g = gf.backward(&Tensor::full(1, 24, 1.0));
        assert_eq!(g.shape(), (20, 6));
        let mut count = 0;
        gf.visit_params(&mut |_| count += 1);
        assert!(count >= 4);
    }
}
