//! Point-cloud networks and approximation-aware training for the Crescent
//! (ISCA 2022) reproduction.
//!
//! The crate holds the accuracy side of the evaluation (Tbl 1):
//!
//! * [`PointNet2Cls`] / [`DensePointCls`] — classification (ModelNet-like);
//! * [`PointNet2Seg`] — part segmentation (ShapeNet-like, mIoU);
//! * [`FPointNetDet`] — frustum detection (KITTI-like, box IoU);
//! * [`ApproxSetting`] / [`SettingSampler`] — the approximation knobs
//!   `h = <h_t, h_e>` and the per-input sampling of Sec 5;
//! * [`train`] — the approximation-aware trainers behind Figs 13, 18–21.
//!
//! All networks run their neighbor searches through the same split-tree +
//! bank-conflict model as the hardware simulator, so a model trained here
//! is "conditioned upon a specific approximate setting" exactly as the
//! paper describes.
//!
//! # Example
//!
//! ```no_run
//! use crescent_models::{
//!     eval_classifier, train_classifier, ApproxSetting, Classifier, PointNet2Cls, TrainConfig,
//! };
//! use crescent_pointcloud::datasets::{ClassificationConfig, ClassificationDataset};
//!
//! let ds = ClassificationDataset::generate(&ClassificationConfig::default());
//! let mut model = PointNet2Cls::new(ds.num_classes, 42);
//! // train with the ANS+BCE approximations in the loop
//! let setting = ApproxSetting::ans_bce(4, 6);
//! train_classifier(&mut model, &ds.train, &TrainConfig::dedicated(setting, 30));
//! let acc = eval_classifier(&mut model, &ds.test, &setting);
//! println!("accuracy under approximation: {acc:.3}");
//! ```

#![warn(missing_docs)]

pub mod cls;
pub mod det;
pub mod fp;
pub mod sa;
pub mod search;
pub mod seg;
pub mod train;

pub use cls::{Classifier, DensePointCls, PointNet2Cls};
pub use det::{box_from_params, params_from_box, FPointNetDet, BOX_PARAMS};
pub use fp::{FeaturePropagation, INTERP_K};
pub use sa::{GlobalFeature, SetAbstraction};
pub use search::{apply_aggregation_elision, neighbor_lists, ApproxSetting, SettingSampler};
pub use seg::PointNet2Seg;
pub use train::{
    eval_classifier, eval_detector, eval_segmenter, loss_decreased, train_classifier,
    train_detector, train_segmenter, TrainConfig, TrainReport,
};
