//! Feature propagation (the PointNet++ segmentation decoder).
//!
//! Features computed on a sparse centroid set are interpolated back onto a
//! denser point set with inverse-distance-weighted 3-NN interpolation,
//! concatenated with the dense set's skip features, and refined by a unit
//! MLP. The interpolation weights are pure geometry (non-differentiable
//! inputs); gradients flow through the feature values.

use crescent_nn::{Layer, Mlp, Param, Tensor};
use crescent_pointcloud::{knn_bruteforce, PointCloud};

/// Number of source centroids blended per destination point.
pub const INTERP_K: usize = 3;

/// A feature-propagation layer.
#[derive(Debug)]
pub struct FeaturePropagation {
    mlp: Mlp,
    skip_channels: usize,
    src_channels: usize,
    // caches
    weights: Vec<[(usize, f32); INTERP_K]>, // per dst point: (src idx, weight)
    src_rows: usize,
}

impl FeaturePropagation {
    /// Creates a layer; `mlp_dims[0]` must equal `skip_channels +
    /// src_channels`.
    ///
    /// # Panics
    ///
    /// Panics if the widths are inconsistent.
    pub fn new(skip_channels: usize, src_channels: usize, mlp_dims: &[usize], seed: u64) -> Self {
        assert_eq!(
            mlp_dims.first().copied(),
            Some(skip_channels + src_channels),
            "MLP input must be skip + interpolated width"
        );
        FeaturePropagation {
            mlp: Mlp::new(mlp_dims, true, seed),
            skip_channels,
            src_channels,
            weights: Vec::new(),
            src_rows: 0,
        }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }

    /// Interpolates `src_features` (aligned with `src_points`) onto
    /// `dst_points`, concatenates `dst_skip` features, and applies the
    /// unit MLP. Returns `[n_dst, C']`.
    pub fn forward(
        &mut self,
        dst_points: &PointCloud,
        dst_skip: Option<&Tensor>,
        src_points: &PointCloud,
        src_features: &Tensor,
        train: bool,
    ) -> Tensor {
        let n = dst_points.len();
        let skip_c = dst_skip.map_or(0, Tensor::cols);
        assert_eq!(skip_c, self.skip_channels, "skip width mismatch");
        assert_eq!(src_features.cols(), self.src_channels, "source width mismatch");
        assert_eq!(src_features.rows(), src_points.len(), "source rows mismatch");
        self.src_rows = src_points.len();

        self.weights.clear();
        let mut rows = Tensor::zeros(n, skip_c + self.src_channels);
        for (i, &dp) in dst_points.iter().enumerate() {
            let nn = knn_bruteforce(src_points, dp, INTERP_K);
            let mut w = [(0usize, 0.0f32); INTERP_K];
            let mut total = 0.0f32;
            for (slot, hit) in nn.iter().enumerate() {
                let wi = 1.0 / (hit.dist2 + 1e-8);
                w[slot] = (hit.index, wi);
                total += wi;
            }
            // pad when src has fewer than K points
            for e in w.iter_mut().skip(nn.len()) {
                *e = (nn.first().map_or(0, |h| h.index), 0.0);
            }
            if total > 0.0 {
                for e in &mut w {
                    e.1 /= total;
                }
            }
            let row = rows.row_mut(i);
            if let Some(skip) = dst_skip {
                row[..skip_c].copy_from_slice(skip.row(i));
            }
            for &(src, wi) in &w {
                for (acc, v) in row[skip_c..].iter_mut().zip(src_features.row(src)) {
                    *acc += wi * v;
                }
            }
            self.weights.push(w);
        }
        self.mlp.forward(&rows, train)
    }

    /// Backward pass: returns `(grad_skip, grad_src_features)`.
    pub fn backward(&mut self, grad: &Tensor) -> (Tensor, Tensor) {
        let g_rows = self.mlp.backward(grad);
        let (g_skip, g_interp) = g_rows.split_cols(self.skip_channels);
        let mut g_src = Tensor::zeros(self.src_rows, self.src_channels);
        for (i, w) in self.weights.iter().enumerate() {
            for &(src, wi) in w {
                for (acc, g) in g_src.row_mut(src).iter_mut().zip(g_interp.row(i)) {
                    *acc += wi * g;
                }
            }
        }
        (g_skip, g_src)
    }

    /// Visits the MLP parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.mlp.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crescent_pointcloud::Point3;

    fn line(n: usize) -> PointCloud {
        (0..n).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect()
    }

    #[test]
    fn forward_shapes() {
        let dst = line(10);
        let src = line(4);
        let src_f = Tensor::he_init(4, 8, 1);
        let mut fp = FeaturePropagation::new(0, 8, &[8, 16], 2);
        let out = fp.forward(&dst, None, &src, &src_f, true);
        assert_eq!(out.shape(), (10, 16));
        let (g_skip, g_src) = fp.backward(&Tensor::full(10, 16, 1.0));
        assert_eq!(g_skip.shape(), (10, 0));
        assert_eq!(g_src.shape(), (4, 8));
        assert!(g_src.sq_norm() > 0.0);
    }

    #[test]
    fn interpolation_is_exact_at_source_points() {
        // a destination point sitting on a source point should inherit
        // (almost exactly) that source's features
        let dst: PointCloud = [Point3::new(2.0, 0.0, 0.0)].into_iter().collect();
        let src = line(5);
        let mut src_f = Tensor::zeros(5, 1);
        for i in 0..5 {
            src_f[(i, 0)] = i as f32 * 10.0;
        }
        // identity-ish MLP probe: check the interpolated input row via a
        // 1-layer MLP with identity init is overkill; instead verify via
        // weights cache after forward
        let mut fp = FeaturePropagation::new(0, 1, &[1, 4], 3);
        let _ = fp.forward(&dst, None, &src, &src_f, false);
        let w = &fp.weights[0];
        // nearest source is index 2 with weight ~1
        assert_eq!(w[0].0, 2);
        assert!(w[0].1 > 0.99, "weight {w:?}");
    }

    #[test]
    fn with_skip_features() {
        let dst = line(6);
        let skip = Tensor::he_init(6, 4, 5);
        let src = line(3);
        let src_f = Tensor::he_init(3, 2, 6);
        let mut fp = FeaturePropagation::new(4, 2, &[6, 8], 7);
        let out = fp.forward(&dst, Some(&skip), &src, &src_f, true);
        assert_eq!(out.shape(), (6, 8));
        let (g_skip, g_src) = fp.backward(&Tensor::full(6, 8, 0.5));
        assert_eq!(g_skip.shape(), (6, 4));
        assert_eq!(g_src.shape(), (3, 2));
    }

    #[test]
    fn src_feature_gradient_check() {
        let dst = line(5);
        let src = line(3);
        let mut src_f = Tensor::he_init(3, 2, 8);
        let mut fp = FeaturePropagation::new(0, 2, &[2, 3], 9);
        let loss_of = |fp: &mut FeaturePropagation, f: &Tensor| {
            fp.forward(&dst, None, &src, f, false).data().iter().sum::<f32>()
        };
        let out = fp.forward(&dst, None, &src, &src_f, false);
        let (_, g) = fp.backward(&Tensor::full(out.rows(), out.cols(), 1.0));
        let eps = 1e-2;
        for idx in [(0usize, 0usize), (1, 1), (2, 0)] {
            src_f[idx] += eps;
            let lp = loss_of(&mut fp, &src_f);
            src_f[idx] -= 2.0 * eps;
            let lm = loss_of(&mut fp, &src_f);
            src_f[idx] += eps;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (g[idx] - numeric).abs() < 0.05 * numeric.abs().max(1.0),
                "at {idx:?}: {} vs {numeric}",
                g[idx]
            );
        }
    }

    #[test]
    fn fewer_sources_than_k() {
        let dst = line(4);
        let src = line(2); // fewer than INTERP_K
        let src_f = Tensor::he_init(2, 3, 10);
        let mut fp = FeaturePropagation::new(0, 3, &[3, 4], 11);
        let out = fp.forward(&dst, None, &src, &src_f, false);
        assert_eq!(out.shape(), (4, 4));
    }

    #[test]
    #[should_panic(expected = "MLP input")]
    fn inconsistent_widths_panic() {
        let _ = FeaturePropagation::new(4, 2, &[5, 8], 12);
    }
}
