//! Approximation-aware training (Sec 5).
//!
//! The trainers extend conventional training with one change: for every
//! input they draw an approximate setting `h = <h_t, h_e>` from a
//! [`SettingSampler`] and run the **forward pass under that setting** —
//! approximate neighbor search plus the bank-conflict model — so the
//! weights learn to tolerate the approximations. A
//! [`SettingSampler::Fixed`] sampler trains a dedicated model (Figs 18/19);
//! [`SettingSampler::Mixed`] trains the Fig 20 "Mixed" model. Gradients
//! flow only through the MLPs (Fig 11).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crescent_nn::{huber_loss, softmax_cross_entropy, Adam};
use crescent_pointcloud::datasets::{ClassificationSample, DetectionSample, SegmentationSample};
use crescent_pointcloud::Aabb;

use crate::cls::Classifier;
use crate::det::{params_from_box, FPointNetDet};
use crate::search::{ApproxSetting, SettingSampler};
use crate::seg::PointNet2Seg;

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Per-input approximation sampler.
    pub sampler: SettingSampler,
    /// Shuffling seed.
    pub seed: u64,
}

impl TrainConfig {
    /// Conventional (exact-search) training — the baseline models.
    pub fn exact(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            lr: 2e-3,
            sampler: SettingSampler::Fixed(ApproxSetting::exact()),
            seed: 0xBEEF,
        }
    }

    /// Dedicated-model training under one fixed approximate setting.
    pub fn dedicated(setting: ApproxSetting, epochs: usize) -> Self {
        TrainConfig { sampler: SettingSampler::Fixed(setting), ..TrainConfig::exact(epochs) }
    }

    /// Mixed training: sample `h_t` (and optionally `h_e`) per input.
    pub fn mixed(
        top_height: (usize, usize),
        elision_height: Option<(usize, usize)>,
        epochs: usize,
    ) -> Self {
        TrainConfig {
            sampler: SettingSampler::Mixed {
                top_height,
                elision_height,
                base: ApproxSetting::exact(),
            },
            ..TrainConfig::exact(epochs)
        }
    }
}

/// Loss trace of a training run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Final-epoch loss (`f32::NAN` when no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

fn shuffled_indices(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Trains a classifier with approximation-aware sampling.
pub fn train_classifier<C: Classifier + ?Sized>(
    model: &mut C,
    train_set: &[ClassificationSample],
    cfg: &TrainConfig,
) -> TrainReport {
    let mut opt = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = TrainReport::default();
    for _ in 0..cfg.epochs {
        let mut epoch_loss = 0.0;
        for &i in &shuffled_indices(train_set.len(), &mut rng) {
            let sample = &train_set[i];
            let setting = cfg.sampler.sample(&mut rng);
            let logits = model.forward(&sample.cloud, &setting, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &[sample.label]);
            epoch_loss += loss;
            model.zero_grad();
            model.backward(&grad);
            opt.begin_step();
            model.visit_params(&mut |p| opt.update(p));
        }
        report.epoch_losses.push(epoch_loss / train_set.len().max(1) as f32);
    }
    report
}

/// Overall accuracy of a classifier on `samples` under `setting`.
pub fn eval_classifier<C: Classifier + ?Sized>(
    model: &mut C,
    samples: &[ClassificationSample],
    setting: &ApproxSetting,
) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples.iter().filter(|s| model.predict(&s.cloud, setting) == s.label).count();
    correct as f32 / samples.len() as f32
}

/// Trains the segmentation network.
pub fn train_segmenter(
    model: &mut PointNet2Seg,
    train_set: &[SegmentationSample],
    cfg: &TrainConfig,
) -> TrainReport {
    let mut opt = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = TrainReport::default();
    for _ in 0..cfg.epochs {
        let mut epoch_loss = 0.0;
        for &i in &shuffled_indices(train_set.len(), &mut rng) {
            let sample = &train_set[i];
            let setting = cfg.sampler.sample(&mut rng);
            let logits = model.forward(&sample.cloud, &setting, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &sample.labels);
            epoch_loss += loss;
            model.zero_grad();
            model.backward(&grad);
            opt.begin_step();
            model.visit_params(&mut |p| opt.update(p));
        }
        report.epoch_losses.push(epoch_loss / train_set.len().max(1) as f32);
    }
    report
}

/// Instance-average mIoU of the segmentation network on `samples`.
pub fn eval_segmenter(
    model: &mut PointNet2Seg,
    samples: &[SegmentationSample],
    setting: &ApproxSetting,
) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let num_parts = model.num_parts();
    let mut total = 0.0;
    for s in samples {
        let pred = model.predict(&s.cloud, setting);
        total += crescent_pointcloud::datasets::sample_iou(&pred, &s.labels, num_parts);
    }
    total / samples.len() as f32
}

/// Trains the detection network (joint segmentation + box loss).
pub fn train_detector(
    model: &mut FPointNetDet,
    train_set: &[DetectionSample],
    cfg: &TrainConfig,
) -> TrainReport {
    let mut opt = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = TrainReport::default();
    for _ in 0..cfg.epochs {
        let mut epoch_loss = 0.0;
        for &i in &shuffled_indices(train_set.len(), &mut rng) {
            let sample = &train_set[i];
            let setting = cfg.sampler.sample(&mut rng);
            let (mask_logits, box_params) = model.forward(&sample.cloud, &setting, true);
            let (seg_loss, seg_grad) = softmax_cross_entropy(&mask_logits, &sample.mask);
            let target = params_from_box(&sample.gt_box);
            let (box_loss, box_grad) = huber_loss(&box_params, &target, 1.0);
            epoch_loss += seg_loss + box_loss;
            model.zero_grad();
            model.backward(&seg_grad, &box_grad);
            opt.begin_step();
            model.visit_params(&mut |p| opt.update(p));
        }
        report.epoch_losses.push(epoch_loss / train_set.len().max(1) as f32);
    }
    report
}

/// Geometric-mean box IoU of the detector on `samples` (the Sec 6 metric).
pub fn eval_detector(
    model: &mut FPointNetDet,
    samples: &[DetectionSample],
    setting: &ApproxSetting,
) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0_f64;
    for s in samples {
        let pred: Aabb = model.predict_box(&s.cloud, setting);
        log_sum += (s.gt_box.iou(&pred).max(1e-4) as f64).ln();
    }
    (log_sum / samples.len() as f64).exp() as f32
}

/// Convenience check used by tests and the harness: does the mean of a
/// loss trace decrease from the first to the last epoch?
pub fn loss_decreased(report: &TrainReport) -> bool {
    match (report.epoch_losses.first(), report.epoch_losses.last()) {
        (Some(first), Some(last)) => last < first,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cls::PointNet2Cls;
    use crescent_pointcloud::datasets::{
        ClassificationConfig, ClassificationDataset, DetectionConfig, DetectionDataset,
        SegmentationConfig, SegmentationDataset,
    };

    fn tiny_cls() -> ClassificationDataset {
        ClassificationDataset::generate(&ClassificationConfig {
            points_per_cloud: 96,
            train_per_class: 3,
            test_per_class: 2,
            jitter_sigma: 0.01,
            seed: 21,
        })
    }

    #[test]
    fn classifier_learns_something() {
        let ds = tiny_cls();
        let mut net = PointNet2Cls::new(ds.num_classes, 31);
        let before = eval_classifier(&mut net, &ds.test, &ApproxSetting::exact());
        let report = train_classifier(&mut net, &ds.train, &TrainConfig::exact(6));
        let after = eval_classifier(&mut net, &ds.test, &ApproxSetting::exact());
        assert!(loss_decreased(&report), "losses {:?}", report.epoch_losses);
        assert!(after >= before, "accuracy should not degrade: {before} -> {after}");
        assert!(after > 0.15, "better than chance, got {after}");
    }

    #[test]
    fn dedicated_training_uses_setting() {
        let ds = tiny_cls();
        let setting = ApproxSetting::ans_bce(3, 5);
        let mut net = PointNet2Cls::new(ds.num_classes, 32);
        let report = train_classifier(&mut net, &ds.train, &TrainConfig::dedicated(setting, 2));
        assert_eq!(report.epoch_losses.len(), 2);
        let acc = eval_classifier(&mut net, &ds.test, &setting);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn segmenter_trains_and_evaluates() {
        let ds = SegmentationDataset::generate(&SegmentationConfig {
            points_per_cloud: 96,
            train_per_category: 3,
            test_per_category: 1,
            seed: 33,
        });
        let mut net = PointNet2Seg::new(ds.num_parts, 34);
        let report = train_segmenter(&mut net, &ds.train, &TrainConfig::exact(3));
        assert!(loss_decreased(&report));
        let miou = eval_segmenter(&mut net, &ds.test, &ApproxSetting::exact());
        assert!(miou > 0.1, "mIoU {miou}");
    }

    #[test]
    fn detector_trains_and_evaluates() {
        let ds = DetectionDataset::generate(&DetectionConfig {
            points_per_sample: 96,
            train_samples: 10,
            test_samples: 4,
            car_fraction: 0.45,
            seed: 35,
        });
        let mut net = FPointNetDet::new(36);
        let report = train_detector(&mut net, &ds.train, &TrainConfig::exact(4));
        assert!(loss_decreased(&report));
        let iou = eval_detector(&mut net, &ds.test, &ApproxSetting::exact());
        assert!(iou > 0.02, "IoU {iou}");
    }

    #[test]
    fn mixed_config_samples_range() {
        let cfg = TrainConfig::mixed((1, 5), Some((4, 8)), 1);
        let mut rng = StdRng::seed_from_u64(1);
        let s = cfg.sampler.sample(&mut rng);
        assert!((1..=5).contains(&s.top_height));
    }

    #[test]
    fn empty_eval_is_zero() {
        let mut net = PointNet2Cls::new(10, 37);
        assert_eq!(eval_classifier(&mut net, &[], &ApproxSetting::exact()), 0.0);
    }
}
