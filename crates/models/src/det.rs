//! F-PointNet-style frustum detection network: per-point car/background
//! segmentation plus amodal box estimation.

use crescent_nn::{Layer, Mlp, Param, Tensor};
use crescent_pointcloud::{Aabb, Point3, PointCloud};

use crate::fp::FeaturePropagation;
use crate::sa::{GlobalFeature, SetAbstraction};
use crate::search::ApproxSetting;

/// Box parameterization width: center (3) + size (3).
pub const BOX_PARAMS: usize = 6;

/// Scaled-down F-PointNet: an SA + FP trunk produces per-point features;
/// a segmentation head classifies car vs. background and a box head
/// regresses the amodal box from the pooled features.
#[derive(Debug)]
pub struct FPointNetDet {
    sa1: SetAbstraction,
    fp1: FeaturePropagation,
    seg_head: Mlp,
    box_global: GlobalFeature,
    box_head: Mlp,
}

impl FPointNetDet {
    /// Builds the network.
    pub fn new(seed: u64) -> Self {
        FPointNetDet {
            sa1: SetAbstraction::new(Some(64), 12, 0.3, &[3, 24, 48], seed),
            fp1: FeaturePropagation::new(0, 48, &[48, 64], seed + 1),
            seg_head: Mlp::new(&[64, 32, 2], false, seed + 2),
            box_global: GlobalFeature::new(&[67, 64, 96], seed + 3),
            box_head: Mlp::new(&[96, 64, BOX_PARAMS], false, seed + 4),
        }
    }

    /// Computes `(mask_logits [n, 2], box_params [1, 6])`.
    pub fn forward(
        &mut self,
        cloud: &PointCloud,
        setting: &ApproxSetting,
        train: bool,
    ) -> (Tensor, Tensor) {
        let (p1, f1) = self.sa1.forward(cloud, None, setting, train);
        let u0 = self.fp1.forward(cloud, None, &p1, &f1, train);
        let mask_logits = self.seg_head.forward(&u0, train);
        let g = self.box_global.forward(cloud, Some(&u0), train);
        let box_params = self.box_head.forward(&g, train);
        (mask_logits, box_params)
    }

    /// Backpropagates both heads' gradients.
    pub fn backward(&mut self, grad_mask: &Tensor, grad_box: &Tensor) {
        let g_box_feat = self.box_head.backward(grad_box);
        let g_u0_box = self.box_global.backward(&g_box_feat);
        let g_u0_seg = self.seg_head.backward(grad_mask);
        let g_u0 = g_u0_box.add(&g_u0_seg);
        let (_, g_f1) = self.fp1.backward(&g_u0);
        let _ = self.sa1.backward(&g_f1);
    }

    /// Visits all trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.sa1.visit_params(f);
        self.fp1.visit_params(f);
        self.seg_head.visit_params(f);
        self.box_global.visit_params(f);
        self.box_head.visit_params(f);
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Predicts the car box of one frustum sample.
    pub fn predict_box(&mut self, cloud: &PointCloud, setting: &ApproxSetting) -> Aabb {
        let (_, params) = self.forward(cloud, setting, false);
        box_from_params(&params)
    }

    /// Predicts the per-point car mask.
    pub fn predict_mask(&mut self, cloud: &PointCloud, setting: &ApproxSetting) -> Vec<usize> {
        let (mask, _) = self.forward(cloud, setting, false);
        mask.argmax_rows()
    }
}

/// Converts a `[1, 6]` parameter row to a box (sizes pass through a
/// softplus-like floor to stay positive).
pub fn box_from_params(params: &Tensor) -> Aabb {
    let p = params.row(0);
    let center = Point3::new(p[0], p[1], p[2]);
    let size = Point3::new(p[3].max(0.05), p[4].max(0.05), p[5].max(0.05));
    Aabb::from_center_size(center, size)
}

/// Builds the `[1, 6]` regression target from a ground-truth box.
pub fn params_from_box(b: &Aabb) -> Tensor {
    let c = b.center();
    let s = b.size();
    Tensor::from_rows(&[&[c.x, c.y, c.z, s.x, s.y, s.z]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crescent_pointcloud::datasets::{generate_frustum_sample, DetectionConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> crescent_pointcloud::datasets::DetectionSample {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = DetectionConfig { points_per_sample: 96, ..DetectionConfig::default() };
        generate_frustum_sample(&mut rng, &cfg)
    }

    #[test]
    fn forward_backward_shapes() {
        let s = sample();
        let mut net = FPointNetDet::new(1);
        let (mask, bx) = net.forward(&s.cloud, &ApproxSetting::exact(), true);
        assert_eq!(mask.shape(), (96, 2));
        assert_eq!(bx.shape(), (1, BOX_PARAMS));
        net.zero_grad();
        net.backward(&Tensor::full(96, 2, 0.01), &Tensor::full(1, BOX_PARAMS, 0.1));
        let mut g = 0.0;
        net.visit_params(&mut |p| g += p.grad.sq_norm());
        assert!(g > 0.0);
    }

    #[test]
    fn box_param_roundtrip() {
        let b = Aabb::from_center_size(Point3::new(1.0, -2.0, 0.5), Point3::new(4.0, 2.0, 1.5));
        let params = params_from_box(&b);
        let back = box_from_params(&params);
        assert!((back.center() - b.center()).norm() < 1e-5);
        assert!((back.size() - b.size()).norm() < 1e-5);
    }

    #[test]
    fn sizes_clamped_positive() {
        let params = Tensor::from_rows(&[&[0.0, 0.0, 0.0, -5.0, 0.0, 2.0]]);
        let b = box_from_params(&params);
        assert!(b.size().x > 0.0 && b.size().y > 0.0);
    }

    #[test]
    fn predictions_have_expected_shapes() {
        let s = sample();
        let mut net = FPointNetDet::new(2);
        let mask = net.predict_mask(&s.cloud, &ApproxSetting::exact());
        assert_eq!(mask.len(), s.cloud.len());
        let bx = net.predict_box(&s.cloud, &ApproxSetting::ans(3));
        assert!(bx.volume() > 0.0);
    }
}
