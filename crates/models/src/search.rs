//! Approximation-aware neighbor provider.
//!
//! This is the bridge between the networks and the Crescent hardware
//! model: every set-abstraction layer asks for its neighbor-index matrix
//! here, under an [`ApproxSetting`] `h = <h_t, h_e>` (Sec 5). The same
//! code path serves
//!
//! * exact training/inference (`ApproxSetting::exact()`),
//! * ANS (`top_height > 0`, conflicts stall),
//! * ANS+BCE (`elision_height` set — the bank-conflict model of Fig 11 is
//!   "called by both neighbor search and feature computation"), and
//! * the per-input sampling of `h` during approximation-aware training.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crescent_kdtree::{ElisionConfig, KdTree, SplitSearchConfig, SplitTree};
use crescent_pointcloud::{replicate_to_k, Point3, PointCloud};

/// One approximate setting `h`, plus the hardware parameters the
/// bank-conflict model needs (Sec 5: "the bank conflict simulator takes
/// `h_e` and the hardware banking configuration").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApproxSetting {
    /// Top-tree height `h_t`; 0 disables the split (exact search).
    pub top_height: usize,
    /// Elision height `h_e`; `None` disables neighbor-search elision
    /// (conflicts stall instead).
    pub elision_height: Option<usize>,
    /// Tree-buffer banks for the neighbor-search conflict model.
    pub tree_banks: usize,
    /// Concurrent search PEs.
    pub num_pes: usize,
    /// Point-buffer banks for the aggregation conflict model.
    pub point_banks: usize,
    /// Elide bank conflicts in aggregation (neighbor replication).
    pub elide_aggregation: bool,
}

impl ApproxSetting {
    /// Exact search, no approximation — the baseline models.
    pub fn exact() -> Self {
        ApproxSetting {
            top_height: 0,
            elision_height: None,
            tree_banks: 4,
            num_pes: 4,
            point_banks: 16,
            elide_aggregation: false,
        }
    }

    /// Approximate neighbor search only (the ANS variant).
    pub fn ans(top_height: usize) -> Self {
        ApproxSetting { top_height, ..ApproxSetting::exact() }
    }

    /// Approximate search plus bank-conflict elision everywhere (the
    /// ANS+BCE variant).
    pub fn ans_bce(top_height: usize, elision_height: usize) -> Self {
        ApproxSetting {
            top_height,
            elision_height: Some(elision_height),
            elide_aggregation: true,
            ..ApproxSetting::exact()
        }
    }

    /// Whether any approximation is active.
    pub fn is_exact(&self) -> bool {
        self.top_height == 0 && self.elision_height.is_none() && !self.elide_aggregation
    }
}

/// A sampler over approximate settings for mixed training (Sec 5's
/// "training also randomly samples an `h` for each input").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SettingSampler {
    /// Always the same setting (dedicated-model training, Figs 18/19).
    Fixed(ApproxSetting),
    /// Uniformly sample `h_t` in the range and `h_e` in the range per
    /// input ("Mixed" in Fig 20); both ends inclusive.
    Mixed {
        /// Inclusive `h_t` range.
        top_height: (usize, usize),
        /// Inclusive `h_e` range; `None` keeps elision off.
        elision_height: Option<(usize, usize)>,
        /// Template for the hardware parameters.
        base: ApproxSetting,
    },
}

impl SettingSampler {
    /// Draws a setting for the next input.
    pub fn sample(&self, rng: &mut StdRng) -> ApproxSetting {
        match self {
            SettingSampler::Fixed(s) => *s,
            SettingSampler::Mixed { top_height, elision_height, base } => {
                let ht = rng.random_range(top_height.0..=top_height.1);
                let he = elision_height.map(|(lo, hi)| rng.random_range(lo..=hi));
                ApproxSetting {
                    top_height: ht,
                    elision_height: he,
                    elide_aggregation: base.elide_aggregation || he.is_some(),
                    ..*base
                }
            }
        }
    }
}

/// Computes the neighbor-index matrix: for each query index (into
/// `points`), exactly `k` neighbor indices within `radius`, replicated per
/// the network convention when fewer are found (Sec 4.2).
///
/// Under an approximate `setting` this runs the split-tree two-stage
/// search with the lock-step bank-conflict model; under
/// [`ApproxSetting::exact`] it degenerates to exact K-d search.
pub fn neighbor_lists(
    points: &PointCloud,
    query_indices: &[usize],
    radius: f32,
    k: usize,
    setting: &ApproxSetting,
) -> Vec<Vec<usize>> {
    if points.is_empty() || query_indices.is_empty() {
        return query_indices.iter().map(|_| Vec::new()).collect();
    }
    let tree = KdTree::build(points);
    let ht = setting.top_height.min(tree.height().saturating_sub(1));
    let split = SplitTree::new(&tree, ht).expect("clamped top height");
    let queries: Vec<Point3> = query_indices.iter().map(|&i| points.point(i)).collect();
    let cfg = SplitSearchConfig {
        radius,
        max_neighbors: Some(k),
        num_pes: setting.num_pes,
        elision: setting.elision_height.map(|he| ElisionConfig {
            elision_height: he,
            num_banks: setting.tree_banks,
            descendant_reuse: false,
        }),
    };
    let (results, _) = split.batch_search(&queries, &cfg);
    let mut lists: Vec<Vec<usize>> = results
        .iter()
        .zip(query_indices)
        .map(|(hits, &qi)| {
            let idx: Vec<usize> = hits.iter().map(|n| n.index).collect();
            replicate_to_k(&idx, k, Some(qi))
        })
        .collect();
    if setting.elide_aggregation {
        apply_aggregation_elision(&mut lists, setting.point_banks);
    }
    lists
}

/// Applies the aggregation-stage bank-conflict elision to neighbor lists:
/// within each `point_banks`-wide issue group, indices that lose bank
/// arbitration are replaced by the winning index of their bank — exactly
/// the hardware's implicit neighbor replication (Sec 4.2).
pub fn apply_aggregation_elision(lists: &mut [Vec<usize>], point_banks: usize) {
    let banks = point_banks.max(1);
    for list in lists.iter_mut() {
        for chunk in list.chunks_mut(banks) {
            let mut winner_of_bank: Vec<Option<usize>> = vec![None; banks];
            for slot in chunk.iter_mut() {
                let bank = *slot % banks;
                match winner_of_bank[bank] {
                    None => winner_of_bank[bank] = Some(*slot),
                    Some(w) => *slot = w, // replicated neighbor
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crescent_pointcloud::radius_search_bruteforce;
    use rand::SeedableRng;

    fn grid_cloud(n_side: usize) -> PointCloud {
        let mut pts = Vec::new();
        for x in 0..n_side {
            for y in 0..n_side {
                for z in 0..n_side {
                    pts.push(Point3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        PointCloud::from_points(pts)
    }

    #[test]
    fn exact_setting_matches_bruteforce() {
        let cloud = grid_cloud(6);
        let qs = vec![0usize, 100, 200];
        let lists = neighbor_lists(&cloud, &qs, 1.1, 8, &ApproxSetting::exact());
        for (list, &qi) in lists.iter().zip(&qs) {
            assert_eq!(list.len(), 8);
            let want: Vec<usize> = radius_search_bruteforce(&cloud, cloud.point(qi), 1.1, Some(8))
                .iter()
                .map(|n| n.index)
                .collect();
            // every returned neighbor is a true neighbor (replication may
            // repeat entries)
            for idx in list {
                assert!(want.contains(idx), "query {qi}: {idx} not a true neighbor");
            }
        }
    }

    #[test]
    fn lists_always_have_k_entries() {
        let cloud = grid_cloud(4);
        // isolated query region: tiny radius still yields k entries via
        // self-replication
        let lists = neighbor_lists(&cloud, &[7], 0.001, 5, &ApproxSetting::exact());
        assert_eq!(lists[0], vec![7, 7, 7, 7, 7]);
    }

    #[test]
    fn ans_loses_some_neighbors_but_invents_none() {
        let cloud = grid_cloud(8);
        let qs: Vec<usize> = (0..64).map(|i| i * 8).collect();
        let exact = neighbor_lists(&cloud, &qs, 1.5, 16, &ApproxSetting::exact());
        let approx = neighbor_lists(&cloud, &qs, 1.5, 16, &ApproxSetting::ans(3));
        let mut lost = 0;
        for ((e, a), &qi) in exact.iter().zip(&approx).zip(&qs) {
            for idx in a {
                // every approx neighbor is either a true neighbor or the
                // replicated fallback (the query itself)
                assert!(e.contains(idx) || *idx == qi);
            }
            if a.iter().collect::<std::collections::HashSet<_>>()
                != e.iter().collect::<std::collections::HashSet<_>>()
            {
                lost += 1;
            }
        }
        assert!(lost > 0, "h_t = 3 should perturb at least one neighborhood");
    }

    #[test]
    fn bce_perturbs_more_than_ans() {
        let cloud = grid_cloud(8);
        let qs: Vec<usize> = (0..128).map(|i| i * 4).collect();
        let exact = neighbor_lists(&cloud, &qs, 1.5, 16, &ApproxSetting::exact());
        let count_diffs = |lists: &[Vec<usize>]| {
            lists
                .iter()
                .zip(&exact)
                .map(|(a, e)| a.iter().zip(e).filter(|(x, y)| x != y).count())
                .sum::<usize>()
        };
        let ans = neighbor_lists(&cloud, &qs, 1.5, 16, &ApproxSetting::ans(2));
        let bce = neighbor_lists(&cloud, &qs, 1.5, 16, &ApproxSetting::ans_bce(2, 3));
        assert!(count_diffs(&bce) >= count_diffs(&ans));
    }

    #[test]
    fn aggregation_elision_replicates_within_chunks() {
        let mut lists = vec![vec![0, 16, 1, 17]];
        // 16 banks: 0 and 16 share bank 0; 1 and 17 share bank 1
        apply_aggregation_elision(&mut lists, 16);
        assert_eq!(lists[0], vec![0, 0, 1, 1]);
        // separate chunks don't interact
        let mut lists = vec![vec![0, 16]];
        apply_aggregation_elision(&mut lists, 2);
        assert_eq!(lists[0], vec![0, 0]);
    }

    #[test]
    fn sampler_fixed_and_mixed() {
        let mut rng = StdRng::seed_from_u64(1);
        let fixed = SettingSampler::Fixed(ApproxSetting::ans(4));
        assert_eq!(fixed.sample(&mut rng).top_height, 4);
        let mixed = SettingSampler::Mixed {
            top_height: (1, 6),
            elision_height: Some((4, 10)),
            base: ApproxSetting::exact(),
        };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let s = mixed.sample(&mut rng);
            assert!((1..=6).contains(&s.top_height));
            let he = s.elision_height.expect("elision sampled");
            assert!((4..=10).contains(&he));
            assert!(s.elide_aggregation);
            seen.insert(s.top_height);
        }
        assert!(seen.len() >= 4, "sampler should cover the range");
    }

    #[test]
    fn empty_inputs() {
        let lists = neighbor_lists(&PointCloud::new(), &[], 1.0, 4, &ApproxSetting::exact());
        assert!(lists.is_empty());
    }
}
