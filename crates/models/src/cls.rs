//! Classification networks: PointNet++ (c) and DensePoint (Tbl 1).

use crescent_nn::{Layer, Mlp, Param, Tensor};
use crescent_pointcloud::{farthest_point_subcloud, PointCloud};

use crate::sa::{GlobalFeature, SetAbstraction};
use crate::search::ApproxSetting;

/// Common interface of the classification models.
pub trait Classifier {
    /// Computes class logits `[1, num_classes]` for one cloud under the
    /// given approximate setting.
    fn forward(&mut self, cloud: &PointCloud, setting: &ApproxSetting, train: bool) -> Tensor;

    /// Backpropagates the logit gradient (after a matching `forward`).
    fn backward(&mut self, grad: &Tensor);

    /// Visits all trainable parameters.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zeroes all gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Predicted class of one cloud.
    fn predict(&mut self, cloud: &PointCloud, setting: &ApproxSetting) -> usize {
        self.forward(cloud, setting, false).argmax_rows()[0]
    }
}

/// Scaled-down PointNet++ classification network: two set-abstraction
/// layers, a group-all global feature, and an FC head.
///
/// The channel widths are reduced from the published architecture so the
/// full approximation-aware training loop runs inside the benchmark
/// harness; the structure (hierarchical SA + global pool) is unchanged.
#[derive(Debug)]
pub struct PointNet2Cls {
    sa1: SetAbstraction,
    sa2: SetAbstraction,
    global: GlobalFeature,
    head: Mlp,
    num_classes: usize,
}

impl PointNet2Cls {
    /// Builds the network for `num_classes` classes.
    pub fn new(num_classes: usize, seed: u64) -> Self {
        PointNet2Cls {
            sa1: SetAbstraction::new(Some(64), 12, 0.25, &[3, 24, 48], seed),
            sa2: SetAbstraction::new(Some(16), 8, 0.5, &[51, 48, 96], seed + 1),
            global: GlobalFeature::new(&[99, 96, 128], seed + 2),
            head: Mlp::new(&[128, 64, num_classes], false, seed + 3),
            num_classes,
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

impl Classifier for PointNet2Cls {
    fn forward(&mut self, cloud: &PointCloud, setting: &ApproxSetting, train: bool) -> Tensor {
        let (p1, f1) = self.sa1.forward(cloud, None, setting, train);
        let (p2, f2) = self.sa2.forward(&p1, Some(&f1), setting, train);
        let g = self.global.forward(&p2, Some(&f2), train);
        self.head.forward(&g, train)
    }

    fn backward(&mut self, grad: &Tensor) {
        let g = self.head.backward(grad);
        let g2 = self.global.backward(&g);
        let g1 = self.sa2.backward(&g2);
        let _ = self.sa1.backward(&g1);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.sa1.visit_params(f);
        self.sa2.visit_params(f);
        self.global.visit_params(f);
        self.head.visit_params(f);
    }
}

/// DensePoint-style classifier: every point queries its neighborhood in
/// each block and new features are **densely concatenated** onto the
/// running feature map; classification pools the final dense features.
///
/// Its runtime is search-dominated (every block searches at every point),
/// reproducing the DensePoint profile of Sec 7.2.
#[derive(Debug)]
pub struct DensePointCls {
    /// Points kept after the input FPS downsample.
    n_points: usize,
    blocks: Vec<SetAbstraction>,
    growth: usize,
    global: GlobalFeature,
    head: Mlp,
    num_classes: usize,
}

impl DensePointCls {
    /// Builds a DensePoint-like classifier with `num_blocks` dense blocks
    /// of `growth` channels each.
    pub fn new(num_classes: usize, num_blocks: usize, growth: usize, seed: u64) -> Self {
        let n_points = 96;
        let mut blocks = Vec::with_capacity(num_blocks);
        for b in 0..num_blocks {
            let in_c = b * growth;
            blocks.push(SetAbstraction::new(
                None,
                8,
                0.2 + 0.1 * b as f32,
                &[3 + in_c, 32, growth],
                seed + b as u64,
            ));
        }
        let final_c = num_blocks * growth;
        DensePointCls {
            n_points,
            blocks,
            growth,
            global: GlobalFeature::new(&[3 + final_c, 96, 128], seed + 100),
            head: Mlp::new(&[128, 64, num_classes], false, seed + 101),
            num_classes,
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

impl Classifier for DensePointCls {
    fn forward(&mut self, cloud: &PointCloud, setting: &ApproxSetting, train: bool) -> Tensor {
        let points = farthest_point_subcloud(cloud, self.n_points);
        let mut features: Option<Tensor> = None;
        for block in &mut self.blocks {
            let (_, new) = block.forward(&points, features.as_ref(), setting, train);
            features = Some(match features {
                None => new,
                Some(f) => f.concat_cols(&new),
            });
        }
        let g = self.global.forward(&points, features.as_ref(), train);
        self.head.forward(&g, train)
    }

    fn backward(&mut self, grad: &Tensor) {
        let g = self.head.backward(grad);
        let mut g_feat = self.global.backward(&g);
        for block in self.blocks.iter_mut().rev() {
            let prev_c = g_feat.cols() - self.growth;
            let (g_prev, g_new) = g_feat.split_cols(prev_c);
            let g_through = block.backward(&g_new);
            g_feat = if g_prev.cols() == 0 { g_prev } else { g_prev.add(&g_through) };
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.global.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crescent_pointcloud::datasets::{generate_classification_sample, ShapeClass};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_cloud(class: ShapeClass, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_classification_sample(&mut rng, class, 128, 0.01).cloud
    }

    #[test]
    fn pointnet2_forward_backward_shapes() {
        let cloud = sample_cloud(ShapeClass::Sphere, 1);
        let mut net = PointNet2Cls::new(10, 2);
        let logits = net.forward(&cloud, &ApproxSetting::exact(), true);
        assert_eq!(logits.shape(), (1, 10));
        net.zero_grad();
        net.backward(&Tensor::full(1, 10, 0.1));
        let mut total_grad = 0.0;
        net.visit_params(&mut |p| total_grad += p.grad.sq_norm());
        assert!(total_grad > 0.0, "gradients must reach the parameters");
    }

    #[test]
    fn densepoint_forward_backward_shapes() {
        let cloud = sample_cloud(ShapeClass::Torus, 3);
        let mut net = DensePointCls::new(10, 3, 16, 4);
        let logits = net.forward(&cloud, &ApproxSetting::exact(), true);
        assert_eq!(logits.shape(), (1, 10));
        net.zero_grad();
        net.backward(&Tensor::full(1, 10, 0.1));
        let mut total_grad = 0.0;
        net.visit_params(&mut |p| total_grad += p.grad.sq_norm());
        assert!(total_grad > 0.0);
    }

    #[test]
    fn predict_returns_valid_class() {
        let cloud = sample_cloud(ShapeClass::Cuboid, 5);
        let mut net = PointNet2Cls::new(10, 6);
        let c = net.predict(&cloud, &ApproxSetting::exact());
        assert!(c < 10);
        // approximate inference also yields a valid class
        let c = net.predict(&cloud, &ApproxSetting::ans_bce(4, 6));
        assert!(c < 10);
    }

    #[test]
    fn forward_is_deterministic() {
        let cloud = sample_cloud(ShapeClass::Helix, 7);
        let mut net = PointNet2Cls::new(10, 8);
        let a = net.forward(&cloud, &ApproxSetting::exact(), false);
        let b = net.forward(&cloud, &ApproxSetting::exact(), false);
        assert_eq!(a, b);
    }
}
