//! PointNet++ (s): part-segmentation network with a set-abstraction
//! encoder and a feature-propagation decoder.

use crescent_nn::{Layer, Mlp, Param, Tensor};
use crescent_pointcloud::PointCloud;

use crate::fp::FeaturePropagation;
use crate::sa::SetAbstraction;
use crate::search::ApproxSetting;

/// Scaled-down PointNet++ segmentation network.
#[derive(Debug)]
pub struct PointNet2Seg {
    sa1: SetAbstraction,
    sa2: SetAbstraction,
    fp2: FeaturePropagation,
    fp1: FeaturePropagation,
    head: Mlp,
    num_parts: usize,
}

impl PointNet2Seg {
    /// Builds the network for `num_parts` part labels.
    pub fn new(num_parts: usize, seed: u64) -> Self {
        PointNet2Seg {
            sa1: SetAbstraction::new(Some(64), 12, 0.25, &[3, 24, 48], seed),
            sa2: SetAbstraction::new(Some(16), 8, 0.5, &[51, 48, 96], seed + 1),
            // fp2: propagate sa2 features (96) onto sa1 points with their
            // skip features (48)
            fp2: FeaturePropagation::new(48, 96, &[144, 96], seed + 2),
            // fp1: propagate fp2 output (96) onto the raw points (no skip)
            fp1: FeaturePropagation::new(0, 96, &[96, 64], seed + 3),
            head: Mlp::new(&[64, 48, num_parts], false, seed + 4),
            num_parts,
        }
    }

    /// Number of part labels.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Computes per-point part logits `[n, num_parts]`.
    pub fn forward(&mut self, cloud: &PointCloud, setting: &ApproxSetting, train: bool) -> Tensor {
        let (p1, f1) = self.sa1.forward(cloud, None, setting, train);
        let (p2, f2) = self.sa2.forward(&p1, Some(&f1), setting, train);
        let u1 = self.fp2.forward(&p1, Some(&f1), &p2, &f2, train);
        let u0 = self.fp1.forward(cloud, None, &p1, &u1, train);
        self.head.forward(&u0, train)
    }

    /// Backpropagates the per-point logit gradient.
    pub fn backward(&mut self, grad: &Tensor) {
        let g_u0 = self.head.backward(grad);
        let (_, g_u1) = self.fp1.backward(&g_u0);
        let (g_f1_skip, g_f2) = self.fp2.backward(&g_u1);
        let g_f1_sa = self.sa2.backward(&g_f2);
        let g_f1 = g_f1_skip.add(&g_f1_sa);
        let _ = self.sa1.backward(&g_f1);
    }

    /// Visits all trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.sa1.visit_params(f);
        self.sa2.visit_params(f);
        self.fp2.visit_params(f);
        self.fp1.visit_params(f);
        self.head.visit_params(f);
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Predicted part label per point.
    pub fn predict(&mut self, cloud: &PointCloud, setting: &ApproxSetting) -> Vec<usize> {
        self.forward(cloud, setting, false).argmax_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crescent_pointcloud::datasets::{generate_segmentation_sample, SegCategory};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> (PointCloud, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(9);
        let s = generate_segmentation_sample(&mut rng, SegCategory::Table, 96);
        (s.cloud, s.labels)
    }

    #[test]
    fn forward_backward_shapes() {
        let (cloud, _) = sample();
        let mut net = PointNet2Seg::new(4, 1);
        let logits = net.forward(&cloud, &ApproxSetting::exact(), true);
        assert_eq!(logits.shape(), (cloud.len(), 4));
        net.zero_grad();
        net.backward(&Tensor::full(cloud.len(), 4, 0.01));
        let mut g = 0.0;
        net.visit_params(&mut |p| g += p.grad.sq_norm());
        assert!(g > 0.0);
    }

    #[test]
    fn predict_one_label_per_point() {
        let (cloud, labels) = sample();
        let mut net = PointNet2Seg::new(4, 2);
        let pred = net.predict(&cloud, &ApproxSetting::exact());
        assert_eq!(pred.len(), labels.len());
        assert!(pred.iter().all(|&l| l < 4));
    }

    #[test]
    fn approximate_inference_changes_logits() {
        let (cloud, _) = sample();
        let mut net = PointNet2Seg::new(4, 3);
        let exact = net.forward(&cloud, &ApproxSetting::exact(), false);
        let approx = net.forward(&cloud, &ApproxSetting::ans_bce(3, 4), false);
        assert_eq!(exact.shape(), approx.shape());
        assert_ne!(exact, approx);
    }
}
