//! Per-frame energy accounting for streaming multi-frame workloads.
//!
//! A single [`EnergyLedger`] answers "how much energy
//! did this run cost, by category"; a [`StreamLedger`] answers the same
//! question *per frame* of a back-to-back frame sequence while keeping the
//! running total, so a streaming driver can report both a frame-level
//! profile (which frame was the most expensive, how stable is the cost)
//! and sequence totals without re-summing.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::energy::EnergyLedger;

/// An append-only sequence of per-frame [`EnergyLedger`]s plus their
/// running total.
///
/// # Examples
///
/// ```
/// use crescent_memsim::{EnergyLedger, EnergyModel, StreamLedger};
///
/// let model = EnergyModel::default();
/// let mut stream = StreamLedger::new();
/// for frame in 0..3 {
///     let mut ledger = EnergyLedger::new();
///     ledger.charge_dram_streaming(&model, 1024 * (frame + 1));
///     stream.push_frame(ledger);
/// }
/// assert_eq!(stream.len(), 3);
/// assert_eq!(stream.peak_frame(), Some(2));
/// let per_frame: f64 = stream.frames().iter().map(|l| l.total()).sum();
/// assert!((stream.total().total() - per_frame).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamLedger {
    frames: Vec<EnergyLedger>,
    total: EnergyLedger,
}

impl StreamLedger {
    /// Creates an empty stream ledger.
    pub fn new() -> Self {
        StreamLedger::default()
    }

    /// Appends one frame's ledger and folds it into the running total.
    pub fn push_frame(&mut self, frame: EnergyLedger) {
        self.total.merge(&frame);
        self.frames.push(frame);
    }

    /// The per-frame ledgers, in arrival order.
    pub fn frames(&self) -> &[EnergyLedger] {
        &self.frames
    }

    /// The ledger of frame `i`, if recorded.
    pub fn frame(&self, i: usize) -> Option<&EnergyLedger> {
        self.frames.get(i)
    }

    /// Sum of all frames.
    pub fn total(&self) -> &EnergyLedger {
        &self.total
    }

    /// Number of recorded frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frame has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total tree-build / refit energy across all frames — the
    /// maintenance bill the streaming engine's `TreeMaintenance` policy
    /// tries to shrink.
    pub fn build_energy(&self) -> f64 {
        self.total.tree_build
    }

    /// Mean total energy per frame (0.0 if empty).
    pub fn mean_frame_energy(&self) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.total.total() / self.frames.len() as f64
        }
    }

    /// Index of the most expensive frame by total energy (`None` if empty;
    /// the earliest frame wins ties, so the answer is deterministic).
    pub fn peak_frame(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, f) in self.frames.iter().enumerate() {
            let t = f.total();
            if best.is_none_or(|(_, bt)| t > bt) {
                best = Some((i, t));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Appends every frame of `other`, keeping the combined total
    /// consistent (used when stitching segment reports together).
    pub fn extend_from(&mut self, other: &StreamLedger) {
        for f in &other.frames {
            self.push_frame(*f);
        }
    }
}

impl fmt::Display for StreamLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stream[{} frames, total={:.1}, mean/frame={:.1}]",
            self.len(),
            self.total.total(),
            self.mean_frame_energy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyModel;

    fn frame_with(bytes: u64) -> EnergyLedger {
        let m = EnergyModel::default();
        let mut l = EnergyLedger::new();
        l.charge_dram_streaming(&m, bytes);
        l.charge_sram_search(&m, bytes / 2);
        l.charge_tree_build(&m, bytes / 4);
        l
    }

    #[test]
    fn build_energy_sums_the_tree_build_category() {
        let mut s = StreamLedger::new();
        assert_eq!(s.build_energy(), 0.0);
        s.push_frame(frame_with(400));
        s.push_frame(frame_with(800));
        let per_frame: f64 = s.frames().iter().map(|l| l.tree_build).sum();
        assert!(per_frame > 0.0);
        assert!((s.build_energy() - per_frame).abs() < 1e-9);
    }

    #[test]
    fn totals_equal_sum_of_frames() {
        let mut s = StreamLedger::new();
        for i in 1..=5 {
            s.push_frame(frame_with(1000 * i));
        }
        assert_eq!(s.len(), 5);
        let sum: f64 = s.frames().iter().map(|l| l.total()).sum();
        assert!((s.total().total() - sum).abs() < 1e-9);
        assert!((s.mean_frame_energy() - sum / 5.0).abs() < 1e-9);
    }

    #[test]
    fn peak_frame_and_ties() {
        let mut s = StreamLedger::new();
        assert_eq!(s.peak_frame(), None);
        s.push_frame(frame_with(100));
        s.push_frame(frame_with(500));
        s.push_frame(frame_with(500));
        s.push_frame(frame_with(50));
        assert_eq!(s.peak_frame(), Some(1), "earliest of the tied frames");
        assert_eq!(s.frame(3).map(|l| l.total() > 0.0), Some(true));
        assert!(s.frame(4).is_none());
    }

    #[test]
    fn empty_stream() {
        let s = StreamLedger::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_frame_energy(), 0.0);
        assert_eq!(s.total().total(), 0.0);
        assert!(format!("{s}").contains("0 frames"));
    }

    #[test]
    fn extend_from_preserves_total() {
        let mut a = StreamLedger::new();
        a.push_frame(frame_with(100));
        let mut b = StreamLedger::new();
        b.push_frame(frame_with(200));
        b.push_frame(frame_with(300));
        a.extend_from(&b);
        assert_eq!(a.len(), 3);
        let sum: f64 = a.frames().iter().map(|l| l.total()).sum();
        assert!((a.total().total() - sum).abs() < 1e-9);
    }
}
