//! Fully-associative LRU cache model.
//!
//! Used by the Fig 3 motivation experiment: the paper simulates "an
//! unrealistic 10 MB fully-associated cache" in front of DRAM while running
//! exact neighbor search over a KITTI-scale scene, and measures (a) the
//! ratio of actual DRAM traffic to the theoretical minimum and (b) the
//! cache miss rate (>85 %).
//!
//! The replacement policy is true LRU implemented with a hash map plus an
//! intrusive doubly-linked recency list, so every access — including
//! eviction — is O(1). This matters: the Fig 3 run touches a ~150 K-line
//! cache hundreds of millions of times.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Hit/miss statistics of a [`FullyAssociativeCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (each miss fetches one line from DRAM).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        let t = self.accesses();
        if t == 0 {
            0.0
        } else {
            self.misses as f64 / t as f64
        }
    }
}

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Slot {
    tag: u64,
    prev: u32,
    next: u32,
}

/// A fully-associative cache with true-LRU replacement and O(1) accesses.
///
/// Lookups are by line; a miss charges one line fill.
///
/// # Examples
///
/// ```
/// use crescent_memsim::FullyAssociativeCache;
///
/// let mut c = FullyAssociativeCache::new(2 * 64, 64); // 2 lines
/// assert!(!c.access(0));   // miss
/// assert!(c.access(32));   // same line: hit
/// assert!(!c.access(64));  // miss
/// assert!(!c.access(128)); // miss, evicts line 0 (LRU)
/// assert!(!c.access(0));   // miss again
/// ```
#[derive(Debug)]
pub struct FullyAssociativeCache {
    line_bytes: u64,
    capacity_lines: usize,
    map: HashMap<u64, u32>,
    slots: Vec<Slot>,
    head: u32, // most recently used
    tail: u32, // least recently used
    stats: CacheStats,
}

impl FullyAssociativeCache {
    /// Creates a cache of `capacity_bytes` with `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes == 0` or the capacity holds no full line.
    pub fn new(capacity_bytes: u64, line_bytes: u64) -> Self {
        assert!(line_bytes > 0, "line size must be positive");
        let capacity_lines = (capacity_bytes / line_bytes) as usize;
        assert!(capacity_lines > 0, "capacity must hold at least one line");
        FullyAssociativeCache {
            line_bytes,
            capacity_lines,
            map: HashMap::with_capacity(capacity_lines + 1),
            slots: Vec::with_capacity(capacity_lines),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Accesses byte address `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let tag = addr / self.line_bytes;
        if let Some(&slot) = self.map.get(&tag) {
            self.stats.hits += 1;
            self.detach(slot);
            self.push_front(slot);
            true
        } else {
            self.stats.misses += 1;
            let slot = if self.slots.len() < self.capacity_lines {
                let s = self.slots.len() as u32;
                self.slots.push(Slot { tag, prev: NIL, next: NIL });
                s
            } else {
                // reuse the LRU slot
                let victim = self.tail;
                self.detach(victim);
                let old_tag = self.slots[victim as usize].tag;
                self.map.remove(&old_tag);
                self.slots[victim as usize].tag = tag;
                victim
            };
            self.map.insert(tag, slot);
            self.push_front(slot);
            false
        }
    }

    fn detach(&mut self, slot: u32) {
        let Slot { prev, next, .. } = self.slots[slot as usize];
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot as usize].prev = NIL;
        self.slots[slot as usize].next = NIL;
    }

    fn push_front(&mut self, slot: u32) {
        self.slots[slot as usize].prev = NIL;
        self.slots[slot as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Accesses an `addr .. addr + bytes` range, touching every line it
    /// covers; returns the number of missed lines.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> u64 {
        let first = addr / self.line_bytes;
        let last = (addr + bytes.max(1) - 1) / self.line_bytes;
        let mut missed = 0;
        for tag in first..=last {
            if !self.access(tag * self.line_bytes) {
                missed += 1;
            }
        }
        missed
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// DRAM traffic implied by the misses so far (one line fill per miss).
    pub fn miss_traffic_bytes(&self) -> u64 {
        self.stats.misses * self.line_bytes
    }

    /// The cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of lines the cache can hold.
    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = FullyAssociativeCache::new(1024, 64);
        assert!(!c.access(100));
        assert!(c.access(100));
        assert!(c.access(127)); // same line
        assert!(!c.access(128)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = FullyAssociativeCache::new(3 * 64, 64);
        c.access(0);
        c.access(64);
        c.access(128);
        c.access(0); // refresh line 0
        c.access(192); // evicts line 64 (LRU)
        assert!(c.access(0), "line 0 should have been refreshed");
        assert!(!c.access(64), "line 64 should have been evicted");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = FullyAssociativeCache::new(8 * 64, 64);
        // cyclic sweep over 16 lines with LRU = 100% miss after warmup
        for _ in 0..10 {
            for i in 0..16u64 {
                c.access(i * 64);
            }
        }
        assert!(c.stats().miss_rate() > 0.95);
    }

    #[test]
    fn working_set_fitting_cache_hits() {
        let mut c = FullyAssociativeCache::new(16 * 64, 64);
        for _ in 0..10 {
            for i in 0..8u64 {
                c.access(i * 64);
            }
        }
        assert!(c.stats().miss_rate() < 0.15);
    }

    #[test]
    fn range_access_touches_all_lines() {
        let mut c = FullyAssociativeCache::new(1024, 64);
        let missed = c.access_range(0, 256);
        assert_eq!(missed, 4);
        assert_eq!(c.access_range(0, 256), 0);
        // range crossing a line boundary
        let missed = c.access_range(60 + 1024, 8);
        assert_eq!(missed, 2);
    }

    #[test]
    fn miss_traffic() {
        let mut c = FullyAssociativeCache::new(1024, 64);
        c.access(0);
        c.access(64);
        c.access(0);
        assert_eq!(c.miss_traffic_bytes(), 128);
    }

    #[test]
    fn single_line_cache() {
        let mut c = FullyAssociativeCache::new(64, 64);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(!c.access(64));
        assert!(!c.access(0));
    }

    #[test]
    fn large_stress_is_consistent() {
        // pseudo-random walk; invariant: map size never exceeds capacity
        let mut c = FullyAssociativeCache::new(64 * 64, 64);
        let mut x = 12345u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            c.access((x >> 16) % (256 * 64));
        }
        assert!(c.map.len() <= c.capacity_lines());
        assert_eq!(c.stats().accesses(), 50_000);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_capacity_panics() {
        let _ = FullyAssociativeCache::new(32, 64);
    }
}
