//! Memory-system models for the Crescent (ISCA 2022) reproduction.
//!
//! * [`DramTraceAnalyzer`] / [`DramTiming`] — streaming/random access
//!   classification (Fig 2) and LPDDR3-1600-class bandwidth timing;
//! * [`FullyAssociativeCache`] — the 10 MB fully-associative LRU cache of
//!   the Fig 3 motivation experiment;
//! * [`BankedSram`] — bank-conflict detection, serialization, and the
//!   Fig 10 selective-elision augmentation (Figs 4, 5);
//! * [`EnergyModel`] / [`EnergyLedger`] — the paper's published energy
//!   ratios (random : streaming DRAM = 3 : 1, random DRAM : SRAM = 25 : 1)
//!   and the per-category ledger behind Fig 16;
//! * [`StreamLedger`] — per-frame energy accounting for the streaming
//!   multi-frame workload engine (one [`EnergyLedger`] per frame plus the
//!   running total).
//!
//! # Example
//!
//! ```
//! use crescent_memsim::{BankedSram, DramTraceAnalyzer, SramConfig};
//!
//! // classify a DMA stream followed by a pointer chase
//! let mut dram = DramTraceAnalyzer::new();
//! dram.stream(0, 4096, 64);
//! dram.access(1 << 20, 16);
//! assert!(dram.counters().non_streaming_fraction() < 0.1);
//!
//! // arbitrate 4 concurrent requests over a 4-banked SRAM
//! let mut sram = BankedSram::new(SramConfig::tree_buffer());
//! let rounds = sram.gather_serializing(&[0, 4, 8, 16]);
//! assert_eq!(rounds, 2); // addresses 0 and 16 share bank 0
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod dram;
pub mod energy;
pub mod sram;
pub mod stream;

pub use cache::{CacheStats, FullyAssociativeCache};
pub use dram::{DramCounters, DramTiming, DramTraceAnalyzer};
pub use energy::{EnergyLedger, EnergyModel};
pub use sram::{crossbar_relative_area, BankedSram, PortOutcome, SramConfig, SramCounters};
pub use stream::StreamLedger;
