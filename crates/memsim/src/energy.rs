//! Energy model and accounting ledger.
//!
//! The paper's energy numbers come from post-synthesis power annotated with
//! switching activity plus Micron's DRAM power calculators; what the
//! evaluation actually *uses* are the resulting ratios (Sec 6):
//!
//! * random DRAM access : streaming DRAM access ≈ **3 : 1**
//! * random DRAM access : SRAM access ≈ **25 : 1**
//!
//! We adopt those ratios directly (per 4-byte word) and add a small MAC
//! energy so compute is non-zero but memory-dominated, which is the regime
//! the paper characterizes. All values are in arbitrary "energy units";
//! every figure reports energy *normalized to a baseline*, so only ratios
//! matter.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Per-event energy costs (arbitrary units).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per byte of a random DRAM access.
    pub dram_random_per_byte: f64,
    /// Energy per byte of a streaming DRAM access.
    pub dram_streaming_per_byte: f64,
    /// Energy per byte of an SRAM access.
    pub sram_per_byte: f64,
    /// Energy per MAC operation.
    pub mac_op: f64,
    /// Energy per tree-build datapath operation (one compare-and-move of a
    /// point during partitioning, or one node write) in the tree-build
    /// unit. Comparator + register traffic only — the DRAM side of a build
    /// is charged through the streaming-DRAM category.
    pub build_op: f64,
    /// Static/leakage energy per cycle for the whole accelerator.
    pub leakage_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // normalized to SRAM word (4 B) = 1 unit
        EnergyModel {
            sram_per_byte: 0.25,
            dram_random_per_byte: 6.25,          // 25x SRAM
            dram_streaming_per_byte: 6.25 / 3.0, // 3:1 random:streaming
            mac_op: 0.05,
            build_op: 0.05, // a compare-and-move costs about one MAC
            leakage_per_cycle: 0.02,
        }
    }
}

impl EnergyModel {
    /// Checks that the model preserves the paper's published ratios.
    pub fn ratios(&self) -> (f64, f64) {
        (
            self.dram_random_per_byte / self.dram_streaming_per_byte,
            self.dram_random_per_byte / self.sram_per_byte,
        )
    }
}

/// Energy consumption broken down by the categories of Fig 16.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Random DRAM traffic energy.
    pub dram_random: f64,
    /// Streaming DRAM traffic energy.
    pub dram_streaming: f64,
    /// Tree-buffer (neighbor search) SRAM energy.
    pub sram_search: f64,
    /// Point-buffer (aggregation) SRAM energy.
    pub sram_aggregation: f64,
    /// Global-buffer (weights/activations) SRAM energy.
    pub sram_global: f64,
    /// MAC / datapath energy.
    pub compute: f64,
    /// Tree-build / tree-refit datapath energy (partition compares, node
    /// writes, refit validation) — the category the streaming engine uses
    /// to make tree maintenance show up in per-frame profiles.
    pub tree_build: f64,
    /// Leakage.
    pub leakage: f64,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// The ledger as `(category, energy)` rows in a fixed, documented
    /// order — the serialization surface machine-readable reports (the
    /// explorer's sweep JSON, CSV exporters) build on, so a new category
    /// shows up in every report the moment it is added here.
    pub fn category_rows(&self) -> [(&'static str, f64); 8] {
        [
            ("dram_random", self.dram_random),
            ("dram_streaming", self.dram_streaming),
            ("sram_search", self.sram_search),
            ("sram_aggregation", self.sram_aggregation),
            ("sram_global", self.sram_global),
            ("compute", self.compute),
            ("tree_build", self.tree_build),
            ("leakage", self.leakage),
        ]
    }

    /// Total energy across all categories.
    pub fn total(&self) -> f64 {
        self.category_rows().iter().map(|(_, v)| v).sum()
    }

    /// Total DRAM energy.
    pub fn dram(&self) -> f64 {
        self.dram_random + self.dram_streaming
    }

    /// Total SRAM energy.
    pub fn sram(&self) -> f64 {
        self.sram_search + self.sram_aggregation + self.sram_global
    }

    /// A copy of the ledger with every category scaled by `factor`.
    ///
    /// The multi-tenant service uses this to attribute a shared
    /// wavefront's energy to its tenants proportionally (by query
    /// share): each tenant receives `wavefront.scaled(share)`. The
    /// scaling is per-category, so attribution preserves the category
    /// breakdown, not just the total.
    pub fn scaled(&self, factor: f64) -> EnergyLedger {
        EnergyLedger {
            dram_random: self.dram_random * factor,
            dram_streaming: self.dram_streaming * factor,
            sram_search: self.sram_search * factor,
            sram_aggregation: self.sram_aggregation * factor,
            sram_global: self.sram_global * factor,
            compute: self.compute * factor,
            tree_build: self.tree_build * factor,
            leakage: self.leakage * factor,
        }
    }

    /// Sums a sequence of ledgers into one — the fleet/service rollup
    /// form of [`EnergyLedger::merge`].
    pub fn merged<'a, I: IntoIterator<Item = &'a EnergyLedger>>(ledgers: I) -> EnergyLedger {
        let mut out = EnergyLedger::new();
        for ledger in ledgers {
            out.merge(ledger);
        }
        out
    }

    /// Adds another ledger's entries.
    pub fn merge(&mut self, other: &EnergyLedger) {
        self.dram_random += other.dram_random;
        self.dram_streaming += other.dram_streaming;
        self.sram_search += other.sram_search;
        self.sram_aggregation += other.sram_aggregation;
        self.sram_global += other.sram_global;
        self.compute += other.compute;
        self.tree_build += other.tree_build;
        self.leakage += other.leakage;
    }

    /// Charges random DRAM traffic.
    pub fn charge_dram_random(&mut self, model: &EnergyModel, bytes: u64) {
        self.dram_random += model.dram_random_per_byte * bytes as f64;
    }

    /// Charges streaming DRAM traffic.
    pub fn charge_dram_streaming(&mut self, model: &EnergyModel, bytes: u64) {
        self.dram_streaming += model.dram_streaming_per_byte * bytes as f64;
    }

    /// Charges tree-buffer SRAM traffic (neighbor search).
    pub fn charge_sram_search(&mut self, model: &EnergyModel, bytes: u64) {
        self.sram_search += model.sram_per_byte * bytes as f64;
    }

    /// Charges point-buffer SRAM traffic (aggregation).
    pub fn charge_sram_aggregation(&mut self, model: &EnergyModel, bytes: u64) {
        self.sram_aggregation += model.sram_per_byte * bytes as f64;
    }

    /// Charges global-buffer SRAM traffic (weights / activations).
    pub fn charge_sram_global(&mut self, model: &EnergyModel, bytes: u64) {
        self.sram_global += model.sram_per_byte * bytes as f64;
    }

    /// Charges MAC operations.
    pub fn charge_macs(&mut self, model: &EnergyModel, macs: u64) {
        self.compute += model.mac_op * macs as f64;
    }

    /// Charges tree-build / refit datapath operations (partition
    /// compare-and-moves, node writes, validation checks).
    pub fn charge_tree_build(&mut self, model: &EnergyModel, ops: u64) {
        self.tree_build += model.build_op * ops as f64;
    }

    /// Charges leakage for a cycle count.
    pub fn charge_leakage(&mut self, model: &EnergyModel, cycles: u64) {
        self.leakage += model.leakage_per_cycle * cycles as f64;
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy[total={:.1} dram_rand={:.1} dram_stream={:.1} sram_search={:.1} sram_aggr={:.1} sram_global={:.1} compute={:.1} build={:.1} leak={:.1}]",
            self.total(),
            self.dram_random,
            self.dram_streaming,
            self.sram_search,
            self.sram_aggregation,
            self.sram_global,
            self.compute,
            self.tree_build,
            self.leakage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_preserves_paper_ratios() {
        let (rand_stream, rand_sram) = EnergyModel::default().ratios();
        assert!((rand_stream - 3.0).abs() < 1e-9);
        assert!((rand_sram - 25.0).abs() < 1e-9);
    }

    #[test]
    fn ledger_totals() {
        let m = EnergyModel::default();
        let mut l = EnergyLedger::new();
        l.charge_dram_random(&m, 100);
        l.charge_dram_streaming(&m, 300);
        l.charge_sram_search(&m, 400);
        l.charge_sram_aggregation(&m, 400);
        l.charge_sram_global(&m, 800);
        l.charge_macs(&m, 1000);
        l.charge_tree_build(&m, 2000);
        l.charge_leakage(&m, 500);
        assert!(l.total() > 0.0);
        assert!((l.dram() - (100.0 * 6.25 + 300.0 * 6.25 / 3.0)).abs() < 1e-6);
        assert!((l.sram() - 0.25 * 1600.0).abs() < 1e-6);
        assert!((l.compute - 50.0).abs() < 1e-9);
        assert!((l.tree_build - 100.0).abs() < 1e-9);
        assert!((l.leakage - 10.0).abs() < 1e-9);
    }

    #[test]
    fn random_dram_dominates_equal_bytes() {
        // the premise of the whole paper: same bytes, 3x the energy
        let m = EnergyModel::default();
        let mut random = EnergyLedger::new();
        let mut streaming = EnergyLedger::new();
        random.charge_dram_random(&m, 1 << 20);
        streaming.charge_dram_streaming(&m, 1 << 20);
        assert!((random.total() / streaming.total() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_categories() {
        let m = EnergyModel::default();
        let mut a = EnergyLedger::new();
        a.charge_macs(&m, 10);
        let mut b = EnergyLedger::new();
        b.charge_macs(&m, 20);
        b.charge_sram_global(&m, 4);
        a.merge(&b);
        assert!((a.compute - 1.5).abs() < 1e-9);
        assert!((a.sram_global - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_preserves_the_category_breakdown() {
        let m = EnergyModel::default();
        let mut l = EnergyLedger::new();
        l.charge_dram_streaming(&m, 300);
        l.charge_sram_search(&m, 40);
        l.charge_leakage(&m, 1000);
        let half = l.scaled(0.5);
        for ((name, v), (hname, hv)) in l.category_rows().iter().zip(half.category_rows()) {
            assert_eq!(*name, hname);
            assert!((v * 0.5 - hv).abs() < 1e-12, "{name}");
        }
        assert!((half.total() - l.total() * 0.5).abs() < 1e-12);
        assert_eq!(l.scaled(0.0).total(), 0.0);
    }

    #[test]
    fn merged_sums_a_fleet_of_ledgers() {
        let m = EnergyModel::default();
        let mut a = EnergyLedger::new();
        a.charge_macs(&m, 10);
        let mut b = EnergyLedger::new();
        b.charge_sram_global(&m, 4);
        b.charge_tree_build(&m, 7);
        let rollup = EnergyLedger::merged([&a, &b]);
        let mut reference = a;
        reference.merge(&b);
        assert_eq!(rollup.category_rows(), reference.category_rows());
        assert_eq!(EnergyLedger::merged(std::iter::empty::<&EnergyLedger>()).total(), 0.0);
    }

    #[test]
    fn category_rows_cover_every_field_exactly_once() {
        let m = EnergyModel::default();
        let mut l = EnergyLedger::new();
        l.charge_dram_random(&m, 1);
        l.charge_dram_streaming(&m, 2);
        l.charge_sram_search(&m, 4);
        l.charge_sram_aggregation(&m, 8);
        l.charge_sram_global(&m, 16);
        l.charge_macs(&m, 32);
        l.charge_tree_build(&m, 64);
        l.charge_leakage(&m, 128);
        let rows = l.category_rows();
        // all categories present, all distinct, all non-zero after the
        // charges above, and the sum IS the total
        let names: Vec<&str> = rows.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 8);
        for w in names.windows(2) {
            assert_ne!(w[0], w[1]);
        }
        assert!(rows.iter().all(|(_, v)| *v > 0.0));
        let sum: f64 = rows.iter().map(|(_, v)| v).sum();
        assert!((sum - l.total()).abs() < 1e-12);
        assert_eq!(rows[0].0, "dram_random");
        assert_eq!(rows[7].0, "leakage");
    }

    #[test]
    fn display_mentions_total() {
        let l = EnergyLedger::new();
        assert!(format!("{l}").contains("total=0.0"));
    }

    #[test]
    fn zero_access_run_costs_zero() {
        let m = EnergyModel::default();
        let mut l = EnergyLedger::new();
        l.charge_dram_random(&m, 0);
        l.charge_dram_streaming(&m, 0);
        l.charge_sram_search(&m, 0);
        l.charge_sram_aggregation(&m, 0);
        l.charge_sram_global(&m, 0);
        l.charge_macs(&m, 0);
        l.charge_tree_build(&m, 0);
        l.charge_leakage(&m, 0);
        assert_eq!(l.total(), 0.0);
        assert_eq!(l, EnergyLedger::new(), "zero-count charges must not perturb the ledger");
    }

    #[test]
    fn totals_are_monotone_in_access_counts() {
        // each charge category individually: more traffic never costs less
        let m = EnergyModel::default();
        type Charge = fn(&mut EnergyLedger, &EnergyModel, u64);
        let charges: &[(&str, Charge)] = &[
            ("dram_random", EnergyLedger::charge_dram_random),
            ("dram_streaming", EnergyLedger::charge_dram_streaming),
            ("sram_search", EnergyLedger::charge_sram_search),
            ("sram_aggregation", EnergyLedger::charge_sram_aggregation),
            ("sram_global", EnergyLedger::charge_sram_global),
            ("macs", EnergyLedger::charge_macs),
            ("tree_build", EnergyLedger::charge_tree_build),
            ("leakage", EnergyLedger::charge_leakage),
        ];
        for &(name, charge) in charges {
            let mut prev = 0.0;
            for count in [0u64, 1, 2, 64, 4096, 1 << 20] {
                let mut l = EnergyLedger::new();
                charge(&mut l, &m, count);
                assert!(
                    l.total() >= prev,
                    "{name}: total {} decreased below {prev} at count {count}",
                    l.total()
                );
                assert!(count == 0 || l.total() > 0.0, "{name}: nonzero count costs nothing");
                prev = l.total();
            }
        }
        // and cumulatively on one ledger: every charge strictly grows it
        let mut l = EnergyLedger::new();
        let mut prev = l.total();
        for &(name, charge) in charges {
            charge(&mut l, &m, 1000);
            assert!(l.total() > prev, "{name}: cumulative total failed to grow");
            prev = l.total();
        }
    }
}
