//! Banked on-chip SRAM with conflict detection and selective elision.
//!
//! Models the arbitration-and-crossbar structure of Fig 10: `P` ports issue
//! word addresses each cycle; addresses are low-order interleaved across
//! `B` banks; when several ports hit the same bank, one wins and the rest
//! either **stall** (baseline behaviour — the request is re-issued) or are
//! **elided** (Crescent — the port is handed the winner's data, or the
//! request is dropped, depending on the pipeline mode; see Sec 4.2).
//!
//! The module also carries the crossbar-cost observation of Sec 2.2: the
//! crossbar area grows quadratically with the bank count, which is why
//! simply adding banks is not an acceptable fix for conflicts.

use serde::{Deserialize, Serialize};

/// Static configuration of a banked SRAM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramConfig {
    /// Number of banks (low-order interleaved on word address).
    pub num_banks: usize,
    /// Word size in bytes (bank port width).
    pub word_bytes: usize,
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
}

impl SramConfig {
    /// The paper's 64 KB, 16-bank Point Buffer (Sec 6).
    pub fn point_buffer() -> Self {
        SramConfig { num_banks: 16, word_bytes: 4, capacity_bytes: 64 << 10 }
    }

    /// The paper's 6 KB, 4-bank Tree Buffer (Sec 6).
    pub fn tree_buffer() -> Self {
        SramConfig { num_banks: 4, word_bytes: 4, capacity_bytes: 6 << 10 }
    }

    /// Bank index of a byte address.
    #[inline]
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.word_bytes as u64) % self.num_banks as u64) as usize
    }
}

/// Outcome of one port's request in an arbitration round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortOutcome {
    /// The request won (or had no contention) and data was returned.
    Granted,
    /// The request lost arbitration and must be re-issued (baseline).
    Conflict,
    /// The request lost arbitration and was elided: the port proceeds with
    /// the winning request's data (aggregation) or drops the access
    /// (neighbor search).
    Elided,
}

/// Counter block for a banked SRAM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramCounters {
    /// Requests issued across all rounds (including re-issues).
    pub requests: u64,
    /// Requests granted.
    pub grants: u64,
    /// Requests that lost arbitration (conflicted), whether stalled or elided.
    pub conflicts: u64,
    /// Conflicted requests that were elided instead of stalled.
    pub elided: u64,
    /// Arbitration rounds executed.
    pub rounds: u64,
}

impl SramCounters {
    /// Fraction of requests that conflicted — the Fig 4 / Fig 5 metric.
    pub fn conflict_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.requests as f64
        }
    }
}

/// A banked SRAM arbiter.
///
/// The model is stateless w.r.t. data (only addresses matter) but keeps
/// running counters.
///
/// # Examples
///
/// ```
/// use crescent_memsim::{BankedSram, PortOutcome, SramConfig};
///
/// let mut sram = BankedSram::new(SramConfig { num_banks: 2, word_bytes: 4, capacity_bytes: 1024 });
/// // two requests to bank 0, one to bank 1
/// let out = sram.arbitrate(&[Some(0), Some(8), Some(4)], false);
/// assert_eq!(out, vec![PortOutcome::Granted, PortOutcome::Conflict, PortOutcome::Granted]);
/// ```
#[derive(Clone, Debug)]
pub struct BankedSram {
    config: SramConfig,
    counters: SramCounters,
    bank_winner: Vec<Option<usize>>, // scratch, reused across rounds
    // gather scratch, reused across calls: the pending-request list and
    // the per-round outcome buffer. Simulated rounds are the innermost
    // unit of work in every timing model above this crate, so a fresh
    // `Vec` per round (or per gather) is the kind of allocation that
    // shows up on the sweep's wall-clock.
    pending: Vec<Option<u64>>,
    round_out: Vec<PortOutcome>,
    // fast bank decode — `(addr >> shift) & mask` — precomputed when both
    // the word size and the bank count are powers of two (every shipped
    // configuration). `bank_of`'s div+mod sits in the innermost simulated
    // round, where the hardware divide is measurable.
    shift_mask: Option<(u32, u64)>,
}

impl BankedSram {
    /// Creates an arbiter for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks or a zero word size.
    pub fn new(config: SramConfig) -> Self {
        assert!(config.num_banks > 0, "SRAM needs at least one bank");
        assert!(config.word_bytes > 0, "SRAM word size must be positive");
        let shift_mask = (config.word_bytes.is_power_of_two()
            && config.num_banks.is_power_of_two())
        .then(|| (config.word_bytes.trailing_zeros(), config.num_banks as u64 - 1));
        BankedSram {
            config,
            counters: SramCounters::default(),
            bank_winner: vec![None; config.num_banks],
            pending: Vec::new(),
            round_out: Vec::new(),
            shift_mask,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// Arbitrates one cycle of port requests (`None` = idle port).
    ///
    /// With `elide == false`, losers get [`PortOutcome::Conflict`] (the
    /// baseline serializing SRAM). With `elide == true`, losers get
    /// [`PortOutcome::Elided`] — the Fig 10 AND gate lowering the conflict
    /// signal.
    pub fn arbitrate(&mut self, requests: &[Option<u64>], elide: bool) -> Vec<PortOutcome> {
        let mut out = Vec::new();
        self.arbitrate_into(requests, elide, &mut out);
        out
    }

    /// [`BankedSram::arbitrate`] into a caller-recycled outcome buffer
    /// (cleared and refilled) — the allocation-free form for per-round
    /// inner loops.
    pub fn arbitrate_into(
        &mut self,
        requests: &[Option<u64>],
        elide: bool,
        out: &mut Vec<PortOutcome>,
    ) {
        self.round(requests, |_| elide, out);
    }

    /// Arbitrates one cycle with a *per-port* elision eligibility — the
    /// form the selective-elision hardware of Sec 4.4 actually needs: a
    /// losing request is elided only if its `eligible` flag is set (the
    /// `h_e` comparator output for that port's address), and stalls
    /// ([`PortOutcome::Conflict`]) otherwise.
    ///
    /// The winning port of every bank is retained until the next round
    /// and can be read back through [`BankedSram::winner_of_bank`], so a
    /// caller implementing a data-forwarding refinement (e.g. the
    /// descendant-reuse salvage in `crescent-kdtree`) can look up whose
    /// data an elided port was handed.
    ///
    /// # Panics
    ///
    /// Panics if `eligible` is shorter than `requests`.
    pub fn arbitrate_selective(
        &mut self,
        requests: &[Option<u64>],
        eligible: &[bool],
    ) -> Vec<PortOutcome> {
        let mut out = Vec::new();
        self.arbitrate_selective_into(requests, eligible, &mut out);
        out
    }

    /// [`BankedSram::arbitrate_selective`] into a caller-recycled outcome
    /// buffer (cleared and refilled) — what the tree-buffer arbiter's
    /// lock-step loop calls so no round allocates.
    pub fn arbitrate_selective_into(
        &mut self,
        requests: &[Option<u64>],
        eligible: &[bool],
        out: &mut Vec<PortOutcome>,
    ) {
        assert!(eligible.len() >= requests.len(), "one eligibility flag per port");
        self.round(requests, |port| eligible[port], out);
    }

    /// One arbitration round with *computed* requests: `request(port)`
    /// yields port `port`'s address (`None` = idle) and `eligible(port)`
    /// its elision eligibility (consulted only for losers). This is the
    /// shared core behind every `arbitrate*` form — and the form the
    /// innermost simulation loops call directly, because materializing
    /// per-round address/eligibility buffers just to pass slices here is
    /// measurable across the millions of rounds a sweep simulates.
    ///
    /// Outcomes land in `out` (cleared first; idle ports read
    /// [`PortOutcome::Granted`], which callers never consult).
    pub fn arbitrate_with(
        &mut self,
        ports: usize,
        request: impl Fn(usize) -> Option<u64>,
        eligible: impl Fn(usize) -> bool,
        out: &mut Vec<PortOutcome>,
    ) {
        out.clear();
        out.reserve(ports);
        self.arbitrate_fold(ports, request, eligible, |_, outcome, _| out.push(outcome));
    }

    /// [`BankedSram::arbitrate_with`] delivering outcomes through a sink
    /// instead of a buffer: `sink(port, outcome, winner)` fires once per
    /// port in port order, where `winner` is the port whose request won
    /// the loser's bank (`None` for idle and granted ports). Because
    /// arbitration is first-come-per-bank, a loser's winner is already
    /// final when the loser is processed — so a caller layering policy on
    /// top of lost fetches (stall/elide/forward-from-winner) can resolve
    /// each port in the same pass the round itself makes, instead of a
    /// second walk over a materialized outcome buffer.
    pub fn arbitrate_fold(
        &mut self,
        ports: usize,
        request: impl Fn(usize) -> Option<u64>,
        eligible: impl Fn(usize) -> bool,
        mut sink: impl FnMut(usize, PortOutcome, Option<usize>),
    ) {
        self.counters.rounds += 1;
        for w in &mut self.bank_winner {
            *w = None;
        }
        for port in 0..ports {
            let Some(addr) = request(port) else {
                sink(port, PortOutcome::Granted, None);
                continue;
            };
            self.counters.requests += 1;
            let bank = match self.shift_mask {
                Some((shift, mask)) => ((addr >> shift) & mask) as usize,
                None => self.config.bank_of(addr),
            };
            match self.bank_winner[bank] {
                None => {
                    self.bank_winner[bank] = Some(port);
                    self.counters.grants += 1;
                    sink(port, PortOutcome::Granted, None);
                }
                Some(winner) => {
                    self.counters.conflicts += 1;
                    if eligible(port) {
                        self.counters.elided += 1;
                        sink(port, PortOutcome::Elided, Some(winner));
                    } else {
                        sink(port, PortOutcome::Conflict, Some(winner));
                    }
                }
            }
        }
    }

    /// [`BankedSram::arbitrate_with`] over a materialized request slice —
    /// the form the slice-based `arbitrate*` wrappers share.
    fn round(
        &mut self,
        requests: &[Option<u64>],
        eligible: impl Fn(usize) -> bool,
        out: &mut Vec<PortOutcome>,
    ) {
        self.arbitrate_with(requests.len(), |port| requests[port], eligible, out);
    }

    /// The port that won `bank` in the most recent arbitration round
    /// (`None` if no request hit that bank, or no round has run).
    ///
    /// # Panics
    ///
    /// Panics if `bank >= config().num_banks`.
    pub fn winner_of_bank(&self, bank: usize) -> Option<usize> {
        self.bank_winner[bank]
    }

    /// Runs a gather of `addrs` to completion under baseline (serializing)
    /// arbitration: conflicted requests re-issue on subsequent rounds.
    /// Returns the number of rounds the gather took.
    pub fn gather_serializing(&mut self, addrs: &[u64]) -> u64 {
        // the pending list and per-round outcomes live in recycled
        // buffers (taken out of `self` so the round borrow checks)
        let mut pending = std::mem::take(&mut self.pending);
        let mut outcomes = std::mem::take(&mut self.round_out);
        pending.clear();
        pending.extend(addrs.iter().copied().map(Some));
        let mut rounds = 0;
        while pending.iter().any(Option::is_some) {
            rounds += 1;
            self.round(&pending, |_| false, &mut outcomes);
            for (slot, outcome) in outcomes.iter().enumerate() {
                if pending[slot].is_some() && *outcome == PortOutcome::Granted {
                    pending[slot] = None;
                }
            }
        }
        self.pending = pending;
        self.round_out = outcomes;
        rounds
    }

    /// Runs a gather of `addrs` in a single round with elision: conflicted
    /// requests return the winner's data immediately (Sec 4.2 aggregation
    /// behaviour). Returns, per address, whether the access was elided.
    pub fn gather_eliding(&mut self, addrs: &[u64]) -> Vec<bool> {
        let reqs: Vec<Option<u64>> = addrs.iter().copied().map(Some).collect();
        self.arbitrate(&reqs, true).into_iter().map(|o| o == PortOutcome::Elided).collect()
    }

    /// [`BankedSram::gather_eliding`], returning only the elided-access
    /// count — the allocation-free form for gather inner loops that never
    /// look at per-address outcomes.
    pub fn gather_eliding_count(&mut self, addrs: &[u64]) -> u64 {
        let mut outcomes = std::mem::take(&mut self.round_out);
        self.arbitrate_with(addrs.len(), |i| Some(addrs[i]), |_| true, &mut outcomes);
        let elided = outcomes.iter().filter(|&&o| o == PortOutcome::Elided).count() as u64;
        self.round_out = outcomes;
        elided
    }

    /// Accumulated counters.
    pub fn counters(&self) -> &SramCounters {
        &self.counters
    }

    /// Resets the counters (configuration is kept).
    pub fn reset_counters(&mut self) {
        self.counters = SramCounters::default();
    }
}

/// Relative crossbar area of a `banks × ports` SRAM crossbar, normalized to
/// a 2-bank, 2-port design.
///
/// The paper (Sec 2.2) reports crossbar area growing quadratically with
/// bank count — with 32 banks the crossbar is twice the area of the memory
/// arrays themselves. This helper exists for the Fig 22 discussion (why
/// "just add banks" is not free).
pub fn crossbar_relative_area(num_banks: usize, num_ports: usize) -> f64 {
    (num_banks as f64 * num_ports as f64) / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sram(banks: usize) -> BankedSram {
        BankedSram::new(SramConfig { num_banks: banks, word_bytes: 4, capacity_bytes: 4096 })
    }

    #[test]
    fn bank_mapping_is_low_order() {
        let cfg = SramConfig { num_banks: 4, word_bytes: 4, capacity_bytes: 1024 };
        assert_eq!(cfg.bank_of(0), 0);
        assert_eq!(cfg.bank_of(4), 1);
        assert_eq!(cfg.bank_of(8), 2);
        assert_eq!(cfg.bank_of(12), 3);
        assert_eq!(cfg.bank_of(16), 0);
        assert_eq!(cfg.bank_of(6), 1); // within-word offset ignored
    }

    #[test]
    fn no_conflict_when_banks_differ() {
        let mut s = sram(4);
        let out = s.arbitrate(&[Some(0), Some(4), Some(8), Some(12)], false);
        assert!(out.iter().all(|o| *o == PortOutcome::Granted));
        assert_eq!(s.counters().conflicts, 0);
    }

    #[test]
    fn conflict_first_port_wins() {
        let mut s = sram(4);
        let out = s.arbitrate(&[Some(0), Some(16)], false);
        assert_eq!(out[0], PortOutcome::Granted);
        assert_eq!(out[1], PortOutcome::Conflict);
        assert_eq!(s.counters().conflict_rate(), 0.5);
    }

    #[test]
    fn elide_mode_marks_losers_elided() {
        let mut s = sram(2);
        let out = s.arbitrate(&[Some(0), Some(8), Some(16)], true);
        assert_eq!(out[0], PortOutcome::Granted);
        assert_eq!(out[1], PortOutcome::Elided);
        assert_eq!(out[2], PortOutcome::Elided);
        assert_eq!(s.counters().elided, 2);
    }

    #[test]
    fn selective_elision_decides_per_port() {
        let mut s = sram(2);
        // ports 0..3 all hit bank 0: port 0 wins, port 1 is eligible and
        // elides, port 2 is not eligible and stalls
        let out = s.arbitrate_selective(&[Some(0), Some(8), Some(16)], &[false, true, false]);
        assert_eq!(out, vec![PortOutcome::Granted, PortOutcome::Elided, PortOutcome::Conflict]);
        assert_eq!(s.counters().conflicts, 2);
        assert_eq!(s.counters().elided, 1);
        assert_eq!(s.winner_of_bank(0), Some(0), "port 0 holds bank 0");
        assert_eq!(s.winner_of_bank(1), None, "nobody requested bank 1");
    }

    #[test]
    fn broadcast_arbitrate_matches_selective() {
        let reqs = [Some(0u64), Some(8), Some(4), Some(12)];
        for elide in [false, true] {
            let mut a = sram(2);
            let mut b = sram(2);
            let flags = vec![elide; reqs.len()];
            assert_eq!(a.arbitrate(&reqs, elide), b.arbitrate_selective(&reqs, &flags));
            assert_eq!(a.counters(), b.counters());
        }
    }

    #[test]
    #[should_panic(expected = "one eligibility flag per port")]
    fn selective_needs_enough_flags() {
        let mut s = sram(2);
        let _ = s.arbitrate_selective(&[Some(0), Some(8)], &[true]);
    }

    #[test]
    fn idle_ports_ignored() {
        let mut s = sram(2);
        let out = s.arbitrate(&[None, Some(0), None], false);
        assert_eq!(out[1], PortOutcome::Granted);
        assert_eq!(s.counters().requests, 1);
    }

    #[test]
    fn serializing_gather_rounds() {
        let mut s = sram(2);
        // 4 requests, 2 to each bank -> 2 rounds
        assert_eq!(s.gather_serializing(&[0, 4, 8, 12]), 2);
        // all 4 to the same bank -> 4 rounds
        assert_eq!(s.gather_serializing(&[0, 8, 16, 24]), 4);
        // no requests -> 0 rounds
        assert_eq!(s.gather_serializing(&[]), 0);
    }

    #[test]
    fn eliding_gather_single_round() {
        let mut s = sram(2);
        let before = s.counters().rounds;
        let elided = s.gather_eliding(&[0, 8, 4, 12]);
        assert_eq!(s.counters().rounds, before + 1);
        assert_eq!(elided, vec![false, true, false, true]);
    }

    #[test]
    fn more_banks_reduce_conflicts_statistically() {
        // Fig 4 shape: same pseudo-random request stream, increasing banks
        let mut rates = Vec::new();
        for banks in [2usize, 4, 8, 16, 32] {
            let mut s = sram(banks);
            let mut x = 99u64;
            for _ in 0..2_000 {
                let reqs: Vec<Option<u64>> = (0..8)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        Some((x >> 13) % 4096)
                    })
                    .collect();
                s.arbitrate(&reqs, false);
            }
            rates.push(s.counters().conflict_rate());
        }
        for w in rates.windows(2) {
            assert!(w[1] < w[0], "rates not decreasing: {rates:?}");
        }
        // 32 banks vs 8 requests: conflicts should be rare
        assert!(rates[4] < 0.15, "32-bank rate {}", rates[4]);
    }

    #[test]
    fn crossbar_area_quadratic() {
        assert_eq!(crossbar_relative_area(2, 2), 1.0);
        assert_eq!(crossbar_relative_area(4, 4), 4.0);
        assert_eq!(crossbar_relative_area(32, 32), 256.0);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        let _ = BankedSram::new(SramConfig { num_banks: 0, word_bytes: 4, capacity_bytes: 64 });
    }
}
