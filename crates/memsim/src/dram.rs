//! DRAM access-stream model.
//!
//! Two jobs:
//!
//! 1. **Classification** — split an address stream into *streaming*
//!    (sequential with the previous access) and *random* (non-continuous)
//!    accesses, the distinction behind Fig 2 and the 3:1 energy ratio of
//!    Sec 6 ("the energy ratio between a random DRAM access and a streaming
//!    DRAM access is about 3:1");
//! 2. **Timing** — convert byte counts into cycles using an LPDDR3-1600
//!    ×4-channel bandwidth model (the paper's Micron part), so the
//!    accelerator simulator can overlap DMA with compute.

use serde::{Deserialize, Serialize};

/// Classification counters for a DRAM access stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramCounters {
    /// Accesses whose address continued the previous access.
    pub streaming_accesses: u64,
    /// Accesses that broke the sequential pattern.
    pub random_accesses: u64,
    /// Bytes moved by streaming accesses.
    pub streaming_bytes: u64,
    /// Bytes moved by random accesses.
    pub random_bytes: u64,
}

impl DramCounters {
    /// Total accesses observed.
    pub fn total_accesses(&self) -> u64 {
        self.streaming_accesses + self.random_accesses
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.streaming_bytes + self.random_bytes
    }

    /// Fraction of accesses that were non-continuous (the Fig 2 metric).
    pub fn non_streaming_fraction(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.random_accesses as f64 / total as f64
        }
    }

    /// Merges counters from another stream.
    pub fn merge(&mut self, other: &DramCounters) {
        self.streaming_accesses += other.streaming_accesses;
        self.random_accesses += other.random_accesses;
        self.streaming_bytes += other.streaming_bytes;
        self.random_bytes += other.random_bytes;
    }
}

/// Classifies a DRAM access stream into streaming vs. random accesses.
///
/// An access is *streaming* if it starts exactly where the previous access
/// ended (the DMA can keep the burst open). The first access of a stream is
/// random by definition.
///
/// # Examples
///
/// ```
/// use crescent_memsim::DramTraceAnalyzer;
///
/// let mut a = DramTraceAnalyzer::new();
/// a.access(0, 64);
/// a.access(64, 64);   // continues -> streaming
/// a.access(4096, 64); // jump -> random
/// assert_eq!(a.counters().streaming_accesses, 1);
/// assert_eq!(a.counters().random_accesses, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DramTraceAnalyzer {
    counters: DramCounters,
    next_addr: Option<u64>,
}

impl DramTraceAnalyzer {
    /// Creates an analyzer with no history.
    pub fn new() -> Self {
        DramTraceAnalyzer::default()
    }

    /// Records an access of `bytes` bytes at byte address `addr`.
    pub fn access(&mut self, addr: u64, bytes: u64) {
        let streaming = self.next_addr == Some(addr);
        if streaming {
            self.counters.streaming_accesses += 1;
            self.counters.streaming_bytes += bytes;
        } else {
            self.counters.random_accesses += 1;
            self.counters.random_bytes += bytes;
        }
        self.next_addr = Some(addr + bytes);
    }

    /// Records a whole sequential transfer (first burst random, rest
    /// streaming), like a DMA block move.
    pub fn stream(&mut self, start_addr: u64, bytes: u64, burst: u64) {
        let mut addr = start_addr;
        let mut left = bytes;
        while left > 0 {
            let b = left.min(burst.max(1));
            self.access(addr, b);
            addr += b;
            left -= b;
        }
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> &DramCounters {
        &self.counters
    }

    /// Resets stream history (e.g. between kernels) without clearing
    /// counters, so the next access is classified as random.
    pub fn break_stream(&mut self) {
        self.next_addr = None;
    }
}

/// LPDDR3-1600 ×4-channel timing parameters (Sec 6's DRAM model), expressed
/// against the accelerator's 1 GHz clock.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DramTiming {
    /// Sustained sequential bandwidth in bytes per accelerator cycle.
    /// LPDDR3-1600 ×4 channels peaks at 25.6 GB/s ≈ 25.6 B/cycle at 1 GHz;
    /// we assume 80 % utilization for streams.
    pub stream_bytes_per_cycle: f64,
    /// Latency of an isolated random access (row miss + bus), in cycles.
    pub random_access_cycles: u64,
    /// Burst granularity in bytes.
    pub burst_bytes: u64,
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming {
            stream_bytes_per_cycle: 20.48, // 25.6 GB/s * 0.8 at 1 GHz
            random_access_cycles: 120,
            burst_bytes: 64,
        }
    }
}

impl DramTiming {
    /// Cycles to stream `bytes` sequential bytes.
    pub fn stream_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.stream_bytes_per_cycle).ceil() as u64
    }

    /// Cycles for `accesses` isolated random bursts (latency-bound; the
    /// memory-level parallelism of `overlap` in-flight requests is
    /// amortized out).
    pub fn random_cycles(&self, accesses: u64, overlap: u64) -> u64 {
        let ov = overlap.max(1);
        accesses.div_ceil(ov) * self.random_access_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_random() {
        let mut a = DramTraceAnalyzer::new();
        a.access(100, 16);
        assert_eq!(a.counters().random_accesses, 1);
        assert_eq!(a.counters().streaming_accesses, 0);
    }

    #[test]
    fn sequential_run_is_streaming() {
        let mut a = DramTraceAnalyzer::new();
        for i in 0..10u64 {
            a.access(i * 64, 64);
        }
        assert_eq!(a.counters().random_accesses, 1);
        assert_eq!(a.counters().streaming_accesses, 9);
        assert_eq!(a.counters().total_bytes(), 640);
    }

    #[test]
    fn jumps_are_random() {
        let mut a = DramTraceAnalyzer::new();
        a.access(0, 16);
        a.access(16, 16);
        a.access(0, 16); // backwards jump
        a.access(16, 16);
        assert_eq!(a.counters().random_accesses, 2);
        assert_eq!(a.counters().streaming_accesses, 2);
        assert!((a.counters().non_streaming_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stream_helper_counts_one_random_head() {
        let mut a = DramTraceAnalyzer::new();
        a.stream(4096, 1000, 64);
        let c = a.counters();
        assert_eq!(c.random_accesses, 1);
        assert_eq!(c.total_bytes(), 1000);
        assert_eq!(c.total_accesses(), 16); // ceil(1000/64)
    }

    #[test]
    fn break_stream_forces_random() {
        let mut a = DramTraceAnalyzer::new();
        a.access(0, 64);
        a.break_stream();
        a.access(64, 64); // would have been streaming
        assert_eq!(a.counters().random_accesses, 2);
    }

    #[test]
    fn merge_counters() {
        let mut a = DramCounters::default();
        let b = DramCounters {
            streaming_accesses: 2,
            random_accesses: 3,
            streaming_bytes: 20,
            random_bytes: 30,
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.total_accesses(), 10);
        assert_eq!(a.total_bytes(), 100);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(DramCounters::default().non_streaming_fraction(), 0.0);
    }

    #[test]
    fn timing_stream_vs_random() {
        let t = DramTiming::default();
        // streaming a MB is far cheaper than 16384 random bursts
        let stream = t.stream_cycles(1 << 20);
        let random = t.random_cycles(16384, 4);
        assert!(stream * 5 < random, "stream {stream} random {random}");
        assert_eq!(t.stream_cycles(0), 0);
        assert_eq!(t.random_cycles(0, 4), 0);
    }

    #[test]
    fn timing_overlap_amortizes() {
        let t = DramTiming::default();
        assert!(t.random_cycles(100, 8) < t.random_cycles(100, 1));
    }
}
