//! Dense 2D `f32` tensor.
//!
//! Everything the point-cloud networks need is expressible with row-major
//! 2D tensors: a batch of point features is `[n_points, channels]`, an MLP
//! weight is `[in, out]`, grouped neighbor features are
//! `[n_groups * k, channels]`. The type is deliberately small and explicit
//! — no broadcasting rules beyond row-vector bias addition — so the
//! backward passes are easy to audit.

use std::fmt;
use std::ops::{Index, IndexMut};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A row-major 2D tensor of `f32`.
///
/// # Examples
///
/// ```
/// use crescent_nn::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero tensor of shape `[rows, cols]`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a tensor filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Tensor { rows, cols, data: vec![v; rows * cols] }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Tensor { rows: r, cols: c, data }
    }

    /// He-initialized tensor (for ReLU MLPs), deterministic per seed.
    pub fn he_init(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let std = (2.0 / rows as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| {
                // Box-Muller
                let u1: f32 = rng.random::<f32>().max(1e-9);
                let u2: f32 = rng.random::<f32>();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
            })
            .collect();
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn t_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "t_matmul shape mismatch");
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = rhs.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × rhsᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_t shape mismatch");
        let mut out = Tensor::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                out[(i, j)] = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Element-wise sum with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// In-place element-wise accumulate.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Adds `bias` (a `[1, cols]` row) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row(&self, bias: &[f32]) -> Tensor {
        assert_eq!(bias.len(), self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, b) in out.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
        out
    }

    /// Scales every element.
    pub fn scale(&self, s: f32) -> Tensor {
        let data = self.data.iter().map(|v| v * s).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// New tensor from the given rows (gather; rows may repeat).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Scatter-add: `self.row(indices[i]) += src.row(i)` — the adjoint of
    /// [`Tensor::gather_rows`], used to backpropagate through gathers.
    ///
    /// # Panics
    ///
    /// Panics if widths differ, `src.rows() != indices.len()`, or an index
    /// is out of bounds.
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Tensor) {
        assert_eq!(self.cols, src.cols, "scatter width mismatch");
        assert_eq!(src.rows, indices.len(), "scatter count mismatch");
        for (i, &dst) in indices.iter().enumerate() {
            let s = src.row(i);
            for (a, b) in self.row_mut(dst).iter_mut().zip(s) {
                *a += b;
            }
        }
    }

    /// Concatenates two tensors along columns.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "concat row mismatch");
        let mut out = Tensor::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Splits column-wise at `mid` into `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics if `mid > cols`.
    pub fn split_cols(&self, mid: usize) -> (Tensor, Tensor) {
        assert!(mid <= self.cols, "split point out of range");
        let mut left = Tensor::zeros(self.rows, mid);
        let mut right = Tensor::zeros(self.rows, self.cols - mid);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..mid]);
            right.row_mut(r).copy_from_slice(&self.row(r)[mid..]);
        }
        (left, right)
    }

    /// Concatenates tensors along rows.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ or `parts` is empty.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        let cols = parts.first().expect("concat_rows needs at least one part").cols;
        let rows: usize = parts.iter().map(|t| t.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for t in parts {
            assert_eq!(t.cols, cols, "concat_rows width mismatch");
            data.extend_from_slice(&t.data);
        }
        Tensor { rows, cols, data }
    }

    /// Index of the maximum element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Sum of squared elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Fills the tensor with zeros in place.
    pub fn zero_(&mut self) {
        self.data.fill(0.0);
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t[(1, 2)], 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        let z = Tensor::zeros(2, 2);
        assert!(z.data().iter().all(|&v| v == 0.0));
        assert_eq!(Tensor::full(1, 2, 7.0).data(), &[7.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_and_transpose_variants() {
        let a = Tensor::he_init(4, 3, 1);
        let i3 = Tensor::eye(3);
        assert_eq!(a.matmul(&i3), a);
        // a^T b == transpose(a).matmul(b)
        let b = Tensor::he_init(4, 5, 2);
        let want = a.transpose().matmul(&b);
        let got = a.t_matmul(&b);
        for (x, y) in got.data().iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        // a b^T == a.matmul(transpose(b))
        let c = Tensor::he_init(5, 3, 3);
        let want = a.matmul(&c.transpose());
        let got = a.matmul_t(&c);
        for (x, y) in got.data().iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn add_and_bias() {
        let a = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let b = a.add(&a);
        assert_eq!(b[(1, 1)], 4.0);
        let c = a.add_row(&[10.0, 20.0]);
        assert_eq!(c.row(0), &[11.0, 21.0]);
        let mut d = a.clone();
        d.add_assign(&a);
        assert_eq!(d, b);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let a = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[3.0, 1.0, 3.0]);
        // adjoint test: <gather(x), y> == <x, scatter(y)>
        let y = Tensor::from_rows(&[&[0.5], &[1.5], &[2.5]]);
        let mut scat = Tensor::zeros(3, 1);
        scat.scatter_add_rows(&[2, 0, 2], &y);
        let lhs: f32 = g.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = a.data().iter().zip(scat.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-6);
    }

    #[test]
    fn concat_and_split() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0], &[6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(1), &[3.0, 4.0, 6.0]);
        let (l, r) = c.split_cols(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
        let stacked = Tensor::concat_rows(&[&a, &a]);
        assert_eq!(stacked.shape(), (4, 2));
    }

    #[test]
    fn argmax_and_stats() {
        let t = Tensor::from_rows(&[&[0.1, 0.9, 0.0], &[5.0, 1.0, 2.0]]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
        assert!((t.mean() - (0.1 + 0.9 + 0.0 + 5.0 + 1.0 + 2.0) / 6.0).abs() < 1e-6);
        assert!(t.sq_norm() > 0.0);
        let mut z = t.clone();
        z.zero_();
        assert_eq!(z.sq_norm(), 0.0);
    }

    #[test]
    fn he_init_statistics() {
        let t = Tensor::he_init(256, 64, 7);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        let want = 2.0 / 256.0;
        assert!((var - want).abs() < want * 0.3, "var {var} want {want}");
        // deterministic
        assert_eq!(t, Tensor::he_init(256, 64, 7));
    }

    #[test]
    fn map_and_scale() {
        let t = Tensor::from_rows(&[&[-1.0, 2.0]]);
        assert_eq!(t.map(|v| v.max(0.0)).data(), &[0.0, 2.0]);
        assert_eq!(t.scale(2.0).data(), &[-2.0, 4.0]);
    }
}
