//! Loss functions (value + gradient w.r.t. predictions).

use crate::tensor::Tensor;

/// Softmax cross-entropy over rows.
///
/// Returns `(mean loss, dL/dlogits)`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
///
/// # Examples
///
/// ```
/// use crescent_nn::{softmax_cross_entropy, Tensor};
///
/// let logits = Tensor::from_rows(&[&[10.0, -10.0]]);
/// let (confident, _) = softmax_cross_entropy(&logits, &[0]);
/// let (wrong, _) = softmax_cross_entropy(&logits, &[1]);
/// assert!(confident < 0.01 && wrong > 5.0);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, c) = logits.shape();
    assert_eq!(labels.len(), n, "one label per row");
    let mut grad = Tensor::zeros(n, c);
    let mut loss = 0.0f32;
    for r in 0..n {
        let row = logits.row(r);
        let label = labels[r];
        assert!(label < c, "label {label} out of range for {c} classes");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        loss -= (exps[label] / sum).max(1e-12).ln();
        for ch in 0..c {
            let p = exps[ch] / sum;
            grad[(r, ch)] = (p - if ch == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    (loss / n as f32, grad)
}

/// Row-wise softmax probabilities (no gradient).
pub fn softmax(logits: &Tensor) -> Tensor {
    let (n, c) = logits.shape();
    let mut out = Tensor::zeros(n, c);
    for r in 0..n {
        let row = logits.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for ch in 0..c {
            out[(r, ch)] = exps[ch] / sum;
        }
    }
    out
}

/// Mean-squared-error loss. Returns `(mean loss, dL/dpred)`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "MSE shape mismatch");
    let n = pred.len().max(1) as f32;
    let mut grad = Tensor::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f32;
    for i in 0..pred.len() {
        let d = pred.data()[i] - target.data()[i];
        loss += d * d;
        grad.data_mut()[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Huber (smooth-L1) loss with threshold `delta`, the standard box-
/// regression loss. Returns `(mean loss, dL/dpred)`.
///
/// # Panics
///
/// Panics on shape mismatch or non-positive `delta`.
pub fn huber_loss(pred: &Tensor, target: &Tensor, delta: f32) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "Huber shape mismatch");
    assert!(delta > 0.0, "delta must be positive");
    let n = pred.len().max(1) as f32;
    let mut grad = Tensor::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f32;
    for i in 0..pred.len() {
        let d = pred.data()[i] - target.data()[i];
        if d.abs() <= delta {
            loss += 0.5 * d * d;
            grad.data_mut()[i] = d / n;
        } else {
            loss += delta * (d.abs() - 0.5 * delta);
            grad.data_mut()[i] = delta * d.signum() / n;
        }
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_uniform_logits() {
        let logits = Tensor::zeros(2, 4);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // gradient sums to zero per row
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn ce_gradient_finite_difference() {
        let mut logits = Tensor::from_rows(&[&[0.3, -0.7, 1.2]]);
        let labels = [2usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..3 {
            logits[(0, i)] += eps;
            let (lp, _) = softmax_cross_entropy(&logits, &labels);
            logits[(0, i)] -= 2.0 * eps;
            let (lm, _) = softmax_cross_entropy(&logits, &labels);
            logits[(0, i)] += eps;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((grad[(0, i)] - numeric).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let p = softmax(&Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]));
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
        // larger logit -> larger probability
        assert!(p[(0, 2)] > p[(0, 0)]);
    }

    #[test]
    fn mse_zero_at_target() {
        let t = Tensor::from_rows(&[&[1.0, 2.0]]);
        let (loss, grad) = mse_loss(&t, &t);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sq_norm(), 0.0);
        let (loss2, _) = mse_loss(&Tensor::zeros(1, 2), &t);
        assert!((loss2 - 2.5).abs() < 1e-6);
    }

    #[test]
    fn huber_matches_mse_inside_delta() {
        let pred = Tensor::from_rows(&[&[0.1, -0.2]]);
        let target = Tensor::zeros(1, 2);
        let (h, hg) = huber_loss(&pred, &target, 1.0);
        let (m, mg) = mse_loss(&pred, &target);
        assert!((h - m / 2.0).abs() < 1e-6);
        for i in 0..2 {
            assert!((hg.data()[i] - mg.data()[i] / 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn huber_linear_outside_delta() {
        let pred = Tensor::from_rows(&[&[10.0]]);
        let target = Tensor::zeros(1, 1);
        let (_, g) = huber_loss(&pred, &target, 1.0);
        assert!((g[(0, 0)] - 1.0).abs() < 1e-6); // clipped gradient
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ce_bad_label_panics() {
        let _ = softmax_cross_entropy(&Tensor::zeros(1, 2), &[5]);
    }
}
