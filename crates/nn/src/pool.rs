//! Set-aggregation pooling.
//!
//! Point-cloud networks aggregate each point's neighborhood with a
//! symmetric function — max-pooling in PointNet++ and all four evaluation
//! networks. The pool is what makes the networks tolerant to the neighbor
//! replication / omission that Crescent's approximations introduce
//! (Sec 4.2): a replicated neighbor changes nothing under max, and a
//! missing neighbor only matters if it held the per-channel max.

use crate::tensor::Tensor;

/// Max-pool over fixed-size groups of rows.
///
/// Input `[n_groups * group_size, C]` → output `[n_groups, C]`; the argmax
/// row of every `(group, channel)` is cached for the backward pass.
///
/// # Examples
///
/// ```
/// use crescent_nn::{GroupMaxPool, Tensor};
///
/// let x = Tensor::from_rows(&[&[1.0, 5.0], &[3.0, 2.0], &[0.0, 0.0], &[-1.0, 4.0]]);
/// let mut pool = GroupMaxPool::new(2);
/// let y = pool.forward(&x);
/// assert_eq!(y.row(0), &[3.0, 5.0]);
/// assert_eq!(y.row(1), &[0.0, 4.0]);
/// ```
#[derive(Clone, Debug)]
pub struct GroupMaxPool {
    group_size: usize,
    argmax: Vec<usize>, // flat [group, channel] -> input row
    in_shape: (usize, usize),
}

impl GroupMaxPool {
    /// Creates a pool over groups of `group_size` consecutive rows.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    pub fn new(group_size: usize) -> Self {
        assert!(group_size > 0, "group size must be positive");
        GroupMaxPool { group_size, argmax: Vec::new(), in_shape: (0, 0) }
    }

    /// The configured group size.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the row count is not a multiple of the group size.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let (n, c) = x.shape();
        assert_eq!(n % self.group_size, 0, "rows not divisible by group size");
        let groups = n / self.group_size;
        self.in_shape = (n, c);
        self.argmax = vec![0; groups * c];
        let mut out = Tensor::full(groups, c, f32::NEG_INFINITY);
        for g in 0..groups {
            for r in g * self.group_size..(g + 1) * self.group_size {
                let row = x.row(r);
                for ch in 0..c {
                    if row[ch] > out[(g, ch)] {
                        out[(g, ch)] = row[ch];
                        self.argmax[g * c + ch] = r;
                    }
                }
            }
        }
        out
    }

    /// Backward pass: routes each output gradient to its argmax input row.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched shape.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (n, c) = self.in_shape;
        assert!(n > 0, "backward before forward");
        let groups = n / self.group_size;
        assert_eq!(grad.shape(), (groups, c), "backward shape mismatch");
        let mut dx = Tensor::zeros(n, c);
        for g in 0..groups {
            for ch in 0..c {
                let r = self.argmax[g * c + ch];
                dx[(r, ch)] += grad[(g, ch)];
            }
        }
        dx
    }
}

/// Max-pools **all** rows into a single row (global feature), returning the
/// pooled row and the argmax per channel.
pub fn global_max_pool(x: &Tensor) -> (Tensor, Vec<usize>) {
    let (n, c) = x.shape();
    let mut out = Tensor::full(1, c, f32::NEG_INFINITY);
    let mut arg = vec![0usize; c];
    for r in 0..n {
        let row = x.row(r);
        for ch in 0..c {
            if row[ch] > out[(0, ch)] {
                out[(0, ch)] = row[ch];
                arg[ch] = r;
            }
        }
    }
    if n == 0 {
        out.zero_();
    }
    (out, arg)
}

/// Scatters a global-pool gradient back to the input rows.
pub fn global_max_pool_backward(grad: &Tensor, argmax: &[usize], in_rows: usize) -> Tensor {
    let c = grad.cols();
    let mut dx = Tensor::zeros(in_rows, c);
    for ch in 0..c {
        dx[(argmax[ch], ch)] += grad[(0, ch)];
    }
    dx
}

/// Mean-pool over fixed-size groups of rows (used by interpolation-style
/// feature propagation).
pub fn group_mean_pool(x: &Tensor, group_size: usize) -> Tensor {
    assert!(group_size > 0, "group size must be positive");
    let (n, c) = x.shape();
    assert_eq!(n % group_size, 0, "rows not divisible by group size");
    let groups = n / group_size;
    let mut out = Tensor::zeros(groups, c);
    for g in 0..groups {
        for r in g * group_size..(g + 1) * group_size {
            for (o, v) in out.row_mut(g).iter_mut().zip(x.row(r)) {
                *o += v;
            }
        }
        for o in out.row_mut(g) {
            *o /= group_size as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_max_forward_backward() {
        let x = Tensor::from_rows(&[&[1.0, 5.0], &[3.0, 2.0], &[0.0, 0.0], &[-1.0, 4.0]]);
        let mut pool = GroupMaxPool::new(2);
        let y = pool.forward(&x);
        assert_eq!(y.shape(), (2, 2));
        let dx = pool.backward(&Tensor::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]));
        // grads land on argmax rows only
        assert_eq!(dx.row(0), &[0.0, 20.0]); // max of ch1 group0 at row0
        assert_eq!(dx.row(1), &[10.0, 0.0]); // max of ch0 group0 at row1
        assert_eq!(dx.row(2), &[30.0, 0.0]);
        assert_eq!(dx.row(3), &[0.0, 40.0]);
    }

    #[test]
    fn replicated_rows_do_not_change_max() {
        // the elision-tolerance property: duplicating a neighbor leaves the
        // pooled feature unchanged
        let x = Tensor::from_rows(&[&[1.0], &[3.0], &[2.0], &[2.0]]);
        let x_dup = Tensor::from_rows(&[&[3.0], &[3.0], &[2.0], &[2.0]]);
        let mut p1 = GroupMaxPool::new(4);
        let mut p2 = GroupMaxPool::new(4);
        assert_eq!(p1.forward(&x), p2.forward(&x_dup));
    }

    #[test]
    fn gradient_is_subgradient_of_max() {
        // finite-difference check on one element
        let mut pool = GroupMaxPool::new(3);
        let mut x = Tensor::from_rows(&[&[1.0], &[5.0], &[2.0]]);
        let y = pool.forward(&x);
        assert_eq!(y[(0, 0)], 5.0);
        let dx = pool.backward(&Tensor::full(1, 1, 1.0));
        let eps = 1e-3;
        for r in 0..3 {
            x[(r, 0)] += eps;
            let yp = pool.forward(&x)[(0, 0)];
            x[(r, 0)] -= eps;
            let numeric = (yp - 5.0) / eps;
            assert!((dx[(r, 0)] - numeric).abs() < 1e-3, "row {r}");
        }
    }

    #[test]
    fn global_pool_and_backward() {
        let x = Tensor::from_rows(&[&[1.0, -2.0], &[0.5, 7.0]]);
        let (y, arg) = global_max_pool(&x);
        assert_eq!(y.row(0), &[1.0, 7.0]);
        assert_eq!(arg, vec![0, 1]);
        let dx = global_max_pool_backward(&Tensor::from_rows(&[&[2.0, 3.0]]), &arg, 2);
        assert_eq!(dx.row(0), &[2.0, 0.0]);
        assert_eq!(dx.row(1), &[0.0, 3.0]);
    }

    #[test]
    fn mean_pool_averages() {
        let x = Tensor::from_rows(&[&[1.0], &[3.0], &[10.0], &[20.0]]);
        let y = group_mean_pool(&x, 2);
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_rows_panic() {
        let mut p = GroupMaxPool::new(3);
        let _ = p.forward(&Tensor::zeros(4, 1));
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_panics() {
        let _ = GroupMaxPool::new(0);
    }
}
