//! Minimal neural-network stack for the Crescent (ISCA 2022) reproduction.
//!
//! Provides exactly what the paper's point-cloud networks need, with
//! hand-written backward passes (no autograd dependency):
//!
//! * [`Tensor`] — dense row-major 2D `f32` tensor;
//! * [`Linear`], [`Relu`], [`BatchNorm1d`], [`Dropout`], [`Mlp`] — the
//!   shared-MLP blocks of Sec 2.1's feature computation;
//! * [`GroupMaxPool`] / [`global_max_pool`] — the symmetric aggregation
//!   whose error tolerance Crescent's approximations exploit;
//! * [`softmax_cross_entropy`], [`mse_loss`], [`huber_loss`] — task losses;
//! * [`Adam`] / [`Sgd`] — optimizers.
//!
//! Neighbor search and aggregation index construction are **not** here:
//! they are non-differentiable and live in `crescent-kdtree` /
//! `crescent-models`, matching Fig 11's gradient-flow diagram (gradients
//! flow only through the MLPs).
//!
//! # Example
//!
//! ```
//! use crescent_nn::{softmax_cross_entropy, Adam, Layer, Mlp, Tensor};
//!
//! let mut net = Mlp::new(&[2, 16, 2], false, 42);
//! let mut opt = Adam::new(0.01);
//! let x = Tensor::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
//! let labels = [0usize, 1];
//! for _ in 0..50 {
//!     let logits = net.forward(&x, true);
//!     let (_, grad) = softmax_cross_entropy(&logits, &labels);
//!     net.zero_grad();
//!     net.backward(&grad);
//!     opt.begin_step();
//!     net.visit_params(&mut |p| opt.update(p));
//! }
//! let logits = net.forward(&x, false);
//! assert_eq!(logits.argmax_rows(), vec![0, 1]);
//! ```

#![warn(missing_docs)]

pub mod layers;
pub mod loss;
pub mod optim;
pub mod pool;
pub mod tensor;

pub use layers::{BatchNorm1d, Dropout, Layer, Linear, Mlp, Relu, Sequential};
pub use loss::{huber_loss, mse_loss, softmax, softmax_cross_entropy};
pub use optim::{Adam, Param, Sgd};
pub use pool::{global_max_pool, global_max_pool_backward, group_mean_pool, GroupMaxPool};
pub use tensor::Tensor;
