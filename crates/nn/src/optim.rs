//! Parameters and the Adam optimizer.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// A trainable parameter: value, gradient accumulator, and Adam moments.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the backward pass.
    pub grad: Tensor,
    m: Tensor,
    v: Tensor,
}

impl Param {
    /// Wraps a tensor as a parameter with zeroed gradient and moments.
    pub fn new(value: Tensor) -> Self {
        let (r, c) = value.shape();
        Param { value, grad: Tensor::zeros(r, c), m: Tensor::zeros(r, c), v: Tensor::zeros(r, c) }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.zero_();
    }
}

/// Adam hyper-parameters and step counter.
///
/// # Examples
///
/// ```
/// use crescent_nn::{Adam, Param, Tensor};
///
/// let mut p = Param::new(Tensor::full(1, 1, 1.0));
/// let mut opt = Adam::new(0.1);
/// for _ in 0..100 {
///     // gradient of f(x) = x^2 is 2x: drive x toward 0
///     p.grad = p.value.scale(2.0);
///     opt.begin_step();
///     opt.update(&mut p);
///     p.zero_grad();
/// }
/// assert!(p.value[(0, 0)].abs() < 0.05);
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style); 0 disables.
    pub weight_decay: f32,
    t: u64,
}

impl Adam {
    /// Creates an optimizer with standard betas.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, t: 0 }
    }

    /// Advances the step counter; call once per optimization step, before
    /// updating parameters.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// The number of completed [`Adam::begin_step`] calls.
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to `p` using its accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before any [`Adam::begin_step`].
    pub fn update(&self, p: &mut Param) {
        assert!(self.t > 0, "call begin_step before update");
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for i in 0..p.value.len() {
            let g = p.grad.data()[i] + self.weight_decay * p.value.data()[i];
            let m = b1 * p.m.data()[i] + (1.0 - b1) * g;
            let v = b2 * p.v.data()[i] + (1.0 - b2) * g * g;
            p.m.data_mut()[i] = m;
            p.v.data_mut()[i] = v;
            let m_hat = m / bc1;
            let v_hat = v / bc2;
            p.value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// Plain SGD with optional momentum, for the ablation comparisons.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum factor (0 = vanilla SGD).
    pub momentum: f32,
}

impl Sgd {
    /// Creates a vanilla SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0 }
    }

    /// Applies one update (momentum is stored in the parameter's `m`
    /// buffer).
    pub fn update(&self, p: &mut Param) {
        for i in 0..p.value.len() {
            let g = p.grad.data()[i];
            let m = self.momentum * p.m.data()[i] + g;
            p.m.data_mut()[i] = m;
            p.value.data_mut()[i] -= self.lr * m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descent<F: Fn(&mut Param)>(step: F, iters: usize) -> f32 {
        let mut p = Param::new(Tensor::full(1, 1, 3.0));
        for _ in 0..iters {
            p.grad = p.value.scale(2.0);
            step(&mut p);
            p.zero_grad();
        }
        p.value[(0, 0)].abs()
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut opt = Adam::new(0.2);
        let mut p = Param::new(Tensor::full(1, 1, 3.0));
        for _ in 0..200 {
            p.grad = p.value.scale(2.0);
            opt.begin_step();
            opt.update(&mut p);
            p.zero_grad();
        }
        assert!(p.value[(0, 0)].abs() < 0.05);
        assert_eq!(opt.step_count(), 200);
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let opt = Sgd::new(0.1);
        let end = quadratic_descent(|p| opt.update(p), 100);
        assert!(end < 0.01);
    }

    #[test]
    fn sgd_momentum_converges() {
        let opt = Sgd { lr: 0.05, momentum: 0.9 };
        let end = quadratic_descent(|p| opt.update(p), 200);
        assert!(end < 0.05);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut opt = Adam::new(0.01);
        opt.weight_decay = 1.0;
        let mut p = Param::new(Tensor::full(1, 1, 1.0));
        for _ in 0..50 {
            // zero task gradient: only decay acts
            opt.begin_step();
            opt.update(&mut p);
        }
        assert!(p.value[(0, 0)] < 1.0);
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn update_before_step_panics() {
        let opt = Adam::new(0.1);
        let mut p = Param::new(Tensor::zeros(1, 1));
        opt.update(&mut p);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::zeros(2, 2));
        p.grad = Tensor::full(2, 2, 5.0);
        p.zero_grad();
        assert_eq!(p.grad.sq_norm(), 0.0);
    }
}
