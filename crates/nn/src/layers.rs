//! Neural-network layers with explicit forward/backward passes.
//!
//! The layers cache whatever the backward pass needs; call order must be
//! forward-then-backward, batch by batch. The [`Layer`] trait makes the
//! composition ([`Sequential`], [`Mlp`]) uniform, including parameter
//! traversal for the optimizer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::optim::Param;
use crate::tensor::Tensor;

/// A differentiable layer.
pub trait Layer {
    /// Forward pass. `train` toggles training-time behaviour (batch-norm
    /// statistics, dropout).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backward pass: consumes dL/d(output), returns dL/d(input), and
    /// accumulates parameter gradients.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Visits every trainable parameter (for the optimizer).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// Fully-connected layer: `y = x W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight `[in, out]`.
    pub w: Param,
    /// Bias `[1, out]`.
    pub b: Param,
    cache_x: Option<Tensor>,
}

impl Linear {
    /// He-initialized linear layer (deterministic per seed).
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Linear {
            w: Param::new(Tensor::he_init(in_dim, out_dim, seed)),
            b: Param::new(Tensor::zeros(1, out_dim)),
            cache_x: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let y = x.matmul(&self.w.value).add_row(self.b.value.row(0));
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("backward before forward");
        self.w.grad.add_assign(&x.t_matmul(grad));
        // bias grad: column sums of grad
        let mut bg = Tensor::zeros(1, grad.cols());
        for r in 0..grad.rows() {
            for (acc, g) in bg.row_mut(0).iter_mut().zip(grad.row(r)) {
                *acc += g;
            }
        }
        self.b.grad.add_assign(&bg);
        grad.matmul_t(&self.w.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

/// Rectified linear unit.
#[derive(Clone, Debug, Default)]
pub struct Relu {
    mask: Vec<bool>,
    shape: (usize, usize),
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.mask = x.data().iter().map(|&v| v > 0.0).collect();
        self.shape = x.shape();
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(grad.shape(), self.shape, "backward shape mismatch");
        let data =
            grad.data().iter().zip(&self.mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        Tensor::from_vec(grad.rows(), grad.cols(), data)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Batch normalization over rows (per-column statistics), with running
/// statistics for inference — the BN of the paper's MLP blocks.
#[derive(Clone, Debug)]
pub struct BatchNorm1d {
    /// Scale `[1, dim]`.
    pub gamma: Param,
    /// Shift `[1, dim]`.
    pub beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    // caches
    x_hat: Option<Tensor>,
    batch_std: Vec<f32>,
}

impl BatchNorm1d {
    /// Creates a BN layer over `dim` channels.
    pub fn new(dim: usize) -> Self {
        BatchNorm1d {
            gamma: Param::new(Tensor::full(1, dim, 1.0)),
            beta: Param::new(Tensor::zeros(1, dim)),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.1,
            eps: 1e-5,
            x_hat: None,
            batch_std: vec![0.0; dim],
        }
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, d) = x.shape();
        assert_eq!(d, self.running_mean.len(), "BN width mismatch");
        // Batch statistics are used whenever the batch has more than one
        // row — also at inference. Every forward pass here normalizes over
        // the points of one cloud (hundreds of rows), so batch statistics
        // are well-defined and transfer better than running stats across
        // the heterogeneous clouds of the small synthetic datasets
        // (instance-normalization style). Running stats remain as the
        // single-row fallback.
        let (mean, var) = if n > 1 {
            let mut mean = vec![0.0f32; d];
            let mut var = vec![0.0f32; d];
            for r in 0..n {
                for (m, v) in mean.iter_mut().zip(x.row(r)) {
                    *m += v;
                }
            }
            for m in &mut mean {
                *m /= n as f32;
            }
            for r in 0..n {
                for c in 0..d {
                    let dlt = x[(r, c)] - mean[c];
                    var[c] += dlt * dlt;
                }
            }
            for v in &mut var {
                *v /= n as f32;
            }
            if train {
                for c in 0..d {
                    self.running_mean[c] =
                        (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                    self.running_var[c] =
                        (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
                }
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };
        let mut x_hat = Tensor::zeros(n, d);
        for (std, v) in self.batch_std.iter_mut().zip(&var).take(d) {
            *std = (v + self.eps).sqrt();
        }
        let mut out = Tensor::zeros(n, d);
        for r in 0..n {
            for c in 0..d {
                let h = (x[(r, c)] - mean[c]) / self.batch_std[c];
                x_hat[(r, c)] = h;
                out[(r, c)] = self.gamma.value[(0, c)] * h + self.beta.value[(0, c)];
            }
        }
        self.x_hat = Some(x_hat);
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x_hat = self.x_hat.as_ref().expect("backward before forward");
        let (n, d) = grad.shape();
        let nf = n as f32;
        let mut dgamma = Tensor::zeros(1, d);
        let mut dbeta = Tensor::zeros(1, d);
        for r in 0..n {
            for c in 0..d {
                dgamma[(0, c)] += grad[(r, c)] * x_hat[(r, c)];
                dbeta[(0, c)] += grad[(r, c)];
            }
        }
        // standard BN input gradient
        let mut dx = Tensor::zeros(n, d);
        for c in 0..d {
            let g = self.gamma.value[(0, c)];
            let sum_dy = dbeta[(0, c)];
            let sum_dy_xhat = dgamma[(0, c)];
            for r in 0..n {
                dx[(r, c)] = g / self.batch_std[c]
                    * (grad[(r, c)] - sum_dy / nf - x_hat[(r, c)] * sum_dy_xhat / nf);
            }
        }
        self.gamma.grad.add_assign(&dgamma);
        self.beta.grad.add_assign(&dbeta);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

/// Inverted dropout (identity at inference).
#[derive(Debug)]
pub struct Dropout {
    /// Drop probability.
    pub p: f32,
    rng: StdRng,
    mask: Vec<f32>,
    shape: (usize, usize),
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` (deterministic per
    /// seed).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability out of range");
        Dropout { p, rng: StdRng::seed_from_u64(seed), mask: Vec::new(), shape: (0, 0) }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.shape = x.shape();
        if !train || self.p == 0.0 {
            self.mask = vec![1.0; x.len()];
            return x.clone();
        }
        let keep = 1.0 - self.p;
        self.mask = (0..x.len())
            .map(|_| if self.rng.random::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let data = x.data().iter().zip(&self.mask).map(|(v, m)| v * m).collect();
        Tensor::from_vec(x.rows(), x.cols(), data)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(grad.shape(), self.shape, "backward shape mismatch");
        let data = grad.data().iter().zip(&self.mask).map(|(g, m)| g * m).collect();
        Tensor::from_vec(grad.rows(), grad.cols(), data)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// A stack of layers applied in order.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut cur = grad.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

/// A shared MLP block: `Linear → [BN] → ReLU` per hidden layer, with a final
/// `Linear` (no activation) — the transformation applied to every
/// aggregated neighborhood in point-cloud networks (Sec 2.1).
#[derive(Debug)]
pub struct Mlp {
    seq: Sequential,
    out_dim: usize,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[64, 128, 128]`
    /// maps 64-dim inputs to 128-dim outputs through one hidden layer.
    ///
    /// `batch_norm` inserts a BN after every hidden linear layer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(dims: &[usize], batch_norm: bool, seed: u64) -> Self {
        assert!(dims.len() >= 2, "an MLP needs input and output widths");
        let mut seq = Sequential::new();
        for (i, pair) in dims.windows(2).enumerate() {
            let last = i == dims.len() - 2;
            seq.push(Box::new(Linear::new(pair[0], pair[1], seed.wrapping_add(i as u64 * 7919))));
            if !last {
                if batch_norm {
                    seq.push(Box::new(BatchNorm1d::new(pair[1])));
                }
                seq.push(Box::new(Relu::new()));
            }
        }
        Mlp { seq, out_dim: *dims.last().expect("non-empty dims") }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Mlp {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.seq.forward(x, train)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        self.seq.backward(grad)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.seq.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut l = Linear::new(3, 2, 1);
        l.b.value = Tensor::from_rows(&[&[1.0, -1.0]]);
        let x = Tensor::zeros(4, 3);
        let y = l.forward(&x, true);
        assert_eq!(y.shape(), (4, 2));
        assert_eq!(y.row(0), &[1.0, -1.0]); // zero input -> bias
        assert_eq!(l.in_dim(), 3);
        assert_eq!(l.out_dim(), 2);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_rows(&[&[-1.0, 2.0]]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 2.0]);
        let gx = r.backward(&Tensor::from_rows(&[&[5.0, 5.0]]));
        assert_eq!(gx.data(), &[0.0, 5.0]);
    }

    #[test]
    fn batchnorm_normalizes_in_train() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_rows(&[&[1.0, 10.0], &[3.0, 30.0], &[5.0, 50.0], &[7.0, 70.0]]);
        let y = bn.forward(&x, true);
        // per-column mean ~0, var ~1
        for c in 0..2 {
            let mean: f32 = (0..4).map(|r| y[(r, c)]).sum::<f32>() / 4.0;
            let var: f32 = (0..4).map(|r| (y[(r, c)] - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        // feed several batches to accumulate running stats
        for _ in 0..50 {
            let x = Tensor::from_rows(&[&[4.0], &[6.0]]);
            bn.forward(&x, true);
        }
        // eval on the mean input should give ~0 output
        let y = bn.forward(&Tensor::from_rows(&[&[5.0]]), false);
        assert!(y[(0, 0)].abs() < 0.2, "got {}", y[(0, 0)]);
    }

    #[test]
    fn dropout_train_vs_eval() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full(10, 10, 1.0);
        let y_eval = d.forward(&x, false);
        assert_eq!(y_eval, x);
        let y_train = d.forward(&x, true);
        let zeros = y_train.data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 20 && zeros < 80, "{zeros} zeroed");
        // kept values are scaled by 1/keep
        assert!(y_train.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn mlp_shapes() {
        let mut mlp = Mlp::new(&[8, 16, 4], true, 5);
        let x = Tensor::he_init(10, 8, 6);
        let y = mlp.forward(&x, true);
        assert_eq!(y.shape(), (10, 4));
        let gx = mlp.backward(&Tensor::full(10, 4, 1.0));
        assert_eq!(gx.shape(), (10, 8));
        let mut count = 0;
        mlp.visit_params(&mut |_| count += 1);
        // 2 linears (w+b each) + 1 BN (gamma+beta)
        assert_eq!(count, 6);
    }

    /// Finite-difference gradient check of a small MLP + cross-entropy.
    #[test]
    fn gradient_check_mlp() {
        let mut mlp = Mlp::new(&[4, 6, 3], false, 11);
        let x = Tensor::he_init(5, 4, 12);
        let labels = vec![0usize, 1, 2, 1, 0];

        // analytic gradients
        let logits = mlp.forward(&x, true);
        let (_, dlogits) = softmax_cross_entropy(&logits, &labels);
        mlp.zero_grad();
        mlp.backward(&dlogits);
        let mut analytic: Vec<f32> = Vec::new();
        mlp.visit_params(&mut |p| analytic.extend_from_slice(p.grad.data()));

        // numeric gradients
        let eps = 1e-2f32;
        let mut numeric: Vec<f32> = Vec::new();
        // parameter count
        let mut nparams = 0;
        mlp.visit_params(&mut |p| nparams += p.value.len());
        for flat in 0..nparams {
            let loss_at = |delta: f32, mlp: &mut Mlp| {
                // perturb the flat-th parameter
                let mut seen = 0;
                mlp.visit_params(&mut |p| {
                    let l = p.value.len();
                    if flat >= seen && flat < seen + l {
                        p.value.data_mut()[flat - seen] += delta;
                    }
                    seen += l;
                });
                let logits = mlp.forward(&x, true);
                let (loss, _) = softmax_cross_entropy(&logits, &labels);
                // undo
                let mut seen = 0;
                mlp.visit_params(&mut |p| {
                    let l = p.value.len();
                    if flat >= seen && flat < seen + l {
                        p.value.data_mut()[flat - seen] -= delta;
                    }
                    seen += l;
                });
                loss
            };
            let lp = loss_at(eps, &mut mlp);
            let lm = loss_at(-eps, &mut mlp);
            numeric.push((lp - lm) / (2.0 * eps));
        }

        assert_eq!(analytic.len(), numeric.len());
        for (i, (a, n)) in analytic.iter().zip(&numeric).enumerate() {
            let denom = a.abs().max(n.abs()).max(1e-2);
            assert!(((a - n) / denom).abs() < 0.1, "param {i}: analytic {a} vs numeric {n}");
        }
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn linear_backward_requires_forward() {
        let mut l = Linear::new(2, 2, 1);
        let _ = l.backward(&Tensor::zeros(1, 2));
    }

    #[test]
    fn sequential_empty_is_identity() {
        let mut s = Sequential::new();
        assert!(s.is_empty());
        let x = Tensor::he_init(2, 3, 9);
        assert_eq!(s.forward(&x, true), x);
        assert_eq!(s.backward(&x), x);
    }
}
