//! CLI acceptance for `repro sweep-merge`: the command layer — not just
//! the library merger — must be order-insensitive, and it must *print*
//! the resolved input order so a CI log (or this test) can verify which
//! files actually fed a gate.
//!
//! The library-level contract (any partition reassembles byte-exactly)
//! lives in `tests/sweep_shard.rs`; this test drives the installed
//! binary end to end: shard files on disk, argv in both orders, merged
//! reports compared byte for byte, stdout checked for the announced
//! file list.

use std::path::PathBuf;
use std::process::Command;

use crescent_explorer::{run_sweep, run_sweep_shard, SweepSpec};

/// The same pruned quick spec `tests/sweep_shard.rs` uses: one
/// architecture point per scenario × policy cell, debug-affordable.
fn shard_spec() -> SweepSpec {
    let mut spec = SweepSpec::quick();
    spec.label = "quick-shard".to_string();
    spec.num_pes = vec![4];
    spec.tree_banks = vec![4];
    spec.elision_depths = vec![4];
    spec
}

/// A scratch directory under the target dir, unique per test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("merge-cli-{tag}"));
    std::fs::create_dir_all(&dir).expect("can create scratch dir");
    dir
}

#[test]
fn merge_cli_is_order_insensitive_and_prints_the_resolved_order() {
    let spec = shard_spec();
    let dir = scratch("order");

    // three real shard runs, written to disk like CI artifacts
    let mut shard_paths = Vec::new();
    for index in 1..=3usize {
        let (report, _) = run_sweep_shard(&spec, index, 3, 2).expect("shard spec is valid");
        let path = dir.join(format!("sweep-shard-{index}.json"));
        std::fs::write(&path, report.to_json()).expect("can write shard report");
        shard_paths.push(path);
    }
    let reference = run_sweep(&spec, 2).expect("shard spec is valid").to_json();

    let forward: Vec<String> = shard_paths.iter().map(|p| p.display().to_string()).collect();
    let reversed: Vec<String> = forward.iter().rev().cloned().collect();
    let out_fwd = dir.join("merged-forward.json");
    let out_rev = dir.join("merged-reversed.json");

    for (inputs, out) in [(&forward, &out_fwd), (&reversed, &out_rev)] {
        let result = Command::new(env!("CARGO_BIN_EXE_repro"))
            .arg("sweep-merge")
            .arg("--json")
            .arg(out)
            .args(inputs.iter())
            .output()
            .expect("can spawn repro");
        let stdout = String::from_utf8(result.stdout).expect("stdout is utf-8");
        assert!(
            result.status.success(),
            "sweep-merge failed for {inputs:?}:\n{stdout}\n{}",
            String::from_utf8_lossy(&result.stderr)
        );
        // the command names the files it merged, in the order it
        // resolved them — greppable evidence in any CI log
        assert!(stdout.contains("# merged 3 shard report(s):"), "missing merge header:\n{stdout}");
        let mut cursor = 0;
        for input in inputs {
            let line = format!("#   {input}");
            let at = stdout[cursor..].find(&line).unwrap_or_else(|| {
                panic!("stdout must list {input} after byte {cursor}:\n{stdout}")
            });
            cursor += at + line.len();
        }
    }

    // order-insensitive at the CLI layer: both merges byte-identical,
    // and identical to the single-process reference run
    let fwd = std::fs::read_to_string(&out_fwd).expect("forward merge written");
    let rev = std::fs::read_to_string(&out_rev).expect("reversed merge written");
    assert_eq!(fwd, rev, "argv order leaked into the merged report bytes");
    assert_eq!(fwd, reference, "CLI merge drifted from the single-process sweep");
}

#[test]
fn merge_cli_rejects_an_incomplete_partition() {
    let spec = shard_spec();
    let dir = scratch("partial");
    // only shard 1 of 3: merge must fail loudly, not gate on a subset
    let (report, _) = run_sweep_shard(&spec, 1, 3, 2).expect("shard spec is valid");
    let path = dir.join("sweep-shard-1.json");
    std::fs::write(&path, report.to_json()).expect("can write shard report");

    let result = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("sweep-merge")
        .arg(&path)
        .output()
        .expect("can spawn repro");
    assert!(!result.status.success(), "an incomplete partition must not merge");
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(stderr.contains("sweep-merge failed"), "names the failing stage:\n{stderr}");
}
