//! Criterion benches of the neighbor-search kernels: tree construction,
//! exact search, Crescent's two-stage approximate search (Fig 8/14
//! kernels), and the Tigris-style exhaustive baseline (Fig 24).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crescent::kdtree::{
    radius_search, split_exhaustive_search, ElisionConfig, KdTree, SplitSearchConfig, SplitTree,
};
use crescent::pointcloud::datasets::{generate_scene, LidarSceneConfig};
use crescent::pointcloud::{Point3, PointCloud};

fn workload(n: usize) -> (PointCloud, Vec<Point3>) {
    let mut scene = generate_scene(&LidarSceneConfig {
        total_points: n,
        num_cars: 8,
        num_poles: 16,
        num_walls: 4,
        half_extent: 30.0,
        seed: 0xB1,
    });
    scene.cloud.normalize_unit_sphere();
    let queries: Vec<Point3> =
        (0..256).map(|i| scene.cloud.point(i * scene.cloud.len() / 256)).collect();
    (scene.cloud, queries)
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("kdtree_build");
    for n in [4096usize, 16384] {
        let (cloud, _) = workload(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &cloud, |b, cloud| {
            b.iter(|| KdTree::build(black_box(cloud)))
        });
    }
    g.finish();
}

fn bench_exact_search(c: &mut Criterion) {
    let (cloud, queries) = workload(16384);
    let tree = KdTree::build(&cloud);
    c.bench_function("exact_radius_search_256q", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(radius_search(&tree, q, 0.05, Some(32)));
            }
        })
    });
}

fn bench_crescent_search(c: &mut Criterion) {
    let (cloud, queries) = workload(16384);
    let tree = KdTree::build(&cloud);
    let split = SplitTree::new(&tree, 4).unwrap();
    let mut g = c.benchmark_group("crescent_batch_search_256q");
    g.bench_function("ans", |b| {
        let cfg = SplitSearchConfig {
            radius: 0.05,
            max_neighbors: Some(32),
            num_pes: 4,
            elision: Some(ElisionConfig {
                elision_height: usize::MAX,
                num_banks: 4,
                descendant_reuse: false,
            }),
        };
        b.iter(|| black_box(split.batch_search(&queries, &cfg)))
    });
    g.bench_function("ans_bce", |b| {
        let cfg = SplitSearchConfig {
            radius: 0.05,
            max_neighbors: Some(32),
            num_pes: 4,
            elision: Some(ElisionConfig {
                elision_height: 9,
                num_banks: 4,
                descendant_reuse: false,
            }),
        };
        b.iter(|| black_box(split.batch_search(&queries, &cfg)))
    });
    g.finish();
}

fn bench_tigris_baseline(c: &mut Criterion) {
    let (cloud, queries) = workload(16384);
    let tree = KdTree::build(&cloud);
    let split = SplitTree::new(&tree, 4).unwrap();
    c.bench_function("tigris_exhaustive_256q", |b| {
        b.iter(|| black_box(split_exhaustive_search(&split, &queries, 0.05, Some(32), 64)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build, bench_exact_search, bench_crescent_search, bench_tigris_baseline
);
criterion_main!(benches);
