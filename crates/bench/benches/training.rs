//! Criterion benches of approximation-aware training: the Sec 6 "training
//! overhead" claim (the paper reports +38 % training time for simulating
//! bank conflicts in the loop) measured as exact vs. approximate epochs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use crescent::models::{train_classifier, ApproxSetting, PointNet2Cls, TrainConfig};
use crescent::pointcloud::datasets::{ClassificationConfig, ClassificationDataset};

fn dataset() -> ClassificationDataset {
    ClassificationDataset::generate(&ClassificationConfig {
        points_per_cloud: 128,
        train_per_class: 2,
        test_per_class: 1,
        jitter_sigma: 0.01,
        seed: 0xB3,
    })
}

fn bench_training_epoch(c: &mut Criterion) {
    let ds = dataset();
    let mut g = c.benchmark_group("train_epoch_20_samples");
    g.bench_function("exact", |b| {
        b.iter(|| {
            let mut m = PointNet2Cls::new(ds.num_classes, 1);
            black_box(train_classifier(&mut m, &ds.train, &TrainConfig::exact(1)))
        })
    });
    g.bench_function("approximation_aware", |b| {
        b.iter(|| {
            let mut m = PointNet2Cls::new(ds.num_classes, 1);
            let cfg = TrainConfig::dedicated(ApproxSetting::ans_bce(4, 5), 1);
            black_box(train_classifier(&mut m, &ds.train, &cfg))
        })
    });
    g.bench_function("mixed_sampling", |b| {
        b.iter(|| {
            let mut m = PointNet2Cls::new(ds.num_classes, 1);
            let cfg = TrainConfig::mixed((1, 6), Some((4, 7)), 1);
            black_box(train_classifier(&mut m, &ds.train, &cfg))
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training_epoch
);
criterion_main!(benches);
