//! Criterion benches of the sweep's wall-clock fast paths: one grid
//! point end-to-end (the unit the worker pool schedules), the SoA node
//! columns against a materialized AoS walk (the host-layout refactor's
//! win), and the incremental recall oracle against the per-frame naive
//! brute force it replaced.
//!
//! These measure the *simulator's* speed, not the modeled machine's —
//! the modeled metrics are byte-identical whichever side of each pair
//! runs (asserted below before timing starts).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use crescent::kdtree::{radius_search, KdNode, KdTree};
use crescent::pointcloud::datasets::{generate_scene, LidarSceneConfig};
use crescent::pointcloud::{
    radius_search_bruteforce_into, Neighbor, OracleIndex, Point3, PointCloud,
};
use crescent_explorer::{run_sweep, SweepSpec};

fn workload(n: usize) -> (PointCloud, Vec<Point3>) {
    let mut scene = generate_scene(&LidarSceneConfig {
        total_points: n,
        num_cars: 8,
        num_poles: 16,
        num_walls: 4,
        half_extent: 30.0,
        seed: 0xB1,
    });
    scene.cloud.normalize_unit_sphere();
    let queries: Vec<Point3> =
        (0..256).map(|i| scene.cloud.point(i * scene.cloud.len() / 256)).collect();
    (scene.cloud, queries)
}

/// The exact SoA `radius_search` re-implemented over a materialized
/// `Vec<KdNode>` — the pre-refactor array-of-structs layout, kept here
/// as the measurement baseline the SoA columns are compared against.
fn radius_search_aos(
    nodes: &[KdNode],
    query: Point3,
    radius: f32,
    max_neighbors: Option<usize>,
) -> Vec<Neighbor> {
    let mut hits = Vec::new();
    if nodes.is_empty() {
        return hits;
    }
    // mirrors the production loop's bookkeeping (visit counter, stack
    // high-water mark) so the only variable left is the memory layout
    let mut visited = 0usize;
    let mut max_depth = 0usize;
    let r2 = radius * radius;
    let mut stack: Vec<usize> = vec![0];
    while let Some(idx) = stack.pop() {
        visited += 1;
        let node = &nodes[idx];
        let d2 = node.point.dist2(query);
        if d2 <= r2 {
            hits.push(Neighbor { index: node.point_index as usize, dist2: d2 });
        }
        let delta = query.coord(node.axis as usize) - node.point.coord(node.axis as usize);
        let (near, far) =
            if delta <= 0.0 { (2 * idx + 1, 2 * idx + 2) } else { (2 * idx + 2, 2 * idx + 1) };
        if delta * delta <= r2 && far < nodes.len() {
            stack.push(far);
        }
        if near < nodes.len() {
            stack.push(near);
        }
        max_depth = max_depth.max(stack.len());
    }
    black_box((visited, max_depth));
    hits.sort_by(|a, b| a.dist2.partial_cmp(&b.dist2).unwrap_or(std::cmp::Ordering::Equal));
    if let Some(k) = max_neighbors {
        hits.truncate(k);
    }
    hits
}

/// One sweep grid point end-to-end — scenario rendering, the recall
/// oracle, and the streaming + engine passes — the whole unit of work
/// behind each `{row, nanos}` entry in the `--timings` sidecar.
fn bench_sweep_point(c: &mut Criterion) {
    let mut spec = SweepSpec::quick();
    spec.label = "bench-one-point".to_string();
    spec.scenarios.truncate(1);
    spec.maintenance.truncate(1);
    spec.num_pes.truncate(1);
    spec.tree_kb.truncate(1);
    spec.tree_banks.truncate(1);
    spec.dram_bytes_per_cycle.truncate(1);
    spec.aggregation_elision.truncate(1);
    spec.top_heights.truncate(1);
    spec.elision_depths.truncate(1);
    assert_eq!(spec.num_points(), 1, "exactly one grid point end-to-end");
    c.bench_function("sweep_point_end_to_end", |b| {
        b.iter(|| black_box(run_sweep(black_box(&spec), 1).expect("valid spec")))
    });
}

/// One scenario against the full quick-grid knob cross (16 points) —
/// the slice of the quick grid the maintained-tree-sequence and
/// `h_e = 0` result memos amortize over. A single point (above) pays
/// every setup cost itself; this is where the sweep's cross-point
/// sharing shows up in wall-clock.
fn bench_sweep_scenario(c: &mut Criterion) {
    let mut spec = SweepSpec::quick();
    spec.label = "bench-one-scenario".to_string();
    spec.scenarios.truncate(1);
    assert_eq!(spec.num_points(), 16, "one scenario, full knob cross");
    c.bench_function("sweep_scenario_16_points", |b| {
        b.iter(|| black_box(run_sweep(black_box(&spec), 1).expect("valid spec")))
    });
}

/// The entire quick grid (160 points), exactly what
/// `repro sweep --quick` times in the `--timings` sidecar's
/// `total_nanos` — the headline wall-clock number of the fast-path
/// work, with every scenario and all cross-point memo sharing in play.
fn bench_sweep_quick_grid(c: &mut Criterion) {
    let spec = SweepSpec::quick();
    c.bench_function("sweep_quick_grid_160_points", |b| {
        b.iter(|| black_box(run_sweep(black_box(&spec), 1).expect("valid spec")))
    });
}

/// The SoA hot columns against the same traversal over materialized
/// `KdNode` structs: same algorithm, same float-op order, same results
/// — only the host memory layout differs.
fn bench_soa_vs_aos(c: &mut Criterion) {
    let (cloud, queries) = workload(16384);
    let tree = KdTree::build(&cloud);
    let nodes = tree.nodes();
    for &q in &queries {
        assert_eq!(
            radius_search(&tree, q, 0.05, Some(32)),
            radius_search_aos(&nodes, q, 0.05, Some(32)),
            "the two layouts must answer identically before timing means anything"
        );
    }
    let mut g = c.benchmark_group("radius_search_layout_256q");
    g.bench_function("soa", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(radius_search(&tree, q, 0.05, Some(32)));
            }
        })
    });
    g.bench_function("aos", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(radius_search_aos(&nodes, q, 0.05, Some(32)));
            }
        })
    });
    g.finish();
}

/// The incremental grid oracle against the naive full scan it replaced
/// in the sweep's scenario setup (one amortized build, cell-local
/// queries, bit-identical answers).
fn bench_oracle_vs_bruteforce(c: &mut Criterion) {
    let (cloud, queries) = workload(16384);
    let oracle = OracleIndex::build(&cloud, 0.05);
    let mut hits = Vec::new();
    let mut naive = Vec::new();
    for &q in &queries {
        oracle.radius_search_into(q, Some(32), &mut hits);
        radius_search_bruteforce_into(&cloud, q, 0.05, Some(32), &mut naive);
        assert_eq!(hits, naive, "the oracle must be bit-identical to the brute force");
    }
    let mut g = c.benchmark_group("recall_oracle_256q");
    g.bench_function("bruteforce", |b| {
        b.iter(|| {
            for &q in &queries {
                radius_search_bruteforce_into(&cloud, q, 0.05, Some(32), &mut naive);
                black_box(&naive);
            }
        })
    });
    g.bench_function("grid_oracle", |b| {
        b.iter(|| {
            for &q in &queries {
                oracle.radius_search_into(q, Some(32), &mut hits);
                black_box(&hits);
            }
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep_point, bench_sweep_scenario, bench_sweep_quick_grid, bench_soa_vs_aos,
        bench_oracle_vs_bruteforce
);
criterion_main!(benches);
