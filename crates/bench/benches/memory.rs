//! Criterion benches of the memory-system models: the Fig 3 cache, the
//! Fig 4/5 banked-SRAM arbitration, and DRAM trace classification (Fig 2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use crescent::memsim::{BankedSram, DramTraceAnalyzer, FullyAssociativeCache, SramConfig};

fn xorshift_stream(n: usize, modulo: u64) -> Vec<u64> {
    let mut x = 88172645463325252u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 9) % modulo
        })
        .collect()
}

fn bench_cache(c: &mut Criterion) {
    let addrs = xorshift_stream(100_000, 32 << 20);
    c.bench_function("fa_cache_100k_random_accesses", |b| {
        b.iter(|| {
            let mut cache = FullyAssociativeCache::new(10 << 20, 64);
            for &a in &addrs {
                black_box(cache.access(a));
            }
            cache.stats().miss_rate()
        })
    });
}

fn bench_sram_arbitration(c: &mut Criterion) {
    let addrs = xorshift_stream(16 * 10_000, 64 << 10);
    c.bench_function("banked_sram_10k_rounds_16ports", |b| {
        b.iter(|| {
            let mut sram = BankedSram::new(SramConfig::point_buffer());
            for chunk in addrs.chunks(16) {
                let reqs: Vec<Option<u64>> = chunk.iter().map(|&a| Some(a)).collect();
                black_box(sram.arbitrate(&reqs, true));
            }
            sram.counters().conflict_rate()
        })
    });
}

fn bench_dram_classification(c: &mut Criterion) {
    let addrs = xorshift_stream(100_000, 1 << 30);
    c.bench_function("dram_classify_100k_accesses", |b| {
        b.iter(|| {
            let mut dram = DramTraceAnalyzer::new();
            for &a in &addrs {
                dram.access(a, 16);
            }
            black_box(dram.counters().non_streaming_fraction())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache, bench_sram_arbitration, bench_dram_classification
);
criterion_main!(benches);
