//! Criterion benches of the streaming multi-frame workload engine: frame
//! rendering, batched vs per-query two-stage search, tree maintenance
//! (full rebuild vs incremental refit), and the end-to-end frame-sequence
//! pipeline (`Crescent::run_stream`) under both maintenance policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crescent::accel::TreeMaintenance;
use crescent::kdtree::{BatchSearchConfig, BatchState, KdTree, RefitConfig, SplitTree};
use crescent::pointcloud::Point3;
use crescent::workload::{EgoMotion, FrameStream, FrameStreamConfig, StreamScenario};
use crescent::Crescent;

fn stream_cfg(points: usize, frames: usize) -> FrameStreamConfig {
    let mut cfg = FrameStreamConfig::default();
    cfg.scene.total_points = points;
    cfg.scene.seed = 0xBEEF;
    cfg.num_frames = frames;
    cfg.queries_per_frame = 256;
    cfg.radius = 0.5;
    cfg.max_neighbors = Some(32);
    cfg
}

fn bench_frame_rendering(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_stream_render");
    for n in [8192usize, 24_000] {
        let cfg = stream_cfg(n, 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| {
                let frames: Vec<_> = FrameStream::new(black_box(cfg)).collect();
                black_box(frames.len())
            })
        });
    }
    g.finish();
}

fn bench_batched_vs_per_query(c: &mut Criterion) {
    let cfg = stream_cfg(16_384, 1);
    let frame = FrameStream::new(&cfg).next().expect("one frame");
    let tree = KdTree::build(&frame.cloud);
    let split = SplitTree::new(&tree, 4).unwrap();
    let mut g = c.benchmark_group("two_stage_search_256q");
    g.bench_function("per_query", |b| {
        b.iter(|| {
            for &q in &frame.queries {
                black_box(split.search_one(q, cfg.radius, cfg.max_neighbors));
            }
        })
    });
    g.bench_function("batched", |b| {
        let batch_cfg = BatchSearchConfig::algorithmic(cfg.radius, cfg.max_neighbors);
        let mut state = BatchState::new();
        b.iter(|| black_box(split.search_batch(&frame.queries, &batch_cfg, &mut state)))
    });
    // the unified banked-arbitration model: same results at h_e = 0,
    // plus the lock-step conflict simulation the stream timing uses
    for (name, depth) in [("banked_he0", 0usize), ("banked_he4", 4)] {
        g.bench_function(name, |b| {
            let batch_cfg = BatchSearchConfig::banked(cfg.radius, cfg.max_neighbors, 4, 4, depth);
            let mut state = BatchState::new();
            b.iter(|| black_box(split.search_batch(&frame.queries, &batch_cfg, &mut state)))
        });
    }
    g.finish();
}

fn bench_run_stream(c: &mut Criterion) {
    let cfg = stream_cfg(8192, 8);
    let system = Crescent::new();
    c.bench_function("run_stream_8x8192", |b| {
        b.iter(|| black_box(system.run_stream(black_box(&cfg))))
    });
}

fn bench_tree_maintenance(c: &mut Criterion) {
    // host-side cost of the two maintenance paths on a drifted frame
    let cfg = stream_cfg(16_384, 1);
    let frame = FrameStream::new(&cfg).next().expect("one frame");
    let drifted: crescent::pointcloud::PointCloud =
        frame.cloud.iter().map(|&p| p + Point3::new(0.05, -0.02, 0.0)).collect();
    let mut g = c.benchmark_group("tree_maintenance_16k");
    g.bench_function("rebuild", |b| b.iter(|| black_box(KdTree::build(&drifted))));
    g.bench_function("refit", |b| {
        // build once outside the loop; steady-state refit against the
        // same drifted cloud is idempotent, so each iteration measures
        // exactly one O(n) patch + validation pass
        let mut tree = KdTree::build(&frame.cloud);
        b.iter(|| black_box(tree.refit(&drifted, &RefitConfig::default())))
    });
    g.finish();
}

fn bench_run_stream_policies(c: &mut Criterion) {
    // end-to-end coherent registered stream under both policies
    let mut cfg = stream_cfg(8192, 8);
    cfg.scenario = StreamScenario::Registered;
    cfg.noise_m = 0.0;
    cfg.ego = EgoMotion { speed_mps: 8.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 };
    let system = Crescent::new();
    let mut g = c.benchmark_group("run_stream_maintenance_8x8192");
    for (name, maintenance) in
        [("rebuild", TreeMaintenance::RebuildEveryFrame), ("refit", TreeMaintenance::refit())]
    {
        let mut cfg = cfg;
        cfg.maintenance = maintenance;
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(system.run_stream(black_box(cfg))))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_frame_rendering, bench_batched_vs_per_query, bench_run_stream,
        bench_tree_maintenance, bench_run_stream_policies
);
criterion_main!(benches);
