//! Criterion benches of the end-to-end pipeline simulation (the Fig 14
//! engine): simulator throughput per network and variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crescent::accel::{run_network, AcceleratorConfig, CrescentKnobs, NetworkSpec, Variant};
use crescent::pointcloud::datasets::{generate_scene, LidarSceneConfig};
use crescent::pointcloud::PointCloud;

fn cloud() -> PointCloud {
    let mut scene = generate_scene(&LidarSceneConfig {
        total_points: 8192,
        num_cars: 8,
        num_poles: 16,
        num_walls: 4,
        half_extent: 30.0,
        seed: 0xB2,
    });
    scene.cloud.normalize_unit_sphere();
    scene.cloud
}

fn bench_variants(c: &mut Criterion) {
    let cloud = cloud();
    let cfg = AcceleratorConfig::default();
    let knobs = CrescentKnobs { top_height: 4, elision_height: 9 };
    let spec = NetworkSpec::pointnet2_classification();
    let mut g = c.benchmark_group("simulate_pointnet2c");
    for v in [Variant::Mesorasi, Variant::Ans, Variant::AnsBce] {
        g.bench_with_input(BenchmarkId::from_parameter(v.name()), &v, |b, &v| {
            b.iter(|| black_box(run_network(&spec, &cloud, v, knobs, &cfg)))
        });
    }
    g.finish();
}

fn bench_networks(c: &mut Criterion) {
    let cloud = cloud();
    let cfg = AcceleratorConfig::default();
    let knobs = CrescentKnobs { top_height: 4, elision_height: 9 };
    let mut g = c.benchmark_group("simulate_ans_bce");
    for spec in NetworkSpec::evaluation_suite() {
        g.bench_with_input(BenchmarkId::from_parameter(&spec.name), &spec, |b, spec| {
            b.iter(|| black_box(run_network(spec, &cloud, Variant::AnsBce, knobs, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_variants, bench_networks
);
criterion_main!(benches);
