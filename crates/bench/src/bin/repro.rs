//! Regenerates the tables/figures of the Crescent (ISCA 2022) evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] all            # every figure
//! repro [--quick] fig14 fig24    # specific figures
//! repro list                     # available ids
//! repro sweep --quick --json target/sweep.json   # design-space sweep
//! repro sweep --quick --check    # exact gate vs bench/baseline.json
//! repro sweep --quick --shard 2/3 --json shard-2.json   # one shard
//! repro sweep-merge --check shard-*.json         # reassemble + gate
//! repro serve --quick --check    # multi-tenant service gate vs bench/serve-baseline.json
//! ```
//!
//! `--quick` shrinks the workloads (seconds instead of minutes); the
//! trends are unchanged. Run with `--release` — the accuracy figures
//! train networks. See `crescent_bench::sweep` for the sweep flags.

use std::time::Instant;

use crescent_bench::{run_figure, MergeArgs, Scale, ServeArgs, SweepArgs, ALL_FIGURES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("sweep") {
        let parsed = match SweepArgs::parse(&args[1..]) {
            Ok(parsed) => parsed,
            Err(err) => {
                eprintln!("{err}");
                eprintln!(
                    "usage: repro sweep [--quick] [--json <path>] [--check] \
                     [--baseline <path>] [--workers <n>] [--shard <i/N>] \
                     [--timings <path>]"
                );
                std::process::exit(2);
            }
        };
        std::process::exit(crescent_bench::run_sweep_command(&parsed));
    }

    if args.first().map(String::as_str) == Some("serve") {
        let parsed = match ServeArgs::parse(&args[1..]) {
            Ok(parsed) => parsed,
            Err(err) => {
                eprintln!("{err}");
                eprintln!(
                    "usage: repro serve [--quick] [--json <path>] [--check] \
                     [--baseline <path>] [--workers <n>] [--timings <path>] [--slo-ms <ms>]"
                );
                std::process::exit(2);
            }
        };
        std::process::exit(crescent_bench::run_serve_command(&parsed));
    }

    if args.first().map(String::as_str) == Some("sweep-merge") {
        let parsed = match MergeArgs::parse(&args[1..]) {
            Ok(parsed) => parsed,
            Err(err) => {
                eprintln!("{err}");
                eprintln!(
                    "usage: repro sweep-merge [--json <path>] [--check] \
                     [--baseline <path>] <shard.json>..."
                );
                std::process::exit(2);
            }
        };
        std::process::exit(crescent_bench::run_sweep_merge_command(&parsed));
    }

    let quick = args.iter().any(|a| a == "--quick");
    let scale = Scale::from_flag(quick);
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();

    if ids.is_empty() || ids.contains(&"help") {
        eprintln!(
            "usage: repro [--quick] <all|list|fig ids...|sweep ...|sweep-merge ...|serve ...>"
        );
        eprintln!("figures: {}", ALL_FIGURES.join(" "));
        return;
    }
    if ids.contains(&"list") {
        println!("{}", ALL_FIGURES.join("\n"));
        return;
    }
    let run_ids: Vec<&str> = if ids.contains(&"all") { ALL_FIGURES.to_vec() } else { ids };

    println!("# Crescent (ISCA 2022) figure reproduction — scale: {scale:?}");
    for id in run_ids {
        let start = Instant::now();
        match run_figure(id, scale) {
            Some(figs) => {
                for fig in figs {
                    println!("\n{}", fig.render());
                }
                println!("[{id} took {:.1?}]", start.elapsed());
            }
            None => eprintln!("unknown figure id: {id} (try `repro list`)"),
        }
    }
}
