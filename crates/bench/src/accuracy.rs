//! Accuracy experiments: Figs 13, 18, 19, 20, 21, 23.
//!
//! Knob scaling: the paper's clouds build K-d trees of height ~11–14, so
//! it quotes `h_t = 4`, `h_e = 12`. Our accuracy clouds are smaller
//! (trees of height ~8–9), so the equivalent operating point is
//! `h_t = 4`, `h_e = 6` — the same *relative* depth. EXPERIMENTS.md
//! records the mapping per figure.

use crescent::accel::{run_network, AcceleratorConfig, CrescentKnobs, NetworkSpec, Variant};
use crescent::models::{
    eval_classifier, eval_detector, eval_segmenter, train_classifier, train_detector,
    train_segmenter, ApproxSetting, Classifier, DensePointCls, FPointNetDet, PointNet2Cls,
    PointNet2Seg, TrainConfig,
};
use crescent::pointcloud::datasets::{
    ClassificationConfig, ClassificationDataset, DetectionConfig, DetectionDataset,
    SegmentationConfig, SegmentationDataset,
};

use crate::common::{pipeline_cloud, FigRow, Figure, Scale};

/// The scaled default operating point for the accuracy experiments
/// (paper: `h_t = 4`, `h_e = 12` on taller trees).
pub const DEFAULT_HT: usize = 4;
/// Scaled default elision height.
pub const DEFAULT_HE: usize = 7;

fn cls_dataset(scale: Scale) -> ClassificationDataset {
    ClassificationDataset::generate(&ClassificationConfig {
        points_per_cloud: scale.points_per_cloud(),
        train_per_class: scale.train_per_class(),
        test_per_class: scale.test_per_class(),
        jitter_sigma: 0.01,
        seed: 0xACC0,
    })
}

fn seg_dataset(scale: Scale) -> SegmentationDataset {
    SegmentationDataset::generate(&SegmentationConfig {
        points_per_cloud: scale.points_per_cloud(),
        train_per_category: scale.train_per_class() * 2,
        test_per_category: scale.test_per_class() * 2,
        seed: 0xACC1,
    })
}

fn det_dataset(scale: Scale) -> DetectionDataset {
    DetectionDataset::generate(&DetectionConfig {
        points_per_sample: scale.points_per_cloud(),
        train_samples: scale.train_per_class() * 10,
        test_samples: scale.test_per_class() * 5,
        car_fraction: 0.45,
        seed: 0xACC2,
    })
}

/// Fig 13: accuracy of baseline / ANS retrained / ANS+BCE retrained /
/// ANS+BCE without retraining, for all four networks.
pub fn fig13(scale: Scale) -> Figure {
    let epochs = scale.epochs();
    let ans = ApproxSetting::ans(DEFAULT_HT);
    let bce = ApproxSetting::ans_bce(DEFAULT_HT, DEFAULT_HE);
    let exact = ApproxSetting::exact();
    let mut rows = Vec::new();

    // ---- classification: PointNet++ (c) and DensePoint ----
    let ds = cls_dataset(scale);
    {
        let run = |seed: u64, make: &dyn Fn(u64) -> Box<dyn Classifier>| -> Vec<f64> {
            let mut base = make(seed);
            train_classifier(&mut *base, &ds.train, &TrainConfig::exact(epochs));
            let acc_base = eval_classifier(&mut *base, &ds.test, &exact);
            let acc_no_retrain = eval_classifier(&mut *base, &ds.test, &bce);
            let mut m_ans = make(seed + 1000);
            train_classifier(&mut *m_ans, &ds.train, &TrainConfig::dedicated(ans, epochs));
            let acc_ans = eval_classifier(&mut *m_ans, &ds.test, &ans);
            let mut m_bce = make(seed + 2000);
            train_classifier(&mut *m_bce, &ds.train, &TrainConfig::dedicated(bce, epochs));
            let acc_bce = eval_classifier(&mut *m_bce, &ds.test, &bce);
            vec![
                acc_base as f64 * 100.0,
                acc_ans as f64 * 100.0,
                acc_bce as f64 * 100.0,
                acc_no_retrain as f64 * 100.0,
            ]
        };
        rows.push(FigRow {
            label: "PointNet++ (c)".into(),
            values: run(11, &|s| Box::new(PointNet2Cls::new(ds.num_classes, s))),
        });
        rows.push(FigRow {
            label: "DensePoint".into(),
            values: run(17, &|s| Box::new(DensePointCls::new(ds.num_classes, 3, 16, s))),
        });
    }

    // ---- segmentation: PointNet++ (s), mIoU ----
    {
        let ds = seg_dataset(scale);
        let mut base = PointNet2Seg::new(ds.num_parts, 23);
        train_segmenter(&mut base, &ds.train, &TrainConfig::exact(epochs));
        let acc_base = eval_segmenter(&mut base, &ds.test, &exact);
        let acc_no = eval_segmenter(&mut base, &ds.test, &bce);
        let mut m_ans = PointNet2Seg::new(ds.num_parts, 24);
        train_segmenter(&mut m_ans, &ds.train, &TrainConfig::dedicated(ans, epochs));
        let acc_ans = eval_segmenter(&mut m_ans, &ds.test, &ans);
        let mut m_bce = PointNet2Seg::new(ds.num_parts, 25);
        train_segmenter(&mut m_bce, &ds.train, &TrainConfig::dedicated(bce, epochs));
        let acc_bce = eval_segmenter(&mut m_bce, &ds.test, &bce);
        rows.push(FigRow {
            label: "PointNet++ (s)".into(),
            values: vec![
                acc_base as f64 * 100.0,
                acc_ans as f64 * 100.0,
                acc_bce as f64 * 100.0,
                acc_no as f64 * 100.0,
            ],
        });
    }

    // ---- detection: F-PointNet, geometric-mean box IoU ----
    {
        let ds = det_dataset(scale);
        let mut base = FPointNetDet::new(31);
        train_detector(&mut base, &ds.train, &TrainConfig::exact(epochs));
        let acc_base = eval_detector(&mut base, &ds.test, &exact);
        let acc_no = eval_detector(&mut base, &ds.test, &bce);
        let mut m_ans = FPointNetDet::new(32);
        train_detector(&mut m_ans, &ds.train, &TrainConfig::dedicated(ans, epochs));
        let acc_ans = eval_detector(&mut m_ans, &ds.test, &ans);
        let mut m_bce = FPointNetDet::new(33);
        train_detector(&mut m_bce, &ds.train, &TrainConfig::dedicated(bce, epochs));
        let acc_bce = eval_detector(&mut m_bce, &ds.test, &bce);
        rows.push(FigRow {
            label: "F-PointNet".into(),
            values: vec![
                acc_base as f64 * 100.0,
                acc_ans as f64 * 100.0,
                acc_bce as f64 * 100.0,
                acc_no as f64 * 100.0,
            ],
        });
    }

    Figure {
        id: "fig13",
        caption: "Accuracy: baseline / ANS retrained / ANS+BCE retrained / ANS+BCE w/o retraining (paper: <=0.9% loss with retraining, 27-40% drop without)",
        columns: vec!["baseline", "ANS_retrained", "ANS+BCE_retrained", "ANS+BCE_no_retrain"],
        rows,
    }
}

/// Fig 18: dedicated-model accuracy vs `h_t` (PointNet++(c)).
pub fn fig18(scale: Scale) -> Figure {
    let ds = cls_dataset(scale);
    let epochs = scale.epochs();
    let mut rows = Vec::new();
    for ht in 0..=6usize {
        let setting = if ht == 0 { ApproxSetting::exact() } else { ApproxSetting::ans(ht) };
        let mut model = PointNet2Cls::new(ds.num_classes, 40 + ht as u64);
        train_classifier(&mut model, &ds.train, &TrainConfig::dedicated(setting, epochs));
        let acc = eval_classifier(&mut model, &ds.test, &setting);
        rows.push(FigRow { label: ht.to_string(), values: vec![acc as f64 * 100.0] });
    }
    Figure {
        id: "fig18",
        caption: "Dedicated-model accuracy vs top-tree height h_t (paper: 89.6% @0 -> 84.4% @12)",
        columns: vec!["accuracy_%"],
        rows,
    }
}

/// Fig 19: dedicated-model accuracy vs `h_e` (PointNet++(c), `h_t` fixed).
pub fn fig19(scale: Scale) -> Figure {
    let ds = cls_dataset(scale);
    let epochs = scale.epochs();
    let mut rows = Vec::new();
    for he in [3usize, 4, 5, 6, 7, 8] {
        let setting = ApproxSetting::ans_bce(DEFAULT_HT, he);
        let mut model = PointNet2Cls::new(ds.num_classes, 50 + he as u64);
        train_classifier(&mut model, &ds.train, &TrainConfig::dedicated(setting, epochs));
        let acc = eval_classifier(&mut model, &ds.test, &setting);
        rows.push(FigRow { label: he.to_string(), values: vec![acc as f64 * 100.0] });
    }
    Figure {
        id: "fig19",
        caption: "Dedicated-model accuracy vs elision height h_e (paper: rises with h_e; 0.8% loss at h_e=12)",
        columns: vec!["accuracy_%"],
        rows,
    }
}

/// Fig 20: mixed-`h_t` training vs dedicated `h_t = 1` / `h_t = 6` models,
/// evaluated across inference-time `h_t`.
pub fn fig20(scale: Scale) -> Figure {
    let ds = cls_dataset(scale);
    let epochs = scale.epochs();
    let mut dedicated1 = PointNet2Cls::new(ds.num_classes, 60);
    train_classifier(
        &mut dedicated1,
        &ds.train,
        &TrainConfig::dedicated(ApproxSetting::ans(1), epochs),
    );
    let mut dedicated6 = PointNet2Cls::new(ds.num_classes, 61);
    train_classifier(
        &mut dedicated6,
        &ds.train,
        &TrainConfig::dedicated(ApproxSetting::ans(6), epochs),
    );
    let mut mixed = PointNet2Cls::new(ds.num_classes, 62);
    train_classifier(&mut mixed, &ds.train, &TrainConfig::mixed((1, 6), None, epochs));

    let mut rows = Vec::new();
    for ht in 0..=6usize {
        let setting = if ht == 0 { ApproxSetting::exact() } else { ApproxSetting::ans(ht) };
        rows.push(FigRow {
            label: ht.to_string(),
            values: vec![
                eval_classifier(&mut mixed, &ds.test, &setting) as f64 * 100.0,
                eval_classifier(&mut dedicated1, &ds.test, &setting) as f64 * 100.0,
                eval_classifier(&mut dedicated6, &ds.test, &setting) as f64 * 100.0,
            ],
        });
    }
    Figure {
        id: "fig20",
        caption: "Mixed vs dedicated training across inference-time h_t (paper: mixed wins in the high-accuracy regime)",
        columns: vec!["mixed", "ht=1", "ht=6"],
        rows,
    }
}

/// Fig 21: model trained assuming 4 banks, inferenced under other bank
/// counts.
pub fn fig21(scale: Scale) -> Figure {
    let ds = cls_dataset(scale);
    let train_setting = ApproxSetting::ans_bce(DEFAULT_HT, DEFAULT_HE); // tree_banks = 4
    let mut model = PointNet2Cls::new(ds.num_classes, 70);
    train_classifier(&mut model, &ds.train, &TrainConfig::dedicated(train_setting, scale.epochs()));
    let mut rows = Vec::new();
    for banks in [2usize, 4, 8, 16, 32] {
        let setting = ApproxSetting { tree_banks: banks, ..train_setting };
        let acc = eval_classifier(&mut model, &ds.test, &setting);
        rows.push(FigRow { label: banks.to_string(), values: vec![acc as f64 * 100.0] });
    }
    Figure {
        id: "fig21",
        caption:
            "Accuracy trained @4 banks, inferenced @2-32 banks (paper: stable >=8, ~2% drop @2)",
        columns: vec!["accuracy_%"],
        rows,
    }
}

/// Fig 23: accuracy-vs-speedup and accuracy-vs-energy trade-off across
/// `<h_t, h_e>` combinations (mixed-trained PointNet++(c) + pipeline sim).
pub fn fig23(scale: Scale) -> Figure {
    let ds = cls_dataset(scale);
    let mut mixed = PointNet2Cls::new(ds.num_classes, 80);
    // the sampled elision range stays in the gentle regime (h_e >= 5):
    // sampling very aggressive settings poisons every input's features
    // and the shared weights never converge
    train_classifier(
        &mut mixed,
        &ds.train,
        &TrainConfig::mixed((1, 6), Some((5, 8)), scale.epochs()),
    );

    // knob pairs: (accuracy-scale h_t/h_e, performance-scale h_e)
    // accuracy trees are height ~8-9; pipeline trees are height ~13-14,
    // so the pipeline h_e is the accuracy h_e shifted by the height delta
    let pairs = [(1usize, 8usize), (2, 7), (4, 6), (6, 5)];
    let cloud = pipeline_cloud(scale, 0xF23);
    let spec = NetworkSpec::pointnet2_classification();
    let base = AcceleratorConfig::default();
    let meso = run_network(&spec, &cloud, Variant::Mesorasi, CrescentKnobs::default(), &base);
    let mut rows = Vec::new();
    for (ht, he) in pairs {
        let setting = ApproxSetting::ans_bce(ht, he);
        let acc = eval_classifier(&mut mixed, &ds.test, &setting) as f64 * 100.0;
        let knobs = CrescentKnobs { top_height: ht, elision_height: he + 5 };
        let rep = run_network(&spec, &cloud, Variant::AnsBce, knobs, &base);
        let speedup = meso.total_cycles() as f64 / rep.total_cycles() as f64;
        let energy = rep.energy.total() / meso.energy.total();
        rows.push(FigRow { label: format!("<{ht},{he}>"), values: vec![acc, speedup, energy] });
    }
    Figure {
        id: "fig23",
        caption: "Accuracy vs speedup vs energy across <h_t,h_e> (paper: ~5% accuracy / 2.0x perf / 1.5x energy span)",
        columns: vec!["accuracy_%", "speedup", "norm_energy"],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // accuracy experiments are training-heavy; the full suite runs in the
    // repro binary. Here we smoke-test the cheapest figure end to end.
    #[test]
    fn fig21_runs_and_is_bounded() {
        let f = fig21(Scale::Quick);
        assert_eq!(f.rows.len(), 5);
        for row in &f.rows {
            assert!((0.0..=100.0).contains(&row.values[0]), "{row:?}");
        }
    }
}
