//! Performance / energy experiments: Figs 14, 15, 16, 17, 22, 24.

use std::collections::HashMap;

use crescent::accel::{
    run_crescent_search, run_network, run_tigris_search, AcceleratorConfig, CrescentKnobs,
    NetworkSpec, PipelineReport, Variant,
};
use crescent::kdtree::{crescent_dram_bytes, split_exhaustive_search, KdTree, SplitTree};
use crescent::memsim::SramConfig;
use crescent::pointcloud::{Point3, PointCloud, POINT_BYTES};

use crate::common::{pipeline_cloud, FigRow, Figure, Scale};

/// Runs every network on every variant once and caches the reports.
pub struct PerformanceSuite {
    /// (network, variant) -> report
    pub reports: HashMap<(String, Variant), PipelineReport>,
    /// Network names in Tbl 1 order.
    pub networks: Vec<String>,
}

impl std::fmt::Debug for PerformanceSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PerformanceSuite({} reports)", self.reports.len())
    }
}

impl PerformanceSuite {
    /// Simulates the full Fig 14 matrix.
    pub fn run(scale: Scale) -> Self {
        let cloud = pipeline_cloud(scale, 0xF16);
        let base = AcceleratorConfig::default();
        let knobs = CrescentKnobs { top_height: 4, elision_height: 9 };
        let mut reports = HashMap::new();
        let mut networks = Vec::new();
        for spec in NetworkSpec::evaluation_suite() {
            networks.push(spec.name.clone());
            for variant in Variant::ALL {
                let rep = run_network(&spec, &cloud, variant, knobs, &base);
                reports.insert((spec.name.clone(), variant), rep);
            }
        }
        PerformanceSuite { reports, networks }
    }

    fn get(&self, net: &str, v: Variant) -> &PipelineReport {
        &self.reports[&(net.to_string(), v)]
    }

    /// Fig 14a: end-to-end speedup over Mesorasi.
    pub fn fig14a(&self) -> Figure {
        let mut rows = Vec::new();
        let mut sums = vec![0.0f64; Variant::ALL.len()];
        for net in &self.networks {
            let meso = self.get(net, Variant::Mesorasi).total_cycles() as f64;
            let values: Vec<f64> = Variant::ALL
                .iter()
                .map(|&v| meso / self.get(net, v).total_cycles() as f64)
                .collect();
            for (s, v) in sums.iter_mut().zip(&values) {
                *s += v;
            }
            rows.push(FigRow { label: net.clone(), values });
        }
        let n = self.networks.len() as f64;
        rows.push(FigRow { label: "AVG".into(), values: sums.iter().map(|s| s / n).collect() });
        Figure {
            id: "fig14a",
            caption: "End-to-end speedup over Mesorasi (paper: ANS 1.7x, ANS+BCE 1.9x avg)",
            columns: vec!["ANS", "ANS+BCE", "Mesorasi", "Tigris+GPU", "GPU"],
            rows,
        }
    }

    /// Fig 14b: energy normalized to Mesorasi.
    pub fn fig14b(&self) -> Figure {
        let mut rows = Vec::new();
        let mut sums = vec![0.0f64; Variant::ALL.len()];
        for net in &self.networks {
            let meso = self.get(net, Variant::Mesorasi).energy.total();
            let values: Vec<f64> =
                Variant::ALL.iter().map(|&v| self.get(net, v).energy.total() / meso).collect();
            for (s, v) in sums.iter_mut().zip(&values) {
                *s += v;
            }
            rows.push(FigRow { label: net.clone(), values });
        }
        let n = self.networks.len() as f64;
        rows.push(FigRow { label: "AVG".into(), values: sums.iter().map(|s| s / n).collect() });
        Figure {
            id: "fig14b",
            caption: "Energy normalized to Mesorasi (paper: ANS 0.67, ANS+BCE 0.64 avg; GPU 38x)",
            columns: vec!["ANS", "ANS+BCE", "Mesorasi", "Tigris+GPU", "GPU"],
            rows,
        }
    }

    /// Fig 15a: neighbor-search-only speedup and energy saving of ANS+BCE.
    pub fn fig15a(&self) -> Figure {
        let mut rows = Vec::new();
        let mut s_sum = 0.0;
        let mut e_sum = 0.0;
        for net in &self.networks {
            let meso = self.get(net, Variant::Mesorasi);
            let bce = self.get(net, Variant::AnsBce);
            let speedup = meso.cycles.search as f64 / bce.cycles.search.max(1) as f64;
            let e_meso = meso.energy.sram_search + meso.energy.dram();
            let e_bce = bce.energy.sram_search + bce.energy.dram();
            let saving = (1.0 - e_bce / e_meso) * 100.0;
            s_sum += speedup;
            e_sum += saving;
            rows.push(FigRow { label: net.clone(), values: vec![speedup, saving] });
        }
        let n = self.networks.len() as f64;
        rows.push(FigRow { label: "AVG".into(), values: vec![s_sum / n, e_sum / n] });
        Figure {
            id: "fig15a",
            caption: "Neighbor-search speedup / energy saving of ANS+BCE (paper: 4.9x avg)",
            columns: vec!["speedup", "energy_saving_%"],
            rows,
        }
    }

    /// Fig 15b: aggregation-only speedup and energy saving of ANS+BCE.
    pub fn fig15b(&self) -> Figure {
        let mut rows = Vec::new();
        let mut s_sum = 0.0;
        let mut e_sum = 0.0;
        for net in &self.networks {
            let meso = self.get(net, Variant::Mesorasi);
            let bce = self.get(net, Variant::AnsBce);
            let speedup = meso.cycles.aggregation as f64 / bce.cycles.aggregation.max(1) as f64;
            let saving = (1.0
                - bce.energy.sram_aggregation / meso.energy.sram_aggregation.max(1e-9))
                * 100.0;
            s_sum += speedup;
            e_sum += saving;
            rows.push(FigRow { label: net.clone(), values: vec![speedup, saving] });
        }
        let n = self.networks.len() as f64;
        rows.push(FigRow { label: "AVG".into(), values: vec![s_sum / n, e_sum / n] });
        Figure {
            id: "fig15b",
            caption: "Aggregation speedup / energy saving of ANS+BCE (paper: 2.1x avg)",
            columns: vec!["speedup", "energy_saving_%"],
            rows,
        }
    }

    /// Fig 16: memory-energy-saving contribution breakdown (ANS+BCE vs
    /// Mesorasi).
    pub fn fig16(&self) -> Figure {
        let mut rows = Vec::new();
        for net in &self.networks {
            let meso = self.get(net, Variant::Mesorasi);
            let bce = self.get(net, Variant::AnsBce);
            // savings per category
            let d_random = (meso.energy.dram_random - bce.energy.dram_random).max(0.0);
            let d_stream = (meso.energy.dram_streaming - bce.energy.dram_streaming).max(0.0);
            let d_search = (meso.energy.sram_search - bce.energy.sram_search).max(0.0);
            let d_aggr = (meso.energy.sram_aggregation - bce.energy.sram_aggregation).max(0.0);
            let total = (d_random + d_stream + d_search + d_aggr).max(1e-9);
            rows.push(FigRow {
                label: net.clone(),
                values: vec![
                    d_stream / total * 100.0,
                    d_random / total * 100.0,
                    d_search / total * 100.0,
                    d_aggr / total * 100.0,
                ],
            });
        }
        Figure {
            id: "fig16",
            caption: "Memory energy-saving contributions (paper: SRAM neighbor search dominates)",
            columns: vec![
                "dram_traffic_red_%",
                "dram_streaming_%",
                "sram_search_%",
                "sram_aggregation_%",
            ],
            rows,
        }
    }

    /// Fig 17: bank-conflict reduction and tree-node-access reduction of
    /// ANS+BCE over ANS.
    pub fn fig17(&self) -> Figure {
        let mut rows = Vec::new();
        for net in &self.networks {
            let ans = self.get(net, Variant::Ans);
            let bce = self.get(net, Variant::AnsBce);
            // ANS stalls on every conflict; BCE elides: compare observed
            // conflict-stall counts and honored node fetches
            let conf_red = (1.0
                - bce.search.stats.conflict_stalls as f64
                    / ans.search.stats.bank_conflicts.max(1) as f64)
                * 100.0;
            let node_red = (1.0
                - bce.search.stats.nodes_visited as f64
                    / ans.search.stats.nodes_visited.max(1) as f64)
                * 100.0;
            rows.push(FigRow { label: net.clone(), values: vec![conf_red, node_red] });
        }
        Figure {
            id: "fig17",
            caption:
                "BCE: bank-conflict reduction and tree-node-access reduction (paper: >45%, ~50%)",
            columns: vec!["conflict_reduction_%", "node_access_reduction_%"],
            rows,
        }
    }
}

/// Fig 22: speedup and normalized energy of ANS+BCE over Mesorasi across a
/// PE-count × bank-count grid (PointNet++(c)).
pub fn fig22(scale: Scale) -> (Figure, Figure) {
    let cloud = pipeline_cloud(scale, 0xF22);
    let spec = NetworkSpec::pointnet2_classification();
    let knobs = CrescentKnobs { top_height: 4, elision_height: 9 };
    let mut speed_rows = Vec::new();
    let mut energy_rows = Vec::new();
    let grid = [2usize, 4, 8, 16, 32];
    for &banks in &grid {
        let mut speeds = Vec::new();
        let mut energies = Vec::new();
        for &pes in &grid {
            let mut cfg = AcceleratorConfig::default();
            cfg.num_pes = pes;
            cfg.tree_buffer = SramConfig { num_banks: banks, ..cfg.tree_buffer };
            let meso = run_network(&spec, &cloud, Variant::Mesorasi, knobs, &cfg);
            let bce = run_network(&spec, &cloud, Variant::AnsBce, knobs, &cfg);
            speeds.push(meso.total_cycles() as f64 / bce.total_cycles() as f64);
            energies.push(bce.energy.total() / meso.energy.total());
        }
        speed_rows.push(FigRow { label: format!("{banks}banks"), values: speeds });
        energy_rows.push(FigRow { label: format!("{banks}banks"), values: energies });
    }
    (
        Figure {
            id: "fig22a",
            caption: "Speedup sensitivity to #PE x #banks (paper: 2.1x @2/2 -> 1.1x @32/32)",
            columns: vec!["2pe", "4pe", "8pe", "16pe", "32pe"],
            rows: speed_rows,
        },
        Figure {
            id: "fig22b",
            caption: "Normalized energy sensitivity (paper: ~0.71-0.75 across the grid)",
            columns: vec!["2pe", "4pe", "8pe", "16pe", "32pe"],
            rows: energy_rows,
        },
    )
}

/// Fig 24: comparison with the prior neighbor-search accelerators:
/// (a) tree-node-visit reduction vs Tigris, (b) DRAM-byte reduction vs
/// QuickNN.
pub fn fig24(scale: Scale) -> Figure {
    let cloud = pipeline_cloud(scale, 0xF24);
    let knobs = CrescentKnobs { top_height: 4, elision_height: 9 };
    let cfg = AcceleratorConfig {
        // QuickNN-style small on-chip query queue forces reloads
        query_buffer_bytes: 32 * POINT_BYTES * 2,
        ..Default::default()
    };
    let mut rows = Vec::new();
    let mut v_sum = 0.0;
    let mut d_sum = 0.0;
    for spec in NetworkSpec::evaluation_suite() {
        // use the first (largest) search layer of each network
        let layer = &spec.layers[0];
        let pts: PointCloud =
            (0..layer.n_points).map(|i| cloud.point(i * cloud.len() / layer.n_points)).collect();
        let queries: Vec<Point3> =
            (0..layer.n_centroids).map(|i| pts.point(i * pts.len() / layer.n_centroids)).collect();
        let tree = KdTree::build(&pts);
        let (_, ours) =
            run_crescent_search(&tree, knobs.top_height, &queries, layer.radius, None, &cfg);
        let (_, tigris) =
            run_tigris_search(&tree, knobs.top_height, &queries, layer.radius, None, &cfg);
        let ht = knobs.top_height.min(tree.height().saturating_sub(1));
        let split = SplitTree::new(&tree, ht).expect("valid split");
        let quicknn = split_exhaustive_search(&split, &queries, layer.radius, None, 32);
        let ours_dram = crescent_dram_bytes(&split, &queries, layer.radius);
        let visit_red = (1.0
            - ours.stats.nodes_visited as f64 / tigris.stats.nodes_visited.max(1) as f64)
            * 100.0;
        let dram_red = (1.0 - ours_dram as f64 / quicknn.dram_bytes.max(1) as f64) * 100.0;
        v_sum += visit_red;
        d_sum += dram_red;
        rows.push(FigRow { label: spec.name.clone(), values: vec![visit_red, dram_red] });
    }
    rows.push(FigRow { label: "AVG".into(), values: vec![v_sum / 4.0, d_sum / 4.0] });
    Figure {
        id: "fig24",
        caption: "Reduction vs prior accelerators (paper: 41% fewer node visits vs Tigris, 48% fewer DRAM bytes vs QuickNN)",
        columns: vec!["node_visit_reduction_%", "dram_reduction_%"],
        rows,
    }
}

/// Ablation (beyond the paper): the Sec 4.2 future-work **descendant
/// reuse** refinement vs. plain elision, across elision heights. Reports
/// how many conflicted fetches are salvaged, how many tree nodes are no
/// longer lost, and how many neighbor results are recovered — at zero
/// extra stall cycles.
pub fn ablation_reuse(scale: Scale) -> Figure {
    let cloud = pipeline_cloud(scale, 0xAB1);
    let pts: PointCloud =
        (0..4096.min(cloud.len())).map(|i| cloud.point(i * cloud.len() / 4096)).collect();
    let queries: Vec<Point3> = (0..512).map(|i| pts.point(i * pts.len() / 512)).collect();
    let tree = KdTree::build(&pts);
    let split = SplitTree::new(&tree, 2).expect("valid split");
    let mut rows = Vec::new();
    for he in [4usize, 6, 8, 10] {
        let run = |reuse: bool| {
            let cfg = crescent::kdtree::SplitSearchConfig {
                radius: 0.08,
                max_neighbors: None,
                num_pes: 8,
                elision: Some(if reuse {
                    crescent::kdtree::ElisionConfig::with_descendant_reuse(he, 4)
                } else {
                    crescent::kdtree::ElisionConfig::new(he, 4)
                }),
            };
            split.batch_search(&queries, &cfg)
        };
        let (r_plain, s_plain) = run(false);
        let (r_reuse, s_reuse) = run(true);
        let found = |rs: &[Vec<crescent::pointcloud::Neighbor>]| {
            rs.iter().map(Vec::len).sum::<usize>() as f64
        };
        rows.push(FigRow {
            label: he.to_string(),
            values: vec![
                s_reuse.descendant_reuses as f64,
                s_plain.nodes_skipped as f64,
                s_reuse.nodes_skipped as f64,
                (found(&r_reuse) / found(&r_plain).max(1.0) - 1.0) * 100.0,
            ],
        });
    }
    Figure {
        id: "ablation_reuse",
        caption: "Descendant-reuse elision (Sec 4.2 future work) vs plain elision, by h_e",
        columns: vec!["reuses", "skipped_plain", "skipped_reuse", "extra_neighbors_%"],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_reuse_salvages_nodes() {
        let f = ablation_reuse(Scale::Quick);
        let mut any_reuse = false;
        for row in &f.rows {
            // reuse must not lose ground beyond arbitration-dynamics noise
            // (salvaging a fetch reshuffles later conflicts slightly)
            assert!(row.values[2] <= row.values[1] * 1.05, "{row:?}");
            assert!(row.values[3] >= -5.0, "{row:?}");
            any_reuse |= row.values[0] > 0.0;
        }
        assert!(any_reuse, "some conflicts must be salvageable");
    }

    #[test]
    fn suite_speedup_ordering() {
        let suite = PerformanceSuite::run(Scale::Quick);
        let f = suite.fig14a();
        // AVG row: ANS+BCE >= ANS >= 1.0; GPU slowest
        let avg = &f.rows.last().unwrap().values;
        let (ans, bce, meso, tgpu, gpu) = (avg[0], avg[1], avg[2], avg[3], avg[4]);
        assert!(bce >= ans * 0.98, "BCE {bce} vs ANS {ans}");
        assert!(ans > 1.0, "ANS must beat Mesorasi: {ans}");
        assert!((meso - 1.0).abs() < 1e-9);
        assert!(gpu < 1.0 && tgpu < 1.0, "GPU variants slower: {gpu}, {tgpu}");
        // energy: crescent saves, GPU burns
        let e = suite.fig14b();
        let avg = &e.rows.last().unwrap().values;
        assert!(avg[1] <= avg[0] + 0.02, "BCE saves at least as much energy");
        assert!(avg[0] < 1.0);
        assert!(avg[4] > 3.0, "GPU energy {}", avg[4]);
        // fig15: per-stage speedups >= 1
        let s = suite.fig15a();
        assert!(s.rows.last().unwrap().values[0] > 1.0);
        let a = suite.fig15b();
        assert!(a.rows.last().unwrap().values[0] >= 1.0);
        // fig16 contributions sum to ~100
        let c = suite.fig16();
        for row in &c.rows {
            let sum: f64 = row.values.iter().sum();
            assert!((sum - 100.0).abs() < 1.0, "{}: {sum}", row.label);
        }
        // fig17: both reductions positive
        let r = suite.fig17();
        for row in &r.rows {
            assert!(row.values[0] > 0.0, "{}: conflict reduction", row.label);
            assert!(row.values[1] >= 0.0, "{}: node reduction", row.label);
        }
    }

    #[test]
    fn fig24_reductions_positive() {
        let f = fig24(Scale::Quick);
        let avg = f.rows.last().unwrap();
        assert!(avg.values[0] > 20.0, "node visit reduction {:?}", avg.values);
        assert!(avg.values[1] > 0.0, "dram reduction {:?}", avg.values);
    }
}
