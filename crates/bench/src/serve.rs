//! The `repro serve` subcommand: run the multi-tenant streaming
//! service grid, emit the machine-readable ledger report, and (in
//! `--check` mode) gate against the checked-in baseline with the exact
//! comparator.
//!
//! ```text
//! repro serve --quick --json target/serve.json   # run + write report
//! repro serve --quick --check                    # CI gate vs bench/serve-baseline.json
//! repro serve --quick --check --baseline other.json
//! repro serve --workers 4                        # full grid, pinned pool
//! repro serve --quick --timings target/serve-timings.json  # wall-clock sidecar
//! ```
//!
//! Every metric in the report is modeled, so `--check` is exact: any
//! byte of drift is a real behavioural change. Wall-clock measurements
//! travel on a separate channel: every run prints its total/context/
//! point wall time to **stderr**, and `--timings <path>` additionally
//! writes the per-point breakdown as a sidecar JSON
//! ([`ServeTimings::to_json`]) that is never digested and never
//! compared by `--check`. To acknowledge intended drift, refresh the
//! baseline with `repro serve --quick --json bench/serve-baseline.json`
//! and commit the diff.

use std::path::{Path, PathBuf};

use crescent::format_table;
use crescent_explorer::diff_reports;
use crescent_serve::{default_workers, run_serve_timed, ServeReport, ServeSpec, ServeTimings};

/// Default location of the checked-in quick-serve baseline, relative to
/// the workspace root (where CI and `cargo run` invoke the binary).
pub const DEFAULT_SERVE_BASELINE: &str = "bench/serve-baseline.json";

/// Parsed `repro serve ...` arguments.
#[derive(Clone, Debug)]
pub struct ServeArgs {
    /// Run the quick (CI-scale) spec instead of the full grid.
    pub quick: bool,
    /// Write the JSON report here.
    pub json: Option<PathBuf>,
    /// Compare the report against `baseline` and fail on any drift.
    pub check: bool,
    /// Baseline path for `--check`.
    pub baseline: PathBuf,
    /// Worker-thread count (never affects the report bytes).
    pub workers: usize,
    /// Write the wall-clock timings sidecar here (`--timings <path>`).
    /// A *separate* file from the report: measured time is never part
    /// of the gated report bytes and never diffed by `--check`.
    pub timings: Option<PathBuf>,
    /// Override the spec's base per-frame deadline, in milliseconds of
    /// the modeled 1 GHz clock (`--slo-ms 0.012` → 12 000 cycles).
    /// Changes the spec fingerprint, so `--check` against the default
    /// baseline correctly reports a *different spec*, not drift.
    pub slo_ms: Option<f64>,
}

impl ServeArgs {
    /// Parses the arguments that follow the `serve` keyword. Unknown
    /// flags are errors so typos cannot silently weaken the CI gate.
    pub fn parse(args: &[String]) -> Result<ServeArgs, String> {
        let mut parsed = ServeArgs {
            quick: false,
            json: None,
            check: false,
            baseline: PathBuf::from(DEFAULT_SERVE_BASELINE),
            workers: default_workers(),
            timings: None,
            slo_ms: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => parsed.quick = true,
                "--check" => parsed.check = true,
                "--json" => {
                    let path = it.next().ok_or("--json needs a path")?;
                    parsed.json = Some(PathBuf::from(path));
                }
                "--timings" => {
                    let path = it.next().ok_or("--timings needs a path")?;
                    parsed.timings = Some(PathBuf::from(path));
                }
                "--baseline" => {
                    let path = it.next().ok_or("--baseline needs a path")?;
                    parsed.baseline = PathBuf::from(path);
                }
                "--workers" => {
                    let n = it.next().ok_or("--workers needs a count")?;
                    parsed.workers =
                        n.parse::<usize>().map_err(|_| format!("bad --workers value: {n}"))?;
                    if parsed.workers == 0 {
                        return Err("--workers must be >= 1".to_string());
                    }
                }
                "--slo-ms" => {
                    let ms = it.next().ok_or("--slo-ms needs a budget in milliseconds")?;
                    let ms = ms.parse::<f64>().map_err(|_| format!("bad --slo-ms value: {ms}"))?;
                    if !ms.is_finite() || ms <= 0.0 {
                        return Err("--slo-ms must be a positive number".to_string());
                    }
                    parsed.slo_ms = Some(ms);
                }
                other => return Err(format!("unknown serve flag: {other}")),
            }
        }
        Ok(parsed)
    }
}

/// Runs the serve subcommand end to end; returns the process exit code
/// (0 = success / no drift, 1 = drift or error).
pub fn run_serve_command(args: &ServeArgs) -> i32 {
    let mut spec = if args.quick { ServeSpec::quick() } else { ServeSpec::full() };
    if let Some(ms) = args.slo_ms {
        // modeled clock is 1 GHz: 1 ms == 1e6 cycles
        spec.base_deadline = (ms * 1e6).round() as u64;
        println!("# SLO override: base deadline {ms} ms = {} cycles", spec.base_deadline);
    }
    let workers = args.workers.clamp(1, spec.num_points().max(1));
    println!(
        "# streaming service: {} ({} points, {workers} workers)",
        spec.label,
        spec.num_points()
    );
    let (report, stats, timings) = match run_serve_timed(&spec, args.workers) {
        Ok(triple) => triple,
        Err(err) => {
            eprintln!("serve failed: {err}");
            return 1;
        }
    };
    debug_assert_eq!(stats.workers, workers, "announced pool matches the executed pool");
    print!("{}", render_summary(&report));
    // the wall-clock accounting goes to STDERR in every mode: measured
    // time is operator feedback, never report data
    eprint_timings(&timings, stats.workers);

    let json = report.to_json();
    if let Some(path) = &args.json {
        if let Err(err) = write_report(path, &json) {
            eprintln!("cannot write {}: {err}", path.display());
            return 1;
        }
        println!("report written to {}", path.display());
    }
    if let Some(path) = &args.timings {
        if let Err(err) = write_report(path, &timings.to_json(&spec)) {
            eprintln!("cannot write {}: {err}", path.display());
            return 1;
        }
        println!("timings sidecar written to {}", path.display());
    }

    if args.check {
        let baseline = match std::fs::read_to_string(&args.baseline) {
            Ok(text) => text,
            Err(err) => {
                eprintln!(
                    "cannot read baseline {}: {err}\n\
                     (generate one with `repro serve{} --json {}` and commit it)",
                    args.baseline.display(),
                    if args.quick { " --quick" } else { "" },
                    args.baseline.display()
                );
                return 1;
            }
        };
        match diff_reports(&baseline, &json) {
            None => println!("serve check OK: report matches {}", args.baseline.display()),
            Some(drift) => {
                eprintln!("{drift}");
                eprintln!(
                    "if this drift is intended, refresh the baseline:\n\
                     cargo run --release -p crescent-bench --bin repro -- serve{} --json {}",
                    if args.quick { " --quick" } else { "" },
                    args.baseline.display()
                );
                return 1;
            }
        }
    }
    0
}

/// A short human-readable digest of the report: one line per grid
/// point with its admission, tail-latency, and amortization headlines.
pub fn render_summary(report: &ServeReport) -> String {
    let mut out = String::new();
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.index),
                format!("{}", r.tenants),
                format!("{}", r.fleet),
                format!("{}", r.elision_depth),
                r.controller.clone(),
                format!("{}", r.h_e_final),
                format!("{}/{}", r.admitted, r.admitted + r.rejected),
                format!("{}", r.deadline_misses),
                format!("{}", r.p50),
                format!("{}", r.p95),
                format!("{}", r.p99),
                format!("{}/{}", r.shared_wavefronts, r.wavefronts),
                format!("{:.2}", r.amortization),
                format!("{:.2}", r.utilization),
            ]
        })
        .collect();
    out.push_str(&format!(
        "{} service points; admission, tail latency (modeled cycles), batching:\n",
        report.rows.len()
    ));
    out.push_str(&format_table(
        &[
            "row",
            "tenants",
            "fleet",
            "h_e",
            "ctl",
            "h_e_fin",
            "admitted",
            "miss",
            "p50",
            "p95",
            "p99",
            "shared/wf",
            "amort",
            "util",
        ],
        &rows,
    ));
    out
}

/// Prints a run's wall-clock accounting to stderr (every mode gets it):
/// the run total, the serial context build, and the per-point time
/// summed across the worker pool.
fn eprint_timings(timings: &ServeTimings, workers: usize) {
    eprintln!(
        "# wall-clock: total {:.3}s (context build {:.3}s serial, points {:.3}s summed over \
         {workers} workers)",
        secs(timings.total_nanos),
        secs(timings.context_nanos),
        secs(timings.point_nanos()),
    );
}

fn secs(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

fn write_report(path: &Path, json: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_ci_invocations() {
        let a = ServeArgs::parse(&strings(&["--quick", "--json", "target/serve.json"])).unwrap();
        assert!(a.quick);
        assert!(!a.check);
        assert_eq!(a.json.as_deref(), Some(Path::new("target/serve.json")));
        assert_eq!(a.baseline, Path::new(DEFAULT_SERVE_BASELINE));

        let b = ServeArgs::parse(&strings(&["--quick", "--check"])).unwrap();
        assert!(b.check);
        assert!(b.json.is_none());

        let c = ServeArgs::parse(&strings(&["--check", "--baseline", "x.json", "--workers", "3"]))
            .unwrap();
        assert_eq!(c.baseline, Path::new("x.json"));
        assert_eq!(c.workers, 3);
        assert!(!c.quick);
    }

    #[test]
    fn parses_the_timings_sidecar_path() {
        let a = ServeArgs::parse(&strings(&["--quick", "--timings", "target/t.json"])).unwrap();
        assert_eq!(a.timings.as_deref(), Some(Path::new("target/t.json")));
        // the sidecar composes with --check (it is not a comparator input)
        let b = ServeArgs::parse(&strings(&["--quick", "--check", "--timings", "t.json"])).unwrap();
        assert!(b.check);
        assert!(ServeArgs::parse(&strings(&["--timings"])).is_err(), "path is mandatory");
    }

    #[test]
    fn parses_the_slo_override() {
        let a = ServeArgs::parse(&strings(&["--quick", "--slo-ms", "0.012"])).unwrap();
        assert_eq!(a.slo_ms, Some(0.012));
        assert_eq!(ServeArgs::parse(&strings(&["--quick"])).unwrap().slo_ms, None);
        assert!(ServeArgs::parse(&strings(&["--slo-ms"])).is_err(), "budget is mandatory");
        assert!(ServeArgs::parse(&strings(&["--slo-ms", "0"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--slo-ms", "-1"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--slo-ms", "NaN"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--slo-ms", "soon"])).is_err());
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(ServeArgs::parse(&strings(&["--jsn", "x"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--json"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--workers", "0"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--workers", "many"])).is_err());
        assert!(ServeArgs::parse(&strings(&["--shard", "1/2"])).is_err(), "serve has no shards");
    }
}
