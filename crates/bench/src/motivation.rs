//! Motivation / characterization experiments: Figs 2, 3, 4, 5, 8, 9.

use crescent::accel::conflict_rate_single_issue;
use crescent::kdtree::{
    radius_search_traced, ElisionConfig, KdTree, SplitSearchConfig, SplitTree, NODE_BYTES,
};
use crescent::memsim::{DramTraceAnalyzer, FullyAssociativeCache, SramConfig};
use crescent::pointcloud::{
    farthest_point_sample, replicate_to_k, Point3, PointCloud, POINT_BYTES,
};

use crate::common::{trace_scene, FigRow, Figure, Scale};

/// Per-network search workload shapes (first search layer of each Tbl 1
/// network): (name, queries fraction of points, radius, k).
const NETWORK_SHAPES: [(&str, f64, f32, usize); 4] = [
    ("PointNet++ (c)", 0.25, 1.0, 32),
    ("PointNet++ (s)", 0.25, 1.0, 48),
    ("DensePoint", 0.5, 0.8, 32),
    ("F-PointNet", 0.25, 1.2, 32),
];

fn workload(scale: Scale, fraction: f64, seed: u64) -> (PointCloud, Vec<Point3>) {
    let scene = trace_scene(scale, seed);
    let n_q = ((scale.trace_queries() as f64) * fraction).max(64.0) as usize;
    // queries are scene points in sweep order (as the sensor produced them)
    let queries: Vec<Point3> =
        (0..n_q).map(|i| scene.cloud.point(i * scene.cloud.len() / n_q)).collect();
    (scene.cloud, queries)
}

/// Fig 2: percentage of non-continuous DRAM accesses during exact K-d
/// neighbor search, per network.
pub fn fig2(scale: Scale) -> Figure {
    let mut rows = Vec::new();
    for (i, (name, frac, radius, _)) in NETWORK_SHAPES.iter().enumerate() {
        let (cloud, queries) = workload(scale, *frac, 100 + i as u64);
        let tree = KdTree::build(&cloud);
        let mut dram = DramTraceAnalyzer::new();
        for &q in &queries {
            let _ = radius_search_traced(&tree, q, *radius, None, &mut |idx| {
                dram.access(tree.node_addr(idx), NODE_BYTES as u64);
            });
        }
        rows.push(FigRow {
            label: (*name).into(),
            values: vec![dram.counters().non_streaming_fraction() * 100.0],
        });
    }
    Figure {
        id: "fig2",
        caption: "% non-continuous DRAM accesses in exact neighbor search (paper: 99.5-99.95%)",
        columns: vec!["non_streaming_%"],
        rows,
    }
}

/// Fig 3: DRAM traffic over the theoretical minimum, and cache miss rate,
/// behind a 10 MB fully-associative cache.
///
/// At full scale this uses the paper's ~1.2 M-point KITTI-scale scene so
/// the working set (~19 MB of tree nodes) genuinely exceeds the 10 MB
/// cache; at quick scale the cache is shrunk proportionally instead.
pub fn fig3(scale: Scale) -> Figure {
    let mut rows = Vec::new();
    for (i, (name, frac, radius, _)) in NETWORK_SHAPES.iter().enumerate() {
        let (cloud, queries) = match scale {
            Scale::Full => {
                let scene = crescent::pointcloud::datasets::generate_scene(
                    &crescent::pointcloud::datasets::LidarSceneConfig::paper_scale(200 + i as u64),
                );
                // query a *scattered* subset: spatially-coherent (sweep
                // order) queries would let consecutive traversals reuse
                // each other's cached sub-trees, hiding the thrash the
                // paper measures over its full 1.2 M-query scenes
                let n_q = (40_000.0 * frac).max(256.0) as usize;
                let idx = crescent::pointcloud::random_sample(&scene.cloud, n_q, 300 + i as u64);
                let queries: Vec<Point3> = idx.into_iter().map(|j| scene.cloud.point(j)).collect();
                (scene.cloud, queries)
            }
            Scale::Quick => workload(scale, *frac, 200 + i as u64),
        };
        let tree = KdTree::build(&cloud);
        // Fig 3 characterizes the *software baseline*: a pointer-chasing
        // K-d tree whose nodes carry child pointers and metadata (~64 B),
        // not the accelerator's packed 16 B layout. The node footprint is
        // what makes the ~1.2 M-node tree (~77 MB) overwhelm the 10 MB
        // cache.
        const BASELINE_NODE_BYTES: u64 = 64;
        let tree_bytes = tree.len() as u64 * BASELINE_NODE_BYTES;
        let cache_bytes = match scale {
            Scale::Full => 10 << 20,
            Scale::Quick => (tree_bytes / 8).max(64 << 10),
        };
        let mut cache = FullyAssociativeCache::new(cache_bytes, 64);
        for &q in &queries {
            let _ = radius_search_traced(&tree, q, *radius, None, &mut |idx| {
                cache.access_range(idx as u64 * BASELINE_NODE_BYTES, BASELINE_NODE_BYTES);
            });
        }
        let theoretical = (queries.len() * POINT_BYTES) as u64 + tree_bytes;
        let ratio = cache.miss_traffic_bytes() as f64 / theoretical as f64;
        rows.push(FigRow {
            label: (*name).into(),
            values: vec![ratio, cache.stats().miss_rate() * 100.0],
        });
    }
    Figure {
        id: "fig3",
        caption: "DRAM traffic / theoretical minimum and cache miss rate (paper: ~10x, >85%)",
        columns: vec!["traffic_ratio", "miss_rate_%"],
        rows,
    }
}

/// Fig 4: neighbor-search bank-conflict rate vs. bank count, 8 concurrent
/// queries (PointNet++(c) workload).
pub fn fig4(scale: Scale) -> Figure {
    let (cloud, queries) = workload(scale, 0.25, 300);
    let tree = KdTree::build(&cloud);
    let split = SplitTree::new(&tree, 0).expect("top height 0");
    let mut rows = Vec::new();
    for banks in [2usize, 4, 8, 16, 32] {
        let cfg = SplitSearchConfig {
            radius: 1.0,
            max_neighbors: None,
            num_pes: 8,
            // stall-only: count conflicts without changing results
            elision: Some(ElisionConfig {
                elision_height: usize::MAX,
                num_banks: banks,
                descendant_reuse: false,
            }),
        };
        let (_, stats) = split.batch_search(&queries, &cfg);
        rows.push(FigRow { label: banks.to_string(), values: vec![stats.conflict_rate() * 100.0] });
    }
    Figure {
        id: "fig4",
        caption:
            "NS bank-conflict rate vs #banks, 8 concurrent queries (paper: 26.9% @4, 2.1% @32)",
        columns: vec!["conflict_rate_%"],
        rows,
    }
}

/// Fig 5: aggregation bank-conflict rate per network (16 banks, 16
/// concurrent requests).
pub fn fig5(scale: Scale) -> Figure {
    let mut rows = Vec::new();
    for (i, (name, frac, radius, k)) in NETWORK_SHAPES.iter().enumerate() {
        let (cloud, queries) = workload(scale, frac * 0.25, 400 + i as u64);
        let tree = KdTree::build(&cloud);
        let lists: Vec<Vec<usize>> = queries
            .iter()
            .map(|&q| {
                let hits = crescent::kdtree::radius_search(&tree, q, *radius, Some(*k));
                let idx: Vec<usize> = hits.iter().map(|n| n.index).collect();
                replicate_to_k(&idx, *k, Some(0))
            })
            .collect();
        let rate = conflict_rate_single_issue(&lists, SramConfig::point_buffer());
        rows.push(FigRow { label: (*name).into(), values: vec![rate * 100.0] });
    }
    Figure {
        id: "fig5",
        caption: "Aggregation bank-conflict rate, 16 banks / 16 requests (paper: 38.4-57.3%)",
        columns: vec!["conflict_rate_%"],
        rows,
    }
}

/// Fig 8: normalized number of tree nodes visited per query vs top-tree
/// height.
pub fn fig8(scale: Scale) -> Figure {
    let (cloud, _) = workload(scale, 0.25, 500);
    let tree = KdTree::build(&cloud);
    let q_idx = farthest_point_sample(&cloud, 256);
    let queries: Vec<Point3> = q_idx.iter().map(|&i| cloud.point(i)).collect();
    let mut rows = Vec::new();
    let mut base: Option<f64> = None;
    let max_ht = tree.height().saturating_sub(1).min(10);
    for ht in 0..=max_ht {
        let split = SplitTree::new(&tree, ht).expect("valid top height");
        let mut visits = 0usize;
        for &q in &queries {
            split.search_one_traced(q, 1.0, None, &mut |_| visits += 1);
        }
        let avg = visits as f64 / queries.len() as f64;
        let b = *base.get_or_insert(avg);
        rows.push(FigRow { label: ht.to_string(), values: vec![avg / b, avg] });
    }
    Figure {
        id: "fig8",
        caption: "Normalized #nodes visited per query vs top-tree height (paper: ~2% at TTH 10)",
        columns: vec!["norm_nodes_visited", "nodes_visited"],
        rows,
    }
}

/// Fig 9: normalized number of tree nodes skipped vs elision height.
pub fn fig9(scale: Scale) -> Figure {
    let (cloud, _) = workload(scale, 0.25, 600);
    let tree = KdTree::build(&cloud);
    let q_idx = farthest_point_sample(&cloud, 512);
    let queries: Vec<Point3> = q_idx.iter().map(|&i| cloud.point(i)).collect();
    let split = SplitTree::new(&tree, 2).expect("valid top height");
    let mut rows = Vec::new();
    let mut base: Option<f64> = None;
    let max_he = tree.height().saturating_sub(2).min(12);
    let mut he = 2usize;
    while he <= max_he {
        let cfg = SplitSearchConfig {
            radius: 1.0,
            max_neighbors: None,
            num_pes: 8,
            elision: Some(ElisionConfig {
                elision_height: he,
                num_banks: 4,
                descendant_reuse: false,
            }),
        };
        let (_, stats) = split.batch_search(&queries, &cfg);
        let skipped = stats.nodes_skipped as f64;
        let b = *base.get_or_insert(skipped.max(1.0));
        rows.push(FigRow { label: he.to_string(), values: vec![skipped / b, skipped] });
        he += 2;
    }
    Figure {
        id: "fig9",
        caption: "Normalized #nodes skipped vs elision height (paper: ~100% @2 -> ~10% @12)",
        columns: vec!["norm_nodes_skipped", "nodes_skipped"],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_matches_paper_shape() {
        let f = fig2(Scale::Quick);
        assert_eq!(f.rows.len(), 4);
        for row in &f.rows {
            assert!(
                row.values[0] > 90.0,
                "{}: non-streaming {}% should be ~99%",
                row.label,
                row.values[0]
            );
        }
    }

    #[test]
    fn fig4_decreasing_in_banks() {
        let f = fig4(Scale::Quick);
        let rates: Vec<f64> = f.rows.iter().map(|r| r.values[0]).collect();
        assert!(rates.windows(2).all(|w| w[1] <= w[0] + 1e-9), "{rates:?}");
        assert!(rates[0] > rates[4], "spread expected: {rates:?}");
    }

    #[test]
    fn fig8_monotone_decreasing() {
        let f = fig8(Scale::Quick);
        let norm: Vec<f64> = f.rows.iter().map(|r| r.values[0]).collect();
        assert!((norm[0] - 1.0).abs() < 1e-9);
        assert!(norm.windows(2).all(|w| w[1] <= w[0] * 1.02), "{norm:?}");
        assert!(*norm.last().unwrap() < 0.5, "deep split should cut visits: {norm:?}");
    }

    #[test]
    fn fig9_monotone_decreasing() {
        let f = fig9(Scale::Quick);
        let norm: Vec<f64> = f.rows.iter().map(|r| r.values[0]).collect();
        assert!((norm[0] - 1.0).abs() < 1e-9);
        assert!(*norm.last().unwrap() < norm[0], "{norm:?}");
    }
}
