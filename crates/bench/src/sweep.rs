//! The `repro sweep` subcommand: run the design-space explorer, emit the
//! machine-readable report, and (in `--check` mode) gate it against the
//! checked-in baseline with the exact comparator.
//!
//! ```text
//! repro sweep --quick --json target/sweep.json   # run + write report
//! repro sweep --quick --check                    # CI gate vs bench/baseline.json
//! repro sweep --quick --check --baseline other.json
//! repro sweep --workers 4                        # full grid, pinned pool
//! ```
//!
//! Every metric in the report is modeled, so `--check` is exact: any
//! byte of drift is a real behavioural change. To acknowledge intended
//! drift, refresh the baseline with
//! `repro sweep --quick --json bench/baseline.json` and commit the diff.

use std::path::{Path, PathBuf};

use crescent::format_table;
use crescent_explorer::{default_workers, diff_reports, run_sweep, SweepReport, SweepSpec};

/// Default location of the checked-in quick-sweep baseline, relative to
/// the workspace root (where CI and `cargo run` invoke the binary).
pub const DEFAULT_BASELINE: &str = "bench/baseline.json";

/// Parsed `repro sweep ...` arguments.
#[derive(Clone, Debug)]
pub struct SweepArgs {
    /// Run the quick (CI-scale) spec instead of the full grid.
    pub quick: bool,
    /// Write the JSON report here.
    pub json: Option<PathBuf>,
    /// Compare the report against `baseline` and fail on any drift.
    pub check: bool,
    /// Baseline path for `--check`.
    pub baseline: PathBuf,
    /// Worker-thread count (never affects the report bytes).
    pub workers: usize,
}

impl SweepArgs {
    /// Parses the arguments that follow the `sweep` keyword. Unknown
    /// flags are errors so typos cannot silently weaken the CI gate.
    pub fn parse(args: &[String]) -> Result<SweepArgs, String> {
        let mut parsed = SweepArgs {
            quick: false,
            json: None,
            check: false,
            baseline: PathBuf::from(DEFAULT_BASELINE),
            workers: default_workers(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => parsed.quick = true,
                "--check" => parsed.check = true,
                "--json" => {
                    let path = it.next().ok_or("--json needs a path")?;
                    parsed.json = Some(PathBuf::from(path));
                }
                "--baseline" => {
                    let path = it.next().ok_or("--baseline needs a path")?;
                    parsed.baseline = PathBuf::from(path);
                }
                "--workers" => {
                    let n = it.next().ok_or("--workers needs a count")?;
                    parsed.workers =
                        n.parse::<usize>().map_err(|_| format!("bad --workers value: {n}"))?;
                    if parsed.workers == 0 {
                        return Err("--workers must be >= 1".to_string());
                    }
                }
                other => return Err(format!("unknown sweep flag: {other}")),
            }
        }
        Ok(parsed)
    }
}

/// Runs the sweep subcommand end to end; returns the process exit code
/// (0 = success / no drift, 1 = drift or error).
pub fn run_sweep_command(args: &SweepArgs) -> i32 {
    let spec = if args.quick { SweepSpec::quick() } else { SweepSpec::full() };
    println!(
        "# design-space sweep: {} ({} points, {} workers)",
        spec.label,
        spec.num_points(),
        args.workers
    );
    let report = match run_sweep(&spec, args.workers) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("sweep failed: {err}");
            return 1;
        }
    };
    print!("{}", render_summary(&report));

    let json = report.to_json();
    if let Some(path) = &args.json {
        if let Err(err) = write_report(path, &json) {
            eprintln!("cannot write {}: {err}", path.display());
            return 1;
        }
        println!("report written to {}", path.display());
    }

    if args.check {
        let baseline = match std::fs::read_to_string(&args.baseline) {
            Ok(text) => text,
            Err(err) => {
                eprintln!(
                    "cannot read baseline {}: {err}\n\
                     (generate one with `repro sweep{} --json {}` and commit it)",
                    args.baseline.display(),
                    if args.quick { " --quick" } else { "" },
                    args.baseline.display()
                );
                return 1;
            }
        };
        match diff_reports(&baseline, &json) {
            None => println!("sweep check OK: report matches {}", args.baseline.display()),
            Some(drift) => {
                eprintln!("{drift}");
                eprintln!(
                    "if this drift is intended, refresh the baseline:\n\
                     cargo run --release -p crescent-bench --bin repro -- sweep{} --json {}",
                    if args.quick { " --quick" } else { "" },
                    args.baseline.display()
                );
                return 1;
            }
        }
    }
    0
}

/// A short human-readable digest of the report: the per-scenario Pareto
/// fronts with each member's headline metrics.
pub fn render_summary(report: &SweepReport) -> String {
    let mut out = String::new();
    let mut rows = Vec::new();
    for (scenario, front) in report.pareto() {
        for &idx in &front {
            let r = &report.rows[idx];
            rows.push(vec![
                scenario.to_string(),
                format!("{idx}"),
                r.maintenance.to_string(),
                format!("{}", r.num_pes),
                format!("{}", r.tree_banks),
                if r.aggregation_elision { "on".to_string() } else { "off".to_string() },
                format!("<{},{}>", r.top_height_used, r.elision_depth),
                format!("{}", r.total_cycles()),
                format!("{:.0}", r.energy.total()),
                format!("{:.4}", r.worst_recall()),
            ]);
        }
    }
    out.push_str(&format!(
        "{} rows; Pareto fronts (cycles x energy x recall) per scenario:\n",
        report.rows.len()
    ));
    out.push_str(&format_table(
        &[
            "scenario",
            "row",
            "maint",
            "pes",
            "banks",
            "agg",
            "<h_t,h_e>",
            "cycles",
            "energy",
            "recall",
        ],
        &rows,
    ));
    out
}

fn write_report(path: &Path, json: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_ci_invocations() {
        let a = SweepArgs::parse(&strings(&["--quick", "--json", "target/sweep.json"])).unwrap();
        assert!(a.quick);
        assert!(!a.check);
        assert_eq!(a.json.as_deref(), Some(Path::new("target/sweep.json")));
        assert_eq!(a.baseline, Path::new(DEFAULT_BASELINE));

        let b = SweepArgs::parse(&strings(&["--quick", "--check"])).unwrap();
        assert!(b.check);
        assert!(b.json.is_none());

        let c = SweepArgs::parse(&strings(&["--check", "--baseline", "x.json", "--workers", "3"]))
            .unwrap();
        assert_eq!(c.baseline, Path::new("x.json"));
        assert_eq!(c.workers, 3);
        assert!(!c.quick);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(SweepArgs::parse(&strings(&["--jsn", "x"])).is_err());
        assert!(SweepArgs::parse(&strings(&["--json"])).is_err());
        assert!(SweepArgs::parse(&strings(&["--workers", "0"])).is_err());
        assert!(SweepArgs::parse(&strings(&["--workers", "many"])).is_err());
    }
}
