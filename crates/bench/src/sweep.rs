//! The `repro sweep` / `repro sweep-merge` subcommands: run the
//! design-space explorer (whole grid or one shard of it), emit the
//! machine-readable report, reassemble shard reports byte-exactly, and
//! (in `--check` mode) gate against the checked-in baseline with the
//! exact comparator.
//!
//! ```text
//! repro sweep --quick --json target/sweep.json   # run + write report
//! repro sweep --quick --check                    # CI gate vs bench/baseline.json
//! repro sweep --quick --check --baseline other.json
//! repro sweep --workers 4                        # full grid, pinned pool
//! repro sweep --quick --shard 2/3 --json target/shard-2.json
//! repro sweep --quick --timings target/timings.json  # wall-clock sidecar
//! repro sweep-merge --check --json target/sweep.json target/shard-*.json
//! ```
//!
//! Every metric in the report is modeled, so `--check` is exact: any
//! byte of drift is a real behavioural change. Wall-clock measurements
//! travel on a separate channel: every run prints its total/setup/point
//! wall time to **stderr**, and `--timings <path>` additionally writes
//! the per-scenario and per-point breakdown as a sidecar JSON
//! ([`SweepTimings::to_json`]) that is never digested, never compared
//! by `--check`, and rejected by `sweep-merge` if a shard inlines it. To acknowledge intended
//! drift, refresh the baseline with
//! `repro sweep --quick --json bench/baseline.json` and commit the diff.
//! A sharded run (`--shard i/N` for every `i`, then `sweep-merge`)
//! produces bytes identical to the single-process run, so the two
//! workflows gate interchangeably.

use std::path::{Path, PathBuf};
use std::time::Instant;

use crescent::format_table;
use crescent_explorer::{
    default_workers, diff_reports, merge_shards, run_sweep_shard_timed, run_sweep_timed, ShardFile,
    SweepReport, SweepSpec, SweepTimings,
};

/// Default location of the checked-in quick-sweep baseline, relative to
/// the workspace root (where CI and `cargo run` invoke the binary).
pub const DEFAULT_BASELINE: &str = "bench/baseline.json";

/// Parsed `repro sweep ...` arguments.
#[derive(Clone, Debug)]
pub struct SweepArgs {
    /// Run the quick (CI-scale) spec instead of the full grid.
    pub quick: bool,
    /// Write the JSON report here.
    pub json: Option<PathBuf>,
    /// Compare the report against `baseline` and fail on any drift.
    pub check: bool,
    /// Baseline path for `--check`.
    pub baseline: PathBuf,
    /// Worker-thread count (never affects the report bytes).
    pub workers: usize,
    /// Run only shard `i` of `N` (`--shard i/N`, 1-based round-robin
    /// projection); `None` = the whole grid.
    pub shard: Option<(usize, usize)>,
    /// Write the wall-clock timings sidecar here (`--timings <path>`).
    /// A *separate* file from the report: measured time is never part
    /// of the gated report bytes, never diffed by `--check`, and
    /// `sweep-merge` rejects shards that inline it.
    pub timings: Option<PathBuf>,
}

impl SweepArgs {
    /// Parses the arguments that follow the `sweep` keyword. Unknown
    /// flags are errors so typos cannot silently weaken the CI gate.
    pub fn parse(args: &[String]) -> Result<SweepArgs, String> {
        let mut parsed = SweepArgs {
            quick: false,
            json: None,
            check: false,
            baseline: PathBuf::from(DEFAULT_BASELINE),
            workers: default_workers(),
            shard: None,
            timings: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => parsed.quick = true,
                "--check" => parsed.check = true,
                "--shard" => {
                    let value = it.next().ok_or("--shard needs i/N (e.g. --shard 2/3)")?;
                    let (i, n) = value
                        .split_once('/')
                        .and_then(|(i, n)| {
                            Some((i.parse::<usize>().ok()?, n.parse::<usize>().ok()?))
                        })
                        .ok_or_else(|| format!("bad --shard value: {value} (want i/N)"))?;
                    if n == 0 || i == 0 || i > n {
                        return Err(format!("--shard {value}: need 1 <= i <= N"));
                    }
                    parsed.shard = Some((i, n));
                }
                "--json" => {
                    let path = it.next().ok_or("--json needs a path")?;
                    parsed.json = Some(PathBuf::from(path));
                }
                "--timings" => {
                    let path = it.next().ok_or("--timings needs a path")?;
                    parsed.timings = Some(PathBuf::from(path));
                }
                "--baseline" => {
                    let path = it.next().ok_or("--baseline needs a path")?;
                    parsed.baseline = PathBuf::from(path);
                }
                "--workers" => {
                    let n = it.next().ok_or("--workers needs a count")?;
                    parsed.workers =
                        n.parse::<usize>().map_err(|_| format!("bad --workers value: {n}"))?;
                    if parsed.workers == 0 {
                        return Err("--workers must be >= 1".to_string());
                    }
                }
                other => return Err(format!("unknown sweep flag: {other}")),
            }
        }
        if parsed.shard.is_some() && parsed.check {
            return Err(
                "--shard runs a partial grid; gate the merged report with `sweep-merge --check` \
                 instead"
                    .to_string(),
            );
        }
        Ok(parsed)
    }
}

/// Runs the sweep subcommand end to end; returns the process exit code
/// (0 = success / no drift, 1 = drift or error).
pub fn run_sweep_command(args: &SweepArgs) -> i32 {
    let spec = if args.quick { SweepSpec::quick() } else { SweepSpec::full() };
    // announce the EFFECTIVE worker pool (requested count clamped to the
    // point count, exactly as run_sweep will clamp it) — the honest
    // number, not the requested one
    let points = match args.shard {
        Some((index, count)) => match spec.shard_points(index, count) {
            Ok(points) => points.len(),
            Err(err) => {
                eprintln!("sweep failed: {err}");
                return 1;
            }
        },
        None => spec.num_points(),
    };
    let workers = args.workers.clamp(1, points.max(1));
    match args.shard {
        Some((index, count)) => println!(
            "# design-space sweep: {} shard {index}/{count} ({points} of {} points, {workers} \
             workers)",
            spec.label,
            spec.num_points()
        ),
        None => {
            println!("# design-space sweep: {} ({points} points, {workers} workers)", spec.label)
        }
    }
    let outcome = match args.shard {
        Some((index, count)) => run_sweep_shard_timed(&spec, index, count, args.workers),
        None => run_sweep_timed(&spec, args.workers),
    };
    let (report, stats, timings) = match outcome {
        Ok(triple) => triple,
        Err(err) => {
            eprintln!("sweep failed: {err}");
            return 1;
        }
    };
    debug_assert_eq!(stats.workers, workers, "announced pool matches the executed pool");
    print!("{}", render_summary(&report));
    // the wall-clock accounting goes to STDERR in every mode: measured
    // time is operator feedback, never report data
    eprint_timings(&timings, stats.workers);

    let json = report.to_json();
    if let Some(path) = &args.json {
        if let Err(err) = write_report(path, &json) {
            eprintln!("cannot write {}: {err}", path.display());
            return 1;
        }
        println!("report written to {}", path.display());
    }
    if let Some(path) = &args.timings {
        if let Err(err) = write_report(path, &timings.to_json(&spec, report.shard)) {
            eprintln!("cannot write {}: {err}", path.display());
            return 1;
        }
        println!("timings sidecar written to {}", path.display());
    }

    if args.check {
        let baseline = match std::fs::read_to_string(&args.baseline) {
            Ok(text) => text,
            Err(err) => {
                eprintln!(
                    "cannot read baseline {}: {err}\n\
                     (generate one with `repro sweep{} --json {}` and commit it)",
                    args.baseline.display(),
                    if args.quick { " --quick" } else { "" },
                    args.baseline.display()
                );
                return 1;
            }
        };
        match diff_reports(&baseline, &json) {
            None => println!("sweep check OK: report matches {}", args.baseline.display()),
            Some(drift) => {
                eprintln!("{drift}");
                eprintln!(
                    "if this drift is intended, refresh the baseline:\n\
                     cargo run --release -p crescent-bench --bin repro -- sweep{} --json {}",
                    if args.quick { " --quick" } else { "" },
                    args.baseline.display()
                );
                return 1;
            }
        }
    }
    0
}

/// Parsed `repro sweep-merge ...` arguments.
#[derive(Clone, Debug)]
pub struct MergeArgs {
    /// Shard report files to merge (positional, order-insensitive).
    pub inputs: Vec<PathBuf>,
    /// Write the merged report here.
    pub json: Option<PathBuf>,
    /// Compare the merged report against `baseline` and fail on drift.
    pub check: bool,
    /// Baseline path for `--check`.
    pub baseline: PathBuf,
}

impl MergeArgs {
    /// Parses the arguments that follow the `sweep-merge` keyword.
    /// Positional arguments are shard report paths.
    pub fn parse(args: &[String]) -> Result<MergeArgs, String> {
        let mut parsed = MergeArgs {
            inputs: Vec::new(),
            json: None,
            check: false,
            baseline: PathBuf::from(DEFAULT_BASELINE),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--check" => parsed.check = true,
                "--json" => {
                    let path = it.next().ok_or("--json needs a path")?;
                    parsed.json = Some(PathBuf::from(path));
                }
                "--baseline" => {
                    let path = it.next().ok_or("--baseline needs a path")?;
                    parsed.baseline = PathBuf::from(path);
                }
                flag if flag.starts_with('-') => {
                    return Err(format!("unknown sweep-merge flag: {flag}"));
                }
                path => parsed.inputs.push(PathBuf::from(path)),
            }
        }
        if parsed.inputs.is_empty() {
            return Err("sweep-merge needs at least one shard report file".to_string());
        }
        Ok(parsed)
    }
}

/// Runs the sweep-merge subcommand end to end; returns the process exit
/// code (0 = success / no drift, 1 = drift or error).
pub fn run_sweep_merge_command(args: &MergeArgs) -> i32 {
    let merge_start = Instant::now();
    let mut shards = Vec::with_capacity(args.inputs.len());
    for path in &args.inputs {
        match std::fs::read_to_string(path) {
            Ok(text) => shards.push(ShardFile { name: path.display().to_string(), text }),
            Err(err) => {
                eprintln!("cannot read shard report {}: {err}", path.display());
                return 1;
            }
        }
    }
    let json = match merge_shards(&shards) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("sweep-merge failed: {err}");
            return 1;
        }
    };
    // name the resolved input order: the merge is order-insensitive by
    // construction, and printing the order is what lets the acceptance
    // test (and a suspicious operator) verify that claim end to end
    println!("# merged {} shard report(s):", shards.len());
    for shard in &shards {
        println!("#   {}", shard.name);
    }
    // a merge reassembles bytes — no setup/point phases — so the
    // wall-clock line covers reading + verifying + reassembling
    eprintln!("# wall-clock: merge {:.3}s", secs(merge_start.elapsed().as_nanos() as u64));

    if let Some(path) = &args.json {
        if let Err(err) = write_report(path, &json) {
            eprintln!("cannot write {}: {err}", path.display());
            return 1;
        }
        println!("report written to {}", path.display());
    }

    if args.check {
        let baseline = match std::fs::read_to_string(&args.baseline) {
            Ok(text) => text,
            Err(err) => {
                eprintln!(
                    "cannot read baseline {}: {err}\n\
                     (generate one with `repro sweep --quick --json {}` and commit it)",
                    args.baseline.display(),
                    args.baseline.display()
                );
                return 1;
            }
        };
        match diff_reports(&baseline, &json) {
            None => println!("sweep-merge check OK: report matches {}", args.baseline.display()),
            Some(drift) => {
                eprintln!("{drift}");
                eprintln!(
                    "if this drift is intended, refresh the baseline:\n\
                     cargo run --release -p crescent-bench --bin repro -- sweep --quick --json {}",
                    args.baseline.display()
                );
                return 1;
            }
        }
    }
    0
}

/// A short human-readable digest of the report: the per-scenario Pareto
/// fronts with each member's headline metrics.
pub fn render_summary(report: &SweepReport) -> String {
    let mut out = String::new();
    let mut rows = Vec::new();
    for (scenario, front) in report.pareto() {
        for &idx in &front {
            // front members are GLOBAL grid indices; in a shard report
            // the rows are a subset, so look the row up by its index
            // instead of assuming index == position
            let r = report
                .rows
                .iter()
                .find(|r| r.index == idx)
                .expect("pareto front references a row of this report");
            rows.push(vec![
                scenario.to_string(),
                format!("{idx}"),
                r.maintenance.to_string(),
                format!("{}", r.num_pes),
                format!("{}", r.tree_banks),
                if r.aggregation_elision { "on".to_string() } else { "off".to_string() },
                format!("<{},{}>", r.top_height_used, r.elision_depth),
                format!("{}", r.total_cycles()),
                format!("{:.0}", r.energy.total()),
                format!("{:.4}", r.worst_recall()),
            ]);
        }
    }
    out.push_str(&format!(
        "{} rows; Pareto fronts (cycles x energy x recall) per scenario:\n",
        report.rows.len()
    ));
    out.push_str(&format_table(
        &[
            "scenario",
            "row",
            "maint",
            "pes",
            "banks",
            "agg",
            "<h_t,h_e>",
            "cycles",
            "energy",
            "recall",
        ],
        &rows,
    ));
    out
}

/// Prints a run's wall-clock accounting to stderr (every mode gets it):
/// the run total, the serial scenario-setup prologue — overall and per
/// scenario — and the per-point time summed across the worker pool.
fn eprint_timings(timings: &SweepTimings, workers: usize) {
    eprintln!(
        "# wall-clock: total {:.3}s (scenario setup {:.3}s serial, points {:.3}s summed over \
         {workers} workers)",
        secs(timings.total_nanos),
        secs(timings.setup_nanos()),
        secs(timings.point_nanos()),
    );
    for (scenario, nanos) in &timings.setup {
        eprintln!("#   setup {scenario}: {:.3}s", secs(*nanos));
    }
}

fn secs(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

fn write_report(path: &Path, json: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_ci_invocations() {
        let a = SweepArgs::parse(&strings(&["--quick", "--json", "target/sweep.json"])).unwrap();
        assert!(a.quick);
        assert!(!a.check);
        assert_eq!(a.json.as_deref(), Some(Path::new("target/sweep.json")));
        assert_eq!(a.baseline, Path::new(DEFAULT_BASELINE));

        let b = SweepArgs::parse(&strings(&["--quick", "--check"])).unwrap();
        assert!(b.check);
        assert!(b.json.is_none());

        let c = SweepArgs::parse(&strings(&["--check", "--baseline", "x.json", "--workers", "3"]))
            .unwrap();
        assert_eq!(c.baseline, Path::new("x.json"));
        assert_eq!(c.workers, 3);
        assert!(!c.quick);
        assert!(c.timings.is_none());
    }

    #[test]
    fn parses_the_timings_sidecar_path() {
        let a = SweepArgs::parse(&strings(&["--quick", "--timings", "target/t.json"])).unwrap();
        assert_eq!(a.timings.as_deref(), Some(Path::new("target/t.json")));
        // the sidecar composes with every mode, including shards (CI
        // uploads one sidecar per shard) and --check (the sidecar is
        // not an input to the comparator)
        let b = SweepArgs::parse(&strings(&[
            "--quick",
            "--shard",
            "1/3",
            "--json",
            "s.json",
            "--timings",
            "t.json",
        ]))
        .unwrap();
        assert_eq!(b.timings.as_deref(), Some(Path::new("t.json")));
        let c = SweepArgs::parse(&strings(&["--quick", "--check", "--timings", "t.json"])).unwrap();
        assert!(c.check);
        assert!(SweepArgs::parse(&strings(&["--timings"])).is_err(), "path is mandatory");
    }

    #[test]
    fn parses_the_shard_projection() {
        let a = SweepArgs::parse(&strings(&["--quick", "--shard", "2/3"])).unwrap();
        assert_eq!(a.shard, Some((2, 3)));
        let whole = SweepArgs::parse(&strings(&["--quick"])).unwrap();
        assert_eq!(whole.shard, None);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(SweepArgs::parse(&strings(&["--jsn", "x"])).is_err());
        assert!(SweepArgs::parse(&strings(&["--json"])).is_err());
        assert!(SweepArgs::parse(&strings(&["--workers", "0"])).is_err());
        assert!(SweepArgs::parse(&strings(&["--workers", "many"])).is_err());
    }

    #[test]
    fn rejects_bad_shard_values() {
        assert!(SweepArgs::parse(&strings(&["--shard"])).is_err());
        assert!(SweepArgs::parse(&strings(&["--shard", "2"])).is_err());
        assert!(SweepArgs::parse(&strings(&["--shard", "0/3"])).is_err());
        assert!(SweepArgs::parse(&strings(&["--shard", "4/3"])).is_err());
        assert!(SweepArgs::parse(&strings(&["--shard", "1/0"])).is_err());
        assert!(SweepArgs::parse(&strings(&["--shard", "a/b"])).is_err());
    }

    #[test]
    fn rejects_check_on_a_partial_grid() {
        let err =
            SweepArgs::parse(&strings(&["--quick", "--shard", "1/2", "--check"])).unwrap_err();
        assert!(err.contains("sweep-merge --check"), "points at the right gate: {err}");
    }

    #[test]
    fn parses_merge_invocations() {
        let a = MergeArgs::parse(&strings(&[
            "--check",
            "--json",
            "target/sweep.json",
            "a.json",
            "b.json",
        ]))
        .unwrap();
        assert!(a.check);
        assert_eq!(a.json.as_deref(), Some(Path::new("target/sweep.json")));
        assert_eq!(a.inputs, vec![PathBuf::from("a.json"), PathBuf::from("b.json")]);
        assert_eq!(a.baseline, Path::new(DEFAULT_BASELINE));

        assert!(MergeArgs::parse(&strings(&[])).is_err(), "no shard files");
        assert!(MergeArgs::parse(&strings(&["--frobnicate", "a.json"])).is_err());
        assert!(MergeArgs::parse(&strings(&["a.json", "--json"])).is_err());
    }
}
