//! Figure-reproduction library for the Crescent (ISCA 2022) evaluation.
//!
//! Each paper figure has a function returning a [`Figure`] (id, caption,
//! columns, rows); the `repro` binary prints them, and the integration
//! tests assert their shapes. See EXPERIMENTS.md for the paper-vs-measured
//! record and DESIGN.md for the experiment → module map.

#![warn(missing_docs)]

pub mod accuracy;
pub mod common;
pub mod motivation;
pub mod performance;
pub mod serve;
pub mod sweep;

pub use common::{FigRow, Figure, Scale};
pub use serve::{run_serve_command, ServeArgs};
pub use sweep::{run_sweep_command, run_sweep_merge_command, MergeArgs, SweepArgs};

/// Runs one figure by id; `None` if the id is unknown.
///
/// Valid ids: `fig2 fig3 fig4 fig5 fig8 fig9 fig13 fig14 fig15 fig16
/// fig17 fig18 fig19 fig20 fig21 fig22 fig23 fig24` (fig14–17 render from
/// one shared simulation; requesting any of them runs the suite).
pub fn run_figure(id: &str, scale: Scale) -> Option<Vec<Figure>> {
    let figs = match id {
        "fig2" => vec![motivation::fig2(scale)],
        "fig3" => vec![motivation::fig3(scale)],
        "fig4" => vec![motivation::fig4(scale)],
        "fig5" => vec![motivation::fig5(scale)],
        "fig8" => vec![motivation::fig8(scale)],
        "fig9" => vec![motivation::fig9(scale)],
        "fig13" => vec![accuracy::fig13(scale)],
        "fig14" | "fig15" | "fig16" | "fig17" => {
            let suite = performance::PerformanceSuite::run(scale);
            vec![
                suite.fig14a(),
                suite.fig14b(),
                suite.fig15a(),
                suite.fig15b(),
                suite.fig16(),
                suite.fig17(),
            ]
        }
        "fig18" => vec![accuracy::fig18(scale)],
        "fig19" => vec![accuracy::fig19(scale)],
        "fig20" => vec![accuracy::fig20(scale)],
        "fig21" => vec![accuracy::fig21(scale)],
        "fig22" => {
            let (a, b) = performance::fig22(scale);
            vec![a, b]
        }
        "fig23" => vec![accuracy::fig23(scale)],
        "fig24" => vec![performance::fig24(scale)],
        "ablation_reuse" => vec![performance::ablation_reuse(scale)],
        _ => return None,
    };
    Some(figs)
}

/// All runnable figure ids, in paper order.
pub const ALL_FIGURES: [&str; 16] = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig8",
    "fig9",
    "fig13",
    "fig14",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "ablation_reuse",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_is_none() {
        assert!(run_figure("fig999", Scale::Quick).is_none());
    }

    #[test]
    fn cheap_figures_run() {
        for id in ["fig4", "fig8"] {
            let figs = run_figure(id, Scale::Quick).expect("known id");
            assert!(!figs.is_empty());
            assert!(!figs[0].rows.is_empty());
        }
    }
}
