//! Shared workloads and scaling for the figure-reproduction experiments.

use crescent_pointcloud::datasets::{generate_scene, LidarScene, LidarSceneConfig};
use crescent_pointcloud::PointCloud;

/// Experiment scale. `Quick` shrinks the workloads so the full suite runs
/// in minutes; `Full` uses the paper-scale workloads documented in
/// EXPERIMENTS.md. Trends are scale-stable (see `tests/scale.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Shrunk workloads for smoke runs and CI.
    Quick,
    /// The defaults recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Parses from a CLI flag.
    pub fn from_flag(quick: bool) -> Self {
        if quick {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Scene size for the trace experiments (Figs 2–4).
    pub fn scene_points(self) -> usize {
        match self {
            Scale::Quick => 60_000,
            Scale::Full => 400_000,
        }
    }

    /// Query count for the trace experiments.
    pub fn trace_queries(self) -> usize {
        match self {
            Scale::Quick => 4_000,
            Scale::Full => 40_000,
        }
    }

    /// Cloud size for the pipeline experiments (Figs 14–17, 22–24).
    pub fn pipeline_points(self) -> usize {
        match self {
            Scale::Quick => 8_192,
            Scale::Full => 16_384,
        }
    }

    /// Training epochs for the accuracy experiments (Figs 13, 18–21).
    pub fn epochs(self) -> usize {
        match self {
            Scale::Quick => 6,
            Scale::Full => 18,
        }
    }

    /// Classification train samples per class.
    pub fn train_per_class(self) -> usize {
        match self {
            Scale::Quick => 5,
            Scale::Full => 20,
        }
    }

    /// Classification test samples per class.
    pub fn test_per_class(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 8,
        }
    }

    /// Points per accuracy-experiment cloud.
    pub fn points_per_cloud(self) -> usize {
        match self {
            Scale::Quick => 128,
            Scale::Full => 256,
        }
    }
}

/// The LiDAR scene used by the memory-characterization experiments.
pub fn trace_scene(scale: Scale, seed: u64) -> LidarScene {
    generate_scene(&LidarSceneConfig {
        total_points: scale.scene_points(),
        num_cars: 24,
        num_poles: 48,
        num_walls: 10,
        half_extent: 50.0,
        seed,
    })
}

/// The normalized cloud fed to the pipeline experiments.
pub fn pipeline_cloud(scale: Scale, seed: u64) -> PointCloud {
    let mut scene = generate_scene(&LidarSceneConfig {
        total_points: scale.pipeline_points(),
        num_cars: 8,
        num_poles: 16,
        num_walls: 4,
        half_extent: 30.0,
        seed,
    });
    scene.cloud.normalize_unit_sphere();
    scene.cloud
}

/// One row of a figure's data series.
#[derive(Clone, Debug)]
pub struct FigRow {
    /// Row label (x value or system name).
    pub label: String,
    /// Column values in figure order.
    pub values: Vec<f64>,
}

/// A reproduced figure: id, caption, column headers, and rows.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Paper figure id, e.g. `"fig14a"`.
    pub id: &'static str,
    /// What the paper's figure shows.
    pub caption: &'static str,
    /// Column headers (not counting the row label).
    pub columns: Vec<&'static str>,
    /// Data rows.
    pub rows: Vec<FigRow>,
}

impl Figure {
    /// Renders the figure as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {}\n", self.id, self.caption);
        let mut headers = vec![""];
        headers.extend(&self.columns);
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut cells = vec![r.label.clone()];
                cells.extend(r.values.iter().map(|v| format!("{v:.4}")));
                cells
            })
            .collect();
        out.push_str(&crescent::format_table(&headers, &rows));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Quick.scene_points() < Scale::Full.scene_points());
        assert!(Scale::Quick.epochs() < Scale::Full.epochs());
        assert_eq!(Scale::from_flag(true), Scale::Quick);
        assert_eq!(Scale::from_flag(false), Scale::Full);
    }

    #[test]
    fn figure_renders() {
        let f = Figure {
            id: "figX",
            caption: "test",
            columns: vec!["a", "b"],
            rows: vec![FigRow { label: "r1".into(), values: vec![1.0, 2.0] }],
        };
        let s = f.render();
        assert!(s.contains("figX"));
        assert!(s.contains("1.0000"));
    }

    #[test]
    fn workloads_generate() {
        let scene = trace_scene(Scale::Quick, 1);
        assert!(scene.cloud.len() > 50_000);
        let cloud = pipeline_cloud(Scale::Quick, 2);
        assert!(cloud.len() > 7_000);
    }
}
