//! Batched two-stage search with amortized top-tree traversal and
//! frame-to-frame state reuse — the hot path of the streaming multi-frame
//! workload engine.
//!
//! [`SplitTree::batch_search`] simulates the lock-step PE hardware and is
//! the right tool for cycle/conflict modeling; this module is the
//! *algorithmic* batched counterpart. [`SplitTree::search_batch`] routes a
//! whole query batch down the top tree as one **wavefront**: every top-tree
//! node is fetched at most once per batch and its payload is shared by all
//! queries whose routing paths pass through it, instead of once per query.
//! Stage 2 then answers each sub-tree's queue with the same confined exact
//! traversal [`SplitTree::search_one`] uses, so the per-query neighbor sets
//! are **identical** to per-query search — only the fetch schedule changes.
//!
//! Across consecutive frames of a stream, a [`BatchState`] carries the
//! descent state forward: the wavefront and per-sub-tree queue allocations
//! are recycled, and the previous frame's sub-tree assignments are kept so
//! the engine can measure temporal locality (how many queries landed in the
//! same sub-tree as last frame — the signal future cross-frame caching
//! optimizations will exploit).

use crescent_pointcloud::{Neighbor, Point3, POINT_BYTES};

use crate::split::{finalize, subtree_radius_search, SplitTree};
use crate::tree::NODE_BYTES;

/// Reusable state for [`SplitTree::search_batch`], designed to live across
/// the frames of a stream.
///
/// Holds the wavefront and per-sub-tree queue buffers (recycled every call
/// so steady-state frames allocate almost nothing) plus the previous
/// frame's sub-tree assignments, from which the cross-frame
/// [`BatchSearchStats::assignment_reuses`] locality metric is computed.
#[derive(Debug, Default)]
pub struct BatchState {
    /// Current wavefront: `(top-tree node, queries whose path reaches it)`.
    frontier: Vec<(usize, Vec<usize>)>,
    /// Next-level wavefront under construction.
    next: Vec<(usize, Vec<usize>)>,
    /// Recycled query-list allocations.
    spare: Vec<Vec<usize>>,
    /// Per-sub-tree query queues (arrival order).
    queues: Vec<Vec<usize>>,
    /// Sub-tree assignment of each query in the most recent batch.
    assignments: Vec<Option<usize>>,
    /// Assignments of the batch before that (previous frame).
    prev_assignments: Vec<Option<usize>>,
    /// Number of batches processed through this state.
    frames: usize,
}

impl BatchState {
    /// Creates an empty state.
    pub fn new() -> Self {
        BatchState::default()
    }

    /// Sub-tree assignment of each query in the most recent batch.
    pub fn assignments(&self) -> &[Option<usize>] {
        &self.assignments
    }

    /// Number of batches (frames) processed through this state.
    pub fn frames(&self) -> usize {
        self.frames
    }

    fn take_list(&mut self) -> Vec<usize> {
        self.spare.pop().unwrap_or_default()
    }

    fn recycle(&mut self, mut list: Vec<usize>) {
        list.clear();
        self.spare.push(list);
    }
}

/// Statistics of one [`SplitTree::search_batch`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchSearchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Top-tree node fetches actually issued (each node once per batch).
    pub top_fetches: usize,
    /// Top-tree fetches per-query routing would have issued (the sum of all
    /// routing path lengths) — the traffic the wavefront amortizes away.
    pub top_fetches_unamortized: usize,
    /// Stage-2 node fetches (confined sub-tree traversals).
    pub subtree_visits: usize,
    /// Non-empty sub-trees touched by this batch (each is streamed from
    /// DRAM exactly once).
    pub subtrees_touched: usize,
    /// Queries assigned to the same sub-tree as in the previous batch run
    /// through the same [`BatchState`] (0 on the first frame).
    pub assignment_reuses: usize,
    /// DRAM bytes of the batched Crescent schedule: queries moved three
    /// times (read, staged, re-read), the top tree streamed once, and each
    /// touched sub-tree streamed once.
    pub dram_bytes: u64,
    /// 0-based index of this batch within the life of its [`BatchState`].
    pub frame_index: usize,
}

impl BatchSearchStats {
    /// Top-tree fetch amplification avoided by batching:
    /// `unamortized / issued` (1.0 when the batch has at most one query).
    pub fn amortization_factor(&self) -> f64 {
        if self.top_fetches == 0 {
            1.0
        } else {
            self.top_fetches_unamortized as f64 / self.top_fetches as f64
        }
    }

    /// Fraction of queries whose sub-tree assignment survived from the
    /// previous frame.
    pub fn reuse_fraction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.assignment_reuses as f64 / self.queries as f64
        }
    }
}

impl SplitTree<'_> {
    /// Batched two-stage search: one amortized top-tree descent for the
    /// whole batch, then exact search confined to each assigned sub-tree.
    ///
    /// Returns exactly the same per-query neighbor lists as calling
    /// [`SplitTree::search_one`] on every query — batching changes the
    /// fetch schedule (each top-tree node is read once per batch instead of
    /// once per query), never the results. Pass the same `state` across the
    /// frames of a stream to recycle its buffers and obtain the cross-frame
    /// [`BatchSearchStats::assignment_reuses`] metric.
    pub fn search_batch(
        &self,
        queries: &[Point3],
        radius: f32,
        max_neighbors: Option<usize>,
        state: &mut BatchState,
    ) -> (Vec<Vec<Neighbor>>, BatchSearchStats) {
        let tree = self.tree();
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        let mut stats = BatchSearchStats {
            queries: queries.len(),
            frame_index: state.frames,
            ..BatchSearchStats::default()
        };

        // rotate assignment history: last batch becomes "previous frame"
        std::mem::swap(&mut state.prev_assignments, &mut state.assignments);
        state.assignments.clear();
        state.assignments.resize(queries.len(), None);

        if tree.is_empty() || queries.is_empty() {
            state.frames += 1;
            return (results, stats);
        }

        // ---- stage 1: wavefront descent of the top tree ----
        // Every query starts at the root; at each level the queries sitting
        // on a node are partitioned onto its children, so a node is fetched
        // once no matter how many queries route through it.
        let r2 = radius * radius;
        let first_subtree = self.subtree_roots()[0];
        debug_assert!(state.frontier.is_empty() && state.next.is_empty());
        let mut root_list = state.take_list();
        root_list.extend(0..queries.len());
        if self.top_height() == 0 {
            for a in state.assignments.iter_mut() {
                *a = Some(0);
            }
            state.recycle(root_list);
        } else {
            state.frontier.push((0, root_list));
            while !state.frontier.is_empty() {
                while let Some((idx, qlist)) = state.frontier.pop() {
                    stats.top_fetches += 1; // one shared fetch for the node
                    stats.top_fetches_unamortized += qlist.len();
                    let node = tree.node(idx);
                    let axis = node.axis as usize;
                    let split_coord = node.point.coord(axis);
                    let (left, right) = (tree.left(idx), tree.right(idx));
                    let mut left_list = state.take_list();
                    let mut right_list = state.take_list();
                    for &qi in &qlist {
                        let q = queries[qi];
                        let d2 = node.point.dist2(q);
                        if d2 <= r2 {
                            results[qi]
                                .push(Neighbor { index: node.point_index as usize, dist2: d2 });
                        }
                        let (next_slot, side) = if q.coord(axis) - split_coord <= 0.0 {
                            (left, &mut left_list)
                        } else {
                            (right, &mut right_list)
                        };
                        match next_slot {
                            Some(n) if tree.level_of(n) >= self.top_height() => {
                                state.assignments[qi] = Some(n - first_subtree);
                            }
                            Some(_) => side.push(qi),
                            // ragged bottom: clamp like route_query does
                            None => {
                                state.assignments[qi] = Some(self.nearest_subtree_for(idx));
                            }
                        }
                    }
                    for (child, list) in [(left, left_list), (right, right_list)] {
                        match child {
                            Some(c) if !list.is_empty() => state.next.push((c, list)),
                            _ => state.recycle(list),
                        }
                    }
                    state.recycle(qlist);
                }
                std::mem::swap(&mut state.frontier, &mut state.next);
            }
        }

        // ---- group queries per sub-tree, preserving arrival order ----
        for q in state.queues.iter_mut() {
            q.clear();
        }
        state.queues.resize_with(self.num_subtrees(), Vec::new);
        for (qi, a) in state.assignments.iter().enumerate() {
            if let Some(s) = *a {
                state.queues[s].push(qi);
            }
        }

        // ---- stage 2: exact search confined to each assigned sub-tree ----
        for (s, queue) in state.queues.iter().enumerate() {
            if queue.is_empty() {
                continue;
            }
            stats.subtrees_touched += 1;
            stats.dram_bytes += (self.subtree_len(s) * NODE_BYTES) as u64;
            let root = self.subtree_roots()[s];
            for &qi in queue {
                subtree_radius_search(
                    tree,
                    root,
                    queries[qi],
                    radius,
                    &mut results[qi],
                    &mut |_| {
                        stats.subtree_visits += 1;
                    },
                );
            }
        }
        for hits in &mut results {
            finalize(hits, max_neighbors);
        }

        // Crescent's phased DRAM schedule (Sec 3.4): queries moved three
        // times, the top tree streamed once, touched sub-trees counted above.
        stats.dram_bytes += (3 * queries.len() * POINT_BYTES) as u64;
        stats.dram_bytes += (self.top_len() * NODE_BYTES) as u64;

        // ---- cross-frame locality ----
        for (a, p) in state.assignments.iter().zip(&state.prev_assignments) {
            if a.is_some() && a == p {
                stats.assignment_reuses += 1;
            }
        }
        state.frames += 1;
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::KdTree;
    use crescent_pointcloud::PointCloud;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                )
            })
            .collect()
    }

    fn random_queries(n: usize, seed: u64) -> Vec<Point3> {
        random_cloud(n, seed).into_points()
    }

    #[test]
    fn batch_identical_to_per_query() {
        for (ht, seed) in [(0usize, 60u64), (2, 61), (4, 62), (6, 63)] {
            let cloud = random_cloud(3000, seed);
            let tree = KdTree::build(&cloud);
            let split = SplitTree::new(&tree, ht).unwrap();
            let queries = random_queries(128, seed + 100);
            let mut state = BatchState::new();
            let (batch, _) = split.search_batch(&queries, 0.3, Some(16), &mut state);
            for (qi, &q) in queries.iter().enumerate() {
                let single = split.search_one(q, 0.3, Some(16));
                assert_eq!(batch[qi], single, "ht {ht} query {qi}");
            }
        }
    }

    #[test]
    fn top_fetches_are_amortized() {
        let cloud = random_cloud(4096, 64);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 5).unwrap();
        let queries = random_queries(512, 65);
        let mut state = BatchState::new();
        let (_, stats) = split.search_batch(&queries, 0.2, None, &mut state);
        // the wavefront touches each top-tree node at most once
        assert!(stats.top_fetches <= split.top_len());
        // per-query routing would fetch one node per level per query
        assert!(stats.top_fetches_unamortized >= queries.len() * split.top_height());
        assert!(stats.amortization_factor() > 4.0, "factor {}", stats.amortization_factor());
    }

    #[test]
    fn repeat_batch_reuses_assignments() {
        let cloud = random_cloud(2048, 66);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let queries = random_queries(96, 67);
        let mut state = BatchState::new();
        let (_, first) = split.search_batch(&queries, 0.25, Some(8), &mut state);
        assert_eq!(first.assignment_reuses, 0, "no previous frame yet");
        assert_eq!(first.frame_index, 0);
        let (_, second) = split.search_batch(&queries, 0.25, Some(8), &mut state);
        assert_eq!(second.assignment_reuses, queries.len(), "identical frame reuses everything");
        assert_eq!(second.frame_index, 1);
        assert!((second.reuse_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(state.frames(), 2);
    }

    #[test]
    fn shifted_batch_partially_reuses() {
        let cloud = random_cloud(4096, 68);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 4).unwrap();
        let queries = random_queries(256, 69);
        let shifted: Vec<Point3> =
            queries.iter().map(|q| *q + Point3::new(0.01, -0.01, 0.005)).collect();
        let mut state = BatchState::new();
        split.search_batch(&queries, 0.25, None, &mut state);
        let (_, stats) = split.search_batch(&shifted, 0.25, None, &mut state);
        // a small drift keeps most queries in their sub-tree
        assert!(
            stats.assignment_reuses > queries.len() / 2,
            "only {} of {} reused",
            stats.assignment_reuses,
            queries.len()
        );
        assert!(stats.assignment_reuses < queries.len(), "some queries must cross sub-trees");
    }

    #[test]
    fn dram_bytes_match_crescent_schedule() {
        let cloud = random_cloud(2048, 70);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let queries = random_queries(64, 71);
        let mut state = BatchState::new();
        let (_, stats) = split.search_batch(&queries, 0.3, None, &mut state);
        let reference = crate::baselines::crescent_dram_bytes(&split, &queries, 0.3);
        assert_eq!(stats.dram_bytes, reference);
    }

    #[test]
    fn empty_inputs() {
        let tree = KdTree::build(&PointCloud::new());
        let split = SplitTree::new(&tree, 0).unwrap();
        let mut state = BatchState::new();
        let (res, stats) = split.search_batch(&[Point3::ZERO], 1.0, None, &mut state);
        assert!(res[0].is_empty());
        assert_eq!(stats.top_fetches, 0);
        let cloud = random_cloud(100, 72);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 2).unwrap();
        let (res, stats) = split.search_batch(&[], 1.0, None, &mut state);
        assert!(res.is_empty());
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.dram_bytes, 0);
    }

    #[test]
    fn state_buffers_are_recycled() {
        let cloud = random_cloud(1024, 73);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let queries = random_queries(64, 74);
        let mut state = BatchState::new();
        split.search_batch(&queries, 0.3, None, &mut state);
        let spare_after_first = state.spare.len();
        assert!(spare_after_first > 0, "wavefront lists must return to the spare pool");
        split.search_batch(&queries, 0.3, None, &mut state);
        assert_eq!(state.spare.len(), spare_after_first, "steady state allocates nothing new");
    }
}
