//! Batched two-stage search with amortized top-tree traversal,
//! frame-to-frame state reuse, and the **same banked-arbitration timing
//! model as the per-query engine** — the hot path of the streaming
//! multi-frame workload engine.
//!
//! [`SplitTree::search_batch`] routes a whole query batch down the top
//! tree as one **wavefront**: every top-tree node is fetched at most once
//! per batch and its payload is shared by all queries whose routing paths
//! pass through it, instead of once per query. Because each stage-1 step
//! issues exactly one shared fetch, the wavefront's top-tree descent is
//! conflict-free *by construction* — the amortization is also a
//! serialization-free schedule.
//!
//! Stage 2 is where the banked tree buffer bites, and it is modeled, not
//! assumed away: with [`BatchSearchConfig::banking`] set, each sub-tree's
//! query queue is drained in lock-step by `num_pes` PEs through the same
//! [`crescent_memsim::BankedSram`]-backed arbiter the per-query engine
//! model ([`SplitTree::batch_search`]) uses — one shared implementation,
//! so the two paths cannot drift apart. A fetch that loses bank
//! arbitration **stalls** (re-issues next round) unless its node lies in
//! the `h_e` deepest levels of the tree, in which case it is **elided**:
//! dropped together with the subtree beneath it (Sec 4's selective
//! conflict elision, parameterized here by depth-from-leaves so the knob
//! is stable across frames of varying tree height; the engine path's
//! level threshold is `height − h_e`).
//!
//! At `h_e = 0` nothing is ever dropped, so the neighbor sets are
//! bit-identical to per-query [`SplitTree::search_one`] — and since the
//! stall-only queues are identical to the engine path's, the stage-2
//! conflict/round counts match [`SplitTree::batch_search`] exactly
//! (property-tested in `tests/elision_unified.rs`). With
//! `banking = None` the module degrades to the pure *algorithmic*
//! batched search (no timing model, results always identical to
//! `search_one`).
//!
//! Across consecutive frames of a stream, a [`BatchState`] carries the
//! descent state forward: the wavefront and per-sub-tree queue allocations
//! are recycled, and the previous frame's sub-tree assignments are kept so
//! the engine can measure temporal locality (how many queries landed in the
//! same sub-tree as last frame — the signal future cross-frame caching
//! optimizations will exploit).

use crescent_pointcloud::{Neighbor, Point3, POINT_BYTES};

use crate::split::{
    drain_subtree_queue, finalize, subtree_radius_search, DrainScratch, SplitTree, TreeArbiter,
};
use crate::tree::NODE_BYTES;

/// Reusable state for [`SplitTree::search_batch`], designed to live across
/// the frames of a stream.
///
/// Holds the wavefront and per-sub-tree queue buffers (recycled every call
/// so steady-state frames allocate almost nothing) plus the previous
/// frame's sub-tree assignments, from which the cross-frame
/// [`BatchSearchStats::assignment_reuses`] locality metric is computed.
#[derive(Debug, Default)]
pub struct BatchState {
    /// Current wavefront: `(top-tree node, queries whose path reaches it)`.
    frontier: Vec<(usize, Vec<usize>)>,
    /// Next-level wavefront under construction.
    next: Vec<(usize, Vec<usize>)>,
    /// Recycled query-list allocations.
    spare: Vec<Vec<usize>>,
    /// Per-sub-tree query queues (arrival order).
    queues: Vec<Vec<usize>>,
    /// Sub-tree assignment of each query in the most recent batch.
    assignments: Vec<Option<usize>>,
    /// Assignments of the batch before that (previous frame).
    prev_assignments: Vec<Option<usize>>,
    /// Stage-2 drain scratch (per-PE traversal stacks), recycled across
    /// sub-tree queues and frames.
    drain: DrainScratch,
    /// Number of batches processed through this state.
    frames: usize,
}

impl BatchState {
    /// Creates an empty state.
    pub fn new() -> Self {
        BatchState::default()
    }

    /// Sub-tree assignment of each query in the most recent batch.
    pub fn assignments(&self) -> &[Option<usize>] {
        &self.assignments
    }

    /// Number of batches (frames) processed through this state.
    pub fn frames(&self) -> usize {
        self.frames
    }

    fn take_list(&mut self) -> Vec<usize> {
        self.spare.pop().unwrap_or_default()
    }

    fn recycle(&mut self, mut list: Vec<usize>) {
        list.clear();
        self.spare.push(list);
    }
}

/// Configuration of [`SplitTree::search_batch`].
#[derive(Clone, Copy, Debug)]
pub struct BatchSearchConfig {
    /// Search radius.
    pub radius: f32,
    /// Cap on returned neighbors per query (`None` = unbounded).
    pub max_neighbors: Option<usize>,
    /// PEs draining each sub-tree queue in lock-step (stage 2). Ignored
    /// when `banking` is `None` (the algorithmic mode has no timing).
    pub num_pes: usize,
    /// The banked tree-buffer model; `None` = pure algorithmic batching
    /// (no arbitration rounds, results always equal `search_one`).
    pub banking: Option<BatchBankModel>,
}

impl BatchSearchConfig {
    /// Pure algorithmic batching: amortized fetch schedule, no timing
    /// model — the pre-unification behavior.
    pub fn algorithmic(radius: f32, max_neighbors: Option<usize>) -> Self {
        BatchSearchConfig { radius, max_neighbors, num_pes: 1, banking: None }
    }

    /// The unified banked model: `num_pes` lock-step PEs over `num_banks`
    /// tree-buffer banks, eliding conflicted fetches in the
    /// `elision_depth` deepest tree levels (`0` = stall-only, exact).
    pub fn banked(
        radius: f32,
        max_neighbors: Option<usize>,
        num_pes: usize,
        num_banks: usize,
        elision_depth: usize,
    ) -> Self {
        BatchSearchConfig {
            radius,
            max_neighbors,
            num_pes,
            banking: Some(BatchBankModel { num_banks, elision_depth, descendant_reuse: false }),
        }
    }

    /// Sets [`BatchBankModel::descendant_reuse`] on the banked model
    /// (no-op in algorithmic mode). With `elision_depth == 0` the flag
    /// is inert — no fetch is elision-eligible, so reuse never fires and
    /// results stay bit-identical to the stall-only model.
    pub fn with_descendant_reuse(mut self, reuse: bool) -> Self {
        if let Some(banking) = &mut self.banking {
            banking.descendant_reuse = reuse;
        }
        self
    }
}

/// The banked-SRAM side of a [`BatchSearchConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchBankModel {
    /// Tree-buffer banks (low-order interleaved on node index).
    pub num_banks: usize,
    /// The streaming form of the paper's `h_e` knob, measured as a depth
    /// from the leaves: a conflicted fetch is dropped iff its node lies
    /// in the `elision_depth` deepest levels of the tree (level
    /// `>= height − elision_depth`). `0` disables elision entirely
    /// (conflicts only stall, results stay exact); values `>= height`
    /// elide every conflict. Depth-from-leaves is what a stream can hold
    /// constant while per-frame tree heights wobble; the engine path's
    /// level-based [`ElisionConfig::elision_height`](crate::ElisionConfig)
    /// is recovered as `height − elision_depth`.
    pub elision_depth: usize,
    /// Sec 4.2 descendant-reuse salvage on elided fetches.
    pub descendant_reuse: bool,
}

/// Statistics of one [`SplitTree::search_batch`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchSearchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Top-tree node fetches actually issued (each node once per batch).
    pub top_fetches: usize,
    /// Top-tree fetches per-query routing would have issued (the sum of all
    /// routing path lengths) — the traffic the wavefront amortizes away.
    pub top_fetches_unamortized: usize,
    /// Stage-2 node fetches (confined sub-tree traversals).
    pub subtree_visits: usize,
    /// Non-empty sub-trees touched by this batch (each is streamed from
    /// DRAM exactly once).
    pub subtrees_touched: usize,
    /// Queries assigned to the same sub-tree as in the previous batch run
    /// through the same [`BatchState`] (0 on the first frame).
    pub assignment_reuses: usize,
    /// DRAM bytes of the batched Crescent schedule: queries moved three
    /// times (read, staged, re-read), the top tree streamed once, and each
    /// touched sub-tree streamed once.
    pub dram_bytes: u64,
    /// 0-based index of this batch within the life of its [`BatchState`].
    pub frame_index: usize,
    /// Stage-2 lock-step arbitration rounds — the banked model's compute
    /// cycle count for the sub-tree stage (0 in algorithmic mode, where
    /// no rounds are simulated). Conflict stalls lengthen it, elision
    /// shortens it; at `h_e = 0` it equals the per-query engine model's
    /// [`SplitSearchStats::subtree_rounds`](crate::SplitSearchStats) on
    /// the same queues.
    pub subtree_rounds: usize,
    /// Rounds in which at least one fetch stalled on a bank conflict —
    /// the serialization a conflict-free (or fully eliding) tree buffer
    /// would win back.
    pub stall_rounds: usize,
    /// Stage-2 fetch attempts issued to the banked tree buffer,
    /// including re-issues after stalls (0 in algorithmic mode).
    pub fetch_attempts: usize,
    /// Attempts that lost bank arbitration (stalled + elided + reused).
    pub bank_conflicts: usize,
    /// Lost attempts that stalled and re-issued next round.
    pub conflict_stalls: usize,
    /// Lost attempts dropped by `h_e` elision (each also drops the
    /// subtree beneath the node — see
    /// [`BatchSearchStats::nodes_skipped`]).
    pub conflicts_elided: usize,
    /// Lost attempts salvaged by descendant reuse
    /// ([`BatchBankModel::descendant_reuse`]).
    pub conflict_reuses: usize,
    /// Tree nodes made unreachable by elision (dropped fetch + its whole
    /// subtree) — the streaming counterpart of the Fig 9 metric.
    pub nodes_skipped: usize,
}

impl BatchSearchStats {
    /// Top-tree fetch amplification avoided by batching:
    /// `unamortized / issued` (1.0 when the batch has at most one query).
    pub fn amortization_factor(&self) -> f64 {
        if self.top_fetches == 0 {
            1.0
        } else {
            self.top_fetches_unamortized as f64 / self.top_fetches as f64
        }
    }

    /// Fraction of queries whose sub-tree assignment survived from the
    /// previous frame.
    pub fn reuse_fraction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.assignment_reuses as f64 / self.queries as f64
        }
    }

    /// Fraction of stage-2 fetch attempts that bank-conflicted (the
    /// Fig 4 metric on the streaming path; 0.0 in algorithmic mode).
    pub fn conflict_rate(&self) -> f64 {
        if self.fetch_attempts == 0 {
            0.0
        } else {
            self.bank_conflicts as f64 / self.fetch_attempts as f64
        }
    }
}

impl SplitTree<'_> {
    /// Batched two-stage search: one amortized (conflict-free by
    /// construction) top-tree wavefront for the whole batch, then search
    /// confined to each assigned sub-tree — through the unified banked
    /// arbitration model when [`BatchSearchConfig::banking`] is set.
    ///
    /// * With `banking = None`, or with `elision_depth = 0`, the
    ///   per-query neighbor lists are **bit-identical** to calling
    ///   [`SplitTree::search_one`] on every query — batching (and
    ///   stall-only arbitration) changes fetch schedules and cycle
    ///   counts, never results.
    /// * With `elision_depth > 0`, conflicted fetches in the deepest
    ///   `elision_depth` tree levels are dropped: results become a
    ///   subset of the exact ones (approximation is always subtractive)
    ///   and [`BatchSearchStats::subtree_rounds`] shrinks.
    ///
    /// Pass the same `state` across the frames of a stream to recycle its
    /// buffers and obtain the cross-frame
    /// [`BatchSearchStats::assignment_reuses`] metric.
    pub fn search_batch(
        &self,
        queries: &[Point3],
        config: &BatchSearchConfig,
        state: &mut BatchState,
    ) -> (Vec<Vec<Neighbor>>, BatchSearchStats) {
        let radius = config.radius;
        let max_neighbors = config.max_neighbors;
        let tree = self.tree();
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        let mut stats = BatchSearchStats {
            queries: queries.len(),
            frame_index: state.frames,
            ..BatchSearchStats::default()
        };

        // rotate assignment history: last batch becomes "previous frame"
        std::mem::swap(&mut state.prev_assignments, &mut state.assignments);
        state.assignments.clear();
        state.assignments.resize(queries.len(), None);

        if tree.is_empty() || queries.is_empty() {
            state.frames += 1;
            return (results, stats);
        }

        // ---- stage 1: wavefront descent of the top tree ----
        // Every query starts at the root; at each level the queries sitting
        // on a node are partitioned onto its children, so a node is fetched
        // once no matter how many queries route through it.
        let r2 = radius * radius;
        let first_subtree = self.subtree_roots()[0];
        debug_assert!(state.frontier.is_empty() && state.next.is_empty());
        let mut root_list = state.take_list();
        root_list.extend(0..queries.len());
        if self.top_height() == 0 {
            for a in state.assignments.iter_mut() {
                *a = Some(0);
            }
            state.recycle(root_list);
        } else {
            state.frontier.push((0, root_list));
            while !state.frontier.is_empty() {
                while let Some((idx, qlist)) = state.frontier.pop() {
                    stats.top_fetches += 1; // one shared fetch for the node
                    stats.top_fetches_unamortized += qlist.len();
                    let point = tree.point_of(idx);
                    let axis = tree.axis_of(idx);
                    let split_coord = point.coord(axis);
                    let (left, right) = (tree.left(idx), tree.right(idx));
                    let mut left_list = state.take_list();
                    let mut right_list = state.take_list();
                    for &qi in &qlist {
                        let q = queries[qi];
                        let d2 = point.dist2(q);
                        if d2 <= r2 {
                            results[qi]
                                .push(Neighbor { index: tree.point_index_of(idx), dist2: d2 });
                        }
                        let (next_slot, side) = if q.coord(axis) - split_coord <= 0.0 {
                            (left, &mut left_list)
                        } else {
                            (right, &mut right_list)
                        };
                        match next_slot {
                            Some(n) if tree.level_of(n) >= self.top_height() => {
                                state.assignments[qi] = Some(n - first_subtree);
                            }
                            Some(_) => side.push(qi),
                            // ragged bottom: clamp like route_query does
                            None => {
                                state.assignments[qi] = Some(self.nearest_subtree_for(idx));
                            }
                        }
                    }
                    for (child, list) in [(left, left_list), (right, right_list)] {
                        match child {
                            Some(c) if !list.is_empty() => state.next.push((c, list)),
                            _ => state.recycle(list),
                        }
                    }
                    state.recycle(qlist);
                }
                std::mem::swap(&mut state.frontier, &mut state.next);
            }
        }

        // ---- group queries per sub-tree, preserving arrival order ----
        for q in state.queues.iter_mut() {
            q.clear();
        }
        state.queues.resize_with(self.num_subtrees(), Vec::new);
        for (qi, a) in state.assignments.iter().enumerate() {
            if let Some(s) = *a {
                state.queues[s].push(qi);
            }
        }

        // ---- stage 2: search confined to each assigned sub-tree ----
        // The banked mode drains each queue through the SAME lock-step
        // arbitration implementation the per-query engine model uses
        // (`drain_subtree_queue`); the algorithmic mode walks each query
        // sequentially with no timing model.
        let mut arbiter = config.banking.map(|b| {
            // depth-from-leaves h_e -> the engine's level threshold
            let threshold = tree.height().saturating_sub(b.elision_depth);
            TreeArbiter::banked(b.num_banks, threshold, b.descendant_reuse)
        });
        for (s, queue) in state.queues.iter().enumerate() {
            if queue.is_empty() {
                continue;
            }
            stats.subtrees_touched += 1;
            stats.dram_bytes += (self.subtree_len(s) * NODE_BYTES) as u64;
            let root = self.subtree_roots()[s];
            match arbiter.as_mut() {
                Some(arbiter) => {
                    let q = drain_subtree_queue(
                        tree,
                        root,
                        queue,
                        queries,
                        radius,
                        config.num_pes,
                        arbiter,
                        &mut state.drain,
                        &mut results,
                    );
                    stats.subtree_visits += q.visits;
                    stats.subtree_rounds += q.rounds;
                    stats.stall_rounds += q.stall_rounds;
                    stats.fetch_attempts += q.attempts;
                    stats.bank_conflicts += q.conflicts;
                    stats.conflict_stalls += q.stalls;
                    stats.conflicts_elided += q.elided;
                    stats.conflict_reuses += q.reuses;
                    stats.nodes_skipped += q.skipped;
                }
                None => {
                    for &qi in queue {
                        subtree_radius_search(
                            tree,
                            root,
                            queries[qi],
                            radius,
                            &mut results[qi],
                            &mut |_| {
                                stats.subtree_visits += 1;
                            },
                        );
                    }
                }
            }
        }
        for hits in &mut results {
            finalize(hits, max_neighbors);
        }

        // Crescent's phased DRAM schedule (Sec 3.4): queries moved three
        // times, the top tree streamed once, touched sub-trees counted above.
        stats.dram_bytes += (3 * queries.len() * POINT_BYTES) as u64;
        stats.dram_bytes += (self.top_len() * NODE_BYTES) as u64;

        // ---- cross-frame locality ----
        for (a, p) in state.assignments.iter().zip(&state.prev_assignments) {
            if a.is_some() && a == p {
                stats.assignment_reuses += 1;
            }
        }
        state.frames += 1;
        (results, stats)
    }
}

/// A tenant-tagged view over one concatenated query wavefront.
///
/// A multi-tenant scheduler batches the ready queries of several tenants
/// into a single [`SplitTree::search_batch`] call so the top-tree
/// wavefront amortizes across tenants. The batch itself is tag-blind —
/// it sees one flat query slice — so the tags live beside the queries in
/// this view and [`TaggedBatch::split_results`] demultiplexes the flat
/// result vector back into per-segment slices afterwards. Because the
/// search never sees the tags, tagging cannot perturb results or timing:
/// at `h_e = 0` every tenant's neighbor lists are bit-identical to a
/// solo run of that tenant on the same tree, whatever the co-tenants.
#[derive(Clone, Debug, Default)]
pub struct TaggedBatch {
    queries: Vec<Point3>,
    /// `(tag, query count)` per pushed segment, in push order.
    segments: Vec<(u64, usize)>,
}

impl TaggedBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        TaggedBatch::default()
    }

    /// Clears the batch for reuse, keeping its allocations.
    pub fn clear(&mut self) {
        self.queries.clear();
        self.segments.clear();
    }

    /// Appends one tenant's ready queries as a tagged segment. Segments
    /// keep their push order; the same tag may appear more than once
    /// (e.g. two frames of one tenant riding the same wavefront).
    pub fn push_segment(&mut self, tag: u64, queries: &[Point3]) {
        self.queries.extend_from_slice(queries);
        self.segments.push((tag, queries.len()));
    }

    /// The flat concatenated query slice — what the search engine sees.
    pub fn queries(&self) -> &[Point3] {
        &self.queries
    }

    /// The `(tag, query count)` segments in push order.
    pub fn segments(&self) -> &[(u64, usize)] {
        &self.segments
    }

    /// Total query count across all segments.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch holds no queries. Note a batch of empty
    /// segments is empty while still carrying segment tags.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Splits a flat per-query result vector (as returned by
    /// [`SplitTree::search_batch`] on [`Self::queries`]) back into
    /// `(tag, per-query results)` per segment, in push order.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` differs from [`Self::len`].
    pub fn split_results<T>(&self, mut flat: Vec<T>) -> Vec<(u64, Vec<T>)> {
        assert_eq!(flat.len(), self.len(), "one result per tagged query");
        let mut out = Vec::with_capacity(self.segments.len());
        // split from the back so each segment is a cheap off-the-end split
        for &(tag, len) in self.segments.iter().rev() {
            let seg = flat.split_off(flat.len() - len);
            out.push((tag, seg));
        }
        out.reverse();
        out
    }
}

/// Per-segment results of a tagged batch search: one `(tag, per-query
/// neighbor lists)` entry per segment, in push order.
pub type TaggedResults = Vec<(u64, Vec<Vec<Neighbor>>)>;

impl SplitTree<'_> {
    /// [`SplitTree::search_batch`] over a tenant-tagged wavefront: runs
    /// the flat concatenated batch (so the stats describe the shared
    /// wavefront, tags included in no way), then demultiplexes the
    /// results per segment via [`TaggedBatch::split_results`].
    pub fn search_batch_tagged(
        &self,
        batch: &TaggedBatch,
        config: &BatchSearchConfig,
        state: &mut BatchState,
    ) -> (TaggedResults, BatchSearchStats) {
        let (flat, stats) = self.search_batch(batch.queries(), config, state);
        (batch.split_results(flat), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::KdTree;
    use crescent_pointcloud::PointCloud;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                )
            })
            .collect()
    }

    fn random_queries(n: usize, seed: u64) -> Vec<Point3> {
        random_cloud(n, seed).into_points()
    }

    #[test]
    fn batch_identical_to_per_query() {
        for (ht, seed) in [(0usize, 60u64), (2, 61), (4, 62), (6, 63)] {
            let cloud = random_cloud(3000, seed);
            let tree = KdTree::build(&cloud);
            let split = SplitTree::new(&tree, ht).unwrap();
            let queries = random_queries(128, seed + 100);
            let mut state = BatchState::new();
            let (batch, _) = split.search_batch(
                &queries,
                &BatchSearchConfig::algorithmic(0.3, Some(16)),
                &mut state,
            );
            for (qi, &q) in queries.iter().enumerate() {
                let single = split.search_one(q, 0.3, Some(16));
                assert_eq!(batch[qi], single, "ht {ht} query {qi}");
            }
        }
    }

    #[test]
    fn top_fetches_are_amortized() {
        let cloud = random_cloud(4096, 64);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 5).unwrap();
        let queries = random_queries(512, 65);
        let mut state = BatchState::new();
        let (_, stats) =
            split.search_batch(&queries, &BatchSearchConfig::algorithmic(0.2, None), &mut state);
        // the wavefront touches each top-tree node at most once
        assert!(stats.top_fetches <= split.top_len());
        // per-query routing would fetch one node per level per query
        assert!(stats.top_fetches_unamortized >= queries.len() * split.top_height());
        assert!(stats.amortization_factor() > 4.0, "factor {}", stats.amortization_factor());
    }

    #[test]
    fn repeat_batch_reuses_assignments() {
        let cloud = random_cloud(2048, 66);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let queries = random_queries(96, 67);
        let mut state = BatchState::new();
        let (_, first) = split.search_batch(
            &queries,
            &BatchSearchConfig::algorithmic(0.25, Some(8)),
            &mut state,
        );
        assert_eq!(first.assignment_reuses, 0, "no previous frame yet");
        assert_eq!(first.frame_index, 0);
        let (_, second) = split.search_batch(
            &queries,
            &BatchSearchConfig::algorithmic(0.25, Some(8)),
            &mut state,
        );
        assert_eq!(second.assignment_reuses, queries.len(), "identical frame reuses everything");
        assert_eq!(second.frame_index, 1);
        assert!((second.reuse_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(state.frames(), 2);
    }

    #[test]
    fn shifted_batch_partially_reuses() {
        let cloud = random_cloud(4096, 68);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 4).unwrap();
        let queries = random_queries(256, 69);
        let shifted: Vec<Point3> =
            queries.iter().map(|q| *q + Point3::new(0.01, -0.01, 0.005)).collect();
        let mut state = BatchState::new();
        split.search_batch(&queries, &BatchSearchConfig::algorithmic(0.25, None), &mut state);
        let (_, stats) =
            split.search_batch(&shifted, &BatchSearchConfig::algorithmic(0.25, None), &mut state);
        // a small drift keeps most queries in their sub-tree
        assert!(
            stats.assignment_reuses > queries.len() / 2,
            "only {} of {} reused",
            stats.assignment_reuses,
            queries.len()
        );
        assert!(stats.assignment_reuses < queries.len(), "some queries must cross sub-trees");
    }

    #[test]
    fn dram_bytes_match_crescent_schedule() {
        let cloud = random_cloud(2048, 70);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let queries = random_queries(64, 71);
        let mut state = BatchState::new();
        let (_, stats) =
            split.search_batch(&queries, &BatchSearchConfig::algorithmic(0.3, None), &mut state);
        let reference = crate::baselines::crescent_dram_bytes(&split, &queries, 0.3);
        assert_eq!(stats.dram_bytes, reference);
    }

    #[test]
    fn empty_inputs() {
        let tree = KdTree::build(&PointCloud::new());
        let split = SplitTree::new(&tree, 0).unwrap();
        let mut state = BatchState::new();
        let (res, stats) = split.search_batch(
            &[Point3::ZERO],
            &BatchSearchConfig::algorithmic(1.0, None),
            &mut state,
        );
        assert!(res[0].is_empty());
        assert_eq!(stats.top_fetches, 0);
        let cloud = random_cloud(100, 72);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 2).unwrap();
        let (res, stats) =
            split.search_batch(&[], &BatchSearchConfig::algorithmic(1.0, None), &mut state);
        assert!(res.is_empty());
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.dram_bytes, 0);
    }

    #[test]
    fn banked_stall_only_is_bit_identical_to_search_one() {
        // h_e = 0: conflicts serialize but never drop, so the wavefront
        // stays an exact oracle while the timing model runs
        let cloud = random_cloud(4096, 75);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let queries = random_queries(128, 76);
        let cfg = BatchSearchConfig::banked(0.3, Some(16), 8, 4, 0);
        let mut state = BatchState::new();
        let (batch, stats) = split.search_batch(&queries, &cfg, &mut state);
        for (qi, &q) in queries.iter().enumerate() {
            assert_eq!(batch[qi], split.search_one(q, 0.3, Some(16)), "query {qi}");
        }
        assert_eq!(stats.conflicts_elided, 0, "h_e = 0 never drops a fetch");
        assert_eq!(stats.nodes_skipped, 0);
        assert!(stats.subtree_rounds > 0, "the banked model counts rounds");
        assert!(stats.bank_conflicts > 0, "8 PEs on 4 banks must conflict");
        assert_eq!(stats.bank_conflicts, stats.conflict_stalls, "every conflict stalls");
        assert_eq!(
            stats.fetch_attempts,
            stats.subtree_visits + stats.bank_conflicts,
            "every stage-2 attempt either visits or loses arbitration"
        );
        assert!(stats.stall_rounds > 0 && stats.stall_rounds <= stats.subtree_rounds);
        // more rounds than the conflict-free lower bound, fewer than the
        // fully serialized upper bound
        assert!(stats.subtree_rounds >= stats.subtree_visits.div_ceil(8));
        assert!(stats.subtree_rounds <= stats.fetch_attempts);
    }

    #[test]
    fn banked_elision_subsets_results_and_saves_rounds() {
        let cloud = random_cloud(4096, 77);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 2).unwrap();
        let queries = random_queries(96, 78);
        let exact = BatchSearchConfig::banked(0.3, None, 8, 4, 0);
        let elide = BatchSearchConfig::banked(0.3, None, 8, 4, 6);
        let (full, s0) = split.search_batch(&queries, &exact, &mut BatchState::new());
        let (approx, s6) = split.search_batch(&queries, &elide, &mut BatchState::new());
        assert!(s6.conflicts_elided > 0, "deep elision must fire");
        assert!(s6.nodes_skipped >= s6.conflicts_elided);
        assert!(s6.subtree_rounds < s0.subtree_rounds, "elision must save rounds");
        for (a, f) in approx.iter().zip(&full) {
            let fset: Vec<usize> = f.iter().map(|n| n.index).collect();
            for n in a {
                assert!(fset.contains(&n.index), "elision may drop, never invent");
            }
        }
        let full_count: usize = full.iter().map(Vec::len).sum();
        let approx_count: usize = approx.iter().map(Vec::len).sum();
        assert!(approx_count <= full_count);
    }

    #[test]
    fn banked_rounds_monotone_in_elision_depth() {
        // the streaming h_e convention: deeper elision eligibility can
        // only remove work (stalls turn into drops, drops shed subtrees)
        let cloud = random_cloud(8192, 79);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 2).unwrap();
        let queries = random_queries(128, 80);
        let mut prev = usize::MAX;
        for depth in [0usize, 2, 4, 6, 8] {
            let cfg = BatchSearchConfig::banked(0.25, None, 8, 4, depth);
            let (_, stats) = split.search_batch(&queries, &cfg, &mut BatchState::new());
            let cycles = stats.top_fetches + stats.subtree_rounds;
            assert!(cycles <= prev, "h_e {depth}: {cycles} rounds > previous {prev}");
            prev = cycles;
        }
    }

    #[test]
    fn bank_axis_moves_the_conflict_rate() {
        let cloud = random_cloud(4096, 81);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 2).unwrap();
        let queries = random_queries(96, 82);
        let mut prev_rate = 1.1f64;
        let mut prev_rounds = usize::MAX;
        for banks in [2usize, 4, 16] {
            let cfg = BatchSearchConfig::banked(0.3, None, 8, banks, 0);
            let (_, stats) = split.search_batch(&queries, &cfg, &mut BatchState::new());
            assert!(stats.conflict_rate() <= prev_rate + 1e-9, "banks {banks}");
            assert!(stats.subtree_rounds <= prev_rounds, "banks {banks}");
            prev_rate = stats.conflict_rate();
            prev_rounds = stats.subtree_rounds;
        }
    }

    #[test]
    fn algorithmic_mode_reports_no_arbitration() {
        let cloud = random_cloud(1024, 83);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let queries = random_queries(64, 84);
        let cfg = BatchSearchConfig::algorithmic(0.3, Some(8));
        let (_, stats) = split.search_batch(&queries, &cfg, &mut BatchState::new());
        assert_eq!(stats.subtree_rounds, 0);
        assert_eq!(stats.fetch_attempts, 0);
        assert_eq!(stats.bank_conflicts, 0);
        assert_eq!(stats.conflict_rate(), 0.0);
        assert!(stats.subtree_visits > 0, "visits are still counted");
    }

    #[test]
    fn tagged_batch_demuxes_the_flat_results() {
        let cloud = random_cloud(3000, 90);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let a = random_queries(40, 91);
        let b = random_queries(17, 92);
        let c = random_queries(25, 93);
        let mut batch = TaggedBatch::new();
        batch.push_segment(7, &a);
        batch.push_segment(3, &b);
        batch.push_segment(7, &c); // same tag twice: two frames, one wave
        assert_eq!(batch.len(), 82);
        assert_eq!(batch.segments(), &[(7, 40), (3, 17), (7, 25)]);
        let cfg = BatchSearchConfig::banked(0.3, Some(16), 8, 4, 0);
        let (tagged, tstats) = split.search_batch_tagged(&batch, &cfg, &mut BatchState::new());
        let (flat, fstats) = split.search_batch(batch.queries(), &cfg, &mut BatchState::new());
        assert_eq!(tstats, fstats, "tags are invisible to the engine");
        assert_eq!(tagged.len(), 3);
        let mut cursor = 0;
        for ((tag, seg), &(want_tag, want_len)) in tagged.iter().zip(batch.segments()) {
            assert_eq!(*tag, want_tag);
            assert_eq!(seg.len(), want_len);
            assert_eq!(seg.as_slice(), &flat[cursor..cursor + want_len]);
            cursor += want_len;
        }
        batch.clear();
        assert!(batch.is_empty() && batch.segments().is_empty());
    }

    #[test]
    fn tagged_batch_solo_bit_identity_at_he_zero() {
        // the multi-tenant invariant: at h_e = 0 a segment's results do
        // not depend on its co-segments
        let cloud = random_cloud(4096, 94);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 4).unwrap();
        let a = random_queries(64, 95);
        let b = random_queries(48, 96);
        let cfg = BatchSearchConfig::banked(0.25, Some(8), 8, 4, 0);
        let mut shared = TaggedBatch::new();
        shared.push_segment(0, &a);
        shared.push_segment(1, &b);
        let (together, _) = split.search_batch_tagged(&shared, &cfg, &mut BatchState::new());
        for (tag, queries) in [(0u64, &a), (1, &b)] {
            let (solo, _) = split.search_batch(queries, &cfg, &mut BatchState::new());
            let seg = &together.iter().find(|(t, _)| *t == tag).unwrap().1;
            assert_eq!(seg, &solo, "tenant {tag} must not see its co-tenant");
        }
    }

    #[test]
    #[should_panic(expected = "one result per tagged query")]
    fn tagged_batch_rejects_mismatched_results() {
        let mut batch = TaggedBatch::new();
        batch.push_segment(1, &[Point3::ZERO, Point3::ZERO]);
        batch.split_results(vec![0u32]);
    }

    #[test]
    fn state_buffers_are_recycled() {
        let cloud = random_cloud(1024, 73);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let queries = random_queries(64, 74);
        let mut state = BatchState::new();
        split.search_batch(&queries, &BatchSearchConfig::algorithmic(0.3, None), &mut state);
        let spare_after_first = state.spare.len();
        assert!(spare_after_first > 0, "wavefront lists must return to the spare pool");
        split.search_batch(&queries, &BatchSearchConfig::algorithmic(0.3, None), &mut state);
        assert_eq!(state.spare.len(), spare_after_first, "steady state allocates nothing new");
    }
}
