//! K-d tree and approximate neighbor search for the Crescent (ISCA 2022)
//! reproduction.
//!
//! Layers:
//!
//! * [`KdTree`] — flat, left-balanced K-d tree whose heap layout is a dense
//!   array (the accelerator's streaming DRAM image);
//! * [`radius_search`] / [`knn_search`] — exact traversal with optional
//!   per-fetch instrumentation for the memory-trace experiments;
//! * [`SplitTree`] — the paper's two-level top-tree/sub-tree structure with
//!   the fully-streaming two-stage search (Sec 3) and the lock-step
//!   bank-conflict elision model (Sec 4);
//! * [`batch`] — the batched two-stage search ([`SplitTree::search_batch`])
//!   that amortizes top-tree fetches across a query batch, reuses its
//!   descent state across the frames of a stream ([`BatchState`]), and
//!   drains each sub-tree queue through the same banked-arbitration model
//!   as `batch_search` (conflicts stall or are elided per the
//!   depth-from-leaves `h_e` knob of [`BatchBankModel`]);
//! * [`refit`] — incremental frame-coherent tree maintenance
//!   ([`KdTree::refit`]): in-place coordinate update + validation +
//!   per-sub-tree repair for temporally coherent frames, with an honest
//!   cost model ([`BuildStats`], [`RefitStats`]) for both maintenance
//!   paths;
//! * [`baselines`] — Tigris/QuickNN-style split-exhaustive search with
//!   sub-tree reloading, used by the Fig 24 comparison.
//!
//! # Example
//!
//! ```
//! use crescent_kdtree::{KdTree, SplitSearchConfig, SplitTree};
//! use crescent_pointcloud::{Point3, PointCloud};
//!
//! let cloud: PointCloud = (0..1000)
//!     .map(|i| Point3::new((i % 10) as f32, ((i / 10) % 10) as f32, (i / 100) as f32))
//!     .collect();
//! let tree = KdTree::build(&cloud);
//! let split = SplitTree::new(&tree, 4)?;
//! let queries = [Point3::new(5.0, 5.0, 5.0)];
//! let (results, stats) = split.batch_search(&queries, &SplitSearchConfig {
//!     radius: 1.5,
//!     ..SplitSearchConfig::default()
//! });
//! assert!(!results[0].is_empty());
//! assert!(stats.nodes_visited < cloud.len());
//! # Ok::<(), crescent_kdtree::SplitTreeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
pub mod batch;
pub mod refit;
pub mod search;
pub mod split;
pub mod tree;

pub use baselines::{
    crescent_dram_bytes, exhaustive_visits, split_exhaustive_search, BaselineReport,
};
pub use batch::{
    BatchBankModel, BatchSearchConfig, BatchSearchStats, BatchState, TaggedBatch, TaggedResults,
};
pub use refit::{RebuildReason, RefitConfig, RefitOutcome, RefitScratch, RefitStats};
pub use search::{knn_search, radius_search, radius_search_traced, TraversalStats};
pub use split::{
    subtree_radius_search, ElisionConfig, SplitSearchConfig, SplitSearchStats, SplitTree,
    SplitTreeError,
};
pub use tree::{height_for, left_subtree_size, BuildStats, KdNode, KdTree, NODE_BYTES};
