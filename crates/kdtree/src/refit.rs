//! Incremental, frame-coherent tree maintenance: [`KdTree::refit`].
//!
//! A streaming LiDAR pipeline rebuilds its K-d tree every frame even
//! though consecutive frames share most of their geometry — the same
//! cross-frame locality the batched search already measures as
//! `assignment_reuses`. Refit exploits it: instead of re-partitioning the
//! whole cloud (`O(n · H)` compare-and-moves), it keeps the tree topology
//! and streams the new coordinates into the existing node image
//! (`O(n)`), then *validates* the retained structure and repairs only
//! what actually broke.
//!
//! The validation is what makes refit safe to search:
//!
//! * every node is checked against the split planes of **all** its
//!   ancestors (the planes themselves move with their refitted points);
//! * a violation against a plane **above** the check level (a point
//!   drifted across a top-level partition) cannot be repaired locally —
//!   it forces a full rebuild;
//! * violations **inside** a checked sub-tree mark that sub-tree dirty;
//!   dirty sub-trees are rebuilt in place from their own points (the
//!   flat layout makes every sub-tree a dense, complete heap range, so
//!   the normal build recursion can target it directly);
//! * a sub-tree whose bounding extent dilated beyond
//!   [`RefitConfig::max_dilation`] is treated as dirty too — heavy
//!   dilation means the local geometry changed shape, a cheap
//!   incoherence detector;
//! * if more than [`RefitConfig::rebuild_threshold`] of the sub-trees
//!   are dirty, the frame is incoherent and refit falls back to a full
//!   rebuild (charging both the wasted refit pass and the build —
//!   honesty the timing model depends on).
//!
//! **Equivalence guarantee.** Because a clean validation certifies that
//! no point crossed any retained split plane, the median selections of a
//! fresh [`KdTree::build`] over the new cloud are forced to pick exactly
//! the retained topology (up to exact coordinate ties): a refit that
//! returns [`RefitOutcome::InPlace`] yields the *same tree* a fresh
//! rebuild would have produced, so searches are bit-identical. The
//! streaming integration tests and `tests/streaming_properties.rs`
//! assert this neighbor-set equality across drifting streams.
//!
//! The flat layout is always left-balanced by construction, so the
//! classic "imbalance" rebuild trigger of pointer-based trees cannot
//! arise here; invariant violations and bound dilation are the only two
//! signals that matter.

use serde::{Deserialize, Serialize};

use crescent_pointcloud::{Point3, PointCloud, POINT_BYTES};

use crate::tree::{build_recursive, KdTree, NODE_BYTES};

/// Knobs of [`KdTree::refit`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RefitConfig {
    /// Tree level at which validation and repair are granular: the
    /// sub-trees rooted at this level are individually validated and, if
    /// dirty, individually rebuilt. Matching the split tree's `h_t` makes
    /// the repair granularity coincide with the search granularity.
    /// Clamped to the tree height.
    pub check_height: usize,
    /// Fraction of checked sub-trees that may be dirty before the frame
    /// is declared incoherent and refit falls back to a full rebuild.
    pub rebuild_threshold: f64,
    /// Per-axis bounding-extent growth factor beyond which a sub-tree is
    /// treated as dirty even without an invariant violation.
    pub max_dilation: f32,
}

impl Default for RefitConfig {
    fn default() -> Self {
        // check_height matches CrescentKnobs::default().top_height
        RefitConfig { check_height: 4, rebuild_threshold: 0.25, max_dilation: 4.0 }
    }
}

/// How a [`KdTree::refit`] call resolved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefitOutcome {
    /// The tree was updated in place (possibly with some sub-trees
    /// rebuilt); the result is identical to a fresh build.
    #[default]
    InPlace,
    /// The frame was incoherent; the tree was rebuilt from scratch.
    FullRebuild(RebuildReason),
}

/// Why a refit fell back to a full rebuild.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RebuildReason {
    /// The new cloud has a different point count — point identity across
    /// frames is gone, so the retained topology is meaningless.
    SizeChanged,
    /// A point crossed a split plane above the check level; no local
    /// repair can restore the partition.
    CrossPlaneViolation,
    /// More than `rebuild_threshold` of the sub-trees were dirty.
    TooManyDirtySubtrees,
}

/// Cost and diagnostic report of one [`KdTree::refit`] call. Mirrors
/// [`BuildStats`](crate::BuildStats) so the two maintenance paths can be
/// charged through the same timing model.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RefitStats {
    /// Nodes whose coordinates were patched in place.
    pub nodes_refitted: usize,
    /// Sub-trees validated at the check level.
    pub subtrees_checked: usize,
    /// Sub-trees rebuilt in place.
    pub subtrees_rebuilt: usize,
    /// Nodes found on the wrong side of a retained split plane.
    pub invariant_violations: usize,
    /// Violations against planes above the check level (each one forces
    /// the full-rebuild fallback).
    pub cross_violations: usize,
    /// Sub-trees dirtied by bound dilation alone.
    pub dilated_subtrees: usize,
    /// Nodes written by in-place sub-tree rebuilds or the fallback build.
    pub nodes_written: usize,
    /// Partition compare-and-moves spent in rebuilds.
    pub points_moved: usize,
    /// DRAM bytes of the whole maintenance operation (refit pass +
    /// repairs, or refit pass + fallback build).
    pub dram_bytes: u64,
    /// Datapath cycles of the whole maintenance operation.
    pub cycles: u64,
    /// How the call resolved.
    pub outcome: RefitOutcome,
}

impl RefitStats {
    /// Whether the call ended in the full-rebuild fallback.
    pub fn is_full_rebuild(&self) -> bool {
        matches!(self.outcome, RefitOutcome::FullRebuild(_))
    }

    fn absorb_full_rebuild(&mut self, tree: &KdTree, reason: RebuildReason) {
        let b = tree.build_stats();
        self.nodes_written += b.nodes_written;
        self.points_moved += b.points_moved;
        self.dram_bytes += b.dram_bytes;
        self.cycles += b.cycles;
        self.outcome = RefitOutcome::FullRebuild(reason);
    }
}

/// Reusable working memory of [`KdTree::refit`]: the per-sub-tree bound
/// accumulators, the dirty list, and the entry buffer of in-place
/// sub-tree rebuilds. A stream that refits every frame passes one
/// instance to [`KdTree::refit_with_scratch`] so the steady state
/// allocates nothing; [`KdTree::refit`] makes a fresh one per call.
#[derive(Debug, Default)]
pub struct RefitScratch {
    scratch: Vec<SubtreeScratch>,
    dirty: Vec<usize>,
    entries: Vec<(Point3, u32)>,
}

/// Per-sub-tree scratch accumulated during the refit pass.
#[derive(Clone, Copy, Debug)]
struct SubtreeScratch {
    old_min: Point3,
    old_max: Point3,
    new_min: Point3,
    new_max: Point3,
    violations: usize,
}

impl SubtreeScratch {
    fn new() -> Self {
        let inf = f32::INFINITY;
        SubtreeScratch {
            old_min: Point3::new(inf, inf, inf),
            old_max: Point3::new(-inf, -inf, -inf),
            new_min: Point3::new(inf, inf, inf),
            new_max: Point3::new(-inf, -inf, -inf),
            violations: 0,
        }
    }

    fn dilated(&self, max_dilation: f32) -> bool {
        for axis in 0..3 {
            let old = self.old_max.coord(axis) - self.old_min.coord(axis);
            let new = self.new_max.coord(axis) - self.new_min.coord(axis);
            if old > f32::EPSILON && new > old * max_dilation {
                return true;
            }
        }
        false
    }
}

fn grow(min: &mut Point3, max: &mut Point3, p: Point3) {
    *min = Point3::new(min.x.min(p.x), min.y.min(p.y), min.z.min(p.z));
    *max = Point3::new(max.x.max(p.x), max.y.max(p.y), max.z.max(p.z));
}

impl KdTree {
    /// Updates this tree in place for a temporally coherent new frame
    /// `cloud`, rebuilding only the sub-trees that actually broke, and
    /// falling back to a full [`KdTree::build`] when the frame is
    /// incoherent (see the [module docs](crate::refit) for the exact
    /// dirty/fallback rules and the fresh-build equivalence guarantee).
    ///
    /// `cloud` must index the *same physical points* as the cloud the
    /// tree was built from (slot `i` is point `i`'s new position); a
    /// length mismatch is detected and handled as incoherence.
    pub fn refit(&mut self, cloud: &PointCloud, cfg: &RefitConfig) -> RefitStats {
        self.refit_with_scratch(cloud, cfg, &mut RefitScratch::default())
    }

    /// [`KdTree::refit`] with caller-owned working memory, for streams
    /// that refit every frame: `ws`'s buffers are recycled call to call,
    /// so the steady-state refit pass performs no allocation. Results and
    /// stats are identical to [`KdTree::refit`].
    pub fn refit_with_scratch(
        &mut self,
        cloud: &PointCloud,
        cfg: &RefitConfig,
        ws: &mut RefitScratch,
    ) -> RefitStats {
        let n = self.len();
        let mut stats = RefitStats::default();
        if cloud.len() != n {
            *self = KdTree::build(cloud);
            stats.absorb_full_rebuild(self, RebuildReason::SizeChanged);
            return stats;
        }
        if n == 0 {
            return stats;
        }

        // clamping to height − 1 guarantees at least one root exists
        // (2^level − 1 < n whenever level < height)
        let level = cfg.check_height.min(self.height() - 1);
        let root_range = self.subtree_root_range(level);
        let first_root = root_range.start;
        let num_roots = root_range.len();

        // ---- pass 1: patch every node's coordinates in place ----
        // One streaming sweep: cloud in, old image in (for the
        // point-index map), patched image out. Old/new sub-tree bounds
        // are folded into the same pass for the dilation check.
        let RefitScratch { scratch, dirty, entries } = ws;
        scratch.clear();
        scratch.resize(num_roots, SubtreeScratch::new());
        for idx in 0..n {
            let lv = self.level_of(idx);
            let new_point = cloud.point(self.point_index_of(idx));
            if lv >= level {
                // ancestor slot at the check level identifies the sub-tree
                let s = (((idx + 1) >> (lv - level)) - 1) - first_root;
                let sc = &mut scratch[s];
                grow(&mut sc.old_min, &mut sc.old_max, self.points[idx]);
                grow(&mut sc.new_min, &mut sc.new_max, new_point);
            }
            self.points[idx] = new_point;
        }
        stats.nodes_refitted = n;
        stats.subtrees_checked = num_roots;
        stats.dram_bytes += (n * POINT_BYTES + 2 * n * NODE_BYTES) as u64;
        stats.cycles += n as u64;

        // ---- pass 2: validate every node against its ancestor planes ----
        // The modeled hardware streams the image once more with one
        // comparator per ancestor level working in parallel, so the pass
        // costs n cycles regardless of depth; the host-side walk carries
        // an explicit constraint stack.
        let (cross, per_subtree) = validate(self, level, first_root, num_roots);
        for (s, v) in per_subtree.iter().enumerate() {
            scratch[s].violations = *v;
        }
        stats.invariant_violations = cross + per_subtree.iter().sum::<usize>();
        stats.cross_violations = cross;
        stats.cycles += n as u64;

        if cross > 0 {
            *self = KdTree::build(cloud);
            stats.absorb_full_rebuild(self, RebuildReason::CrossPlaneViolation);
            return stats;
        }

        // ---- decide: local repair or incoherence fallback ----
        dirty.clear();
        for (s, sc) in scratch.iter().enumerate() {
            let dilated = sc.violations == 0 && sc.dilated(cfg.max_dilation);
            if dilated {
                stats.dilated_subtrees += 1;
            }
            if sc.violations > 0 || dilated {
                dirty.push(s);
            }
        }
        if (dirty.len() as f64) > cfg.rebuild_threshold * num_roots as f64 {
            *self = KdTree::build(cloud);
            stats.absorb_full_rebuild(self, RebuildReason::TooManyDirtySubtrees);
            return stats;
        }

        // ---- pass 3: rebuild dirty sub-trees in place ----
        // Any sub-tree of the flat layout is itself a complete heap
        // (its last level is a left-filled prefix), so the ordinary
        // build recursion can re-partition it rooted at its global slot.
        for &s in dirty.iter() {
            let root = first_root + s;
            entries.clear();
            let mut slot = root;
            let mut width = 1usize;
            while slot < n {
                for idx in slot..(slot + width).min(n) {
                    let node = self.node(idx);
                    entries.push((node.point, node.point_index));
                }
                slot = 2 * slot + 1;
                width *= 2;
            }
            let m = entries.len();
            let depth = self.level_of(root);
            let mut moved = 0usize;
            build_recursive(entries, root, depth, &mut self.points, &mut self.meta, &mut moved);
            stats.subtrees_rebuilt += 1;
            stats.nodes_written += m;
            stats.points_moved += moved;
            stats.dram_bytes += (m * NODE_BYTES) as u64;
            stats.cycles += (moved + m) as u64;
        }

        debug_assert!(self.check_invariants(), "refit must leave a valid K-d tree");
        stats.outcome = RefitOutcome::InPlace;
        stats
    }
}

/// Walks the whole tree checking every node against all ancestor planes.
/// Returns the cross-level violation count and the per-sub-tree internal
/// violation counts at granularity `level`.
fn validate(
    tree: &KdTree,
    level: usize,
    first_root: usize,
    num_roots: usize,
) -> (usize, Vec<usize>) {
    let mut cross = 0usize;
    let mut per_subtree = vec![0usize; num_roots];
    let mut constraints: Vec<(usize, f32, bool)> = Vec::new();
    fn walk(
        tree: &KdTree,
        idx: usize,
        level: usize,
        first_root: usize,
        constraints: &mut Vec<(usize, f32, bool)>,
        cross: &mut usize,
        per_subtree: &mut [usize],
    ) {
        let point = tree.point_of(idx);
        let lv = tree.level_of(idx);
        for (ci, &(axis, split, left)) in constraints.iter().enumerate() {
            let c = point.coord(axis);
            let violated = if left { c > split } else { c < split };
            if violated {
                // constraint `ci` was imposed by the ancestor at level
                // `ci`; planes above the check level are not locally
                // repairable, and top-tree nodes only have such planes
                if ci < level {
                    *cross += 1;
                } else {
                    let s = (((idx + 1) >> (lv - level)) - 1) - first_root;
                    per_subtree[s] += 1;
                }
            }
        }
        let axis = tree.axis_of(idx);
        let split = point.coord(axis);
        if let Some(l) = tree.left(idx) {
            constraints.push((axis, split, true));
            walk(tree, l, level, first_root, constraints, cross, per_subtree);
            constraints.pop();
        }
        if let Some(r) = tree.right(idx) {
            constraints.push((axis, split, false));
            walk(tree, r, level, first_root, constraints, cross, per_subtree);
            constraints.pop();
        }
    }
    if !tree.is_empty() {
        walk(tree, 0, level, first_root, &mut constraints, &mut cross, &mut per_subtree);
    }
    (cross, per_subtree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                )
            })
            .collect()
    }

    fn translated(cloud: &PointCloud, delta: Point3) -> PointCloud {
        cloud.iter().map(|&p| p + delta).collect()
    }

    #[test]
    fn translation_refits_in_place_and_matches_fresh_build() {
        for n in [5usize, 64, 257, 1500] {
            let base = random_cloud(n, n as u64);
            let moved = translated(&base, Point3::new(0.11, -0.07, 0.03));
            let mut tree = KdTree::build(&base);
            let stats = tree.refit(&moved, &RefitConfig::default());
            assert_eq!(stats.outcome, RefitOutcome::InPlace, "n = {n}");
            assert_eq!(stats.subtrees_rebuilt, 0, "pure translation breaks nothing (n = {n})");
            assert_eq!(stats.invariant_violations, 0);
            let fresh = KdTree::build(&moved);
            assert_eq!(tree.nodes(), fresh.nodes(), "refit tree == fresh build (n = {n})");
        }
    }

    #[test]
    fn refit_is_cheaper_than_build_on_coherent_frames() {
        let base = random_cloud(4096, 9);
        let moved = translated(&base, Point3::new(0.02, 0.02, 0.0));
        let mut tree = KdTree::build(&base);
        let build_cycles = tree.build_stats().cycles;
        let stats = tree.refit(&moved, &RefitConfig::default());
        assert_eq!(stats.outcome, RefitOutcome::InPlace);
        assert!(
            stats.cycles * 4 < build_cycles,
            "refit {} vs build {build_cycles} cycles",
            stats.cycles
        );
        assert!(stats.dram_bytes > 0);
    }

    #[test]
    fn local_disturbance_rebuilds_only_some_subtrees() {
        let base = random_cloud(2048, 10);
        let mut disturbed = base.clone();
        // scramble a tight neighborhood: points 100..130 swap positions
        // within their local cluster, breaking deep-plane order without
        // crossing top-level planes
        let mut rng = StdRng::seed_from_u64(77);
        let mut moved: PointCloud = disturbed.points().to_vec().into_iter().collect();
        for i in 100..130 {
            let p = disturbed.point(i);
            let jitter = Point3::new(
                (rng.random::<f32>() - 0.5) * 0.06,
                (rng.random::<f32>() - 0.5) * 0.06,
                (rng.random::<f32>() - 0.5) * 0.06,
            );
            moved = {
                let mut pts = moved.into_points();
                pts[i] = p + jitter;
                pts.into_iter().collect()
            };
        }
        disturbed = moved;
        let mut tree = KdTree::build(&base);
        let cfg = RefitConfig { rebuild_threshold: 1.0, ..RefitConfig::default() };
        let stats = tree.refit(&disturbed, &cfg);
        if stats.outcome == RefitOutcome::InPlace {
            assert!(tree.check_invariants());
            if stats.invariant_violations > 0 {
                assert!(stats.subtrees_rebuilt > 0);
                assert!(
                    stats.subtrees_rebuilt < stats.subtrees_checked,
                    "a local disturbance must not dirty every sub-tree"
                );
            }
        }
    }

    #[test]
    fn size_change_falls_back_to_full_rebuild() {
        let base = random_cloud(512, 11);
        let smaller = random_cloud(300, 12);
        let mut tree = KdTree::build(&base);
        let stats = tree.refit(&smaller, &RefitConfig::default());
        assert_eq!(stats.outcome, RefitOutcome::FullRebuild(RebuildReason::SizeChanged));
        assert_eq!(tree.len(), 300);
        assert!(tree.check_invariants());
        let fresh = KdTree::build(&smaller);
        assert_eq!(tree.nodes(), fresh.nodes());
    }

    #[test]
    fn scrambled_frame_triggers_incoherence_fallback() {
        let base = random_cloud(1024, 13);
        // a completely different cloud of the same size: point identity
        // is nonsense, so validation must light up and fall back
        let scrambled = random_cloud(1024, 14);
        let mut tree = KdTree::build(&base);
        let stats = tree.refit(&scrambled, &RefitConfig::default());
        assert!(stats.is_full_rebuild(), "outcome: {:?}", stats.outcome);
        assert!(tree.check_invariants());
        let fresh = KdTree::build(&scrambled);
        assert_eq!(tree.nodes(), fresh.nodes(), "fallback must equal a fresh build");
    }

    #[test]
    fn fallback_charges_refit_pass_plus_build() {
        let base = random_cloud(1024, 15);
        let scrambled = random_cloud(1024, 16);
        let mut tree = KdTree::build(&base);
        let fresh_build_cycles = KdTree::build(&scrambled).build_stats().cycles;
        let stats = tree.refit(&scrambled, &RefitConfig::default());
        assert!(stats.is_full_rebuild());
        assert!(
            stats.cycles > fresh_build_cycles,
            "an incoherent refit must cost MORE than an honest rebuild ({} vs {})",
            stats.cycles,
            fresh_build_cycles
        );
    }

    #[test]
    fn empty_and_tiny_trees() {
        let mut tree = KdTree::build(&PointCloud::new());
        let stats = tree.refit(&PointCloud::new(), &RefitConfig::default());
        assert_eq!(stats.nodes_refitted, 0);
        assert_eq!(stats.outcome, RefitOutcome::InPlace);

        let one: PointCloud = [Point3::new(1.0, 2.0, 3.0)].into_iter().collect();
        let one_moved: PointCloud = [Point3::new(1.5, 2.0, 3.0)].into_iter().collect();
        let mut tree = KdTree::build(&one);
        let stats = tree.refit(&one_moved, &RefitConfig::default());
        assert_eq!(stats.outcome, RefitOutcome::InPlace);
        assert_eq!(tree.node(0).point, Point3::new(1.5, 2.0, 3.0));
    }

    #[test]
    fn refit_stats_are_deterministic() {
        let base = random_cloud(2048, 17);
        let moved = translated(&base, Point3::new(0.05, 0.0, -0.02));
        let run = || {
            let mut tree = KdTree::build(&base);
            tree.refit(&moved, &RefitConfig::default())
        };
        assert_eq!(run(), run());
    }
}
