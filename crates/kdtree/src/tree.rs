//! Flat-array K-d tree.
//!
//! The tree is **left-balanced / complete**: node `i`'s children live at
//! heap slots `2i+1` and `2i+2`, and all `n` nodes occupy slots `0..n`
//! contiguously. This is exactly the layout the Crescent hardware assumes:
//! a tree (or sub-tree) is a dense array that can be DMA-ed on-chip as one
//! streaming transfer, and the Sec 3.3 capacity inequalities
//! `2^{h_t} − 1 ≤ S` / `2^{H−h_t+1} − 1 ≤ S` hold with equality-tight
//! bounds.
//!
//! In host memory the flat array is stored structure-of-arrays: a dense
//! `Vec<Point3>` coordinate column plus a parallel packed `Vec<u32>`
//! carrying (axis, original point index). The *modeled* DRAM image is
//! unchanged — [`NODE_BYTES`] and every address/byte count still describe
//! the 16-byte AoS node the hardware streams — but the simulator's
//! distance-compare inner loops now touch only the 12-byte coordinates
//! they need, which is most of the simulator's wall-clock. See
//! `docs/ARCHITECTURE.md` ("Modeled time vs wall-clock time").

use serde::{Deserialize, Serialize};

use crescent_pointcloud::{Point3, PointCloud, POINT_BYTES};

/// Size of one tree node in the accelerator's DRAM layout: 12 B point +
/// 4 B packed (axis, original point index).
pub const NODE_BYTES: usize = 16;

/// Cost model of one [`KdTree::build`] — the phase every streaming frame
/// pays before a single query can run, and which a timing model must
/// charge for (nothing about tree construction is free: the cloud is
/// streamed in, every point participates in one partition pass per tree
/// level, and the finished node image is streamed back out).
///
/// The build unit is modeled as a single-lane partitioner: one
/// compare-and-move per cycle during median selection plus one node write
/// per cycle, with the DRAM side (cloud in, image out) fully streaming
/// and double-buffered against the datapath.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildStats {
    /// Tree nodes written to the flat image (= number of points).
    pub nodes_written: usize,
    /// Points moved through partition passes (`select_nth` touches every
    /// point once per recursion level, so this is ≈ `n · H`).
    pub points_moved: usize,
    /// DRAM bytes of the build's streaming schedule: the cloud read once
    /// plus the node image written once.
    pub dram_bytes: u64,
    /// Datapath cycles of the build unit (one compare-and-move or node
    /// write per cycle).
    pub cycles: u64,
}

impl BuildStats {
    pub(crate) fn for_cloud(n: usize, points_moved: usize) -> Self {
        BuildStats {
            nodes_written: n,
            points_moved,
            dram_bytes: (n * POINT_BYTES + n * NODE_BYTES) as u64,
            cycles: (points_moved + n) as u64,
        }
    }
}

/// One K-d tree node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KdNode {
    /// The splitting point stored at this node.
    pub point: Point3,
    /// Split axis (0, 1, or 2); cycles with depth.
    pub axis: u8,
    /// Index of `point` in the original point cloud.
    pub point_index: u32,
}

/// A left-balanced K-d tree over a point cloud.
///
/// # Examples
///
/// ```
/// use crescent_kdtree::KdTree;
/// use crescent_pointcloud::{Point3, PointCloud};
///
/// let cloud: PointCloud = (0..100).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
/// let tree = KdTree::build(&cloud);
/// assert_eq!(tree.len(), 100);
/// assert_eq!(tree.height(), 7); // ceil(log2(101))
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KdTree {
    /// Splitting point of every node, in heap (level) order. Kept as a
    /// dense structure-of-arrays column so the distance-compare inner
    /// loops stream 12-byte coordinates instead of 16-byte nodes.
    pub(crate) points: Vec<Point3>,
    /// Packed per-node metadata, parallel to `points`: the split axis in
    /// the top two bits and the original point index in the low 30
    /// (see [`pack_meta`]).
    pub(crate) meta: Vec<u32>,
    height: usize,
    build_stats: BuildStats,
}

/// Bit position of the split axis inside a packed [`KdTree::meta`] word.
pub(crate) const META_AXIS_SHIFT: u32 = 30;
/// Mask of the original-point-index field inside a packed meta word.
pub(crate) const META_INDEX_MASK: u32 = (1 << META_AXIS_SHIFT) - 1;

/// Packs a split axis and original point index into one meta word.
#[inline]
pub(crate) fn pack_meta(axis: u8, point_index: u32) -> u32 {
    debug_assert!(axis < 3);
    debug_assert!(point_index <= META_INDEX_MASK);
    ((axis as u32) << META_AXIS_SHIFT) | point_index
}

/// Number of nodes in the left subtree of a complete (left-balanced) binary
/// tree of `n` nodes.
pub fn left_subtree_size(n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    // height of the tree: h = ceil(log2(n+1))
    let h = usize::BITS as usize - (n).leading_zeros() as usize;
    let full_above_last = (1usize << (h - 1)) - 1; // nodes in levels 0..h-1
    let last = n - full_above_last; // 1..=2^(h-1) nodes on the last level
    let half_cap = 1usize << (h - 2); // last-level capacity of the left subtree
    ((1usize << (h - 2)) - 1) + last.min(half_cap)
}

impl KdTree {
    /// Builds a K-d tree over `cloud`, cycling split axes with depth and
    /// splitting at the left-balanced median so the flat layout is
    /// complete.
    ///
    /// Building an empty cloud yields an empty tree.
    pub fn build(cloud: &PointCloud) -> Self {
        let n = cloud.len();
        assert!(
            n <= META_INDEX_MASK as usize,
            "cloud too large for the packed 30-bit point-index field"
        );
        let mut entries: Vec<(Point3, u32)> =
            cloud.iter().enumerate().map(|(i, p)| (*p, i as u32)).collect();
        let mut points = vec![Point3::ZERO; n];
        let mut meta = vec![u32::MAX; n];
        let mut points_moved = 0usize;
        if n > 0 {
            build_recursive(&mut entries, 0, 0, &mut points, &mut meta, &mut points_moved);
        }
        let height = height_for(n);
        KdTree { points, meta, height, build_stats: BuildStats::for_cloud(n, points_moved) }
    }

    /// The cost of the [`KdTree::build`] that produced this tree (the
    /// stats are *not* updated by [`KdTree::refit`](crate::refit), which
    /// reports its own [`RefitStats`](crate::RefitStats)).
    #[inline]
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// Number of nodes (== number of points).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Tree height `H = ceil(log2(n+1))`; 0 for an empty tree.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// All nodes in heap (level) order, materialized from the SoA
    /// columns (a convenience for tests and inspection; hot loops use
    /// [`KdTree::point_of`] / [`KdTree::axis_of`] /
    /// [`KdTree::point_index_of`] to stay on the dense columns).
    pub fn nodes(&self) -> Vec<KdNode> {
        (0..self.len()).map(|i| self.node(i)).collect()
    }

    /// The node at heap slot `idx`, reassembled from the SoA columns.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn node(&self, idx: usize) -> KdNode {
        KdNode {
            point: self.points[idx],
            axis: (self.meta[idx] >> META_AXIS_SHIFT) as u8,
            point_index: self.meta[idx] & META_INDEX_MASK,
        }
    }

    /// The splitting point stored at heap slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn point_of(&self, idx: usize) -> Point3 {
        self.points[idx]
    }

    /// The split axis (0, 1, or 2) of heap slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn axis_of(&self, idx: usize) -> usize {
        (self.meta[idx] >> META_AXIS_SHIFT) as usize
    }

    /// Index in the original point cloud of the point at heap slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn point_index_of(&self, idx: usize) -> usize {
        (self.meta[idx] & META_INDEX_MASK) as usize
    }

    /// Heap slot of the left child, if present.
    #[inline]
    pub fn left(&self, idx: usize) -> Option<usize> {
        let c = 2 * idx + 1;
        (c < self.points.len()).then_some(c)
    }

    /// Heap slot of the right child, if present.
    #[inline]
    pub fn right(&self, idx: usize) -> Option<usize> {
        let c = 2 * idx + 2;
        (c < self.points.len()).then_some(c)
    }

    /// The depth (level) of heap slot `idx`; the root is level 0.
    #[inline]
    pub fn level_of(&self, idx: usize) -> usize {
        (usize::BITS as usize) - (idx + 1).leading_zeros() as usize - 1
    }

    /// Byte address of node `idx` in the accelerator's flat DRAM image.
    #[inline]
    pub fn node_addr(&self, idx: usize) -> u64 {
        (idx * NODE_BYTES) as u64
    }

    /// Total size of the tree image in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.points.len() * NODE_BYTES
    }

    /// Half-open heap-slot range of the sub-tree roots when the tree is
    /// split below a top tree of height `top_height` (all existing slots
    /// at level `top_height`; empty if `top_height >= self.height()`).
    /// The single source of truth for [`KdTree::subtree_roots`] and the
    /// [`SplitTree::resplit`](crate::SplitTree::resplit) fast path.
    pub fn subtree_root_range(&self, top_height: usize) -> std::ops::Range<usize> {
        if top_height >= self.height {
            return 0..0;
        }
        let first = (1usize << top_height) - 1;
        let last = ((1usize << (top_height + 1)) - 1).min(self.points.len());
        first..last
    }

    /// Heap slots of the sub-tree roots when the tree is split below a top
    /// tree of height `top_height` (i.e. all slots at level `top_height`).
    ///
    /// Returns an empty vector if `top_height >= self.height()`.
    pub fn subtree_roots(&self, top_height: usize) -> Vec<usize> {
        self.subtree_root_range(top_height).collect()
    }

    /// Number of nodes in the sub-tree rooted at heap slot `root`.
    pub fn subtree_len(&self, root: usize) -> usize {
        let n = self.points.len();
        if root >= n {
            return 0;
        }
        let mut count = 0;
        let mut level_first = root;
        let mut level_width = 1usize;
        loop {
            if level_first >= n {
                break;
            }
            count += (level_first + level_width).min(n) - level_first;
            level_first = 2 * level_first + 1;
            level_width *= 2;
        }
        count
    }

    /// Verifies the K-d ordering invariant (debug aid / test hook): every
    /// node's left descendants are `<=` and right descendants `>=` on the
    /// node's split axis.
    pub fn check_invariants(&self) -> bool {
        fn check(tree: &KdTree, idx: usize) -> bool {
            let node = tree.node(idx);
            let axis = node.axis as usize;
            let split = node.point.coord(axis);
            let mut ok = true;
            if let Some(l) = tree.left(idx) {
                ok &= all_in_subtree(tree, l, &mut |p| p.coord(axis) <= split);
                ok &= check(tree, l);
            }
            if let Some(r) = tree.right(idx) {
                ok &= all_in_subtree(tree, r, &mut |p| p.coord(axis) >= split);
                ok &= check(tree, r);
            }
            ok
        }
        fn all_in_subtree(tree: &KdTree, idx: usize, pred: &mut dyn FnMut(Point3) -> bool) -> bool {
            let mut stack = vec![idx];
            while let Some(i) = stack.pop() {
                if !pred(tree.node(i).point) {
                    return false;
                }
                if let Some(l) = tree.left(i) {
                    stack.push(l);
                }
                if let Some(r) = tree.right(i) {
                    stack.push(r);
                }
            }
            true
        }
        self.is_empty() || check(self, 0)
    }
}

/// Height of a complete tree with `n` nodes.
pub fn height_for(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        usize::BITS as usize - n.leading_zeros() as usize
    }
}

pub(crate) fn build_recursive(
    entries: &mut [(Point3, u32)],
    heap_idx: usize,
    depth: usize,
    points_out: &mut [Point3],
    meta_out: &mut [u32],
    points_moved: &mut usize,
) {
    let n = entries.len();
    if n == 0 {
        return;
    }
    *points_moved += n;
    let axis = (depth % 3) as u8;
    let mid = left_subtree_size(n);
    entries.select_nth_unstable_by(mid, |a, b| {
        a.0.coord(axis as usize)
            .partial_cmp(&b.0.coord(axis as usize))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let (point, point_index) = entries[mid];
    points_out[heap_idx] = point;
    meta_out[heap_idx] = pack_meta(axis, point_index);
    let (lo, rest) = entries.split_at_mut(mid);
    let hi = &mut rest[1..];
    build_recursive(lo, 2 * heap_idx + 1, depth + 1, points_out, meta_out, points_moved);
    build_recursive(hi, 2 * heap_idx + 2, depth + 1, points_out, meta_out, points_moved);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random::<f32>() * 10.0,
                    rng.random::<f32>() * 10.0,
                    rng.random::<f32>() * 10.0,
                )
            })
            .collect()
    }

    #[test]
    fn left_subtree_sizes() {
        // n -> (left, right) must satisfy left + right + 1 == n and both
        // subtrees must be valid complete trees.
        assert_eq!(left_subtree_size(0), 0);
        assert_eq!(left_subtree_size(1), 0);
        assert_eq!(left_subtree_size(2), 1);
        assert_eq!(left_subtree_size(3), 1);
        assert_eq!(left_subtree_size(4), 2);
        assert_eq!(left_subtree_size(6), 3);
        assert_eq!(left_subtree_size(7), 3);
        assert_eq!(left_subtree_size(15), 7);
    }

    #[test]
    fn heights() {
        assert_eq!(height_for(0), 0);
        assert_eq!(height_for(1), 1);
        assert_eq!(height_for(2), 2);
        assert_eq!(height_for(3), 2);
        assert_eq!(height_for(4), 3);
        assert_eq!(height_for(7), 3);
        assert_eq!(height_for(8), 4);
    }

    #[test]
    fn build_full_layout() {
        for n in [1, 2, 3, 5, 8, 17, 64, 100, 257] {
            let tree = KdTree::build(&random_cloud(n, n as u64));
            assert_eq!(tree.len(), n);
            // every slot filled with a real point index
            let mut seen = vec![false; n];
            for node in tree.nodes() {
                let pi = node.point_index as usize;
                assert!(pi < n, "sentinel leaked into layout");
                assert!(!seen[pi], "duplicate point index");
                seen[pi] = true;
            }
        }
    }

    #[test]
    fn build_respects_kd_invariant() {
        for n in [3, 10, 33, 100] {
            let tree = KdTree::build(&random_cloud(n, 100 + n as u64));
            assert!(tree.check_invariants(), "n = {n}");
        }
    }

    #[test]
    fn axis_cycles_with_depth() {
        let tree = KdTree::build(&random_cloud(31, 3));
        for idx in 0..tree.len() {
            assert_eq!(tree.node(idx).axis as usize, tree.level_of(idx) % 3);
        }
    }

    #[test]
    fn levels_and_children() {
        let tree = KdTree::build(&random_cloud(7, 1));
        assert_eq!(tree.level_of(0), 0);
        assert_eq!(tree.level_of(1), 1);
        assert_eq!(tree.level_of(2), 1);
        assert_eq!(tree.level_of(3), 2);
        assert_eq!(tree.level_of(6), 2);
        assert_eq!(tree.left(0), Some(1));
        assert_eq!(tree.right(2), Some(6));
        assert_eq!(tree.left(3), None);
    }

    #[test]
    fn subtree_roots_and_sizes() {
        let tree = KdTree::build(&random_cloud(15, 2)); // perfect, height 4
        assert_eq!(tree.subtree_roots(0), vec![0]);
        assert_eq!(tree.subtree_roots(2), vec![3, 4, 5, 6]);
        assert_eq!(tree.subtree_len(0), 15);
        assert_eq!(tree.subtree_len(3), 3);
        assert!(tree.subtree_roots(4).is_empty());
        // non-perfect tree: sizes still partition the nodes
        let tree = KdTree::build(&random_cloud(100, 5));
        let roots = tree.subtree_roots(3);
        let total: usize = roots.iter().map(|&r| tree.subtree_len(r)).sum();
        assert_eq!(total + 7, 100); // 7 top-tree nodes at levels 0..3
    }

    #[test]
    fn empty_tree() {
        let tree = KdTree::build(&PointCloud::new());
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree.check_invariants());
        assert!(tree.subtree_roots(0).is_empty());
    }

    #[test]
    fn build_stats_model_the_construction_cost() {
        let tree = KdTree::build(&random_cloud(1000, 8));
        let s = *tree.build_stats();
        assert_eq!(s.nodes_written, 1000);
        // every level's partition pass touches ~n points: between n (one
        // level) and n·H in total
        assert!(s.points_moved >= 1000);
        assert!(s.points_moved <= 1000 * tree.height());
        assert_eq!(s.dram_bytes, (1000 * (crescent_pointcloud::POINT_BYTES + NODE_BYTES)) as u64);
        assert_eq!(s.cycles, (s.points_moved + s.nodes_written) as u64);
        // empty build is free
        let empty = KdTree::build(&PointCloud::new());
        assert_eq!(*empty.build_stats(), BuildStats::default());
        // deterministic: same cloud, same bill
        let again = KdTree::build(&random_cloud(1000, 8));
        assert_eq!(*again.build_stats(), s);
    }

    #[test]
    fn node_addresses_are_contiguous() {
        let tree = KdTree::build(&random_cloud(10, 7));
        for i in 0..tree.len() {
            assert_eq!(tree.node_addr(i), (i * NODE_BYTES) as u64);
        }
        assert_eq!(tree.size_bytes(), 10 * NODE_BYTES);
    }
}
