//! Two-level split-tree and the Crescent approximate neighbor search
//! (Sec 3), including the selective bank-conflict elision model (Sec 4).
//!
//! The K-d tree is split into a *top tree* (levels `0..h_t`) and a set of
//! *sub-trees* (the subtrees rooted at level `h_t`). A query first descends
//! the top tree with no backtracking and is assigned to exactly one
//! sub-tree; in the second stage each sub-tree answers its queue of queries
//! with backtracking **confined to the sub-tree**. Both stages stream their
//! DRAM accesses (queries in arrival order, sub-trees as dense arrays).
//!
//! Approximation knobs (Sec 3.3, 4.4):
//!
//! * `h_t` (top-tree height): taller ⇒ smaller sub-trees ⇒ fewer nodes
//!   visited in backtracking ⇒ faster but less accurate;
//! * `h_e` (elision height): tree level at and below which a bank-conflicted
//!   tree-buffer fetch is *dropped* (the subtree beneath it is skipped)
//!   instead of stalling the PE. Smaller ⇒ more drops ⇒ faster but less
//!   accurate. The streaming wavefront exposes the same threshold in its
//!   depth-from-leaves form (`height − h_e`, see
//!   [`BatchBankModel`](crate::BatchBankModel)); both forms drive the one
//!   shared arbitration implementation (`TreeArbiter`, in this module).

use serde::{Deserialize, Serialize};

use crescent_memsim::{BankedSram, PortOutcome, SramConfig};
use crescent_pointcloud::{Neighbor, Point3};

use crate::tree::{KdTree, NODE_BYTES};

/// Error building a [`SplitTree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitTreeError {
    /// `top_height` must be `< tree.height()` (a sub-tree level must exist).
    TopHeightTooLarge {
        /// Requested top-tree height.
        requested: usize,
        /// Height of the underlying tree.
        tree_height: usize,
    },
}

impl std::fmt::Display for SplitTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitTreeError::TopHeightTooLarge { requested, tree_height } => write!(
                f,
                "top-tree height {requested} leaves no sub-tree level in a tree of height {tree_height}"
            ),
        }
    }
}

impl std::error::Error for SplitTreeError {}

/// A K-d tree split into a top tree and sub-trees, per Sec 3.1.
///
/// # Examples
///
/// ```
/// use crescent_kdtree::{KdTree, SplitTree};
/// use crescent_pointcloud::{Point3, PointCloud};
///
/// let cloud: PointCloud = (0..255).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
/// let tree = KdTree::build(&cloud);
/// let split = SplitTree::new(&tree, 3)?;
/// assert_eq!(split.num_subtrees(), 8);
/// # Ok::<(), crescent_kdtree::SplitTreeError>(())
/// ```
#[derive(Debug)]
pub struct SplitTree<'a> {
    tree: &'a KdTree,
    top_height: usize,
    subtree_roots: Vec<usize>,
}

impl<'a> SplitTree<'a> {
    /// Splits `tree` below a top tree of height `top_height`.
    ///
    /// `top_height == 0` yields a degenerate split with a single sub-tree
    /// (the whole tree) — i.e. exact search.
    ///
    /// # Errors
    ///
    /// Returns [`SplitTreeError::TopHeightTooLarge`] if no sub-tree level
    /// would remain.
    pub fn new(tree: &'a KdTree, top_height: usize) -> Result<Self, SplitTreeError> {
        if !tree.is_empty() && top_height >= tree.height() {
            return Err(SplitTreeError::TopHeightTooLarge {
                requested: top_height,
                tree_height: tree.height(),
            });
        }
        let subtree_roots = tree.subtree_roots(top_height);
        Ok(SplitTree { tree, top_height, subtree_roots })
    }

    /// Cheap re-validation path for a refitted tree: rebuilds the split
    /// view around `tree` while recycling a root table recovered from a
    /// previous split via [`SplitTree::into_subtree_roots`].
    ///
    /// [`KdTree::refit`](crate::KdTree::refit) mutates the tree in place
    /// without changing its heap layout, so when the node count and
    /// `top_height` are unchanged the old root table is *exactly* correct
    /// and is validated in O(1) (first slot + length check) instead of
    /// being recomputed; when anything changed (a size-changing rebuild
    /// fallback, a different `top_height`) the table is recomputed into
    /// the same allocation. Either way no per-frame allocation is made in
    /// the steady state.
    ///
    /// # Errors
    ///
    /// Returns [`SplitTreeError::TopHeightTooLarge`] under the same
    /// conditions as [`SplitTree::new`].
    pub fn resplit(
        tree: &'a KdTree,
        top_height: usize,
        mut roots: Vec<usize>,
    ) -> Result<Self, SplitTreeError> {
        if !tree.is_empty() && top_height >= tree.height() {
            return Err(SplitTreeError::TopHeightTooLarge {
                requested: top_height,
                tree_height: tree.height(),
            });
        }
        let range = tree.subtree_root_range(top_height);
        let reusable =
            roots.len() == range.len() && (range.is_empty() || roots.first() == Some(&range.start));
        if !reusable {
            roots.clear();
            roots.extend(range);
        }
        Ok(SplitTree { tree, top_height, subtree_roots: roots })
    }

    /// Consumes the split and returns its sub-tree root table so the
    /// allocation can be recycled by a later [`SplitTree::resplit`].
    pub fn into_subtree_roots(self) -> Vec<usize> {
        self.subtree_roots
    }

    /// The underlying tree.
    #[inline]
    pub fn tree(&self) -> &KdTree {
        self.tree
    }

    /// The top-tree height `h_t`.
    #[inline]
    pub fn top_height(&self) -> usize {
        self.top_height
    }

    /// Number of sub-trees (≤ `2^h_t`; fewer in non-perfect trees).
    #[inline]
    pub fn num_subtrees(&self) -> usize {
        self.subtree_roots.len()
    }

    /// Heap slots of the sub-tree roots.
    #[inline]
    pub fn subtree_roots(&self) -> &[usize] {
        &self.subtree_roots
    }

    /// Number of nodes in sub-tree `s`.
    pub fn subtree_len(&self, s: usize) -> usize {
        self.tree.subtree_len(self.subtree_roots[s])
    }

    /// Number of nodes in the top tree.
    pub fn top_len(&self) -> usize {
        ((1usize << self.top_height) - 1).min(self.tree.len())
    }

    /// Height of the tallest sub-tree.
    pub fn subtree_height(&self) -> usize {
        self.tree.height().saturating_sub(self.top_height)
    }

    /// Stage 1 for a single query: descends the top tree (no backtracking)
    /// and returns the sub-tree index the query is assigned to, reporting
    /// candidate neighbors found among the top-tree nodes to `hits` and
    /// each node fetch to `on_fetch`.
    ///
    /// Returns `None` for an empty tree.
    pub fn route_query(
        &self,
        query: Point3,
        radius: f32,
        hits: &mut Vec<Neighbor>,
        on_fetch: &mut dyn FnMut(usize),
    ) -> Option<usize> {
        if self.tree.is_empty() {
            return None;
        }
        let r2 = radius * radius;
        let mut idx = 0usize;
        loop {
            let level = self.tree.level_of(idx);
            if level == self.top_height {
                // reached a sub-tree root
                let s = idx - self.subtree_roots[0];
                return Some(s);
            }
            on_fetch(idx);
            let point = self.tree.point_of(idx);
            let d2 = point.dist2(query);
            if d2 <= r2 {
                hits.push(Neighbor { index: self.tree.point_index_of(idx), dist2: d2 });
            }
            let axis = self.tree.axis_of(idx);
            let next = if query.coord(axis) - point.coord(axis) <= 0.0 {
                self.tree.left(idx)
            } else {
                self.tree.right(idx)
            };
            match next {
                Some(n) => idx = n,
                // ragged bottom of a non-perfect tree: clamp to the last
                // existing sub-tree (its queue absorbs the query)
                None => return Some(self.nearest_subtree_for(idx)),
            }
        }
    }

    pub(crate) fn nearest_subtree_for(&self, idx: usize) -> usize {
        // map a top-tree slot with a missing child onto the sub-tree whose
        // root shares the longest path prefix; clamp into range
        let first = self.subtree_roots[0];
        let mut i = idx;
        while i < first {
            i = 2 * i + 1;
        }
        (i - first).min(self.subtree_roots.len() - 1)
    }

    /// Full two-stage approximate search for one query (no bank-conflict
    /// modeling): top-tree descent, then exact search confined to the
    /// assigned sub-tree. Node fetches are reported to `on_fetch`.
    pub fn search_one_traced(
        &self,
        query: Point3,
        radius: f32,
        max_neighbors: Option<usize>,
        on_fetch: &mut dyn FnMut(usize),
    ) -> Vec<Neighbor> {
        let mut hits = Vec::new();
        let Some(s) = self.route_query(query, radius, &mut hits, on_fetch) else {
            return hits;
        };
        let root = self.subtree_roots[s];
        subtree_radius_search(self.tree, root, query, radius, &mut hits, on_fetch);
        finalize(&mut hits, max_neighbors);
        hits
    }

    /// [`SplitTree::search_one_traced`] without instrumentation.
    pub fn search_one(
        &self,
        query: Point3,
        radius: f32,
        max_neighbors: Option<usize>,
    ) -> Vec<Neighbor> {
        self.search_one_traced(query, radius, max_neighbors, &mut |_| {})
    }

    /// Stage-1 routing for a whole batch: returns the sub-tree assignment
    /// of each query (usable for DRAM-traffic accounting) without running
    /// stage 2.
    pub fn assign_queries(&self, queries: &[Point3], radius: f32) -> Vec<Option<usize>> {
        queries
            .iter()
            .map(|&q| {
                let mut hits = Vec::new();
                self.route_query(q, radius, &mut hits, &mut |_| {})
            })
            .collect()
    }

    /// Batch two-stage search with the lock-step PE / banked-tree-buffer
    /// model, implementing selective bank-conflict elision (Sec 4).
    ///
    /// Queries are routed in stage 1, grouped per sub-tree, and each
    /// sub-tree's queue is processed `config.num_pes` queries at a time.
    /// Every simulated cycle, each active PE issues a fetch for its
    /// stack-top node; fetches that lose bank arbitration either **stall**
    /// (node level < `h_e`) or are **elided** (level ≥ `h_e`), skipping the
    /// node and the whole subtree beneath it.
    ///
    /// Returns one neighbor list per query plus the aggregate statistics.
    pub fn batch_search(
        &self,
        queries: &[Point3],
        config: &SplitSearchConfig,
    ) -> (Vec<Vec<Neighbor>>, SplitSearchStats) {
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        let mut stats = SplitSearchStats::new(self.num_subtrees());
        if self.tree.is_empty() || queries.is_empty() {
            return (results, stats);
        }
        let mut arbiter = TreeArbiter::from_elision(&config.elision);

        // ---- stage 1: top-tree descent (lock-step, conflicts modeled) ----
        let assignments =
            self.run_top_stage(queries, config, &mut arbiter, &mut results, &mut stats);

        // ---- group queries per sub-tree, preserving arrival order ----
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); self.num_subtrees()];
        for (qi, a) in assignments.iter().enumerate() {
            if let Some(s) = a {
                queues[*s].push(qi);
            } else {
                stats.queries_dropped += 1;
            }
        }
        for (s, q) in queues.iter().enumerate() {
            stats.queries_per_subtree[s] = q.len();
        }

        // ---- stage 2: per-sub-tree confined search ----
        let mut scratch = DrainScratch::default();
        for (s, queue) in queues.iter().enumerate() {
            let root = self.subtree_roots[s];
            let outcome = drain_subtree_queue(
                self.tree,
                root,
                queue,
                queries,
                config.radius,
                config.num_pes,
                &mut arbiter,
                &mut scratch,
                &mut results,
            );
            stats.absorb_queue(&outcome);
        }

        for hits in &mut results {
            finalize(hits, config.max_neighbors);
        }
        (results, stats)
    }

    /// Stage-1 simulation: PEs pull queries from the head of the batch as
    /// they go idle (each PE executes queries independently, Fig 7) and
    /// descend the top tree cycle by cycle. Returns each query's sub-tree.
    fn run_top_stage(
        &self,
        queries: &[Point3],
        config: &SplitSearchConfig,
        arbiter: &mut TreeArbiter,
        results: &mut [Vec<Neighbor>],
        stats: &mut SplitSearchStats,
    ) -> Vec<Option<usize>> {
        let r2 = config.radius * config.radius;
        let mut assignments: Vec<Option<usize>> = vec![None; queries.len()];
        if self.top_height == 0 {
            for a in assignments.iter_mut() {
                *a = Some(0);
            }
            return assignments;
        }
        let num_pes = config.num_pes.max(1);
        let mut next_query = 0usize;
        // per-PE (query index, cursor); None = idle
        let mut pe_state: Vec<Option<(usize, usize)>> = vec![None; num_pes];
        // per-round request scratch, reused across rounds
        let mut requests: Vec<Option<usize>> = Vec::with_capacity(num_pes);
        loop {
            // issue new queries to idle PEs
            for slot in pe_state.iter_mut() {
                if slot.is_none() && next_query < queries.len() {
                    *slot = Some((next_query, 0));
                    next_query += 1;
                }
            }
            if pe_state.iter().all(Option::is_none) {
                break;
            }
            stats.rounds += 1;
            requests.clear();
            requests.extend(pe_state.iter().map(|s| s.map(|(_, idx)| idx)));
            let honored = arbiter.arbitrate(self.tree, &requests);
            for (pe, slot) in pe_state.iter_mut().enumerate() {
                let Some((qi, idx)) = *slot else { continue };
                stats.fetch_attempts += 1;
                if honored[pe] != Arbitration::Honored {
                    stats.bank_conflicts += 1;
                }
                match honored[pe] {
                    Arbitration::Honored => {
                        stats.top_tree_visits += 1;
                        stats.nodes_visited += 1;
                        let point = self.tree.point_of(idx);
                        let q = queries[qi];
                        let d2 = point.dist2(q);
                        if d2 <= r2 {
                            results[qi]
                                .push(Neighbor { index: self.tree.point_index_of(idx), dist2: d2 });
                        }
                        let axis = self.tree.axis_of(idx);
                        let next = if q.coord(axis) - point.coord(axis) <= 0.0 {
                            self.tree.left(idx)
                        } else {
                            self.tree.right(idx)
                        };
                        match next {
                            Some(n) if self.tree.level_of(n) >= self.top_height => {
                                assignments[qi] = Some(n - self.subtree_roots[0]);
                                *slot = None;
                            }
                            Some(n) => *slot = Some((qi, n)),
                            None => {
                                assignments[qi] = Some(self.nearest_subtree_for(idx));
                                *slot = None;
                            }
                        }
                    }
                    Arbitration::Reused(w) if w != idx => {
                        // continue routing from the winner's (top-tree)
                        // node — routing stays on a valid downward path
                        stats.descendant_reuses += 1;
                        stats.nodes_skipped +=
                            self.tree.subtree_len(idx) - self.tree.subtree_len(w);
                        if self.tree.level_of(w) >= self.top_height {
                            assignments[qi] = Some(w - self.subtree_roots[0]);
                            *slot = None;
                        } else {
                            *slot = Some((qi, w));
                        }
                    }
                    Arbitration::Reused(_) => {
                        // same node: multicast data, proceed as honored
                        // next round without re-requesting
                        stats.descendant_reuses += 1;
                    }
                    Arbitration::Stalled => {
                        stats.conflict_stalls += 1; // retry next round
                    }
                    Arbitration::Elided => {
                        // routing fetch lost and dropped: the query never
                        // reaches a sub-tree
                        stats.nodes_elided += 1;
                        stats.nodes_skipped += self.tree.subtree_len(idx);
                        *slot = None;
                    }
                }
            }
        }
        assignments
    }
}

/// The lock-step tree-buffer arbiter shared by *every* timing path that
/// fetches tree nodes — the per-query engine model
/// ([`SplitTree::batch_search`]) and the streaming wavefront
/// ([`SplitTree::search_batch`](crate::batch)) route their node fetches
/// through this one implementation, so "one unified timing model" is a
/// structural property, not a testing aspiration.
///
/// Bank mapping and winner selection are delegated to `crescent-memsim`'s
/// [`BankedSram`] (node index × [`NODE_BYTES`], word size = one node, so
/// nodes are low-order interleaved across banks exactly like the
/// engine's Fig 10 hardware); this type adds the tree-shaped policy on
/// top: the `h_e` level comparator that decides whether a losing fetch
/// stalls or is dropped, and the optional descendant-reuse salvage.
#[derive(Debug)]
pub(crate) struct TreeArbiter {
    /// `None` = ideal SRAM (no banking model): every request is honored.
    sram: Option<BankedSram>,
    /// Elide a losing fetch iff its node's level is `>= threshold`
    /// (levels are `0..height`); losers above the threshold stall.
    threshold: usize,
    /// The level comparator, folded to index space: `level_of(idx) >=
    /// threshold  ⟺  idx >= 2^threshold − 1` (heap levels start at
    /// `2^level − 1`), so the per-request, per-round eligibility test is
    /// one integer compare. `usize::MAX` when the threshold saturates.
    min_elide_idx: usize,
    /// Sec 4.2 descendant-reuse refinement on elided fetches.
    reuse: bool,
    /// Per-round outcome scratch, reused so the innermost simulation
    /// loop does not allocate (one arbitration round per simulated
    /// cycle).
    outcomes: Vec<Arbitration>,
}

impl TreeArbiter {
    /// Arbiter for the engine path's [`ElisionConfig`] (`None` = the
    /// pure-ANS ideal SRAM).
    pub(crate) fn from_elision(elision: &Option<ElisionConfig>) -> Self {
        match elision {
            None => TreeArbiter {
                sram: None,
                threshold: usize::MAX,
                min_elide_idx: usize::MAX,
                reuse: false,
                outcomes: Vec::new(),
            },
            Some(e) => TreeArbiter::banked(e.num_banks, e.elision_height, e.descendant_reuse),
        }
    }

    /// Banked arbiter with an explicit level threshold: losing fetches at
    /// level `>= threshold` are elided, the rest stall. The streaming
    /// wavefront derives `threshold = height − h_e` from its
    /// depth-from-leaves knob; the engine path passes the paper's raw
    /// `elision_height`.
    pub(crate) fn banked(num_banks: usize, threshold: usize, reuse: bool) -> Self {
        let banks = num_banks.max(1);
        let config = SramConfig {
            num_banks: banks,
            word_bytes: NODE_BYTES,
            capacity_bytes: banks * NODE_BYTES,
        };
        TreeArbiter {
            sram: Some(BankedSram::new(config)),
            threshold,
            min_elide_idx: 1usize
                .checked_shl(threshold.min(usize::BITS as usize) as u32)
                .map_or(usize::MAX, |v| v - 1),
            reuse,
            outcomes: Vec::new(),
        }
    }

    /// The underlying [`BankedSram`] counter block (cumulative across
    /// every round this arbiter ran), if banked — the cross-check handle
    /// tests use to tie the kdtree-level statistics to the memsim model.
    #[cfg(test)]
    pub(crate) fn sram_counters(&self) -> Option<crescent_memsim::SramCounters> {
        self.sram.as_ref().map(|s| *s.counters())
    }

    /// Arbitrates one lock-step round. `requests[pe]` is the node each PE
    /// wants to fetch (`None` = idle port). The returned slice lives in a
    /// buffer the arbiter recycles round to round, so the per-cycle inner
    /// loop performs no allocation.
    pub(crate) fn arbitrate(
        &mut self,
        tree: &KdTree,
        requests: &[Option<usize>],
    ) -> &[Arbitration] {
        self.outcomes.clear();
        let Some(sram) = &mut self.sram else {
            // ideal SRAM: every request is honored (idle slots carry a
            // placeholder the callers never read)
            self.outcomes.extend(requests.iter().map(|r| {
                if r.is_some() {
                    Arbitration::Honored
                } else {
                    Arbitration::Stalled
                }
            }));
            return &self.outcomes;
        };
        debug_assert!(requests
            .iter()
            .flatten()
            .all(|&idx| { (idx >= self.min_elide_idx) == (tree.level_of(idx) >= self.threshold) }));
        // single pass: the memsim round delivers each port's outcome (and
        // its bank's winner, already final under first-come arbitration)
        // through a sink, and the tree-shaped policy resolves it in
        // place. Addresses and eligibility are computed per port instead
        // of materialized — this call runs once per simulated cycle.
        let min_elide_idx = self.min_elide_idx;
        let reuse = self.reuse;
        let outcomes = &mut self.outcomes;
        sram.arbitrate_fold(
            requests.len(),
            |pe| requests[pe].map(|idx| (idx * NODE_BYTES) as u64),
            |pe| requests[pe].is_some_and(|idx| idx >= min_elide_idx),
            |pe, outcome, winner| {
                let arb = match requests[pe] {
                    None => Arbitration::Stalled,
                    Some(idx) => match outcome {
                        PortOutcome::Granted => Arbitration::Honored,
                        PortOutcome::Conflict => Arbitration::Stalled,
                        // without descendant reuse an elided fetch is
                        // simply dropped — no need to look up whose data
                        // the bank multicast
                        PortOutcome::Elided if !reuse => Arbitration::Elided,
                        PortOutcome::Elided => {
                            let winner_port = winner.expect("a lost bank has a winner");
                            let winner_node =
                                requests[winner_port].expect("winners requested a node");
                            if is_ancestor(idx, winner_node) {
                                // the winner's data lies beneath the lost
                                // node: continuing from it terminates and
                                // skips fewer nodes (Sec 4.2 refinement)
                                Arbitration::Reused(winner_node)
                            } else {
                                Arbitration::Elided
                            }
                        }
                    },
                };
                outcomes.push(arb);
            },
        );
        &self.outcomes
    }
}

/// Accounting of one sub-tree queue drained by [`drain_subtree_queue`] —
/// the per-queue slice of the unified stage-2 timing model, absorbed
/// into [`SplitSearchStats`] by the engine path and into
/// [`BatchSearchStats`](crate::BatchSearchStats) by the wavefront.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct QueueOutcome {
    /// Lock-step arbitration rounds (the stage-2 cycle proxy).
    pub rounds: usize,
    /// Rounds in which at least one fetch lost arbitration and stalled —
    /// the cycles a conflict-free SRAM could win back.
    pub stall_rounds: usize,
    /// Fetch attempts issued (including re-issues after stalls).
    pub attempts: usize,
    /// Attempts that lost bank arbitration (stalled + elided + reused).
    pub conflicts: usize,
    /// Lost attempts that stalled and re-issued.
    pub stalls: usize,
    /// Lost attempts dropped by elision.
    pub elided: usize,
    /// Lost attempts salvaged by descendant reuse.
    pub reuses: usize,
    /// Nodes made unreachable by elision (dropped node + its subtree).
    pub skipped: usize,
    /// Honored node visits.
    pub visits: usize,
}

/// Reusable scratch of [`drain_subtree_queue`]: the per-PE traversal
/// stacks and per-round request snapshot. Owned by the caller and reused
/// across sub-tree queues — and, via
/// [`BatchState`](crate::BatchState), across the frames of a stream — so
/// the stage-2 inner loop performs no steady-state allocation.
#[derive(Debug, Default)]
pub(crate) struct DrainScratch {
    pe_query: Vec<Option<usize>>,
    stacks: Vec<Vec<usize>>,
    tops: Vec<Option<usize>>,
}

impl DrainScratch {
    /// Empties the scratch for a new queue while keeping the per-PE stack
    /// allocations alive.
    fn reset(&mut self, num_pes: usize) {
        self.pe_query.clear();
        self.pe_query.resize(num_pes, None);
        for s in &mut self.stacks {
            s.clear();
        }
        self.stacks.resize_with(num_pes, Vec::new);
        self.tops.clear();
    }
}

/// Drains one sub-tree's query queue in lock-step: idle PEs pull the next
/// queued query and traverse independently (own stack), every simulated
/// cycle each active PE issues its stack-top node to `arbiter`, and
/// losing fetches stall, elide, or reuse per the arbiter's policy.
///
/// This is THE stage-2 simulation — [`SplitTree::batch_search`] and the
/// banked [`SplitTree::search_batch`](crate::batch) both call it, which
/// is what makes their conflict/round accounting identical whenever they
/// are handed identical queues (property-tested in
/// `tests/elision_unified.rs`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn drain_subtree_queue(
    tree: &KdTree,
    root: usize,
    queue: &[usize],
    queries: &[Point3],
    radius: f32,
    num_pes: usize,
    arbiter: &mut TreeArbiter,
    scratch: &mut DrainScratch,
    results: &mut [Vec<Neighbor>],
) -> QueueOutcome {
    let mut out = QueueOutcome::default();
    if queue.is_empty() {
        return out;
    }
    let r2 = radius * radius;
    let num_pes = num_pes.max(1);
    let mut next = 0usize;
    scratch.reset(num_pes);
    let DrainScratch { pe_query, stacks, tops } = scratch;
    loop {
        for (slot, stack) in pe_query.iter_mut().zip(stacks.iter_mut()) {
            if slot.is_none() && next < queue.len() {
                *slot = Some(queue[next]);
                next += 1;
                stack.push(root);
            }
        }
        if pe_query.iter().all(Option::is_none) {
            break;
        }
        out.rounds += 1;
        let mut round_stalled = false;
        tops.clear();
        tops.extend(stacks.iter().map(|s| s.last().copied()));
        let honored = arbiter.arbitrate(tree, tops);
        for pe in 0..num_pes {
            let Some(qi) = pe_query[pe] else { continue };
            let Some(idx) = tops[pe] else { continue };
            out.attempts += 1;
            if honored[pe] != Arbitration::Honored {
                out.conflicts += 1;
            }
            let mut visit: Option<usize> = None;
            match honored[pe] {
                Arbitration::Honored => {
                    stacks[pe].pop();
                    visit = Some(idx);
                }
                Arbitration::Reused(w) => {
                    stacks[pe].pop();
                    out.reuses += 1;
                    if w == idx {
                        // same node: the multicast data is exactly
                        // what this PE asked for
                        visit = Some(idx);
                    } else {
                        // continue beneath the winner; the bypassed
                        // part of this subtree is skipped
                        out.skipped += tree.subtree_len(idx) - tree.subtree_len(w);
                        stacks[pe].push(w);
                    }
                }
                Arbitration::Stalled => {
                    // keep stack top, retry next round
                    out.stalls += 1;
                    round_stalled = true;
                }
                Arbitration::Elided => {
                    // drop the node and everything beneath it
                    stacks[pe].pop();
                    out.elided += 1;
                    out.skipped += tree.subtree_len(idx);
                }
            }
            if let Some(idx) = visit {
                out.visits += 1;
                let point = tree.point_of(idx);
                let q = queries[qi];
                let d2 = point.dist2(q);
                if d2 <= r2 {
                    results[qi].push(Neighbor { index: tree.point_index_of(idx), dist2: d2 });
                }
                let axis = tree.axis_of(idx);
                let delta = q.coord(axis) - point.coord(axis);
                let (near, far) = if delta <= 0.0 {
                    (tree.left(idx), tree.right(idx))
                } else {
                    (tree.right(idx), tree.left(idx))
                };
                if delta * delta <= r2 {
                    if let Some(f) = far {
                        stacks[pe].push(f);
                    }
                }
                if let Some(n) = near {
                    stacks[pe].push(n);
                }
            }
            if stacks[pe].is_empty() {
                pe_query[pe] = None;
            }
        }
        if round_stalled {
            out.stall_rounds += 1;
        }
    }
    out
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Arbitration {
    Honored,
    Stalled,
    Elided,
    /// Conflict elided, but the winner's node is beneath the requested
    /// node: continue the traversal from the carried slot (Sec 4.2
    /// future-work refinement).
    Reused(usize),
}

/// Configuration of [`SplitTree::batch_search`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SplitSearchConfig {
    /// Search radius.
    pub radius: f32,
    /// Cap on returned neighbors per query (None = unbounded).
    pub max_neighbors: Option<usize>,
    /// Number of PEs searching in lock-step (paper: 4; Fig 4 uses 8).
    pub num_pes: usize,
    /// Bank-conflict model; `None` disables conflict modeling (pure ANS).
    pub elision: Option<ElisionConfig>,
}

impl Default for SplitSearchConfig {
    fn default() -> Self {
        SplitSearchConfig { radius: 0.2, max_neighbors: Some(32), num_pes: 4, elision: None }
    }
}

/// Bank-conflict elision parameters (Sec 4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElisionConfig {
    /// Tree level at and below which conflicted fetches are dropped
    /// (`h_e`). Conflicts above this level stall instead.
    pub elision_height: usize,
    /// Number of tree-buffer banks (low-order interleaved).
    pub num_banks: usize,
    /// Descendant-reuse refinement — the optimization Sec 4.2 leaves as
    /// future work: when the winning request's node lies *beneath* the
    /// losing request's node in the tree, the loser continues its
    /// traversal from the winner's node instead of dropping its whole
    /// subtree. Fewer nodes are skipped (higher accuracy) at no extra
    /// hardware cost beyond an ancestor check on the two indices.
    #[serde(default)]
    pub descendant_reuse: bool,
}

impl ElisionConfig {
    /// The paper's elision scheme: conflicted fetches at level ≥ `h_e`
    /// are dropped outright.
    pub fn new(elision_height: usize, num_banks: usize) -> Self {
        ElisionConfig { elision_height, num_banks, descendant_reuse: false }
    }

    /// Elision with the Sec 4.2 future-work descendant-reuse refinement.
    pub fn with_descendant_reuse(elision_height: usize, num_banks: usize) -> Self {
        ElisionConfig { elision_height, num_banks, descendant_reuse: true }
    }
}

/// Whether heap slot `ancestor` is a (strict or equal) ancestor of `node`.
#[inline]
fn is_ancestor(ancestor: usize, node: usize) -> bool {
    let la = usize::BITS - (ancestor + 1).leading_zeros();
    let ln = usize::BITS - (node + 1).leading_zeros();
    ln >= la && ((node + 1) >> (ln - la)) == ancestor + 1
}

/// Aggregate statistics of a [`SplitTree::batch_search`] run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SplitSearchStats {
    /// Honored node fetches (tree-buffer reads that returned data).
    pub nodes_visited: usize,
    /// Fetches dropped by bank-conflict elision.
    pub nodes_elided: usize,
    /// Tree nodes made unreachable by elision: each dropped fetch skips the
    /// node plus its whole subtree (the Fig 9 "# of nodes skipped" metric).
    pub nodes_skipped: usize,
    /// Fetches that lost arbitration and stalled (level < `h_e`).
    pub conflict_stalls: usize,
    /// Conflicted fetches salvaged by descendant reuse (the Sec 4.2
    /// future-work refinement; 0 unless
    /// [`ElisionConfig::descendant_reuse`] is enabled).
    pub descendant_reuses: usize,
    /// Total bank conflicts observed (stalled + elided).
    pub bank_conflicts: usize,
    /// Total fetch attempts issued to the tree buffer.
    pub fetch_attempts: usize,
    /// Lock-step rounds executed (a cycle-count proxy; the accel crate
    /// refines it with pipeline latencies).
    pub rounds: usize,
    /// The stage-2 slice of [`SplitSearchStats::rounds`]: lock-step
    /// arbitration rounds spent draining sub-tree queues. The streaming
    /// wavefront shares the stage-2 implementation, so at `h_e = 0` this
    /// equals the wavefront's `subtree_rounds` on identical queues — the
    /// unified-timing-model invariant `tests/elision_unified.rs` checks.
    pub subtree_rounds: usize,
    /// Node fetches during stage 1 (top-tree descent).
    pub top_tree_visits: usize,
    /// Node fetches during stage 2 (sub-tree search).
    pub subtree_visits: usize,
    /// Queries dropped entirely (routing fetch elided).
    pub queries_dropped: usize,
    /// Stage-2 queue length per sub-tree.
    pub queries_per_subtree: Vec<usize>,
}

impl SplitSearchStats {
    fn new(num_subtrees: usize) -> Self {
        SplitSearchStats {
            queries_per_subtree: vec![0; num_subtrees],
            ..SplitSearchStats::default()
        }
    }

    /// Adds another run's counters (used when a pipeline aggregates the
    /// per-layer search statistics). Lives next to the struct so a new
    /// counter field cannot be silently dropped from merged reports —
    /// the hand-rolled copy this replaces forgot `descendant_reuses`,
    /// `top_tree_visits`, and `subtree_visits` at various points.
    /// `queries_per_subtree` is per-tree and not meaningful across runs,
    /// so it is left untouched.
    pub fn merge(&mut self, other: &SplitSearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.nodes_elided += other.nodes_elided;
        self.nodes_skipped += other.nodes_skipped;
        self.conflict_stalls += other.conflict_stalls;
        self.descendant_reuses += other.descendant_reuses;
        self.bank_conflicts += other.bank_conflicts;
        self.fetch_attempts += other.fetch_attempts;
        self.rounds += other.rounds;
        self.subtree_rounds += other.subtree_rounds;
        self.top_tree_visits += other.top_tree_visits;
        self.subtree_visits += other.subtree_visits;
        self.queries_dropped += other.queries_dropped;
    }

    /// Folds one drained sub-tree queue into the aggregate counters.
    fn absorb_queue(&mut self, q: &QueueOutcome) {
        self.rounds += q.rounds;
        self.subtree_rounds += q.rounds;
        self.fetch_attempts += q.attempts;
        self.bank_conflicts += q.conflicts;
        self.conflict_stalls += q.stalls;
        self.nodes_elided += q.elided;
        self.nodes_skipped += q.skipped;
        self.descendant_reuses += q.reuses;
        self.nodes_visited += q.visits;
        self.subtree_visits += q.visits;
    }

    /// Fraction of fetch attempts that bank-conflicted.
    pub fn conflict_rate(&self) -> f64 {
        if self.fetch_attempts == 0 {
            0.0
        } else {
            self.bank_conflicts as f64 / self.fetch_attempts as f64
        }
    }
}

/// Exact radius search confined to the sub-tree rooted at `root`,
/// appending to `hits`.
pub fn subtree_radius_search(
    tree: &KdTree,
    root: usize,
    query: Point3,
    radius: f32,
    hits: &mut Vec<Neighbor>,
    on_fetch: &mut dyn FnMut(usize),
) {
    let r2 = radius * radius;
    let mut stack = vec![root];
    while let Some(idx) = stack.pop() {
        on_fetch(idx);
        let point = tree.point_of(idx);
        let d2 = point.dist2(query);
        if d2 <= r2 {
            hits.push(Neighbor { index: tree.point_index_of(idx), dist2: d2 });
        }
        let axis = tree.axis_of(idx);
        let delta = query.coord(axis) - point.coord(axis);
        let (near, far) = if delta <= 0.0 {
            (tree.left(idx), tree.right(idx))
        } else {
            (tree.right(idx), tree.left(idx))
        };
        if delta * delta <= r2 {
            if let Some(f) = far {
                stack.push(f);
            }
        }
        if let Some(n) = near {
            stack.push(n);
        }
    }
}

pub(crate) fn finalize(hits: &mut Vec<Neighbor>, max_neighbors: Option<usize>) {
    hits.sort_by(|a, b| a.dist2.partial_cmp(&b.dist2).unwrap_or(std::cmp::Ordering::Equal));
    hits.dedup_by_key(|n| n.index);
    if let Some(k) = max_neighbors {
        hits.truncate(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::radius_search;
    use crescent_pointcloud::PointCloud;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                )
            })
            .collect()
    }

    fn random_queries(n: usize, seed: u64) -> Vec<Point3> {
        random_cloud(n, seed).into_points()
    }

    #[test]
    fn new_rejects_oversized_top() {
        let cloud = random_cloud(100, 1); // height 7
        let tree = KdTree::build(&cloud);
        assert!(SplitTree::new(&tree, 6).is_ok());
        let err = SplitTree::new(&tree, 7).unwrap_err();
        assert!(matches!(err, SplitTreeError::TopHeightTooLarge { .. }));
        assert!(err.to_string().contains("height 7"));
    }

    #[test]
    fn zero_top_height_is_exact() {
        let cloud = random_cloud(200, 2);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 0).unwrap();
        assert_eq!(split.num_subtrees(), 1);
        for &q in &random_queries(20, 3) {
            let mut got: Vec<usize> =
                split.search_one(q, 0.4, None).iter().map(|n| n.index).collect();
            let mut want: Vec<usize> =
                radius_search(&tree, q, 0.4, None).iter().map(|n| n.index).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn split_counts_partition_tree() {
        let cloud = random_cloud(1000, 4);
        let tree = KdTree::build(&cloud);
        for ht in 1..5 {
            let split = SplitTree::new(&tree, ht).unwrap();
            let total: usize =
                (0..split.num_subtrees()).map(|s| split.subtree_len(s)).sum::<usize>()
                    + split.top_len();
            assert_eq!(total, 1000, "ht = {ht}");
        }
    }

    #[test]
    fn approximate_results_subset_of_exact() {
        // approximate search may miss neighbors (cross-sub-tree) but must
        // never invent one
        let cloud = random_cloud(500, 5);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        for &q in &random_queries(30, 6) {
            let approx: Vec<usize> =
                split.search_one(q, 0.3, None).iter().map(|n| n.index).collect();
            let exact: Vec<usize> =
                radius_search(&tree, q, 0.3, None).iter().map(|n| n.index).collect();
            for idx in &approx {
                assert!(exact.contains(idx), "approx returned non-neighbor {idx}");
            }
        }
    }

    #[test]
    fn higher_top_tree_visits_fewer_nodes() {
        // Fig 8: nodes visited per query decreases with h_t
        let cloud = random_cloud(4096, 7);
        let tree = KdTree::build(&cloud);
        let queries = random_queries(64, 8);
        let mut prev = usize::MAX;
        for ht in [0usize, 2, 4, 6, 8] {
            let split = SplitTree::new(&tree, ht).unwrap();
            let mut visits = 0usize;
            for &q in &queries {
                split.search_one_traced(q, 0.25, None, &mut |_| visits += 1);
            }
            assert!(visits <= prev, "ht {ht}: visits {visits} > prev {prev}");
            prev = visits;
        }
    }

    #[test]
    fn batch_matches_search_one_without_elision() {
        let cloud = random_cloud(300, 9);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 2).unwrap();
        let queries = random_queries(40, 10);
        let cfg =
            SplitSearchConfig { radius: 0.35, max_neighbors: Some(16), num_pes: 4, elision: None };
        let (batch, stats) = split.batch_search(&queries, &cfg);
        for (qi, &q) in queries.iter().enumerate() {
            let single = split.search_one(q, 0.35, Some(16));
            let a: Vec<usize> = batch[qi].iter().map(|n| n.index).collect();
            let b: Vec<usize> = single.iter().map(|n| n.index).collect();
            assert_eq!(a, b, "query {qi}");
        }
        assert_eq!(stats.nodes_elided, 0);
        assert_eq!(stats.bank_conflicts, 0);
        assert!(stats.nodes_visited > 0);
        assert_eq!(stats.queries_per_subtree.iter().sum::<usize>(), queries.len());
    }

    #[test]
    fn elision_skips_nodes_and_subsets_results() {
        let cloud = random_cloud(2048, 11);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 2).unwrap();
        let queries = random_queries(64, 12);
        let exact_cfg =
            SplitSearchConfig { radius: 0.3, max_neighbors: None, num_pes: 8, elision: None };
        let elide_cfg = SplitSearchConfig {
            elision: Some(ElisionConfig {
                elision_height: 4,
                num_banks: 4,
                descendant_reuse: false,
            }),
            ..exact_cfg
        };
        let (full, _) = split.batch_search(&queries, &exact_cfg);
        let (approx, stats) = split.batch_search(&queries, &elide_cfg);
        assert!(stats.nodes_elided > 0, "aggressive elision must drop nodes");
        assert!(stats.bank_conflicts >= stats.nodes_elided);
        let full_count: usize = full.iter().map(Vec::len).sum();
        let approx_count: usize = approx.iter().map(Vec::len).sum();
        assert!(approx_count <= full_count);
        for (a, f) in approx.iter().zip(&full) {
            let fset: Vec<usize> = f.iter().map(|n| n.index).collect();
            for n in a {
                assert!(fset.contains(&n.index));
            }
        }
    }

    #[test]
    fn elision_monotone_in_height() {
        // Fig 9: raising h_e (eliding deeper only) skips fewer nodes
        let cloud = random_cloud(4096, 13);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 2).unwrap();
        let queries = random_queries(64, 14);
        let mut prev_skipped = usize::MAX;
        for he in [2usize, 5, 8, 11] {
            let cfg = SplitSearchConfig {
                radius: 0.3,
                max_neighbors: None,
                num_pes: 8,
                elision: Some(ElisionConfig {
                    elision_height: he,
                    num_banks: 4,
                    descendant_reuse: false,
                }),
            };
            let (_, stats) = split.batch_search(&queries, &cfg);
            // eliding only deeper in the tree makes each drop cheaper;
            // allow small slack for arbitration dynamics
            assert!(
                stats.nodes_skipped <= prev_skipped.saturating_add(prev_skipped / 10),
                "he {he}: skipped {} > prev {prev_skipped}",
                stats.nodes_skipped
            );
            assert!(stats.nodes_skipped >= stats.nodes_elided);
            prev_skipped = stats.nodes_skipped;
        }
    }

    #[test]
    fn more_banks_fewer_conflicts() {
        // Fig 4 trend
        let cloud = random_cloud(4096, 15);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 2).unwrap();
        let queries = random_queries(64, 16);
        let mut prev_rate = 1.1_f64;
        for banks in [2usize, 8, 32] {
            let cfg = SplitSearchConfig {
                radius: 0.3,
                max_neighbors: None,
                num_pes: 8,
                // h_e above tree height: all conflicts stall, none elided,
                // so results stay exact while conflicts are counted
                elision: Some(ElisionConfig {
                    elision_height: 64,
                    num_banks: banks,
                    descendant_reuse: false,
                }),
            };
            let (_, stats) = split.batch_search(&queries, &cfg);
            let rate = stats.conflict_rate();
            assert!(rate <= prev_rate + 1e-9, "banks {banks}: {rate} > {prev_rate}");
            prev_rate = rate;
        }
    }

    #[test]
    fn descendant_reuse_recovers_results() {
        // the Sec 4.2 future-work refinement: reusing the winner's data
        // when it lies beneath the lost node must (a) never invent
        // neighbors, and in aggregate (b) skip fewer nodes and (c)
        // recover more results than plain elision. (b) and (c) are
        // statistical, not per-workload, guarantees: salvaging a fetch
        // changes PE timing, so later rounds may elide *different* nodes
        // and a single workload can come out slightly behind — hence the
        // aggregate over several seeded workloads.
        let count = |rs: &[Vec<Neighbor>]| rs.iter().map(Vec::len).sum::<usize>();
        let mut total_plain = 0usize;
        let mut total_reuse = 0usize;
        let mut skipped_plain = 0usize;
        let mut skipped_reuse = 0usize;
        for seed in [31u64, 47, 61, 73, 89] {
            let cloud = random_cloud(4096, seed);
            let tree = KdTree::build(&cloud);
            let split = SplitTree::new(&tree, 2).unwrap();
            let queries = random_queries(96, seed + 1);
            let plain = SplitSearchConfig {
                radius: 0.3,
                max_neighbors: None,
                num_pes: 8,
                elision: Some(ElisionConfig::new(4, 4)),
            };
            let reuse = SplitSearchConfig {
                elision: Some(ElisionConfig::with_descendant_reuse(4, 4)),
                ..plain
            };
            let exact = SplitSearchConfig { elision: None, ..plain };
            let (full, _) = split.batch_search(&queries, &exact);
            let (r_plain, s_plain) = split.batch_search(&queries, &plain);
            let (r_reuse, s_reuse) = split.batch_search(&queries, &reuse);
            assert!(s_plain.nodes_elided > 0, "workload must trigger elision");
            assert!(s_reuse.descendant_reuses > 0, "reuse opportunities must arise");
            assert_eq!(s_plain.descendant_reuses, 0);
            // (a) subset of exact — structural, holds per workload
            for (a, f) in r_reuse.iter().zip(&full) {
                let fidx: Vec<usize> = f.iter().map(|n| n.index).collect();
                for n in a {
                    assert!(fidx.contains(&n.index));
                }
            }
            total_plain += count(&r_plain);
            total_reuse += count(&r_reuse);
            skipped_plain += s_plain.nodes_skipped;
            skipped_reuse += s_reuse.nodes_skipped;
        }
        // (b) fewer nodes lost in aggregate
        assert!(
            skipped_reuse <= skipped_plain,
            "reuse skipped {skipped_reuse} vs plain {skipped_plain}"
        );
        // (c) more neighbors survive in aggregate
        assert!(total_reuse >= total_plain, "reuse found {total_reuse} vs plain {total_plain}");
    }

    #[test]
    fn queue_accounting_matches_the_memsim_counters() {
        // the kdtree-level statistics and the underlying BankedSram
        // counter block are two views of the same arbitration stream:
        // they must agree exactly
        let cloud = random_cloud(2048, 25);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 2).unwrap();
        let queries = random_queries(64, 26);
        let queue: Vec<usize> = (0..queries.len()).collect();
        let root = split.subtree_roots()[0];
        let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
        let mut scratch = DrainScratch::default();
        for threshold in [usize::MAX, 8, 4] {
            let mut arbiter = TreeArbiter::banked(4, threshold, false);
            let q = drain_subtree_queue(
                &tree,
                root,
                &queue,
                &queries,
                0.3,
                8,
                &mut arbiter,
                &mut scratch,
                &mut results,
            );
            let c = arbiter.sram_counters().expect("banked arbiter carries counters");
            assert_eq!(c.rounds, q.rounds as u64, "threshold {threshold}");
            assert_eq!(c.requests, q.attempts as u64);
            assert_eq!(c.grants, q.visits as u64);
            assert_eq!(c.conflicts, q.conflicts as u64);
            assert_eq!(c.elided, (q.elided + q.reuses) as u64);
            assert_eq!(q.conflicts, q.stalls + q.elided + q.reuses);
            for r in &mut results {
                r.clear();
            }
        }
    }

    #[test]
    fn is_ancestor_heap_relation() {
        assert!(is_ancestor(0, 0));
        assert!(is_ancestor(0, 1));
        assert!(is_ancestor(0, 6));
        assert!(is_ancestor(1, 3));
        assert!(is_ancestor(1, 4));
        assert!(is_ancestor(1, 9));
        assert!(!is_ancestor(1, 2));
        assert!(!is_ancestor(1, 5));
        assert!(!is_ancestor(3, 1), "not symmetric");
        assert!(!is_ancestor(2, 3));
        assert!(is_ancestor(2, 5));
    }

    #[test]
    fn stall_only_elision_preserves_results() {
        let cloud = random_cloud(512, 17);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 2).unwrap();
        let queries = random_queries(32, 18);
        let base =
            SplitSearchConfig { radius: 0.4, max_neighbors: Some(8), num_pes: 8, elision: None };
        let stall_all = SplitSearchConfig {
            elision: Some(ElisionConfig {
                elision_height: usize::MAX,
                num_banks: 2,
                descendant_reuse: false,
            }),
            ..base
        };
        let (a, _) = split.batch_search(&queries, &base);
        let (b, stats) = split.batch_search(&queries, &stall_all);
        assert_eq!(stats.nodes_elided, 0);
        assert!(stats.conflict_stalls > 0);
        for (x, y) in a.iter().zip(&b) {
            let xi: Vec<usize> = x.iter().map(|n| n.index).collect();
            let yi: Vec<usize> = y.iter().map(|n| n.index).collect();
            assert_eq!(xi, yi);
        }
    }

    #[test]
    fn stats_accounting_consistent() {
        let cloud = random_cloud(1024, 19);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let queries = random_queries(48, 20);
        let cfg = SplitSearchConfig {
            radius: 0.3,
            max_neighbors: None,
            num_pes: 8,
            elision: Some(ElisionConfig {
                elision_height: 6,
                num_banks: 4,
                descendant_reuse: false,
            }),
        };
        let (_, s) = split.batch_search(&queries, &cfg);
        assert_eq!(s.nodes_visited, s.top_tree_visits + s.subtree_visits);
        assert_eq!(s.bank_conflicts, s.conflict_stalls + s.nodes_elided);
        assert_eq!(
            s.fetch_attempts,
            s.nodes_visited + s.bank_conflicts,
            "every attempt either visits, stalls, or elides"
        );
    }

    #[test]
    fn empty_inputs() {
        let tree = KdTree::build(&PointCloud::new());
        let split = SplitTree::new(&tree, 0).unwrap();
        let (res, stats) = split.batch_search(&[], &SplitSearchConfig::default());
        assert!(res.is_empty());
        assert_eq!(stats.nodes_visited, 0);
        assert!(split.search_one(Point3::ZERO, 1.0, None).is_empty());
    }

    #[test]
    fn resplit_reuses_a_matching_root_table() {
        let cloud = random_cloud(500, 21);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let roots_before = split.subtree_roots().to_vec();
        let recovered = split.into_subtree_roots();
        let again = SplitTree::resplit(&tree, 3, recovered).unwrap();
        assert_eq!(again.subtree_roots(), roots_before.as_slice());
        // and the resplit view searches identically
        for &q in &random_queries(8, 22) {
            assert_eq!(
                again.search_one(q, 0.3, Some(8)),
                SplitTree::new(&tree, 3).unwrap().search_one(q, 0.3, Some(8))
            );
        }
    }

    #[test]
    fn resplit_recomputes_on_mismatch() {
        let big = KdTree::build(&random_cloud(500, 23));
        let small = KdTree::build(&random_cloud(40, 24));
        let stale = SplitTree::new(&big, 3).unwrap().into_subtree_roots();
        // same allocation, different tree and height: must recompute
        let split = SplitTree::resplit(&small, 2, stale).unwrap();
        assert_eq!(split.subtree_roots(), small.subtree_roots(2).as_slice());
        // an oversized top height errors exactly like `new`
        let err = SplitTree::resplit(&small, 40, Vec::new()).unwrap_err();
        assert!(matches!(err, SplitTreeError::TopHeightTooLarge { .. }));
        // empty tree: empty root table, no panic
        let empty = KdTree::build(&PointCloud::new());
        let split = SplitTree::resplit(&empty, 0, vec![99, 100]).unwrap();
        assert!(split.subtree_roots().is_empty());
    }
}
