//! Exact K-d tree radius search with traversal instrumentation.
//!
//! The traversal is iterative with an explicit stack, mirroring the PE
//! micro-architecture of Fig 7 (RS → FN → CD → SR → US): each loop
//! iteration pops the stack (RS), fetches a node (FN — the instrumented
//! event), computes the query–node distance (CD), records a result (SR),
//! and pushes children (US).

use crescent_pointcloud::{Neighbor, Point3};

use crate::tree::KdTree;

/// Statistics of a single search traversal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Number of tree nodes fetched (FN-stage activations).
    pub nodes_visited: usize,
    /// Maximum stack depth reached.
    pub max_stack_depth: usize,
}

/// Exact radius search over the whole tree.
///
/// Returns up to `max_neighbors` hits sorted ascending by distance
/// (all hits if `None`).
///
/// # Examples
///
/// ```
/// use crescent_kdtree::{radius_search, KdTree};
/// use crescent_pointcloud::{Point3, PointCloud};
///
/// let cloud: PointCloud = (0..64).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
/// let tree = KdTree::build(&cloud);
/// let hits = radius_search(&tree, Point3::ZERO, 2.5, None);
/// assert_eq!(hits.len(), 3); // x = 0, 1, 2
/// ```
pub fn radius_search(
    tree: &KdTree,
    query: Point3,
    radius: f32,
    max_neighbors: Option<usize>,
) -> Vec<Neighbor> {
    // monomorphized no-op trace: the untraced hot path must not pay an
    // indirect call per node fetch (`radius_search_traced` takes `&mut
    // dyn FnMut`, which the optimizer cannot elide)
    radius_search_impl(tree, query, radius, max_neighbors, &mut |_| {}).0
}

/// Exact radius search that reports every node fetch to `on_fetch` (heap
/// slot of the fetched node), for memory-trace experiments.
pub fn radius_search_traced(
    tree: &KdTree,
    query: Point3,
    radius: f32,
    max_neighbors: Option<usize>,
    on_fetch: &mut dyn FnMut(usize),
) -> (Vec<Neighbor>, TraversalStats) {
    radius_search_impl(tree, query, radius, max_neighbors, on_fetch)
}

/// The one traversal behind both `radius_search` variants, generic over
/// the fetch observer so the untraced caller monomorphizes it away while
/// the traced caller passes its `&mut dyn FnMut` through (a `&mut F` is
/// itself `FnMut`). Identical float-op order either way — the observer
/// only watches.
fn radius_search_impl<F: FnMut(usize) + ?Sized>(
    tree: &KdTree,
    query: Point3,
    radius: f32,
    max_neighbors: Option<usize>,
    on_fetch: &mut F,
) -> (Vec<Neighbor>, TraversalStats) {
    let mut hits = Vec::new();
    let mut stats = TraversalStats::default();
    if tree.is_empty() {
        return (hits, stats);
    }
    let r2 = radius * radius;
    // hot loop on the SoA columns directly: one `meta` load per node
    // (axis and point index unpacked from the same word) instead of one
    // per accessor call
    let points = tree.points.as_slice();
    let meta = tree.meta.as_slice();
    let len = points.len();
    let mut stack: Vec<usize> = vec![0];
    while let Some(idx) = stack.pop() {
        stats.nodes_visited += 1; // FN
        on_fetch(idx);
        let point = points[idx];
        let m = meta[idx];
        let d2 = point.dist2(query); // CD
        if d2 <= r2 {
            hits.push(Neighbor { index: (m & crate::tree::META_INDEX_MASK) as usize, dist2: d2 });
            // SR
        }
        // US: descend toward the query side; push the far side only if the
        // splitting plane is within the search radius.
        let axis = (m >> crate::tree::META_AXIS_SHIFT) as usize;
        let delta = query.coord(axis) - point.coord(axis);
        let (near, far) =
            if delta <= 0.0 { (2 * idx + 1, 2 * idx + 2) } else { (2 * idx + 2, 2 * idx + 1) };
        if delta * delta <= r2 && far < len {
            stack.push(far);
        }
        if near < len {
            stack.push(near);
        }
        stats.max_stack_depth = stats.max_stack_depth.max(stack.len());
    }
    hits.sort_by(|a, b| a.dist2.partial_cmp(&b.dist2).unwrap_or(std::cmp::Ordering::Equal));
    if let Some(k) = max_neighbors {
        hits.truncate(k);
    }
    (hits, stats)
}

/// Exact k-nearest-neighbor search (shrinking-radius traversal).
pub fn knn_search(tree: &KdTree, query: Point3, k: usize) -> Vec<Neighbor> {
    if tree.is_empty() || k == 0 {
        return Vec::new();
    }
    // max-heap of the best k candidates by distance
    let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
    let mut worst = f32::INFINITY;
    let mut stack: Vec<usize> = vec![0];
    while let Some(idx) = stack.pop() {
        let point = tree.point_of(idx);
        let d2 = point.dist2(query);
        if best.len() < k || d2 < worst {
            best.push(Neighbor { index: tree.point_index_of(idx), dist2: d2 });
            best.sort_by(|a, b| a.dist2.partial_cmp(&b.dist2).unwrap_or(std::cmp::Ordering::Equal));
            best.truncate(k);
            worst = if best.len() == k { best[k - 1].dist2 } else { f32::INFINITY };
        }
        let axis = tree.axis_of(idx);
        let delta = query.coord(axis) - point.coord(axis);
        let (near, far) = if delta <= 0.0 {
            (tree.left(idx), tree.right(idx))
        } else {
            (tree.right(idx), tree.left(idx))
        };
        if delta * delta <= worst {
            if let Some(f) = far {
                stack.push(f);
            }
        }
        if let Some(n) = near {
            stack.push(n);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crescent_pointcloud::{knn_bruteforce, radius_search_bruteforce, PointCloud};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random::<f32>() * 4.0,
                    rng.random::<f32>() * 4.0,
                    rng.random::<f32>() * 4.0,
                )
            })
            .collect()
    }

    #[test]
    fn radius_search_matches_bruteforce() {
        let cloud = random_cloud(300, 11);
        let tree = KdTree::build(&cloud);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let q = Point3::new(
                rng.random::<f32>() * 4.0,
                rng.random::<f32>() * 4.0,
                rng.random::<f32>() * 4.0,
            );
            let r = 0.3 + rng.random::<f32>();
            let mut got: Vec<usize> =
                radius_search(&tree, q, r, None).iter().map(|n| n.index).collect();
            let mut want: Vec<usize> =
                radius_search_bruteforce(&cloud, q, r, None).iter().map(|n| n.index).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query {q} radius {r}");
        }
    }

    #[test]
    fn radius_search_cap_keeps_nearest() {
        let cloud = random_cloud(200, 13);
        let tree = KdTree::build(&cloud);
        let q = Point3::splat(2.0);
        let capped = radius_search(&tree, q, 2.0, Some(5));
        let full = radius_search(&tree, q, 2.0, None);
        assert_eq!(capped.len(), 5.min(full.len()));
        assert_eq!(&full[..capped.len()], &capped[..]);
    }

    #[test]
    fn traced_counts_fetches() {
        let cloud = random_cloud(127, 17);
        let tree = KdTree::build(&cloud);
        let mut fetched = Vec::new();
        let (_, stats) =
            radius_search_traced(&tree, Point3::splat(2.0), 0.5, None, &mut |i| fetched.push(i));
        assert_eq!(stats.nodes_visited, fetched.len());
        assert!(stats.nodes_visited >= tree.height()); // at least one root-to-leaf path
        assert!(stats.nodes_visited <= tree.len());
        assert!(fetched.iter().all(|&i| i < tree.len()));
        assert_eq!(fetched[0], 0, "traversal starts at the root");
    }

    #[test]
    fn pruning_beats_exhaustive() {
        // with a small radius, the K-d tree should visit far fewer nodes
        // than the cloud size (the whole point of space subdivision)
        let cloud = random_cloud(4096, 23);
        let tree = KdTree::build(&cloud);
        let (_, stats) = radius_search_traced(&tree, Point3::splat(2.0), 0.1, None, &mut |_| {});
        assert!(
            stats.nodes_visited < cloud.len() / 4,
            "visited {} of {}",
            stats.nodes_visited,
            cloud.len()
        );
    }

    #[test]
    fn knn_matches_bruteforce() {
        let cloud = random_cloud(300, 31);
        let tree = KdTree::build(&cloud);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let q = Point3::new(
                rng.random::<f32>() * 4.0,
                rng.random::<f32>() * 4.0,
                rng.random::<f32>() * 4.0,
            );
            let got: Vec<usize> = knn_search(&tree, q, 8).iter().map(|n| n.index).collect();
            let want: Vec<usize> = knn_bruteforce(&cloud, q, 8).iter().map(|n| n.index).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let tree = KdTree::build(&PointCloud::new());
        assert!(radius_search(&tree, Point3::ZERO, 1.0, None).is_empty());
        assert!(knn_search(&tree, Point3::ZERO, 3).is_empty());
        let one: PointCloud = [Point3::ZERO].into_iter().collect();
        let tree = KdTree::build(&one);
        assert_eq!(radius_search(&tree, Point3::ZERO, 1.0, None).len(), 1);
        assert!(knn_search(&tree, Point3::ZERO, 0).is_empty());
    }
}
