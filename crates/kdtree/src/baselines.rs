//! Prior-work neighbor-search baselines: Tigris \[66\] and QuickNN \[44\].
//!
//! Both use a split-tree like Crescent but (per Sec 3.4) differ in two
//! ways that Crescent improves on:
//!
//! 1. **exhaustive sub-tree search** — every point of the assigned sub-tree
//!    is scanned, instead of K-d traversal (more search work; Fig 24a);
//! 2. **sub-tree reloading** — a sub-tree is streamed from DRAM every time
//!    its fixed-capacity query buffer fills, instead of staging all queries
//!    in DRAM and loading each sub-tree exactly once (more DRAM traffic;
//!    Fig 24b).
//!
//! The DRAM accounting here is shared with the Crescent-side model
//! ([`crescent_dram_bytes`]) so the Fig 24 comparison is apples-to-apples.

use crescent_pointcloud::{Neighbor, Point3, POINT_BYTES};

use crate::split::SplitTree;
use crate::tree::NODE_BYTES;

/// Outcome of a baseline batch search.
#[derive(Clone, Debug, Default)]
pub struct BaselineReport {
    /// Per-query neighbor lists (sorted ascending by distance).
    pub results: Vec<Vec<Neighbor>>,
    /// Total tree nodes / points inspected ("search load").
    pub nodes_visited: usize,
    /// Total DRAM traffic in bytes (tree loads + query movement).
    pub dram_bytes: u64,
    /// Number of sub-tree loads from DRAM.
    pub subtree_loads: usize,
}

/// Tigris/QuickNN-style batch search: top-tree routing, then **exhaustive**
/// scan of the assigned sub-tree, reloading a sub-tree whenever its
/// `queue_capacity`-entry query buffer fills.
///
/// `queue_capacity` is the number of queries buffered on-chip per sub-tree
/// between reloads (QuickNN's query-buffer size).
///
/// # Panics
///
/// Panics if `queue_capacity == 0`.
pub fn split_exhaustive_search(
    split: &SplitTree<'_>,
    queries: &[Point3],
    radius: f32,
    max_neighbors: Option<usize>,
    queue_capacity: usize,
) -> BaselineReport {
    assert!(queue_capacity > 0, "queue capacity must be positive");
    let tree = split.tree();
    let mut report =
        BaselineReport { results: vec![Vec::new(); queries.len()], ..BaselineReport::default() };
    if tree.is_empty() {
        return report;
    }
    let r2 = radius * radius;

    // stage 1: route every query through the top tree (streaming read)
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); split.num_subtrees()];
    for (qi, &q) in queries.iter().enumerate() {
        let mut hits = Vec::new();
        let mut fetches = 0usize;
        if let Some(s) = split.route_query(q, radius, &mut hits, &mut |_| fetches += 1) {
            queues[s].push(qi);
        }
        report.nodes_visited += fetches;
        report.results[qi] = hits;
    }

    // stage 2: exhaustive scan per sub-tree, one load per queue_capacity
    // queries (the reload behavior Crescent eliminates)
    let mut subtree_nodes: Vec<usize> = Vec::new();
    for (s, queue) in queues.iter().enumerate() {
        if queue.is_empty() {
            continue;
        }
        let root = split.subtree_roots()[s];
        collect_subtree(tree, root, &mut subtree_nodes);
        let loads = queue.len().div_ceil(queue_capacity);
        report.subtree_loads += loads;
        report.dram_bytes += (loads * subtree_nodes.len() * NODE_BYTES) as u64;
        for &qi in queue {
            let q = queries[qi];
            for &idx in &subtree_nodes {
                report.nodes_visited += 1;
                let d2 = tree.point_of(idx).dist2(q);
                if d2 <= r2 {
                    report.results[qi]
                        .push(Neighbor { index: tree.point_index_of(idx), dist2: d2 });
                }
            }
        }
        subtree_nodes.clear();
    }

    // query movement: each query read for stage 1 and again for stage 2
    report.dram_bytes += (2 * queries.len() * POINT_BYTES) as u64;
    // top tree loaded once
    report.dram_bytes += (split.top_len() * NODE_BYTES) as u64;

    for hits in &mut report.results {
        hits.sort_by(|a, b| a.dist2.partial_cmp(&b.dist2).unwrap_or(std::cmp::Ordering::Equal));
        hits.dedup_by_key(|n| n.index);
        if let Some(k) = max_neighbors {
            hits.truncate(k);
        }
    }
    report
}

/// Pure brute-force search load (the GPU baseline's strategy): every query
/// scans every point.
pub fn exhaustive_visits(num_points: usize, num_queries: usize) -> usize {
    num_points * num_queries
}

/// DRAM bytes of the Crescent schedule for the same workload: every query
/// read in stage 1, written back to its sub-tree queue, and read again in
/// stage 2; the top tree and **each non-empty sub-tree loaded exactly
/// once** (Sec 3.4).
pub fn crescent_dram_bytes(split: &SplitTree<'_>, queries: &[Point3], radius: f32) -> u64 {
    let assignments = split.assign_queries(queries, radius);
    let mut used = vec![false; split.num_subtrees()];
    for a in assignments.into_iter().flatten() {
        used[a] = true;
    }
    let mut bytes = (3 * queries.len() * POINT_BYTES) as u64;
    bytes += (split.top_len() * NODE_BYTES) as u64;
    for (s, &u) in used.iter().enumerate() {
        if u {
            bytes += (split.subtree_len(s) * NODE_BYTES) as u64;
        }
    }
    bytes
}

fn collect_subtree(tree: &crate::tree::KdTree, root: usize, out: &mut Vec<usize>) {
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        out.push(i);
        if let Some(l) = tree.left(i) {
            stack.push(l);
        }
        if let Some(r) = tree.right(i) {
            stack.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::{SplitSearchConfig, SplitTree};
    use crate::tree::KdTree;
    use crescent_pointcloud::PointCloud;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                    rng.random::<f32>() * 2.0,
                )
            })
            .collect()
    }

    #[test]
    fn exhaustive_split_matches_crescent_results() {
        // same split tree, same confinement: identical neighbor sets
        let cloud = random_cloud(600, 21);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let queries: Vec<Point3> = random_cloud(40, 22).into_points();
        let base = split_exhaustive_search(&split, &queries, 0.3, Some(16), 8);
        let cfg =
            SplitSearchConfig { radius: 0.3, max_neighbors: Some(16), num_pes: 4, elision: None };
        let (ours, _) = split.batch_search(&queries, &cfg);
        for (a, b) in base.results.iter().zip(&ours) {
            let ai: Vec<usize> = a.iter().map(|n| n.index).collect();
            let bi: Vec<usize> = b.iter().map(|n| n.index).collect();
            assert_eq!(ai, bi);
        }
    }

    #[test]
    fn kd_subtree_search_visits_fewer_nodes() {
        // Fig 24a: Crescent's in-sub-tree K-d traversal beats exhaustive
        let cloud = random_cloud(8192, 23);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 4).unwrap();
        let queries: Vec<Point3> = random_cloud(64, 24).into_points();
        let base = split_exhaustive_search(&split, &queries, 0.15, None, 16);
        let cfg =
            SplitSearchConfig { radius: 0.15, max_neighbors: None, num_pes: 4, elision: None };
        let (_, stats) = split.batch_search(&queries, &cfg);
        assert!(
            (stats.nodes_visited as f64) < 0.8 * base.nodes_visited as f64,
            "crescent {} vs exhaustive {}",
            stats.nodes_visited,
            base.nodes_visited
        );
    }

    #[test]
    fn reloads_inflate_dram_traffic() {
        // Fig 24b: small queue capacity -> many reloads -> more DRAM bytes
        let cloud = random_cloud(4096, 25);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 3).unwrap();
        let queries: Vec<Point3> = random_cloud(256, 26).into_points();
        let quicknn = split_exhaustive_search(&split, &queries, 0.2, None, 8);
        let ours = crescent_dram_bytes(&split, &queries, 0.2);
        assert!(ours < quicknn.dram_bytes, "crescent {ours} vs quicknn {}", quicknn.dram_bytes);
        assert!(quicknn.subtree_loads > split.num_subtrees());
    }

    #[test]
    fn big_queue_capacity_converges_to_single_loads() {
        let cloud = random_cloud(1024, 27);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 2).unwrap();
        let queries: Vec<Point3> = random_cloud(64, 28).into_points();
        let r = split_exhaustive_search(&split, &queries, 0.2, None, usize::MAX >> 1);
        // one load per non-empty sub-tree
        assert!(r.subtree_loads <= split.num_subtrees());
    }

    #[test]
    fn exhaustive_visits_formula() {
        assert_eq!(exhaustive_visits(1000, 10), 10_000);
        assert_eq!(exhaustive_visits(0, 10), 0);
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn zero_queue_capacity_panics() {
        let cloud = random_cloud(64, 29);
        let tree = KdTree::build(&cloud);
        let split = SplitTree::new(&tree, 1).unwrap();
        let _ = split_exhaustive_search(&split, &[], 0.2, None, 0);
    }

    #[test]
    fn empty_tree_report() {
        let tree = KdTree::build(&PointCloud::new());
        let split = SplitTree::new(&tree, 0).unwrap();
        let r = split_exhaustive_search(&split, &[Point3::ZERO], 1.0, None, 4);
        assert_eq!(r.nodes_visited, 0);
        assert!(r.results[0].is_empty());
    }
}
