//! The wall-clock sidecar: where measured time lives so it can never
//! touch the gated report bytes.
//!
//! Every metric in a [`SweepReport`](crate::SweepReport) is *modeled* —
//! the CI gate compares reports byte-for-byte, so a single wall-clock
//! nanosecond in the report would make every run unique and the gate
//! useless. But the sweep's wall-clock cost is still worth measuring
//! (it is what the SoA/arena/oracle fast paths optimize), so measured
//! time gets its own channel with three structural guarantees:
//!
//! 1. **Separate bytes.** Timings serialize into their own sidecar JSON
//!    ([`SweepTimings::to_json`], schema [`TIMINGS_SCHEMA`]) written to
//!    a *different file* (`repro sweep --timings <path>`). The report
//!    renderer cannot emit them: [`SweepRow`](crate::SweepRow) and the
//!    header have no timing fields at all.
//! 2. **Never diffed.** [`diff_reports`](crate::diff_reports) only ever
//!    sees report bytes; the sidecar is not an input to `--check`.
//! 3. **Rejected on re-entry.** [`merge_shards`](crate::merge_shards)
//!    refuses any shard file containing a top-level `"timings"` section,
//!    so a future writer that inlined timings into a shard report would
//!    fail the merge loudly instead of laundering wall-clock into the
//!    gated merged bytes.
//!
//! The sidecar echoes the spec label, fingerprint, and shard coordinates
//! of the run that produced it, so a stray sidecar can always be matched
//! to (or rejected against) its report.

use std::fmt::Write as _;

use crate::json::Json;
use crate::report::{shard_json, spec_fingerprint, ShardInfo};
use crate::spec::SweepSpec;

/// Schema identifier embedded in every timings sidecar. Versioned
/// separately from the report schema: sidecar layout changes never
/// imply report drift, and vice versa.
pub const TIMINGS_SCHEMA: &str = "crescent-sweep-timings/v1";

/// Wall-clock measurements of one sweep (or shard) run, captured with
/// [`std::time::Instant`] around the phases of
/// [`run_sweep_timed`](crate::run_sweep_timed).
///
/// Inherently **not** reproducible — two runs of the same spec produce
/// different numbers — which is exactly why this struct is returned
/// beside the report instead of inside it.
#[derive(Clone, Debug, Default)]
pub struct SweepTimings {
    /// Wall time of the whole run (scenario setup + the worker-pool
    /// phase), in nanoseconds.
    pub total_nanos: u64,
    /// Per-scenario setup cost, in scenario order: rendering the frame
    /// stream, solving the recall oracle, and building frame 0's tree.
    /// Only scenarios the run actually visited appear (a shard skips
    /// the setup of scenarios it never simulates).
    pub setup: Vec<(String, u64)>,
    /// Per-grid-point simulation cost as `(global row index, nanos)`,
    /// in row order of the produced report.
    pub points: Vec<(usize, u64)>,
}

impl SweepTimings {
    /// Total scenario-setup wall time (the serial prologue).
    pub fn setup_nanos(&self) -> u64 {
        self.setup.iter().map(|&(_, n)| n).sum()
    }

    /// Total per-point simulation wall time, summed across workers —
    /// with an N-worker pool this exceeds the elapsed wall time of the
    /// pool phase by up to a factor of N.
    pub fn point_nanos(&self) -> u64 {
        self.points.iter().map(|&(_, n)| n).sum()
    }

    /// Renders the sidecar JSON: run identification (schema, spec label,
    /// fingerprint, shard coordinates) followed by the measurements.
    ///
    /// One line per section, like the report — but these bytes are for
    /// humans and dashboards, never for the exact comparator.
    pub fn to_json(&self, spec: &SweepSpec, shard: Option<ShardInfo>) -> String {
        let mut out = String::with_capacity(64 * (self.points.len() + self.setup.len() + 8));
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", Json::from(TIMINGS_SCHEMA).to_compact());
        let _ = writeln!(out, "  \"label\": {},", Json::from(spec.label.as_str()).to_compact());
        let _ = writeln!(out, "  \"fingerprint\": \"{:016x}\",", spec_fingerprint(spec));
        let _ = writeln!(
            out,
            "  \"shard\": {},",
            shard_json(shard, self.points.len(), spec.num_points()).to_compact()
        );
        let _ = writeln!(out, "  \"total_nanos\": {},", self.total_nanos);
        let _ = writeln!(out, "  \"setup_nanos\": {},", self.setup_nanos());
        let _ = writeln!(out, "  \"point_nanos\": {},", self.point_nanos());
        out.push_str("  \"setup\": [\n");
        for (i, (scenario, nanos)) in self.setup.iter().enumerate() {
            let entry = Json::Object(vec![
                ("scenario", Json::from(scenario.as_str())),
                ("nanos", Json::U64(*nanos)),
            ]);
            let _ = writeln!(
                out,
                "    {}{}",
                entry.to_compact(),
                if i + 1 < self.setup.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"points\": [\n");
        for (i, &(row, nanos)) in self.points.iter().enumerate() {
            let entry =
                Json::Object(vec![("row", Json::U64(row as u64)), ("nanos", Json::U64(nanos))]);
            let _ = writeln!(
                out,
                "    {}{}",
                entry.to_compact(),
                if i + 1 < self.points.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepTimings {
        SweepTimings {
            total_nanos: 5_000,
            setup: vec![("sweep".to_string(), 1_200), ("registered".to_string(), 800)],
            points: vec![(0, 700), (2, 900), (4, 1_100)],
        }
    }

    #[test]
    fn totals_sum_their_sections() {
        let t = sample();
        assert_eq!(t.setup_nanos(), 2_000);
        assert_eq!(t.point_nanos(), 2_700);
        assert_eq!(SweepTimings::default().setup_nanos(), 0);
        assert_eq!(SweepTimings::default().point_nanos(), 0);
    }

    #[test]
    fn sidecar_identifies_its_run_and_carries_every_measurement() {
        let spec = SweepSpec::quick();
        let json = sample().to_json(&spec, Some(ShardInfo { index: 2, count: 3 }));
        assert!(json.starts_with("{\n"), "{json}");
        assert!(json.contains(&format!("\"schema\": \"{TIMINGS_SCHEMA}\"")), "{json}");
        assert!(json.contains("\"label\": \"quick\""), "{json}");
        assert!(
            json.contains(&format!("\"fingerprint\": \"{:016x}\"", spec_fingerprint(&spec))),
            "{json}"
        );
        assert!(json.contains("\"index\":2,\"count\":3"), "{json}");
        assert!(json.contains("\"total_nanos\": 5000"), "{json}");
        assert!(json.contains("\"setup_nanos\": 2000"), "{json}");
        assert!(json.contains("\"point_nanos\": 2700"), "{json}");
        assert!(json.contains(r#"{"scenario":"sweep","nanos":1200}"#), "{json}");
        assert!(json.contains(r#"{"row":4,"nanos":1100}"#), "{json}");
        // whole-grid runs carry a null shard slot, like the report
        let whole = sample().to_json(&spec, None);
        assert!(whole.contains("\"shard\": null,"), "{whole}");
    }

    #[test]
    fn sidecar_schema_is_not_the_report_schema() {
        // the merge rejects report files that inline timings; the
        // reverse confusion (feeding a sidecar to the merge) must also
        // fail, which it does because the schema line differs
        assert_ne!(TIMINGS_SCHEMA, crate::report::SCHEMA);
    }
}
