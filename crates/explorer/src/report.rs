//! Machine-readable sweep reports: schema-versioned JSON emission, the
//! per-scenario Pareto summary, and the exact drift comparator the CI
//! gate runs against the checked-in baseline.

use serde::{Deserialize, Serialize};

use crescent_memsim::EnergyLedger;

use crate::json::Json;
use crate::spec::SweepSpec;

/// Schema identifier embedded in every report. Bump the `/v4` suffix on
/// any change to the report layout, key set, or metric semantics — the
/// CI comparator is exact, so an unversioned layout change would show up
/// as inexplicable metric drift instead of an obvious schema break.
///
/// `v4` (this version): every row gained two descendant-reuse columns —
/// `descendant_reuse` (config echo: whether the scenario's stream ran
/// the banked arbiter with the Sec 4.2 salvage on) and
/// `conflict_reuses` (elision-eligible conflicts that continued from
/// the winner's multicast descendant node instead of dropping their
/// subtree). The canonical
/// scenario axis also grew from five to ten workloads. Header, shard,
/// and Pareto semantics are unchanged from `v3` (which introduced
/// `fingerprint` and `shard`). Field-by-field documentation lives in
/// [`docs/SWEEP_SCHEMA.md`](../../../docs/SWEEP_SCHEMA.md).
pub const SCHEMA: &str = "crescent-sweep/v4";

/// One sweep point's configuration echo plus its modeled metrics. All
/// metrics are *modeled* (cycles, bytes, energy units, recall against a
/// brute-force oracle) — no wall-clock anywhere — so every field is
/// bit-reproducible across runs, worker counts, and machines.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepRow {
    /// Row index == grid expansion index.
    pub index: usize,
    /// Scenario label (see `StreamScenario::label`).
    pub scenario: &'static str,
    /// Maintenance-policy label (see `maintenance_label`).
    pub maintenance: &'static str,
    /// Neighbor-search PE count.
    pub num_pes: usize,
    /// Tree-buffer capacity in KiB.
    pub tree_kb: usize,
    /// Tree-buffer bank count the fetches are arbitrated over.
    pub tree_banks: usize,
    /// Streaming DRAM bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// Whether Point-Buffer aggregation conflicts are elided
    /// (replicated) instead of serialized.
    pub aggregation_elision: bool,
    /// Top-tree height `h_t`.
    pub top_height: usize,
    /// Streaming elision depth `h_e` (depth-from-leaves; 0 = exact
    /// stall-only search).
    pub elision_depth: usize,
    /// Whether the stream ran the banked arbiter with descendant reuse
    /// (the Sec 4.2 salvage on elided fetches). Scenario-derived: `true`
    /// exactly on `descendant_reuse` rows.
    pub descendant_reuse: bool,
    /// The level threshold the engine cross-check ran at:
    /// `height(frame 0 tree) − elision_depth` — the paper's level-based
    /// form of the same `h_e` point.
    pub engine_elision_level: usize,
    /// The `h_t` the sweep *granted*: the requested height clamped into
    /// the Sec 3.3 feasibility range of the point's tree buffer against
    /// frame 0's tree — the coupling through which cache geometry
    /// constrains the split depth. Both engines additionally clamp to
    /// each actual tree's height, so a frame whose tree ends up
    /// shallower than this (or an infeasibly small tree buffer, for
    /// which no feasible range exists and the requested `h_t` passes
    /// through) runs at its own tighter clamp.
    pub top_height_used: usize,
    /// Frames simulated.
    pub frames: usize,
    /// Total queries across the stream.
    pub queries: usize,
    /// Total neighbors returned.
    pub neighbors: usize,
    /// Stream latency with inter-frame double buffering.
    pub pipelined_cycles: u64,
    /// No-overlap upper bound.
    pub serial_cycles: u64,
    /// Total tree-maintenance slot cycles.
    pub build_cycles: u64,
    /// Total DRAM traffic, search + maintenance (bytes).
    pub dram_bytes: u64,
    /// Mean cross-frame sub-tree assignment reuse.
    pub mean_reuse: f64,
    /// Stage-2 lock-step arbitration rounds summed over the stream —
    /// the banked tree buffer's share of the search compute.
    pub arb_rounds: u64,
    /// Tree-buffer fetch attempts that lost bank arbitration.
    pub bank_conflicts: u64,
    /// Rounds in which at least one fetch stalled on a conflict.
    pub conflict_stall_cycles: u64,
    /// Conflicted fetches dropped by `h_e` elision (0 on `h_e = 0`
    /// rows — the gated exactness witness).
    pub elided_conflicts: u64,
    /// Elision-eligible conflicts salvaged by descendant reuse instead
    /// of dropped (0 unless `descendant_reuse` is on).
    pub conflict_reuses: u64,
    /// Aggregation-unit gather rounds summed over the stream.
    pub agg_cycles: u64,
    /// Aggregation conflicts resolved by replication.
    pub agg_elided: u64,
    /// Frames that (re)built the tree from scratch.
    pub full_rebuilds: usize,
    /// Sub-trees rebuilt in place by incremental refits.
    pub subtrees_rebuilt: usize,
    /// Energy by ledger category (serialized via
    /// `EnergyLedger::category_rows`).
    pub energy: EnergyLedger,
    /// Mean recall of the stream's approximate neighbor sets against
    /// the exact brute-force baseline (1.0 = every exact neighbor
    /// found). The streaming path models the two-stage split AND bank
    /// conflict elision, so both `h_t` and `h_e` move it.
    pub recall: f64,
    /// FNV-1a fingerprint of every stream neighbor set (indices +
    /// distance bits) — two rows with equal digests produced
    /// bit-identical results.
    pub digest: u64,
    /// Standalone two-stage engine latency on frame 0 — the per-query
    /// lock-step model evaluated at the same `h` point, kept as a
    /// cross-check column against the streaming pass.
    pub engine_cycles: u64,
    /// The engine pass's streaming DRAM bytes.
    pub engine_dram_bytes: u64,
    /// Tree nodes the engine pass visited.
    pub nodes_visited: usize,
    /// Conflicted fetches the engine pass elided (0 above `h_e`).
    pub nodes_elided: usize,
    /// Recall of the engine pass against the exact baseline — elision
    /// drops neighbors, so this is where `h_e`, banking, and PE count
    /// show up as accuracy.
    pub engine_recall: f64,
    /// FNV-1a fingerprint of the engine pass's neighbor sets.
    pub engine_digest: u64,
}

impl SweepRow {
    /// Total modeled cycles of the point's two passes (stream +
    /// standalone engine) — the latency objective of the Pareto fronts.
    pub fn total_cycles(&self) -> u64 {
        self.pipelined_cycles + self.engine_cycles
    }

    /// Worst-case accuracy across the two passes — the accuracy
    /// objective of the Pareto fronts.
    pub fn worst_recall(&self) -> f64 {
        self.recall.min(self.engine_recall)
    }
}

impl SweepRow {
    /// The row as a compact JSON object (one report line).
    pub(crate) fn to_json(&self) -> Json {
        let mut energy: Vec<(&'static str, Json)> = self
            .energy
            .category_rows()
            .iter()
            .map(|&(name, value)| (name, Json::F64(value)))
            .collect();
        energy.push(("total", Json::F64(self.energy.total())));
        Json::Object(vec![
            ("row", Json::U64(self.index as u64)),
            ("scenario", Json::from(self.scenario)),
            ("maintenance", Json::from(self.maintenance)),
            ("num_pes", Json::U64(self.num_pes as u64)),
            ("tree_kb", Json::U64(self.tree_kb as u64)),
            ("tree_banks", Json::U64(self.tree_banks as u64)),
            ("dram_bytes_per_cycle", Json::F64(self.dram_bytes_per_cycle)),
            ("agg_elision", Json::Bool(self.aggregation_elision)),
            ("h_t", Json::U64(self.top_height as u64)),
            ("h_e", Json::U64(self.elision_depth as u64)),
            ("descendant_reuse", Json::Bool(self.descendant_reuse)),
            ("engine_h_e_level", Json::U64(self.engine_elision_level as u64)),
            ("h_t_used", Json::U64(self.top_height_used as u64)),
            ("frames", Json::U64(self.frames as u64)),
            ("queries", Json::U64(self.queries as u64)),
            ("neighbors", Json::U64(self.neighbors as u64)),
            ("pipelined_cycles", Json::U64(self.pipelined_cycles)),
            ("serial_cycles", Json::U64(self.serial_cycles)),
            ("build_cycles", Json::U64(self.build_cycles)),
            ("dram_bytes", Json::U64(self.dram_bytes)),
            ("mean_reuse", Json::F64(self.mean_reuse)),
            ("arb_rounds", Json::U64(self.arb_rounds)),
            ("bank_conflicts", Json::U64(self.bank_conflicts)),
            ("conflict_stall_cycles", Json::U64(self.conflict_stall_cycles)),
            ("elided_conflicts", Json::U64(self.elided_conflicts)),
            ("conflict_reuses", Json::U64(self.conflict_reuses)),
            ("agg_cycles", Json::U64(self.agg_cycles)),
            ("agg_elided", Json::U64(self.agg_elided)),
            ("full_rebuilds", Json::U64(self.full_rebuilds as u64)),
            ("subtrees_rebuilt", Json::U64(self.subtrees_rebuilt as u64)),
            ("energy", Json::Object(energy)),
            ("recall", Json::F64(self.recall)),
            ("digest", Json::Str(format!("{:016x}", self.digest))),
            ("engine_cycles", Json::U64(self.engine_cycles)),
            ("engine_dram_bytes", Json::U64(self.engine_dram_bytes)),
            ("nodes_visited", Json::U64(self.nodes_visited as u64)),
            ("nodes_elided", Json::U64(self.nodes_elided as u64)),
            ("engine_recall", Json::F64(self.engine_recall)),
            ("engine_digest", Json::Str(format!("{:016x}", self.engine_digest))),
        ])
    }
}

/// Which shard of a sharded sweep a report covers. `repro sweep --shard
/// i/N` produces a report carrying `ShardInfo { index: i, count: N }`;
/// a whole-grid run (and the output of
/// [`merge_shards`](crate::merge_shards)) carries `None`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardInfo {
    /// 1-based shard index (`1 ≤ index ≤ count`).
    pub index: usize,
    /// Total number of shards in the partition.
    pub count: usize,
}

/// A completed sweep: the spec that produced it plus one row per covered
/// grid point, in grid order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepReport {
    /// The spec the sweep ran.
    pub spec: SweepSpec,
    /// The shard this report covers; `None` for a whole-grid run.
    pub shard: Option<ShardInfo>,
    /// One row per covered grid point (the whole grid when `shard` is
    /// `None`, the shard's round-robin subset otherwise), ordered by the
    /// **global** [`SweepRow::index`].
    pub rows: Vec<SweepRow>,
}

/// FNV-1a fingerprint of a spec's canonical report echo (schema, label,
/// workload, grid). Two reports carry the same fingerprint iff they were
/// produced by byte-identical spec echoes — the cheap identity check
/// [`merge_shards`](crate::merge_shards) uses to refuse mixing shards
/// of different sweeps.
pub fn spec_fingerprint(spec: &SweepSpec) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for part in [
        SCHEMA,
        spec.label.as_str(),
        &workload_json(spec).to_compact(),
        &grid_json(spec).to_compact(),
    ] {
        for byte in part.bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

impl SweepReport {
    /// The per-scenario Pareto fronts over the cycles × energy ×
    /// accuracy triple — cycles = [`SweepRow::total_cycles`] (stream +
    /// standalone engine), energy = the stream's total ledger energy,
    /// accuracy = [`SweepRow::worst_recall`] (the worse of the two
    /// passes' recalls). For each scenario label, the row indices not
    /// dominated by any other row *of the same scenario* (comparing
    /// operating points across different workloads would be
    /// meaningless). A row dominates another if it is no worse on all
    /// three objectives and strictly better on at least one.
    pub fn pareto(&self) -> Vec<(String, Vec<usize>)> {
        let points: Vec<ParetoPoint> = self
            .rows
            .iter()
            .map(|r| ParetoPoint {
                index: r.index,
                scenario: r.scenario.to_string(),
                cycles: r.total_cycles(),
                energy: r.energy.total(),
                recall: r.worst_recall(),
            })
            .collect();
        pareto_fronts(&points)
    }

    /// Serializes the report: pretty top-level structure with each row
    /// (and each Pareto front) on its own line, so the exact comparator
    /// can point at individual sweep points when a metric drifts. The
    /// output is a pure function of the report — byte-identical across
    /// runs and worker counts, and a merged set of shard reports
    /// reproduces a whole-grid run byte for byte because both paths
    /// funnel through the same header/body renderers.
    pub fn to_json(&self) -> String {
        let row_lines: Vec<String> = self.rows.iter().map(|r| r.to_json().to_compact()).collect();
        let fronts = self.pareto();
        let mut out = render_header(&self.spec, self.shard, self.rows.len());
        render_body(&mut out, &row_lines, &fronts);
        out
    }
}

/// One row reduced to its Pareto objectives — the representation shared
/// by [`SweepReport::pareto`] (from structured rows) and the shard
/// merger (from parsed row lines), so the two paths cannot disagree on
/// a front.
#[derive(Clone, Debug)]
pub(crate) struct ParetoPoint {
    /// Global grid index of the row.
    pub index: usize,
    /// Scenario label (fronts never mix scenarios).
    pub scenario: String,
    /// Total modeled cycles (stream + engine pass), minimized.
    pub cycles: u64,
    /// Total stream energy, minimized.
    pub energy: f64,
    /// Worst-case recall across the two passes, maximized.
    pub recall: f64,
}

/// Per-scenario Pareto fronts over `points`, scenarios in first-seen
/// order, front members in index order.
pub(crate) fn pareto_fronts(points: &[ParetoPoint]) -> Vec<(String, Vec<usize>)> {
    let mut fronts = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    for p in points {
        if !seen.contains(&p.scenario.as_str()) {
            seen.push(&p.scenario);
        }
    }
    for scenario in seen {
        let members: Vec<&ParetoPoint> = points.iter().filter(|p| p.scenario == scenario).collect();
        let mut front = Vec::new();
        for a in &members {
            let dominated = members.iter().any(|b| {
                b.index != a.index
                    && b.cycles <= a.cycles
                    && b.energy <= a.energy
                    && b.recall >= a.recall
                    && (b.cycles < a.cycles || b.energy < a.energy || b.recall > a.recall)
            });
            if !dominated {
                front.push(a.index);
            }
        }
        fronts.push((scenario.to_string(), front));
    }
    fronts
}

/// The workload echo of the report header (an axis-independent pure
/// function of the spec — part of the fingerprint).
pub(crate) fn workload_json(spec: &SweepSpec) -> Json {
    let w = &spec.workload;
    Json::Object(vec![
        ("total_points", Json::U64(w.scene.total_points as u64)),
        ("seed", Json::U64(w.scene.seed)),
        ("num_frames", Json::U64(w.num_frames as u64)),
        ("queries_per_frame", Json::U64(w.queries_per_frame as u64)),
        ("radius", Json::F64(w.radius as f64)),
        // an unbounded cap is `null`, not a u64::MAX sentinel — the
        // report must stay readable by float-backed JSON parsers
        ("max_neighbors", w.max_neighbors.map(|k| Json::U64(k as u64)).unwrap_or(Json::Null)),
        ("noise_m", Json::F64(w.noise_m as f64)),
        ("max_range", Json::F64(w.max_range as f64)),
    ])
}

/// The grid (axis) echo of the report header — part of the fingerprint.
pub(crate) fn grid_json(spec: &SweepSpec) -> Json {
    Json::Object(vec![
        ("scenarios", Json::Array(spec.scenarios.iter().map(|s| Json::from(s.label())).collect())),
        (
            "maintenance",
            Json::Array(
                spec.maintenance
                    .iter()
                    .map(|&m| Json::from(crate::spec::maintenance_label(m)))
                    .collect(),
            ),
        ),
        ("num_pes", Json::Array(spec.num_pes.iter().map(|&v| Json::U64(v as u64)).collect())),
        ("tree_kb", Json::Array(spec.tree_kb.iter().map(|&v| Json::U64(v as u64)).collect())),
        (
            "dram_bytes_per_cycle",
            Json::Array(spec.dram_bytes_per_cycle.iter().map(|&v| Json::F64(v)).collect()),
        ),
        ("tree_banks", Json::Array(spec.tree_banks.iter().map(|&v| Json::U64(v as u64)).collect())),
        (
            "agg_elision",
            Json::Array(spec.aggregation_elision.iter().map(|&v| Json::Bool(v)).collect()),
        ),
        ("h_t", Json::Array(spec.top_heights.iter().map(|&v| Json::U64(v as u64)).collect())),
        ("h_e", Json::Array(spec.elision_depths.iter().map(|&v| Json::U64(v as u64)).collect())),
    ])
}

/// The serialized shard header value: `null` for a whole-grid report,
/// otherwise the shard's coordinates plus its row count and the full
/// grid size (what the merger checks coverage against).
pub(crate) fn shard_json(shard: Option<ShardInfo>, rows: usize, points: usize) -> Json {
    match shard {
        None => Json::Null,
        Some(s) => Json::Object(vec![
            ("index", Json::U64(s.index as u64)),
            ("count", Json::U64(s.count as u64)),
            ("rows", Json::U64(rows as u64)),
            ("points", Json::U64(points as u64)),
        ]),
    }
}

/// Renders the report header (everything before the `"rows"` section):
/// schema, label, spec fingerprint, shard coordinates, workload echo,
/// grid echo — one `  "key": value,` line each.
pub(crate) fn render_header(spec: &SweepSpec, shard: Option<ShardInfo>, rows: usize) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {},\n", Json::from(SCHEMA).to_compact()));
    out.push_str(&format!("  \"label\": {},\n", Json::from(spec.label.as_str()).to_compact()));
    out.push_str(&format!("  \"fingerprint\": \"{:016x}\",\n", spec_fingerprint(spec)));
    out.push_str(&format!(
        "  \"shard\": {},\n",
        shard_json(shard, rows, spec.num_points()).to_compact()
    ));
    out.push_str(&format!("  \"workload\": {},\n", workload_json(spec).to_compact()));
    out.push_str(&format!("  \"grid\": {},\n", grid_json(spec).to_compact()));
    out
}

/// Appends the `"rows"` and `"pareto"` sections (one compact object per
/// line) and the closing brace to a rendered header. `row_lines` are the
/// compact per-row objects WITHOUT indentation or trailing commas.
pub(crate) fn render_body(out: &mut String, row_lines: &[String], fronts: &[(String, Vec<usize>)]) {
    out.reserve(256 * (row_lines.len() + 8));
    out.push_str("  \"rows\": [\n");
    for (i, line) in row_lines.iter().enumerate() {
        out.push_str("    ");
        out.push_str(line);
        out.push_str(if i + 1 < row_lines.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"pareto\": [\n");
    for (i, (scenario, rows)) in fronts.iter().enumerate() {
        let front = Json::Object(vec![
            ("scenario", Json::from(scenario.as_str())),
            ("rows", Json::Array(rows.iter().map(|&r| Json::U64(r as u64)).collect())),
        ]);
        out.push_str("    ");
        out.push_str(&front.to_compact());
        out.push_str(if i + 1 < fronts.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
}

/// Exact report comparator: `None` when `fresh` is byte-identical to
/// `baseline`, otherwise a human-readable drift summary listing the
/// first differing lines (a line is one sweep row, so the summary points
/// straight at the drifted configurations). The comparison is exact on
/// purpose — every metric is modeled, so ANY difference is a real
/// behavioural change that must be either fixed or acknowledged by
/// refreshing the baseline.
pub fn diff_reports(baseline: &str, fresh: &str) -> Option<String> {
    if baseline == fresh {
        return None;
    }
    const MAX_SHOWN: usize = 8;
    let base_lines: Vec<&str> = baseline.lines().collect();
    let fresh_lines: Vec<&str> = fresh.lines().collect();
    // A header mismatch means the two reports describe different specs
    // (e.g. a full-grid report checked against the quick baseline, or a
    // schema bump): say that directly instead of dumping hundreds of
    // "drifted" rows that read like a behavioural regression.
    fn header_line<'a>(lines: &[&'a str], key: &str) -> &'a str {
        lines.iter().find(|l| l.trim_start().starts_with(key)).copied().unwrap_or("<missing>")
    }
    for key in [
        "\"schema\":",
        "\"label\":",
        "\"fingerprint\":",
        "\"shard\":",
        "\"workload\":",
        "\"grid\":",
    ] {
        let b = header_line(&base_lines, key);
        let f = header_line(&fresh_lines, key);
        if b != f {
            return Some(format!(
                "sweep baseline was produced by a different spec — not metric drift\n  \
                 baseline {key} {}\n  fresh    {key} {}\n  \
                 (run the matching spec, or regenerate the baseline for this one)\n",
                b.trim().trim_start_matches(key).trim_end_matches(','),
                f.trim().trim_start_matches(key).trim_end_matches(',')
            ));
        }
    }
    let mut msg = String::from("sweep report drifted from baseline\n");
    if base_lines.len() != fresh_lines.len() {
        msg.push_str(&format!(
            "  line count: baseline {} vs fresh {} (grid shape or schema changed?)\n",
            base_lines.len(),
            fresh_lines.len()
        ));
    }
    let mut differing = 0usize;
    let mut field_histogram: Vec<(String, usize)> = Vec::new();
    for (i, (b, f)) in base_lines.iter().zip(&fresh_lines).enumerate() {
        if b == f {
            continue;
        }
        differing += 1;
        let shown = differing <= MAX_SHOWN;
        match field_level_diff(b, f) {
            Some(fields) if !fields.is_empty() => {
                for (name, _, _) in &fields {
                    match field_histogram.iter_mut().find(|(n, _)| n == name) {
                        Some((_, count)) => *count += 1,
                        None => field_histogram.push((name.clone(), 1)),
                    }
                }
                if shown {
                    let detail: Vec<String> = fields
                        .iter()
                        .map(|(name, was, now)| format!("{name}: {was} -> {now}"))
                        .collect();
                    msg.push_str(&format!("  line {}: {}\n", i + 1, detail.join("; ")));
                }
            }
            _ if shown => {
                // not a row object (header / structure): fall back to
                // whole-line diff
                msg.push_str(&format!("  line {}:\n  - {}\n  + {}\n", i + 1, b.trim(), f.trim()));
            }
            _ => {}
        }
    }
    let extra = base_lines.len().abs_diff(fresh_lines.len());
    differing += extra;
    if differing > MAX_SHOWN {
        msg.push_str(&format!("  ... {} differing line(s) total\n", differing));
    }
    if !field_histogram.is_empty() {
        field_histogram.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let summary: Vec<String> =
            field_histogram.iter().map(|(name, count)| format!("{name} x{count}")).collect();
        msg.push_str(&format!("  drifted fields across all rows: {}\n", summary.join(", ")));
    }
    Some(msg)
}

/// Splits one compact JSON object line (a report row) into its top-level
/// `(key, raw value)` pairs. Returns `None` for lines that are not a
/// single object — the comparator then falls back to whole-line output.
/// Also the row/shard-header parser behind [`crate::merge_shards`].
pub(crate) fn top_level_fields(line: &str) -> Option<Vec<(String, String)>> {
    let t = line.trim().trim_end_matches(',');
    let inner = t.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let (mut depth, mut in_str, mut escaped) = (0usize, false, false);
    let mut token = String::new();
    // key:value — the key is a quoted string, the value is raw text
    fn push(token: &mut String, fields: &mut Vec<(String, String)>) -> Option<()> {
        if token.is_empty() {
            return Some(());
        }
        let (key, value) = token.split_once(':')?;
        fields.push((key.trim().trim_matches('"').to_string(), value.trim().to_string()));
        token.clear();
        Some(())
    }
    for c in inner.chars() {
        match c {
            '"' if !escaped => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth = depth.checked_sub(1)?,
            ',' if !in_str && depth == 0 => {
                push(&mut token, &mut fields)?;
                continue;
            }
            _ => {}
        }
        escaped = c == '\\' && !escaped;
        token.push(c);
    }
    push(&mut token, &mut fields)?;
    (!fields.is_empty()).then_some(fields)
}

/// The field-by-field difference between two row lines:
/// `(field, baseline value, fresh value)` triples, in row order.
/// `None` when either line is not a row object or the key sets differ
/// (a schema change, which the header check upstream already names).
fn field_level_diff(base: &str, fresh: &str) -> Option<Vec<(String, String, String)>> {
    let b = top_level_fields(base)?;
    let f = top_level_fields(fresh)?;
    if b.len() != f.len() || b.iter().zip(&f).any(|((bk, _), (fk, _))| bk != fk) {
        return None;
    }
    Some(
        b.into_iter()
            .zip(f)
            .filter(|((_, bv), (_, fv))| bv != fv)
            .map(|((k, bv), (_, fv))| (k, bv, fv))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    fn row(
        index: usize,
        scenario: &'static str,
        cycles: u64,
        energy: f64,
        recall: f64,
    ) -> SweepRow {
        let mut ledger = EnergyLedger::new();
        ledger.compute = energy;
        SweepRow {
            index,
            scenario,
            maintenance: "rebuild",
            num_pes: 4,
            tree_kb: 6,
            tree_banks: 4,
            dram_bytes_per_cycle: 20.48,
            aggregation_elision: true,
            top_height: 4,
            elision_depth: 4,
            descendant_reuse: false,
            engine_elision_level: 8,
            top_height_used: 4,
            frames: 2,
            queries: 8,
            neighbors: 16,
            pipelined_cycles: cycles,
            serial_cycles: cycles + 5,
            build_cycles: 10,
            dram_bytes: 1024,
            mean_reuse: 0.5,
            arb_rounds: 40,
            bank_conflicts: 7,
            conflict_stall_cycles: 5,
            elided_conflicts: 2,
            conflict_reuses: 0,
            agg_cycles: 12,
            agg_elided: 3,
            full_rebuilds: 2,
            subtrees_rebuilt: 0,
            energy: ledger,
            recall,
            digest: 0xdead_beef,
            engine_cycles: 0,
            engine_dram_bytes: 512,
            nodes_visited: 100,
            nodes_elided: 3,
            engine_recall: recall,
            engine_digest: 0xdead_beef,
        }
    }

    fn report(rows: Vec<SweepRow>) -> SweepReport {
        SweepReport { spec: SweepSpec::quick(), shard: None, rows }
    }

    #[test]
    fn pareto_keeps_only_nondominated_rows_per_scenario() {
        // row 1 dominates row 0 (faster, cheaper, same recall); row 2
        // trades energy for speed vs row 1 -> both stay; row 3 is a
        // different scenario and never competes with the others
        let r = report(vec![
            row(0, "sweep", 100, 10.0, 0.9),
            row(1, "sweep", 50, 5.0, 0.9),
            row(2, "sweep", 40, 8.0, 0.9),
            row(3, "registered", 1000, 100.0, 0.5),
        ]);
        let fronts = r.pareto();
        assert_eq!(fronts.len(), 2);
        assert_eq!(fronts[0], ("sweep".to_string(), vec![1, 2]));
        assert_eq!(fronts[1], ("registered".to_string(), vec![3]));
    }

    #[test]
    fn identical_metrics_all_survive_pareto() {
        let r = report(vec![row(0, "sweep", 50, 5.0, 0.9), row(1, "sweep", 50, 5.0, 0.9)]);
        assert_eq!(r.pareto()[0].1, vec![0, 1], "ties dominate nobody");
    }

    #[test]
    fn json_has_schema_one_row_per_line_and_is_reproducible() {
        let r = report(vec![row(0, "sweep", 100, 10.0, 0.875), row(1, "sweep", 50, 5.0, 1.0)]);
        let json = r.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"crescent-sweep/v4\",\n"));
        assert!(json.contains("\n  \"fingerprint\": \""), "header carries the spec fingerprint");
        assert!(json.contains("\n  \"shard\": null,\n"), "whole-grid reports are unsharded");
        assert_eq!(json.matches("{\"row\":").count(), 2);
        let row_lines: Vec<&str> =
            json.lines().filter(|l| l.trim_start().starts_with("{\"row\":")).collect();
        assert_eq!(row_lines.len(), 2, "one row per line for line-level diffs");
        assert!(json.contains("\"digest\":\"00000000deadbeef\""));
        assert!(json.contains("\"recall\":0.875"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json, r.to_json(), "serialization is a pure function");
    }

    #[test]
    fn diff_reports_none_on_identical_and_points_at_lines() {
        let a = "l1\nl2\nl3\n";
        assert!(diff_reports(a, a).is_none());
        let drift = diff_reports("l1\nl2\nl3\n", "l1\nl2x\nl3\n").expect("drift");
        assert!(drift.contains("line 2"), "{drift}");
        assert!(drift.contains("- l2"), "{drift}");
        assert!(drift.contains("+ l2x"), "{drift}");
        let shape = diff_reports("l1\n", "l1\nl2\n").expect("drift");
        assert!(shape.contains("line count"), "{shape}");
    }

    #[test]
    fn diff_reports_lists_the_drifted_fields_of_a_row() {
        let mut base = report(vec![row(0, "sweep", 100, 10.0, 0.9), row(1, "sweep", 50, 5.0, 0.8)]);
        let mut fresh = base.clone();
        fresh.rows[1].pipelined_cycles = 51;
        fresh.rows[1].elided_conflicts = 7;
        // keep the headers identical so the row comparator runs
        base.spec.label = "quick".into();
        fresh.spec.label = "quick".into();
        let msg = diff_reports(&base.to_json(), &fresh.to_json()).expect("drift");
        assert!(msg.contains("pipelined_cycles: 50 -> 51"), "{msg}");
        assert!(msg.contains("elided_conflicts: 2 -> 7"), "{msg}");
        assert!(
            msg.contains("drifted fields across all rows:"),
            "summary histogram missing: {msg}"
        );
        assert!(msg.contains("elided_conflicts x1"), "{msg}");
        // undrifted fields are not named
        assert!(!msg.contains("serial_cycles:"), "{msg}");
    }

    #[test]
    fn field_parser_handles_nested_objects_and_strings() {
        let line =
            r#"    {"row":3,"scenario":"sweep","energy":{"a":1.0,"b":2.0},"digest":"00ff"},"#;
        let fields = top_level_fields(line).expect("parses");
        assert_eq!(fields[0], ("row".to_string(), "3".to_string()));
        assert_eq!(fields[1], ("scenario".to_string(), "\"sweep\"".to_string()));
        assert_eq!(fields[2], ("energy".to_string(), "{\"a\":1.0,\"b\":2.0}".to_string()));
        assert_eq!(fields[3], ("digest".to_string(), "\"00ff\"".to_string()));
        assert!(top_level_fields("  \"label\": \"quick\",").is_none(), "not an object");
        let diff = field_level_diff(r#"{"a":1,"b":{"x":2}}"#, r#"{"a":1,"b":{"x":3}}"#)
            .expect("same keys");
        assert_eq!(diff, vec![("b".to_string(), "{\"x\":2}".to_string(), "{\"x\":3}".to_string())]);
    }

    #[test]
    fn diff_reports_names_spec_mismatch_instead_of_metric_drift() {
        let quick = report(vec![row(0, "sweep", 100, 10.0, 0.9)]).to_json();
        let mut full_spec = SweepSpec::full();
        full_spec.label = "full".to_string();
        let full = SweepReport {
            spec: full_spec,
            shard: None,
            rows: vec![row(0, "sweep", 100, 10.0, 0.9)],
        }
        .to_json();
        let msg = diff_reports(&quick, &full).expect("different specs differ");
        assert!(msg.contains("different spec"), "{msg}");
        assert!(!msg.contains("drifted from baseline"), "{msg}");
    }

    #[test]
    fn fingerprint_identifies_the_spec_not_the_run() {
        let quick = SweepSpec::quick();
        assert_eq!(spec_fingerprint(&quick), spec_fingerprint(&SweepSpec::quick()));
        assert_ne!(spec_fingerprint(&quick), spec_fingerprint(&SweepSpec::full()));
        let mut relabeled = SweepSpec::quick();
        relabeled.label = "quick2".to_string();
        assert_ne!(spec_fingerprint(&quick), spec_fingerprint(&relabeled));
        let mut reaxed = SweepSpec::quick();
        reaxed.elision_depths.push(2);
        assert_ne!(spec_fingerprint(&quick), spec_fingerprint(&reaxed));
    }

    #[test]
    fn shard_reports_carry_their_coordinates() {
        let mut r = report(vec![row(0, "sweep", 100, 10.0, 0.9)]);
        r.shard = Some(ShardInfo { index: 2, count: 3 });
        let json = r.to_json();
        let points = r.spec.num_points();
        assert!(
            json.contains(&format!(
                "\n  \"shard\": {{\"index\":2,\"count\":3,\"rows\":1,\"points\":{points}}},\n"
            )),
            "{json}"
        );
        // everything else in the header matches the unsharded form
        let whole = report(vec![row(0, "sweep", 100, 10.0, 0.9)]).to_json();
        for key in ["\"schema\":", "\"label\":", "\"fingerprint\":", "\"workload\":", "\"grid\":"] {
            let line = |text: &str| {
                text.lines().find(|l| l.trim_start().starts_with(key)).unwrap().to_string()
            };
            assert_eq!(line(&json), line(&whole), "{key} must not depend on sharding");
        }
    }
}
