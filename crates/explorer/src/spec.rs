//! Declarative sweep specifications: a cartesian grid over architecture
//! and workload knobs, expanded into an ordered list of sweep points.

use serde::{Deserialize, Serialize};

use crescent::workload::{EgoMotion, FrameStreamConfig, StreamScenario};
use crescent_accel::{AcceleratorConfig, ConfigError, TreeMaintenance};
use crescent_pointcloud::datasets::LidarSceneConfig;

/// A cartesian design-space grid: the explorer runs every combination of
/// the axes below against the shared streaming `workload` base (whose
/// own `scenario` / `maintenance` fields are overridden per point).
///
/// Expansion order is fixed and documented ([`SweepSpec::expand`]), so a
/// report row index identifies the same configuration forever — the
/// property the checked-in CI baseline relies on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Human-readable name of the spec (`"quick"`, `"full"`, ...);
    /// echoed into the report header.
    pub label: String,
    /// The streaming workload every point runs (frame count, scene,
    /// queries, radius). `scenario` and `maintenance` in here are
    /// ignored — the grid supplies them.
    pub workload: FrameStreamConfig,
    /// Workload shapes to cover (outermost axis).
    pub scenarios: Vec<StreamScenario>,
    /// Tree-maintenance policies to cover.
    pub maintenance: Vec<TreeMaintenance>,
    /// Neighbor-search PE counts.
    pub num_pes: Vec<usize>,
    /// Tree-buffer capacities in KiB (cache-geometry axis).
    pub tree_kb: Vec<usize>,
    /// Streaming DRAM bandwidths in bytes per accelerator cycle.
    pub dram_bytes_per_cycle: Vec<f64>,
    /// Top-tree heights `h_t`.
    pub top_heights: Vec<usize>,
    /// Elision heights `h_e` (innermost axis).
    pub elision_heights: Vec<usize>,
}

/// One expanded grid point, in expansion order.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Position in the expanded grid (== report row index).
    pub index: usize,
    /// Position of the scenario in [`SweepSpec::scenarios`] (used to
    /// look up the per-scenario frame / exact-baseline caches).
    pub scenario_idx: usize,
    /// The workload shape.
    pub scenario: StreamScenario,
    /// The tree-maintenance policy.
    pub maintenance: TreeMaintenance,
    /// Neighbor-search PE count.
    pub num_pes: usize,
    /// Tree-buffer capacity in KiB.
    pub tree_kb: usize,
    /// Streaming DRAM bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// Top-tree height `h_t`.
    pub top_height: usize,
    /// Elision height `h_e`.
    pub elision_height: usize,
}

impl SweepPoint {
    /// Builds the validated accelerator configuration for this point
    /// (ANS+BCE shape: elision at `h_e` on the default banking).
    pub fn config(&self) -> Result<AcceleratorConfig, ConfigError> {
        AcceleratorConfig::builder()
            .num_pes(self.num_pes)
            .tree_buffer_kb(self.tree_kb)
            .dram_stream_bytes_per_cycle(self.dram_bytes_per_cycle)
            .elision_height(self.elision_height)
            .build()
    }
}

/// Stable machine-readable name of a maintenance policy (parameters
/// elided) — a baseline key, so it must never change for a variant.
pub fn maintenance_label(m: TreeMaintenance) -> &'static str {
    match m {
        TreeMaintenance::RebuildEveryFrame => "rebuild",
        TreeMaintenance::Refit { .. } => "refit",
    }
}

impl SweepSpec {
    /// The CI-scale spec: every canonical scenario × both maintenance
    /// policies × three PE counts × two elision heights on a small
    /// 8-frame stream. 60 points, seconds to run, and the source of the
    /// checked-in `bench/baseline.json`.
    pub fn quick() -> Self {
        SweepSpec {
            label: "quick".to_string(),
            workload: quick_workload(),
            scenarios: StreamScenario::canonical_matrix().to_vec(),
            maintenance: vec![TreeMaintenance::RebuildEveryFrame, TreeMaintenance::refit()],
            num_pes: vec![2, 4, 8],
            tree_kb: vec![6],
            dram_bytes_per_cycle: vec![20.48],
            top_heights: vec![4],
            elision_heights: vec![8, 12],
        }
    }

    /// The paper-scale spec: wider PE / cache / bandwidth / `h` axes on
    /// a longer, denser stream. Hundreds of points — for offline
    /// architecture studies, not the CI gate.
    pub fn full() -> Self {
        SweepSpec {
            label: "full".to_string(),
            workload: FrameStreamConfig {
                scene: LidarSceneConfig {
                    total_points: 12_000,
                    num_cars: 8,
                    num_poles: 16,
                    num_walls: 4,
                    half_extent: 30.0,
                    seed: 0x5EED_C4E5,
                },
                num_frames: 10,
                // straight-line, noise-free ego (a registration
                // pipeline's output): the regime where the refit
                // policies actually diverge — see quick_workload()
                ego: EgoMotion { speed_mps: 6.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 },
                max_range: 14.0,
                noise_m: 0.0,
                queries_per_frame: 256,
                radius: 0.5,
                max_neighbors: Some(32),
                ..FrameStreamConfig::default()
            },
            scenarios: StreamScenario::canonical_matrix().to_vec(),
            maintenance: vec![TreeMaintenance::RebuildEveryFrame, TreeMaintenance::refit()],
            num_pes: vec![1, 2, 4, 8, 16],
            tree_kb: vec![3, 6, 12],
            dram_bytes_per_cycle: vec![10.24, 20.48],
            top_heights: vec![2, 4, 6],
            elision_heights: vec![8, 12],
        }
    }

    /// Number of points the grid expands to.
    pub fn num_points(&self) -> usize {
        self.scenarios.len()
            * self.maintenance.len()
            * self.num_pes.len()
            * self.tree_kb.len()
            * self.dram_bytes_per_cycle.len()
            * self.top_heights.len()
            * self.elision_heights.len()
    }

    /// Expands the grid in its fixed axis order — scenario, maintenance,
    /// PE count, tree KiB, DRAM bandwidth, `h_t`, `h_e` (innermost).
    pub fn expand(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.num_points());
        for (scenario_idx, &scenario) in self.scenarios.iter().enumerate() {
            for &maintenance in &self.maintenance {
                for &num_pes in &self.num_pes {
                    for &tree_kb in &self.tree_kb {
                        for &dram_bytes_per_cycle in &self.dram_bytes_per_cycle {
                            for &top_height in &self.top_heights {
                                for &elision_height in &self.elision_heights {
                                    points.push(SweepPoint {
                                        index: points.len(),
                                        scenario_idx,
                                        scenario,
                                        maintenance,
                                        num_pes,
                                        tree_kb,
                                        dram_bytes_per_cycle,
                                        top_height,
                                        elision_height,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// Validates the spec: every axis non-empty, a sane workload, and
    /// every grid point's accelerator config constructible.
    pub fn validate(&self) -> Result<(), String> {
        if self.scenarios.is_empty()
            || self.maintenance.is_empty()
            || self.num_pes.is_empty()
            || self.tree_kb.is_empty()
            || self.dram_bytes_per_cycle.is_empty()
            || self.top_heights.is_empty()
            || self.elision_heights.is_empty()
        {
            return Err("every sweep axis needs at least one value".to_string());
        }
        if self.workload.num_frames == 0 {
            return Err("workload needs at least one frame".to_string());
        }
        for point in self.expand() {
            point.config().map_err(|e| format!("grid point {}: {e}", point.index))?;
        }
        Ok(())
    }
}

fn quick_workload() -> FrameStreamConfig {
    FrameStreamConfig {
        scene: LidarSceneConfig {
            total_points: 2_500,
            num_cars: 4,
            num_poles: 8,
            num_walls: 2,
            half_extent: 30.0,
            seed: 0x5EED_C4E5,
        },
        num_frames: 8,
        // Straight-line, noise-free ego motion — i.e. the output of a
        // registration/motion-compensation pipeline. Per-frame noise or
        // yaw makes every refit honestly fall back to a rebuild, which
        // would collapse the maintenance axis to a constant; a rigid
        // translation is the regime the Refit policy exists for, so the
        // sweep actually contrasts the two policies (Sweep re-sorts and
        // RotationBurst rotates, so those still exercise the fallback).
        ego: EgoMotion { speed_mps: 6.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 },
        // 12 m sensor range: small enough that the DynamicObjects
        // movers (spawned at 1.4x range, closing at ~0.5-0.9 m/frame)
        // actually enter the scene within the 8 simulated frames.
        max_range: 12.0,
        noise_m: 0.0,
        queries_per_frame: 160,
        radius: 0.4,
        max_neighbors: Some(16),
        ..FrameStreamConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_shape_meets_the_ci_contract() {
        let spec = SweepSpec::quick();
        spec.validate().expect("quick spec is valid");
        assert_eq!(spec.scenarios.len(), 5, "all scenarios");
        assert_eq!(spec.maintenance.len(), 2, "both policies");
        assert!(spec.num_pes.len() >= 3, ">= 3 PE counts");
        assert_eq!(spec.num_points(), 60);
        assert_eq!(spec.expand().len(), 60);
    }

    #[test]
    fn expansion_order_is_stable_and_indexed() {
        let spec = SweepSpec::quick();
        let points = spec.expand();
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // innermost axis is h_e: consecutive points differ only there
        assert_eq!(points[0].elision_height, 8);
        assert_eq!(points[1].elision_height, 12);
        assert_eq!(points[0].num_pes, points[1].num_pes);
        assert_eq!(points[0].scenario.label(), points[1].scenario.label());
        // outermost axis is the scenario
        let per_scenario = spec.num_points() / spec.scenarios.len();
        assert_eq!(points[per_scenario].scenario_idx, 1);
        assert_eq!(points[per_scenario - 1].scenario_idx, 0);
    }

    #[test]
    fn empty_axis_and_bad_point_are_rejected() {
        let mut spec = SweepSpec::quick();
        spec.num_pes.clear();
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::quick();
        spec.num_pes = vec![0];
        let err = spec.validate().unwrap_err();
        assert!(err.contains("num_pes"), "{err}");
    }

    #[test]
    fn full_spec_is_valid_and_larger() {
        let spec = SweepSpec::full();
        spec.validate().expect("full spec is valid");
        assert!(spec.num_points() > SweepSpec::quick().num_points());
    }

    #[test]
    fn maintenance_labels_are_stable() {
        assert_eq!(maintenance_label(TreeMaintenance::RebuildEveryFrame), "rebuild");
        assert_eq!(maintenance_label(TreeMaintenance::refit()), "refit");
    }
}
