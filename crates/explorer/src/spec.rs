//! Declarative sweep specifications: a cartesian grid over architecture
//! and workload knobs, expanded into an ordered list of sweep points.

use serde::{Deserialize, Serialize};

use crescent::workload::{EgoMotion, FrameStreamConfig, StreamScenario};
use crescent_accel::{AcceleratorConfig, ConfigError, TreeMaintenance};
use crescent_pointcloud::datasets::LidarSceneConfig;

/// A cartesian design-space grid: the explorer runs every combination of
/// the axes below against the shared streaming `workload` base (whose
/// own `scenario` / `maintenance` fields are overridden per point).
///
/// Expansion order is fixed and documented ([`SweepSpec::expand`]), so a
/// report row index identifies the same configuration forever — the
/// property the checked-in CI baseline relies on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Human-readable name of the spec (`"quick"`, `"full"`, ...);
    /// echoed into the report header.
    pub label: String,
    /// The streaming workload every point runs (frame count, scene,
    /// queries, radius). `scenario` and `maintenance` in here are
    /// ignored — the grid supplies them.
    pub workload: FrameStreamConfig,
    /// Workload shapes to cover (outermost axis).
    pub scenarios: Vec<StreamScenario>,
    /// Tree-maintenance policies to cover.
    pub maintenance: Vec<TreeMaintenance>,
    /// Neighbor-search PE counts.
    pub num_pes: Vec<usize>,
    /// Tree-buffer capacities in KiB (cache-geometry axis).
    pub tree_kb: Vec<usize>,
    /// Tree-buffer bank counts (the arbitration-width axis: fewer banks
    /// ⇒ more conflicts ⇒ more stall rounds or more elision, in both
    /// the streaming pass and the engine cross-check).
    pub tree_banks: Vec<usize>,
    /// Streaming DRAM bandwidths in bytes per accelerator cycle.
    pub dram_bytes_per_cycle: Vec<f64>,
    /// Aggregation (Point-Buffer) elision on/off — moves the streaming
    /// pass's per-frame gather rounds.
    pub aggregation_elision: Vec<bool>,
    /// Top-tree heights `h_t`.
    pub top_heights: Vec<usize>,
    /// Streaming elision depths `h_e` (innermost axis): conflicted
    /// fetches in the `h_e` deepest tree levels are dropped; `0` = exact
    /// stall-only search. The engine cross-check pass converts each
    /// value to its level threshold `height − h_e`.
    pub elision_depths: Vec<usize>,
}

/// One expanded grid point, in expansion order.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Position in the expanded grid (== report row index).
    pub index: usize,
    /// Position of the scenario in [`SweepSpec::scenarios`] (used to
    /// look up the per-scenario frame / exact-baseline caches).
    pub scenario_idx: usize,
    /// The workload shape.
    pub scenario: StreamScenario,
    /// The tree-maintenance policy.
    pub maintenance: TreeMaintenance,
    /// Neighbor-search PE count.
    pub num_pes: usize,
    /// Tree-buffer capacity in KiB.
    pub tree_kb: usize,
    /// Tree-buffer bank count.
    pub tree_banks: usize,
    /// Streaming DRAM bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// Aggregation elision on/off.
    pub aggregation_elision: bool,
    /// Top-tree height `h_t`.
    pub top_height: usize,
    /// Streaming elision depth `h_e` (depth-from-leaves, 0 = off).
    pub elision_depth: usize,
}

impl SweepPoint {
    /// Builds the validated accelerator configuration for this point.
    ///
    /// The search-elision *level* threshold is a per-tree quantity
    /// (`height − h_e`), so it is installed here as the stall-only
    /// placeholder `usize::MAX` and patched by the runner once frame 0's
    /// tree height is known; banking, capacity, bandwidth, and the
    /// aggregation-elision flag are fully determined by the point.
    pub fn config(&self) -> Result<AcceleratorConfig, ConfigError> {
        AcceleratorConfig::builder()
            .num_pes(self.num_pes)
            .tree_buffer_kb(self.tree_kb)
            .tree_banks(self.tree_banks)
            .dram_stream_bytes_per_cycle(self.dram_bytes_per_cycle)
            .elision_height(usize::MAX)
            .aggregation_elision(self.aggregation_elision)
            .build()
    }
}

/// Stable machine-readable name of a maintenance policy (parameters
/// elided) — a baseline key, so it must never change for a variant.
pub fn maintenance_label(m: TreeMaintenance) -> &'static str {
    match m {
        TreeMaintenance::RebuildEveryFrame => "rebuild",
        TreeMaintenance::Refit { .. } => "refit",
    }
}

impl SweepSpec {
    /// The CI-scale spec: every canonical scenario × both maintenance
    /// policies × two PE counts × two bank counts × `h_e ∈ {0, 4}` on a
    /// small 8-frame stream. 160 points, seconds to run, and the source
    /// of the checked-in `bench/baseline.json` — `h_e = 0` rows double
    /// as the exact stall-only reference the elided rows are judged
    /// against.
    pub fn quick() -> Self {
        SweepSpec {
            label: "quick".to_string(),
            workload: quick_workload(),
            scenarios: StreamScenario::canonical_matrix().to_vec(),
            maintenance: vec![TreeMaintenance::RebuildEveryFrame, TreeMaintenance::refit()],
            num_pes: vec![2, 8],
            tree_kb: vec![6],
            tree_banks: vec![2, 4],
            dram_bytes_per_cycle: vec![20.48],
            aggregation_elision: vec![true],
            top_heights: vec![4],
            elision_depths: vec![0, 4],
        }
    }

    /// The paper-scale spec: wider PE / cache / bandwidth / `h` axes on
    /// a longer, denser stream. Hundreds of points — for offline
    /// architecture studies, not the CI gate.
    pub fn full() -> Self {
        SweepSpec {
            label: "full".to_string(),
            workload: FrameStreamConfig {
                scene: LidarSceneConfig {
                    total_points: 12_000,
                    num_cars: 8,
                    num_poles: 16,
                    num_walls: 4,
                    half_extent: 30.0,
                    seed: 0x5EED_C4E5,
                },
                num_frames: 10,
                // straight-line, noise-free ego (a registration
                // pipeline's output): the regime where the refit
                // policies actually diverge — see quick_workload()
                ego: EgoMotion { speed_mps: 6.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 },
                max_range: 14.0,
                noise_m: 0.0,
                queries_per_frame: 256,
                radius: 0.5,
                max_neighbors: Some(32),
                ..FrameStreamConfig::default()
            },
            scenarios: StreamScenario::canonical_matrix().to_vec(),
            maintenance: vec![TreeMaintenance::RebuildEveryFrame, TreeMaintenance::refit()],
            num_pes: vec![1, 2, 4, 8, 16],
            tree_kb: vec![3, 6, 12],
            tree_banks: vec![2, 4, 8],
            dram_bytes_per_cycle: vec![10.24, 20.48],
            aggregation_elision: vec![false, true],
            top_heights: vec![2, 4, 6],
            elision_depths: vec![0, 2, 4, 8],
        }
    }

    /// Number of points the grid expands to.
    pub fn num_points(&self) -> usize {
        self.scenarios.len()
            * self.maintenance.len()
            * self.num_pes.len()
            * self.tree_kb.len()
            * self.tree_banks.len()
            * self.dram_bytes_per_cycle.len()
            * self.aggregation_elision.len()
            * self.top_heights.len()
            * self.elision_depths.len()
    }

    /// Expands the grid in its fixed axis order — scenario, maintenance,
    /// PE count, tree KiB, tree banks, DRAM bandwidth, aggregation
    /// elision, `h_t`, `h_e` (innermost).
    pub fn expand(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.num_points());
        for (scenario_idx, &scenario) in self.scenarios.iter().enumerate() {
            for &maintenance in &self.maintenance {
                for &num_pes in &self.num_pes {
                    for &tree_kb in &self.tree_kb {
                        for &tree_banks in &self.tree_banks {
                            for &dram_bytes_per_cycle in &self.dram_bytes_per_cycle {
                                for &aggregation_elision in &self.aggregation_elision {
                                    for &top_height in &self.top_heights {
                                        for &elision_depth in &self.elision_depths {
                                            points.push(SweepPoint {
                                                index: points.len(),
                                                scenario_idx,
                                                scenario,
                                                maintenance,
                                                num_pes,
                                                tree_kb,
                                                tree_banks,
                                                dram_bytes_per_cycle,
                                                aggregation_elision,
                                                top_height,
                                                elision_depth,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// The stable shard projection: the subset of the expanded grid
    /// assigned to shard `index` of `count` (1-based, `1 ≤ index ≤
    /// count`). Points are dealt round-robin by global grid index
    /// (`point.index % count == index − 1`), so every shard spans the
    /// whole axis space (every scenario, every `h` point) instead of
    /// getting one contiguous — and therefore load-skewed — block.
    ///
    /// Every returned point keeps its **global** `index`: a shard report
    /// row is bit-identical to the same row of a single-process run, and
    /// [`merge_shards`](crate::merge_shards) can verify that the shards
    /// form a complete disjoint partition of `0..num_points()`.
    pub fn shard_points(&self, index: usize, count: usize) -> Result<Vec<SweepPoint>, String> {
        if count == 0 {
            return Err("shard count must be >= 1".to_string());
        }
        if index == 0 || index > count {
            return Err(format!("shard index {index} out of range 1..={count}"));
        }
        Ok(self.expand().into_iter().filter(|p| p.index % count == index - 1).collect())
    }

    /// Validates the spec: every axis non-empty, a sane workload, and
    /// every grid point's accelerator config constructible.
    pub fn validate(&self) -> Result<(), String> {
        if self.scenarios.is_empty()
            || self.maintenance.is_empty()
            || self.num_pes.is_empty()
            || self.tree_kb.is_empty()
            || self.tree_banks.is_empty()
            || self.dram_bytes_per_cycle.is_empty()
            || self.aggregation_elision.is_empty()
            || self.top_heights.is_empty()
            || self.elision_depths.is_empty()
        {
            return Err("every sweep axis needs at least one value".to_string());
        }
        if self.workload.num_frames == 0 {
            return Err("workload needs at least one frame".to_string());
        }
        for point in self.expand() {
            point.config().map_err(|e| format!("grid point {}: {e}", point.index))?;
        }
        Ok(())
    }
}

fn quick_workload() -> FrameStreamConfig {
    FrameStreamConfig {
        scene: LidarSceneConfig {
            total_points: 2_500,
            num_cars: 4,
            num_poles: 8,
            num_walls: 2,
            half_extent: 30.0,
            seed: 0x5EED_C4E5,
        },
        num_frames: 8,
        // Straight-line, noise-free ego motion — i.e. the output of a
        // registration/motion-compensation pipeline. Per-frame noise or
        // yaw makes every refit honestly fall back to a rebuild, which
        // would collapse the maintenance axis to a constant; a rigid
        // translation is the regime the Refit policy exists for, so the
        // sweep actually contrasts the two policies (Sweep re-sorts and
        // RotationBurst rotates, so those still exercise the fallback).
        ego: EgoMotion { speed_mps: 6.0, yaw_rate_rps: 0.0, frame_period_s: 0.1 },
        // 12 m sensor range: small enough that the DynamicObjects
        // movers (spawned at 1.4x range, closing at ~0.5-0.9 m/frame)
        // actually enter the scene within the 8 simulated frames.
        max_range: 12.0,
        noise_m: 0.0,
        queries_per_frame: 160,
        radius: 0.4,
        max_neighbors: Some(16),
        ..FrameStreamConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_shape_meets_the_ci_contract() {
        let spec = SweepSpec::quick();
        spec.validate().expect("quick spec is valid");
        assert_eq!(spec.scenarios.len(), 10, "all scenarios");
        assert_eq!(spec.maintenance.len(), 2, "both policies");
        assert!(spec.num_pes.len() >= 2, ">= 2 PE counts");
        assert!(spec.tree_banks.len() >= 2, ">= 2 bank counts");
        assert!(spec.elision_depths.contains(&0), "the exact h_e = 0 reference is gated");
        assert!(spec.elision_depths.iter().any(|&d| d > 0), "a real elision point is gated");
        assert!(
            spec.scenarios.iter().any(StreamScenario::descendant_reuse),
            "the descendant-reuse workload is gated"
        );
        assert_eq!(spec.num_points(), 160);
        assert_eq!(spec.expand().len(), 160);
    }

    #[test]
    fn expansion_order_is_stable_and_indexed() {
        let spec = SweepSpec::quick();
        let points = spec.expand();
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // innermost axis is h_e: consecutive points differ only there
        assert_eq!(points[0].elision_depth, 0);
        assert_eq!(points[1].elision_depth, 4);
        assert_eq!(points[0].tree_banks, points[1].tree_banks);
        assert_eq!(points[0].num_pes, points[1].num_pes);
        assert_eq!(points[0].scenario.label(), points[1].scenario.label());
        // outermost axis is the scenario
        let per_scenario = spec.num_points() / spec.scenarios.len();
        assert_eq!(points[per_scenario].scenario_idx, 1);
        assert_eq!(points[per_scenario - 1].scenario_idx, 0);
    }

    #[test]
    fn empty_axis_and_bad_point_are_rejected() {
        let mut spec = SweepSpec::quick();
        spec.num_pes.clear();
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::quick();
        spec.num_pes = vec![0];
        let err = spec.validate().unwrap_err();
        assert!(err.contains("num_pes"), "{err}");
    }

    #[test]
    fn full_spec_is_valid_and_larger() {
        let spec = SweepSpec::full();
        spec.validate().expect("full spec is valid");
        assert!(spec.num_points() > SweepSpec::quick().num_points());
    }

    #[test]
    fn shard_projection_is_a_complete_disjoint_partition() {
        let spec = SweepSpec::quick();
        let total = spec.num_points();
        for count in [1, 2, 3, 7] {
            let mut covered = vec![0usize; total];
            for index in 1..=count {
                let points = spec.shard_points(index, count).expect("valid shard");
                assert!(!points.is_empty(), "shard {index}/{count} must not be empty");
                for p in &points {
                    // global indices survive the projection
                    assert_eq!(p.index % count, index - 1);
                    covered[p.index] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "partition {count}: disjoint and complete");
        }
        // 1/1 is the whole grid in grid order
        let all = spec.shard_points(1, 1).expect("valid shard");
        assert_eq!(all.len(), total);
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn shard_projection_rejects_bad_indices() {
        let spec = SweepSpec::quick();
        assert!(spec.shard_points(0, 3).is_err(), "1-based indices");
        assert!(spec.shard_points(4, 3).is_err(), "index past count");
        assert!(spec.shard_points(1, 0).is_err(), "zero shards");
    }

    #[test]
    fn maintenance_labels_are_stable() {
        assert_eq!(maintenance_label(TreeMaintenance::RebuildEveryFrame), "rebuild");
        assert_eq!(maintenance_label(TreeMaintenance::refit()), "refit");
    }
}
