//! Byte-exact reassembly of sharded sweep reports.
//!
//! `repro sweep --shard i/N` runs the round-robin subset
//! ([`SweepSpec::shard_points`](crate::SweepSpec::shard_points)) of the
//! grid and writes a report whose header carries the shard coordinates
//! plus the spec fingerprint. [`merge_shards`] takes the N shard files
//! and reassembles **the exact bytes a single-process run would have
//! produced**: it verifies every shard ran the same spec (schema, label,
//! fingerprint, workload and grid echoes all byte-identical), that the
//! shard set is a complete partition (indices `1..=N`, no duplicates,
//! none missing), and that the covered rows form exactly the disjoint
//! union `0..points`; then it re-emits the header with `"shard": null`,
//! the row lines verbatim in global grid order, and the Pareto fronts
//! recomputed over the full row set — through the same renderer
//! (`render_body` in `crate::report`) the single-process writer uses,
//! so the two paths cannot drift.
//!
//! The merge never re-runs a simulation and never re-serializes a row:
//! rows travel as verbatim report lines. Byte-identity therefore reduces
//! to (a) every grid point's row being a pure function of the spec —
//! the determinism contract the explorer already gates — and (b) the
//! header/Pareto sections being rendered by shared code.

use crate::report::{pareto_fronts, render_body, top_level_fields, ParetoPoint, SCHEMA};

/// One shard report as handed to [`merge_shards`]: a display name (the
/// file path — every rejection names its offender with it) plus the raw
/// report text.
#[derive(Clone, Debug)]
pub struct ShardFile {
    /// Where the text came from, for error messages.
    pub name: String,
    /// The shard report bytes as written by `repro sweep --shard`.
    pub text: String,
}

/// The parsed skeleton of one shard report.
struct ParsedShard<'a> {
    name: &'a str,
    /// Header lines, verbatim: schema, label, fingerprint, workload,
    /// grid (the shard line is excluded — it differs per shard).
    header: [&'a str; 5],
    index: usize,
    count: usize,
    declared_rows: usize,
    points: usize,
    /// `(global row index, compact row object)` per row line, verbatim.
    rows: Vec<(usize, &'a str)>,
}

/// Merges shard reports into the byte-exact whole-grid report.
///
/// Errors (always naming the offending file) when a shard is not a
/// `crescent-sweep/v3` shard report, when the shards disagree on the
/// spec (fingerprint or any header echo), when the shard set is not a
/// complete partition `1..=N` (missing, duplicate, or foreign-count
/// shards), or when the row coverage is not exactly the disjoint union
/// of `0..points`.
pub fn merge_shards(shards: &[ShardFile]) -> Result<String, String> {
    if shards.is_empty() {
        return Err("no shard reports to merge".to_string());
    }
    let parsed: Vec<ParsedShard<'_>> = shards.iter().map(parse_shard).collect::<Result<_, _>>()?;

    // one spec across the whole partition
    let reference = &parsed[0];
    for shard in &parsed[1..] {
        for (a, b) in reference.header.iter().zip(&shard.header) {
            if a != b {
                return Err(format!(
                    "{} and {} were produced by different specs — refusing to merge\n  {}\n  {}",
                    reference.name,
                    shard.name,
                    a.trim(),
                    b.trim()
                ));
            }
        }
        if shard.count != reference.count {
            return Err(format!(
                "{} is shard {}/{} but {} is shard {}/{}: mixed partitions",
                reference.name,
                reference.index,
                reference.count,
                shard.name,
                shard.index,
                shard.count
            ));
        }
        if shard.points != reference.points {
            return Err(format!(
                "{} and {} disagree on the grid size ({} vs {} points)",
                reference.name, shard.name, reference.points, shard.points
            ));
        }
    }

    // complete disjoint shard-index partition 1..=count
    let count = reference.count;
    let mut owner: Vec<Option<&str>> = vec![None; count + 1];
    for shard in &parsed {
        match owner[shard.index] {
            Some(prior) => {
                return Err(format!(
                    "shard {}/{count} appears twice: {} and {}",
                    shard.index, prior, shard.name
                ));
            }
            None => owner[shard.index] = Some(shard.name),
        }
    }
    let missing: Vec<String> =
        (1..=count).filter(|&i| owner[i].is_none()).map(|i| format!("{i}/{count}")).collect();
    if !missing.is_empty() {
        return Err(format!("missing shard(s) {} of the partition", missing.join(", ")));
    }

    // exact disjoint row coverage of 0..points
    let points = reference.points;
    let mut row_lines: Vec<Option<&str>> = vec![None; points];
    let mut row_owner: Vec<Option<&str>> = vec![None; points];
    for shard in &parsed {
        if shard.rows.len() != shard.declared_rows {
            return Err(format!(
                "{}: header declares {} row(s) but the report contains {}",
                shard.name,
                shard.declared_rows,
                shard.rows.len()
            ));
        }
        for &(index, line) in &shard.rows {
            if index >= points {
                return Err(format!(
                    "{}: row {index} is outside the {points}-point grid",
                    shard.name
                ));
            }
            if let Some(prior) = row_owner[index] {
                return Err(format!(
                    "row {index} is covered by both {} and {}: overlapping shards",
                    prior, shard.name
                ));
            }
            row_owner[index] = Some(shard.name);
            row_lines[index] = Some(line);
        }
    }
    let uncovered: Vec<String> = row_lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_none())
        .map(|(i, _)| i.to_string())
        .take(8)
        .collect();
    if !uncovered.is_empty() {
        let total = row_lines.iter().filter(|l| l.is_none()).count();
        return Err(format!(
            "shards cover only {} of {points} grid points — missing row(s) {}{}",
            points - total,
            uncovered.join(", "),
            if total > uncovered.len() { ", ..." } else { "" }
        ));
    }
    let row_lines: Vec<String> =
        row_lines.into_iter().map(|l| l.expect("coverage verified").to_string()).collect();

    // Pareto fronts over the reunited grid, via the shared front finder
    let pareto_points: Vec<ParetoPoint> = row_lines
        .iter()
        .enumerate()
        .map(|(i, line)| parse_pareto_point(i, line))
        .collect::<Result<_, _>>()?;
    let fronts = pareto_fronts(&pareto_points);

    // header verbatim from the reference shard, with the shard slot
    // reset to the whole-grid form, then the shared body renderer
    let mut out = String::with_capacity(256 * (row_lines.len() + 8));
    out.push_str("{\n");
    out.push_str(reference.header[0]); // schema
    out.push('\n');
    out.push_str(reference.header[1]); // label
    out.push('\n');
    out.push_str(reference.header[2]); // fingerprint
    out.push('\n');
    out.push_str("  \"shard\": null,\n");
    out.push_str(reference.header[3]); // workload
    out.push('\n');
    out.push_str(reference.header[4]); // grid
    out.push('\n');
    render_body(&mut out, &row_lines, &fronts);
    Ok(out)
}

/// Parses one shard report's skeleton: the five spec header lines, the
/// shard coordinates, and the verbatim row lines keyed by global index.
fn parse_shard(file: &ShardFile) -> Result<ParsedShard<'_>, String> {
    let name = file.name.as_str();
    let lines: Vec<&str> = file.text.lines().collect();
    let header_line = |key: &str| -> Result<&str, String> {
        lines
            .iter()
            .find(|l| l.trim_start().starts_with(key))
            .copied()
            .ok_or_else(|| format!("{name}: not a sweep report — no {key} header"))
    };
    let header_value = |key: &str| -> Result<&str, String> {
        let line = header_line(key)?;
        Ok(line.trim_start().trim_start_matches(key).trim().trim_end_matches(','))
    };

    let schema = header_value("\"schema\":")?;
    let expected = format!("\"{SCHEMA}\"");
    if schema != expected {
        return Err(format!("{name}: schema {schema} is not {expected} — cannot merge"));
    }
    // Wall-clock timings belong in the `--timings` sidecar, never in a
    // report: a shard that inlined them would launder measured time into
    // the merged (gated) bytes. Refuse loudly. Only the report's own
    // 2-space-indented top level is checked — a row field or a deeper
    // key named "timings" would be someone else's data, not a section.
    if lines.iter().any(|l| l.starts_with("  \"timings\":")) {
        return Err(format!(
            "{name}: contains an inlined \"timings\" section — wall-clock measurements must \
             stay in the --timings sidecar, not in report bytes"
        ));
    }
    let shard_value = header_value("\"shard\":")?;
    if shard_value == "null" {
        return Err(format!(
            "{name}: a whole-grid report, not a shard (produce shards with `sweep --shard i/N`)"
        ));
    }
    let shard_fields = top_level_fields(shard_value)
        .ok_or_else(|| format!("{name}: malformed shard header {shard_value}"))?;
    let shard_u64 = |key: &str| -> Result<usize, String> {
        shard_fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| format!("{name}: shard header lacks a numeric {key:?}"))
    };
    let index = shard_u64("index")?;
    let count = shard_u64("count")?;
    let declared_rows = shard_u64("rows")?;
    let points = shard_u64("points")?;
    if count == 0 || index == 0 || index > count {
        return Err(format!("{name}: shard coordinates {index}/{count} are out of range"));
    }

    // the verbatim row lines, each `    {...}` with an optional trailing
    // comma, between `"rows": [` and its closing `],`
    let rows_start = lines
        .iter()
        .position(|l| l.trim() == "\"rows\": [")
        .ok_or_else(|| format!("{name}: no \"rows\" section"))?;
    let mut rows = Vec::with_capacity(declared_rows);
    for line in &lines[rows_start + 1..] {
        if line.trim() == "]," || line.trim() == "]" {
            break;
        }
        let compact = line.trim().trim_end_matches(',');
        let fields = top_level_fields(compact)
            .ok_or_else(|| format!("{name}: malformed row line {compact}"))?;
        let row_index = fields
            .iter()
            .find(|(k, _)| k == "row")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| format!("{name}: row line lacks a numeric \"row\" index"))?;
        rows.push((row_index, compact));
    }

    Ok(ParsedShard {
        name,
        header: [
            header_line("\"schema\":")?,
            header_line("\"label\":")?,
            header_line("\"fingerprint\":")?,
            header_line("\"workload\":")?,
            header_line("\"grid\":")?,
        ],
        index,
        count,
        declared_rows,
        points,
        rows,
    })
}

/// Reduces one verbatim row line to its Pareto objectives — the same
/// triple [`SweepReport::pareto`](crate::SweepReport::pareto) computes
/// from structured rows (`total_cycles = pipelined + engine`, total
/// stream energy, `worst_recall = min(recall, engine_recall)`). Parsing
/// is exact: the writer emits shortest-roundtrip floats, so `parse`
/// recovers the identical bit pattern.
fn parse_pareto_point(index: usize, line: &str) -> Result<ParetoPoint, String> {
    let fields =
        top_level_fields(line).ok_or_else(|| format!("row {index}: malformed row line"))?;
    let raw = |key: &str| -> Result<&str, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("row {index}: missing field {key:?}"))
    };
    let u64_of = |key: &str| -> Result<u64, String> {
        raw(key)?.parse::<u64>().map_err(|_| format!("row {index}: non-numeric {key:?}"))
    };
    let f64_of = |key: &str| -> Result<f64, String> {
        raw(key)?.parse::<f64>().map_err(|_| format!("row {index}: non-numeric {key:?}"))
    };
    let energy_total = {
        let energy = raw("energy")?;
        top_level_fields(energy)
            .and_then(|fs| fs.into_iter().find(|(k, _)| k == "total"))
            .and_then(|(_, v)| v.parse::<f64>().ok())
            .ok_or_else(|| format!("row {index}: energy object lacks a numeric total"))?
    };
    Ok(ParetoPoint {
        index,
        scenario: raw("scenario")?.trim_matches('"').to_string(),
        cycles: u64_of("pipelined_cycles")? + u64_of("engine_cycles")?,
        energy: energy_total,
        recall: f64_of("recall")?.min(f64_of("engine_recall")?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ShardInfo, SweepReport, SweepRow};
    use crate::spec::SweepSpec;
    use crescent_memsim::EnergyLedger;

    /// A 4-point spec so synthetic 4-row reports satisfy the coverage
    /// check without running a sweep.
    fn spec4() -> SweepSpec {
        let mut spec = SweepSpec::quick();
        spec.label = "merge-test".to_string();
        spec.scenarios.truncate(2);
        spec.maintenance.truncate(1);
        spec.num_pes = vec![4];
        spec.tree_banks = vec![4];
        spec.elision_depths = vec![0, 4];
        assert_eq!(spec.num_points(), 4);
        spec
    }

    fn row(index: usize, scenario: &'static str, cycles: u64) -> SweepRow {
        let mut ledger = EnergyLedger::new();
        ledger.compute = cycles as f64 * 0.5;
        SweepRow {
            index,
            scenario,
            maintenance: "rebuild",
            num_pes: 4,
            tree_kb: 6,
            tree_banks: 4,
            dram_bytes_per_cycle: 20.48,
            aggregation_elision: true,
            top_height: 4,
            elision_depth: (index % 2) * 4,
            descendant_reuse: false,
            engine_elision_level: 8,
            top_height_used: 4,
            frames: 2,
            queries: 8,
            neighbors: 16,
            pipelined_cycles: cycles,
            serial_cycles: cycles + 5,
            build_cycles: 10,
            dram_bytes: 1024,
            mean_reuse: 0.5,
            arb_rounds: 40,
            bank_conflicts: 7,
            conflict_stall_cycles: 5,
            elided_conflicts: 2,
            conflict_reuses: 0,
            agg_cycles: 12,
            agg_elided: 3,
            full_rebuilds: 2,
            subtrees_rebuilt: 0,
            energy: ledger,
            recall: 0.875 + index as f64 / 64.0,
            digest: 0x1234_5678 + index as u64,
            engine_cycles: cycles / 2,
            engine_dram_bytes: 512,
            nodes_visited: 100,
            nodes_elided: 3,
            engine_recall: 0.75,
            engine_digest: 0x8765_4321 + index as u64,
        }
    }

    fn rows4() -> Vec<SweepRow> {
        vec![
            row(0, "sweep", 100),
            row(1, "sweep", 80),
            row(2, "registered", 90),
            row(3, "registered", 70),
        ]
    }

    fn whole() -> String {
        SweepReport { spec: spec4(), shard: None, rows: rows4() }.to_json()
    }

    fn shard_text(index: usize, count: usize, rows: Vec<SweepRow>) -> ShardFile {
        let report = SweepReport { spec: spec4(), shard: Some(ShardInfo { index, count }), rows };
        ShardFile { name: format!("shard-{index}-of-{count}.json"), text: report.to_json() }
    }

    fn split(assignment: &[usize], count: usize) -> Vec<ShardFile> {
        (1..=count)
            .map(|shard| {
                let rows = rows4()
                    .into_iter()
                    .zip(assignment)
                    .filter(|(_, &s)| s == shard)
                    .map(|(r, _)| r)
                    .collect();
                shard_text(shard, count, rows)
            })
            .collect()
    }

    #[test]
    fn merge_reproduces_the_whole_report_byte_for_byte() {
        // any disjoint complete assignment works, not just round-robin
        for assignment in [[1, 1, 2, 2], [2, 1, 2, 1], [1, 2, 2, 1], [2, 2, 2, 1]] {
            let merged = merge_shards(&split(&assignment, 2)).expect("valid partition");
            assert_eq!(merged, whole(), "assignment {assignment:?}");
        }
        // shard order on the command line is irrelevant
        let mut files = split(&[1, 2, 1, 2], 2);
        files.reverse();
        assert_eq!(merge_shards(&files).expect("valid partition"), whole());
        // a 1-shard "partition" is the identity
        let merged = merge_shards(&split(&[1, 1, 1, 1], 1)).expect("valid partition");
        assert_eq!(merged, whole());
    }

    #[test]
    fn rejects_shards_of_different_specs_naming_the_offender() {
        let mut files = split(&[1, 2, 1, 2], 2);
        let mut other_spec = spec4();
        other_spec.label = "other".to_string();
        let foreign = SweepReport {
            spec: other_spec,
            shard: Some(ShardInfo { index: 2, count: 2 }),
            rows: vec![row(1, "sweep", 80), row(3, "registered", 70)],
        };
        files[1].text = foreign.to_json();
        let err = merge_shards(&files).unwrap_err();
        assert!(err.contains("different specs"), "{err}");
        assert!(err.contains("shard-2-of-2.json"), "offender not named: {err}");
    }

    #[test]
    fn rejects_overlapping_shards_naming_both() {
        let mut files = split(&[1, 1, 2, 2], 2);
        // shard 2 also claims row 0
        files[1] = shard_text(
            2,
            2,
            vec![row(0, "sweep", 100), row(2, "registered", 90), row(3, "registered", 70)],
        );
        let err = merge_shards(&files).unwrap_err();
        assert!(err.contains("row 0"), "{err}");
        assert!(err.contains("overlapping"), "{err}");
        assert!(err.contains("shard-1-of-2.json") && err.contains("shard-2-of-2.json"), "{err}");
    }

    #[test]
    fn rejects_missing_shards_and_missing_rows_by_name() {
        let files = vec![shard_text(1, 2, vec![row(0, "sweep", 100), row(2, "registered", 90)])];
        let err = merge_shards(&files).unwrap_err();
        assert!(err.contains("missing shard(s) 2/2"), "{err}");

        // complete shard set, incomplete row coverage
        let files = vec![
            shard_text(1, 2, vec![row(0, "sweep", 100), row(2, "registered", 90)]),
            shard_text(2, 2, vec![row(1, "sweep", 80)]),
        ];
        let err = merge_shards(&files).unwrap_err();
        assert!(err.contains("missing row(s) 3"), "{err}");
    }

    #[test]
    fn rejects_duplicate_shard_indices_and_mixed_partitions() {
        let a = shard_text(1, 2, vec![row(0, "sweep", 100), row(2, "registered", 90)]);
        let b = shard_text(1, 2, vec![row(1, "sweep", 80), row(3, "registered", 70)]);
        let err = merge_shards(&[a.clone(), b]).unwrap_err();
        assert!(err.contains("appears twice"), "{err}");

        let c = shard_text(2, 3, vec![row(1, "sweep", 80), row(3, "registered", 70)]);
        let err = merge_shards(&[a, c]).unwrap_err();
        assert!(err.contains("mixed partitions"), "{err}");
    }

    #[test]
    fn rejects_whole_grid_reports_and_foreign_schemas() {
        let whole_file = ShardFile { name: "whole.json".to_string(), text: whole() };
        let err = merge_shards(&[whole_file]).unwrap_err();
        assert!(err.contains("whole.json") && err.contains("not a shard"), "{err}");

        let mut files = split(&[1, 2, 1, 2], 2);
        files[0].text = files[0].text.replace("crescent-sweep/v4", "crescent-sweep/v2");
        let err = merge_shards(&files).unwrap_err();
        assert!(err.contains("schema"), "{err}");

        let garbage = ShardFile { name: "noise.json".to_string(), text: "hello\n".to_string() };
        let err = merge_shards(&[garbage]).unwrap_err();
        assert!(err.contains("noise.json"), "{err}");
    }

    #[test]
    fn rejects_shards_that_inline_wall_clock_timings() {
        let mut files = split(&[1, 2, 1, 2], 2);
        files[0].text = files[0].text.replace(
            "  \"workload\":",
            "  \"timings\": {\"total_nanos\": 12345},\n  \"workload\":",
        );
        assert!(files[0].text.contains("\"timings\""), "injection must have landed");
        let err = merge_shards(&files).unwrap_err();
        assert!(err.contains("shard-1-of-2.json"), "offender not named: {err}");
        assert!(err.contains("sidecar"), "points at the right channel: {err}");
    }

    #[test]
    fn merged_pareto_equals_structured_pareto() {
        let merged = merge_shards(&split(&[1, 2, 2, 1], 2)).expect("valid partition");
        let structured = SweepReport { spec: spec4(), shard: None, rows: rows4() };
        for (scenario, front) in structured.pareto() {
            let line = format!(
                "{{\"scenario\":\"{scenario}\",\"rows\":[{}]}}",
                front.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(",")
            );
            assert!(merged.contains(&line), "front {line} missing from merged report");
        }
    }
}
