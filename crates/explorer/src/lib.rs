//! Parallel design-space exploration for the Crescent simulator.
//!
//! The paper's headline claims are architecture/workload *sweeps* — PE
//! count, cache geometry, the `h = <h_t, h_e>` split depth, maintenance
//! policy × streaming scenario — but a simulator that can only run one
//! hand-picked configuration at a time cannot reproduce a sweep, let
//! alone gate it in CI. This crate closes that gap:
//!
//! * [`SweepSpec`] — a declarative cartesian grid over the architecture
//!   knobs ([`AcceleratorConfig`](crescent_accel::AcceleratorConfig) via
//!   its validated builder), the approximation knobs `h_t`/`h_e`, the
//!   [`TreeMaintenance`](crescent_accel::TreeMaintenance) policies, and
//!   every [`StreamScenario`](crescent::workload::StreamScenario);
//! * [`run_sweep`] — expands the grid and runs every point through the
//!   streaming engine on a `std::thread::scope` worker pool, with the
//!   per-scenario frame rendering and the brute-force recall oracle
//!   computed once and shared;
//! * [`SweepReport`] — a deterministic, schema-versioned JSON report
//!   (modeled cycles, DRAM bytes, energy by ledger category, recall vs.
//!   the exact baseline, a result digest) plus per-scenario Pareto
//!   fronts over cycles × energy × accuracy;
//! * [`diff_reports`] — the *exact* comparator behind the CI
//!   `sweep-gate`: every metric is modeled (never wall-clock), so the
//!   report is bit-reproducible and any drift against the checked-in
//!   `bench/baseline.json` is a real behavioural change;
//! * [`run_sweep_shard`] / [`merge_shards`] — the grid is embarrassingly
//!   parallel, so a sweep can shard across processes or machines
//!   (`repro sweep --shard i/N`): every shard report carries the spec
//!   fingerprint plus its shard coordinates, and the merger verifies the
//!   shards form a complete disjoint partition of one spec before
//!   reassembling **byte-identical** output to a single-process run;
//! * [`SweepTimings`] — the wall-clock sidecar (`repro sweep --timings`):
//!   measured scenario-setup and per-point times, kept in a separate
//!   file that the exact comparator never sees (see the [`timings`]
//!   module docs for the three guarantees keeping measured time out of
//!   the gated bytes).
//!
//! # Example
//!
//! ```
//! use crescent_explorer::{run_sweep, SweepSpec};
//!
//! let mut spec = SweepSpec::quick();
//! // shrink the grid for the doctest
//! spec.scenarios.truncate(1);
//! spec.num_pes.truncate(1);
//! spec.tree_banks.truncate(1);
//! spec.elision_depths.truncate(1);
//! let report = run_sweep(&spec, 2).expect("valid spec");
//! assert_eq!(report.rows.len(), spec.num_points());
//! let again = run_sweep(&spec, 1).expect("valid spec");
//! assert_eq!(report.to_json(), again.to_json(), "bit-reproducible");
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod merge;
pub mod report;
pub mod runner;
pub mod spec;
pub mod timings;

pub use json::Json;
pub use merge::{merge_shards, ShardFile};
pub use report::{diff_reports, spec_fingerprint, ShardInfo, SweepReport, SweepRow, SCHEMA};
pub use runner::{
    default_workers, run_sweep, run_sweep_shard, run_sweep_shard_timed, run_sweep_timed,
    run_sweep_with_stats, SweepRunStats,
};
pub use spec::{maintenance_label, SweepPoint, SweepSpec};
pub use timings::{SweepTimings, TIMINGS_SCHEMA};
