//! The parallel sweep executor: expands a [`SweepSpec`], renders and
//! brute-force-solves each scenario's frame stream once, then fans the
//! grid points out over a `std::thread::scope` worker pool.
//!
//! Since the streaming wavefront learned the unified banked-arbitration
//! model, ONE `h_e`-sensitive streaming pass per point carries every
//! axis — maintenance, `h_t`, `h_e`, PE count, tree banks, aggregation
//! elision, cache geometry, DRAM bandwidth. The standalone engine pass
//! survives only as a *cross-check column*: the same `h = <h_t, h_e>`
//! point evaluated on frame 0 by the per-query lock-step model, so a
//! divergence between the two implementations of the same hardware
//! shows up as baseline drift instead of going unnoticed.
//!
//! # Determinism
//!
//! The report is a pure function of the spec, whatever the worker count:
//! every grid point is simulated independently (single-threaded, seeded,
//! entirely modeled — no wall-clock anywhere), workers claim points by
//! atomic index but write each row into its own pre-allocated slot, and
//! the report is assembled in grid order. Two runs — or a 1-worker and
//! an N-worker run — therefore serialize to byte-identical JSON, which
//! is what lets the CI gate compare reports with an exact comparator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crescent::workload::{Frame, FrameStream};
use crescent_accel::{
    maintain_tree_sequence, run_crescent_search, run_frame_stream_on_trees, CrescentKnobs,
    MaintainedTree, StreamSearchConfig, TreeMaintenance,
};
use crescent_kdtree::KdTree;
use crescent_pointcloud::{Neighbor, OracleIndex, Point3, PointCloud};

use crate::report::{ShardInfo, SweepReport, SweepRow};
use crate::spec::{maintenance_label, SweepPoint, SweepSpec};
use crate::timings::SweepTimings;

/// Exact neighbor-index sets (sorted) per frame per query — the recall
/// oracle, computed once per scenario by brute force.
type ExactSets = Vec<Vec<Vec<usize>>>;

/// Everything about a scenario that no architecture knob can change,
/// rendered/solved once and shared read-only by every grid point of the
/// scenario: the frames, the brute-force recall oracle, and frame 0's
/// K-d tree (the standalone-engine workload).
struct ScenarioCache {
    frames: Vec<Frame>,
    exact: ExactSets,
    tree0: KdTree,
}

/// Memo key for the standalone engine cross-check pass: every axis
/// EXCEPT the maintenance policy (which cannot influence a single-tree
/// search) and aggregation elision (the engine pass has no aggregation
/// stage). The DRAM bandwidth is keyed by its bit pattern — only
/// identity matters.
///
/// The `h_t` component is the **granted** `top_height_used`, not the
/// requested `point.top_height`: the pass is computed with the granted
/// height, so two grid points whose requested heights clamp to the same
/// grant run byte-identical passes and must share one memo entry.
/// (Keying on the request used to silently re-run those passes.)
type EngineKey = (usize, usize, usize, usize, u64, usize, usize);

/// Memo key for a scenario's maintained-tree sequence: the only knobs
/// [`maintain_tree_sequence`] reads are the maintenance policy (variant
/// plus rebuild threshold, keyed by its bit pattern — only identity
/// matters) and, for refit, the granted `h_t` (the refit validator's
/// `check_height`). Rebuild sequences are height-independent, so they
/// key `h_t` as 0 and every grant shares one entry. All remaining axes
/// — PE count, banking, elision, DRAM bandwidth, aggregation — cannot
/// touch maintenance, which is exactly why the quick grid's 16 points
/// per scenario collapse onto 2 tree sequences.
type TreeKey = (usize, bool, u64, usize);

fn tree_key(scenario_idx: usize, maintenance: TreeMaintenance, granted_h_t: usize) -> TreeKey {
    match maintenance {
        TreeMaintenance::RebuildEveryFrame => (scenario_idx, false, 0, 0),
        TreeMaintenance::Refit { rebuild_threshold } => {
            (scenario_idx, true, rebuild_threshold.to_bits(), granted_h_t)
        }
    }
}

/// The row columns derived purely from a point's neighbor sets. At
/// `h_e = 0` no fetch is ever elided, so the stream's neighbor sets are
/// bit-identical across every remaining knob (the fuzz-tested
/// h_e = 0 bit-identity invariant) — a pure function of the
/// maintained-tree sequence — and these columns are memoized on
/// [`TreeKey`]. The digest walk is a serial FNV chain over every
/// neighbor, so recomputing it per sibling row is real wall-clock.
#[derive(Clone, Copy)]
struct ResultStats {
    neighbors: usize,
    recall: f64,
    digest: u64,
}

fn result_stats(neighbor_sets: &[Vec<Vec<Neighbor>>], exact: &ExactSets) -> ResultStats {
    ResultStats {
        neighbors: neighbor_sets.iter().flatten().map(Vec::len).sum(),
        recall: recall(neighbor_sets, exact),
        digest: digest(neighbor_sets),
    }
}

/// The engine pass's contribution to a row, shared by the sibling rows
/// that differ only in maintenance policy.
#[derive(Clone, Copy)]
struct EnginePass {
    cycles: u64,
    dram_bytes: u64,
    nodes_visited: usize,
    nodes_elided: usize,
    recall: f64,
    digest: u64,
}

/// A reasonable worker count for the local machine, capped so the quick
/// sweep does not oversubscribe CI runners.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Execution statistics of one sweep (or shard) run — operational
/// facts about the run itself, deliberately kept OUT of the report
/// bytes (the report is a pure function of the spec; these are not).
#[derive(Clone, Copy, Debug)]
pub struct SweepRunStats {
    /// Grid points actually simulated (the whole grid, or the shard's
    /// round-robin subset).
    pub points: usize,
    /// The **effective** worker count: the requested pool clamped to
    /// the point count — what the CLI reports, so "8 workers" is never
    /// printed for a 4-point run.
    pub workers: usize,
    /// Standalone engine cross-check passes actually executed (memo
    /// misses). With the memo keyed on the granted `h_t`, sibling grid
    /// points whose requested heights clamp to the same grant share one
    /// pass — the regression this counter pins down.
    pub engine_passes: usize,
    /// Total **wall-clock** nanoseconds spent in the serial scenario
    /// prologue (frame rendering + recall oracle + frame 0's tree). A
    /// measured quantity — it lives here and in the `--timings` sidecar
    /// precisely because it can never live in the report bytes.
    pub setup_nanos: u64,
    /// Total **wall-clock** nanoseconds spent simulating grid points,
    /// summed across workers (so up to `workers`× the elapsed time of
    /// the pool phase). Measured, never part of the report.
    pub point_nanos: u64,
}

/// Runs the full sweep on `workers` OS threads and returns the report.
///
/// Fails (with a message naming the offending axis or grid point) if the
/// spec does not validate; never panics on a validated spec.
pub fn run_sweep(spec: &SweepSpec, workers: usize) -> Result<SweepReport, String> {
    run_sweep_with_stats(spec, workers).map(|(report, _)| report)
}

/// [`run_sweep`], also returning the run's execution statistics.
pub fn run_sweep_with_stats(
    spec: &SweepSpec,
    workers: usize,
) -> Result<(SweepReport, SweepRunStats), String> {
    run_sweep_timed(spec, workers).map(|(report, stats, _)| (report, stats))
}

/// [`run_sweep_with_stats`], also returning the run's wall-clock
/// measurements ([`SweepTimings`]) — the `repro sweep --timings`
/// sidecar's data source. The report bytes are identical to the
/// untimed variants': timing is observed, never fed back.
pub fn run_sweep_timed(
    spec: &SweepSpec,
    workers: usize,
) -> Result<(SweepReport, SweepRunStats, SweepTimings), String> {
    spec.validate()?;
    let points = spec.expand();
    let (rows, stats, timings) = run_points(spec, &points, workers);
    Ok((SweepReport { spec: spec.clone(), shard: None, rows }, stats, timings))
}

/// Runs shard `index` of `count` (1-based): the round-robin point subset
/// of [`SweepSpec::shard_points`], producing a shard report whose rows
/// keep their global grid indices and are bit-identical to the same rows
/// of a whole-grid run — the property [`crate::merge_shards`] turns into
/// a byte-identical merged report.
pub fn run_sweep_shard(
    spec: &SweepSpec,
    index: usize,
    count: usize,
    workers: usize,
) -> Result<(SweepReport, SweepRunStats), String> {
    run_sweep_shard_timed(spec, index, count, workers).map(|(report, stats, _)| (report, stats))
}

/// [`run_sweep_shard`], also returning the shard run's wall-clock
/// measurements — row indices in the timings stay global, matching the
/// shard report's rows.
pub fn run_sweep_shard_timed(
    spec: &SweepSpec,
    index: usize,
    count: usize,
    workers: usize,
) -> Result<(SweepReport, SweepRunStats, SweepTimings), String> {
    spec.validate()?;
    let points = spec.shard_points(index, count)?;
    let (rows, stats, timings) = run_points(spec, &points, workers);
    Ok((
        SweepReport { spec: spec.clone(), shard: Some(ShardInfo { index, count }), rows },
        stats,
        timings,
    ))
}

/// Simulates `points` (any subset of the expanded grid, in grid order)
/// over a worker pool and returns their rows in the same order, plus
/// the run's wall-clock measurements. The clocks only *observe* the run
/// (each measurement brackets work that happens regardless), so the
/// rows — and therefore the report bytes — cannot depend on them.
fn run_points(
    spec: &SweepSpec,
    points: &[SweepPoint],
    workers: usize,
) -> (Vec<SweepRow>, SweepRunStats, SweepTimings) {
    let run_start = Instant::now();
    // Per-scenario caches, computed once up front (per-point
    // recomputation would be pure waste — none of this depends on the
    // architecture knobs). Only scenarios the subset actually visits are
    // rendered and brute-force-solved: a shard must not pay the oracle
    // cost of scenarios it never simulates.
    let mut needed = vec![false; spec.scenarios.len()];
    for point in points {
        needed[point.scenario_idx] = true;
    }
    let mut setup: Vec<(String, u64)> = Vec::new();
    let caches: Vec<Option<ScenarioCache>> = spec
        .scenarios
        .iter()
        .zip(&needed)
        .map(|(&scenario, &needed)| {
            needed.then(|| {
                let build_start = Instant::now();
                let mut wcfg = spec.workload;
                wcfg.scenario = scenario;
                let frames: Vec<Frame> = FrameStream::new(&wcfg).collect();
                let exact = exact_baseline(&frames, wcfg.radius, wcfg.max_neighbors);
                let tree0 = KdTree::build(&frames[0].cloud);
                setup.push((scenario.label().to_string(), build_start.elapsed().as_nanos() as u64));
                ScenarioCache { frames, exact, tree0 }
            })
        })
        .collect();

    let workers = workers.clamp(1, points.len().max(1));
    let next = AtomicUsize::new(0);
    let engine_runs = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepRow>>> = points.iter().map(|_| Mutex::new(None)).collect();
    let point_clocks: Vec<AtomicU64> = points.iter().map(|_| AtomicU64::new(0)).collect();
    let engine_memo: Mutex<HashMap<EngineKey, EnginePass>> = Mutex::new(HashMap::new());
    let tree_memo: Mutex<HashMap<TreeKey, Arc<Vec<MaintainedTree>>>> = Mutex::new(HashMap::new());
    let result_memo: Mutex<HashMap<TreeKey, ResultStats>> = Mutex::new(HashMap::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(i) else { break };
                let cache =
                    caches[point.scenario_idx].as_ref().expect("needed scenario cache built");
                let point_start = Instant::now();
                let row = run_point(
                    spec,
                    point,
                    cache,
                    &engine_memo,
                    &tree_memo,
                    &result_memo,
                    &engine_runs,
                );
                point_clocks[i].store(point_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                *slots[i].lock().expect("row slot poisoned") = Some(row);
            });
        }
    });

    let rows: Vec<SweepRow> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("row slot poisoned").expect("every claimed point completed")
        })
        .collect();
    let timings = SweepTimings {
        total_nanos: run_start.elapsed().as_nanos() as u64,
        setup,
        points: points
            .iter()
            .zip(&point_clocks)
            .map(|(point, clock)| (point.index, clock.load(Ordering::Relaxed)))
            .collect(),
    };
    let stats = SweepRunStats {
        points: points.len(),
        workers,
        engine_passes: engine_runs.load(Ordering::Relaxed),
        setup_nanos: timings.setup_nanos(),
        point_nanos: timings.point_nanos(),
    };
    (rows, stats, timings)
}

/// Simulates one grid point and derives its report row.
///
/// The **streaming pass** (the `run_frame_stream` driver behind
/// `Crescent::run_stream`) over every cached frame is the pass of
/// record: with the unified banked-arbitration model every axis moves it
/// — maintenance, `h_t`, PE count, tree banks, DRAM bandwidth, `h_e`
/// (which trades stream recall for arbitration rounds), and aggregation
/// elision (which trades nothing for gather rounds, Sec 4.2).
///
/// The **engine cross-check** (`run_crescent_search` on frame 0's tree
/// and queries) evaluates the same `h = <h_t, h_e>` point on the
/// per-query lock-step model — its columns exist so the two
/// implementations of the same hardware are diffed by the CI gate, not
/// because the sweep needs a second pass for `h_e` sensitivity anymore.
/// The depth-based `h_e` is converted to the engine's level threshold
/// `height(frame 0 tree) − h_e` (`SweepRow::engine_elision_level`).
///
/// The requested `h_t` is first clamped into the Sec 3.3 feasibility
/// range for the point's tree buffer against frame 0's tree
/// (`top_height_range`), so the cache-geometry axis constrains the
/// split depth exactly the way the real hardware would. Both engines
/// still re-clamp against each actual tree's height, so `h_t_used` is
/// the *granted* height — individual shallow frames may run below it
/// (see [`SweepRow::top_height_used`](crate::SweepRow)).
///
/// The engine pass is memoized across the maintenance and
/// aggregation-elision axes (it searches one fixed tree and has no
/// gather stage, so neither can touch it), keyed on the **granted**
/// `top_height_used` so requested heights that clamp to the same grant
/// also share one pass. A racing recompute of the same key is harmless:
/// the pass is deterministic, so both writers insert identical values.
fn run_point(
    spec: &SweepSpec,
    point: &SweepPoint,
    cache: &ScenarioCache,
    engine_memo: &Mutex<HashMap<EngineKey, EnginePass>>,
    tree_memo: &Mutex<HashMap<TreeKey, Arc<Vec<MaintainedTree>>>>,
    result_memo: &Mutex<HashMap<TreeKey, ResultStats>>,
    engine_runs: &AtomicUsize,
) -> SweepRow {
    let mut config = point.config().expect("spec validation checked every grid point");
    // the engine cross-check's level threshold is a per-tree quantity:
    // depth-from-leaves h_e on frame 0's tree
    let engine_elision_level = cache.tree0.height().saturating_sub(point.elision_depth);
    if let Some(e) = config.search_elision.as_mut() {
        e.elision_height = engine_elision_level;
    }
    let top_height_used = match config.top_height_range(cache.tree0.height()) {
        Some((lo, hi)) => point.top_height.clamp(lo, hi),
        None => point.top_height,
    };
    let knobs = CrescentKnobs { top_height: top_height_used, elision_height: engine_elision_level };
    let search = StreamSearchConfig {
        radius: spec.workload.radius,
        max_neighbors: spec.workload.max_neighbors,
        maintenance: point.maintenance,
        elision_depth: point.elision_depth,
        // scenario-derived, like the stream facade: only the
        // descendant-reuse workload turns the salvage knob on, so every
        // other scenario's rows stay on the stall/elide-only model
        descendant_reuse: point.scenario.descendant_reuse(),
    };
    let inputs: Vec<(&PointCloud, &[Point3])> =
        cache.frames.iter().map(|f| (&f.cloud, f.queries.as_slice())).collect();
    // The maintained-tree sequence is shared across every sibling point
    // whose maintenance inputs coincide (see [`TreeKey`]) — in the quick
    // grid that is 8 points per sequence. Like the engine memo, a racing
    // recompute is harmless: the sequence is deterministic, so both
    // writers insert byte-identical values.
    let tkey = tree_key(point.scenario_idx, point.maintenance, top_height_used);
    let memoized_trees = tree_memo.lock().expect("tree memo poisoned").get(&tkey).cloned();
    let trees = memoized_trees.unwrap_or_else(|| {
        let clouds: Vec<&PointCloud> = cache.frames.iter().map(|f| &f.cloud).collect();
        let seq = Arc::new(maintain_tree_sequence(&clouds, point.maintenance, top_height_used));
        tree_memo.lock().expect("tree memo poisoned").insert(tkey, Arc::clone(&seq));
        seq
    });
    let (neighbor_sets, report) =
        run_frame_stream_on_trees(&inputs, &trees, &search, knobs, &config);

    // The neighbor-set-derived columns. At h_e = 0 they are shared
    // across every sibling point of the tree sequence (see
    // [`ResultStats`]); the sets themselves still come from this
    // point's own stream pass above, so the memo only skips re-deriving
    // identical statistics, never the simulation.
    let results = if point.elision_depth == 0 {
        let memoized = result_memo.lock().expect("result memo poisoned").get(&tkey).copied();
        let results = memoized.unwrap_or_else(|| {
            let s = result_stats(&neighbor_sets, &cache.exact);
            result_memo.lock().expect("result memo poisoned").insert(tkey, s);
            s
        });
        debug_assert_eq!(results.digest, digest(&neighbor_sets), "h_e = 0 bit-identity violated");
        results
    } else {
        result_stats(&neighbor_sets, &cache.exact)
    };

    let key: EngineKey = (
        point.scenario_idx,
        point.num_pes,
        point.tree_kb,
        point.tree_banks,
        point.dram_bytes_per_cycle.to_bits(),
        // the pass runs at the GRANTED height — keying the requested
        // height would re-run identical passes for every request that
        // clamps to the same grant
        top_height_used,
        point.elision_depth,
    );
    let memoized = engine_memo.lock().expect("engine memo poisoned").get(&key).copied();
    let engine = memoized.unwrap_or_else(|| {
        engine_runs.fetch_add(1, Ordering::Relaxed);
        let (engine_results, engine) = run_crescent_search(
            &cache.tree0,
            top_height_used,
            &cache.frames[0].queries,
            spec.workload.radius,
            spec.workload.max_neighbors,
            &config,
        );
        let pass = EnginePass {
            cycles: engine.cycles,
            dram_bytes: engine.dram_streaming_bytes,
            nodes_visited: engine.stats.nodes_visited,
            nodes_elided: engine.stats.nodes_elided,
            recall: recall(std::slice::from_ref(&engine_results), &cache.exact[..1]),
            digest: digest(std::slice::from_ref(&engine_results)),
        };
        engine_memo.lock().expect("engine memo poisoned").insert(key, pass);
        pass
    });

    SweepRow {
        index: point.index,
        scenario: point.scenario.label(),
        maintenance: maintenance_label(point.maintenance),
        num_pes: point.num_pes,
        tree_kb: point.tree_kb,
        tree_banks: point.tree_banks,
        dram_bytes_per_cycle: point.dram_bytes_per_cycle,
        aggregation_elision: point.aggregation_elision,
        top_height: point.top_height,
        elision_depth: point.elision_depth,
        descendant_reuse: point.scenario.descendant_reuse(),
        engine_elision_level,
        top_height_used,
        frames: cache.frames.len(),
        queries: report.total_queries(),
        neighbors: results.neighbors,
        pipelined_cycles: report.pipelined_cycles,
        serial_cycles: report.serial_cycles,
        build_cycles: report.total_build_cycles(),
        dram_bytes: report.total_dram_bytes(),
        mean_reuse: report.mean_reuse_fraction(),
        arb_rounds: report.total_arb_rounds(),
        bank_conflicts: report.total_bank_conflicts(),
        conflict_stall_cycles: report.total_conflict_stall_cycles(),
        elided_conflicts: report.total_elided_conflicts(),
        conflict_reuses: report.total_conflict_reuses(),
        agg_cycles: report.total_agg_cycles(),
        agg_elided: report.total_agg_elided(),
        full_rebuilds: report.frames.iter().filter(|f| f.full_rebuild).count(),
        subtrees_rebuilt: report.frames.iter().map(|f| f.subtrees_rebuilt).sum(),
        energy: *report.ledger.total(),
        recall: results.recall,
        digest: results.digest,
        engine_cycles: engine.cycles,
        engine_dram_bytes: engine.dram_bytes,
        nodes_visited: engine.nodes_visited,
        nodes_elided: engine.nodes_elided,
        engine_recall: engine.recall,
        engine_digest: engine.digest,
    }
}

/// Exact neighbor sets for every query of every frame, reduced to sorted
/// index sets (membership is what recall needs).
///
/// Solved through the incremental [`OracleIndex`] instead of a per-frame
/// naive scan: the grid is built on frame 0 and advanced frame to frame
/// (patched for exactly-rigid frames, rebuilt otherwise), and each query
/// scans only the cells overlapping its search ball — with answers
/// bit-identical to `radius_search_bruteforce`, so nothing about the
/// recall or digest columns can move. One hits buffer is recycled across
/// all queries of the scenario.
fn exact_baseline(frames: &[Frame], radius: f32, max_neighbors: Option<usize>) -> ExactSets {
    let mut oracle: Option<OracleIndex> = None;
    let mut hits: Vec<Neighbor> = Vec::new();
    frames
        .iter()
        .map(|frame| {
            match oracle.as_mut() {
                None => oracle = Some(OracleIndex::build(&frame.cloud, radius)),
                Some(o) => {
                    o.advance(&frame.cloud);
                }
            }
            let oracle = oracle.as_ref().expect("oracle built on first frame");
            frame
                .queries
                .iter()
                .map(|&q| {
                    oracle.radius_search_into(q, max_neighbors, &mut hits);
                    let mut idx: Vec<usize> = hits.iter().map(|n| n.index).collect();
                    idx.sort_unstable();
                    idx
                })
                .collect()
        })
        .collect()
}

/// Mean per-query recall of the approximate sets against the exact
/// baseline, over queries whose exact set is non-empty (1.0 for an
/// all-empty workload — there was nothing to miss).
fn recall(approx: &[Vec<Vec<Neighbor>>], exact: &[Vec<Vec<usize>>]) -> f64 {
    let mut sum = 0.0;
    let mut counted = 0usize;
    for (frame_approx, frame_exact) in approx.iter().zip(exact) {
        for (hits, truth) in frame_approx.iter().zip(frame_exact) {
            if truth.is_empty() {
                continue;
            }
            let found = hits.iter().filter(|n| truth.binary_search(&n.index).is_ok()).count();
            sum += found as f64 / truth.len() as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        1.0
    } else {
        sum / counted as f64
    }
}

/// FNV-1a fingerprint of every neighbor set: frame/query structure,
/// per-query result counts, and each neighbor's index and exact distance
/// bits. Equal digests ⇔ bit-identical results (up to 64-bit collision).
fn digest(neighbor_sets: &[Vec<Vec<Neighbor>>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(neighbor_sets.len() as u64);
    for frame in neighbor_sets {
        eat(frame.len() as u64);
        for hits in frame {
            eat(hits.len() as u64);
            for n in hits {
                eat(n.index as u64);
                eat(n.dist2.to_bits() as u64);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crescent::workload::FrameStreamConfig;
    use crescent::workload::StreamScenario;
    use crescent_accel::TreeMaintenance;
    use crescent_pointcloud::datasets::LidarSceneConfig;

    /// A 4-point spec small enough for unit tests (the full quick grid
    /// is exercised by `tests/explorer_matrix.rs` at the workspace root).
    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            label: "tiny".to_string(),
            workload: FrameStreamConfig {
                scene: LidarSceneConfig {
                    total_points: 800,
                    num_cars: 2,
                    num_poles: 4,
                    num_walls: 1,
                    half_extent: 20.0,
                    seed: 11,
                },
                num_frames: 3,
                queries_per_frame: 16,
                radius: 0.5,
                max_neighbors: Some(8),
                ..FrameStreamConfig::default()
            },
            scenarios: vec![StreamScenario::Registered],
            maintenance: vec![TreeMaintenance::RebuildEveryFrame, TreeMaintenance::refit()],
            num_pes: vec![2, 4],
            tree_kb: vec![6],
            tree_banks: vec![4],
            dram_bytes_per_cycle: vec![20.48],
            aggregation_elision: vec![true],
            top_heights: vec![3],
            elision_depths: vec![2],
        }
    }

    #[test]
    fn report_is_byte_identical_across_runs_and_worker_counts() {
        let spec = tiny_spec();
        let a = run_sweep(&spec, 1).expect("sweep runs");
        let b = run_sweep(&spec, 1).expect("sweep runs");
        let c = run_sweep(&spec, 4).expect("sweep runs");
        assert_eq!(a.to_json(), b.to_json(), "two runs must match");
        assert_eq!(a.to_json(), c.to_json(), "worker count must not leak into the report");
    }

    #[test]
    fn rows_are_in_grid_order_with_real_metrics() {
        let report = run_sweep(&tiny_spec(), 2).expect("sweep runs");
        assert_eq!(report.rows.len(), 4);
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.index, i);
            assert!(row.pipelined_cycles > 0);
            assert!(row.pipelined_cycles <= row.serial_cycles);
            assert!(row.dram_bytes > 0);
            assert!(row.energy.total() > 0.0);
            assert!(row.recall > 0.0 && row.recall <= 1.0, "recall {}", row.recall);
            assert!(row.neighbors > 0);
        }
        // more PEs never slow the modeled stream down
        let slow = &report.rows[0]; // 2 PEs, rebuild
        let fast = &report.rows[1]; // 4 PEs, rebuild
        assert_eq!(slow.num_pes, 2);
        assert_eq!(fast.num_pes, 4);
        assert!(fast.pipelined_cycles <= slow.pipelined_cycles);
    }

    #[test]
    fn maintenance_policy_changes_cycles_but_never_results() {
        let report = run_sweep(&tiny_spec(), 2).expect("sweep runs");
        // rows 0..2 are rebuild, rows 2..4 are refit (same PE order)
        for pe in 0..2 {
            let rebuild = &report.rows[pe];
            let refit = &report.rows[2 + pe];
            assert_eq!(rebuild.maintenance, "rebuild");
            assert_eq!(refit.maintenance, "refit");
            assert_eq!(rebuild.num_pes, refit.num_pes);
            assert_eq!(
                rebuild.digest, refit.digest,
                "maintenance must be results-invariant (PE count {})",
                rebuild.num_pes
            );
            assert_eq!(rebuild.recall, refit.recall);
        }
    }

    #[test]
    fn digest_distinguishes_different_results() {
        let a = vec![vec![vec![Neighbor { index: 1, dist2: 0.5 }]]];
        let mut b = a.clone();
        b[0][0][0].index = 2;
        let mut c = a.clone();
        c[0][0][0].dist2 = 0.25;
        assert_ne!(digest(&a), digest(&b));
        assert_ne!(digest(&a), digest(&c));
        assert_eq!(digest(&a), digest(&a.clone()));
        // structure matters: [[x],[]] != [[],[x]]
        let d = vec![vec![vec![Neighbor { index: 1, dist2: 0.5 }], vec![]]];
        let e = vec![vec![vec![], vec![Neighbor { index: 1, dist2: 0.5 }]]];
        assert_ne!(digest(&d), digest(&e));
    }

    #[test]
    fn recall_is_exact_on_matching_sets() {
        let truth: ExactSets = vec![vec![vec![1, 3, 5], vec![]]];
        let hit = |i: usize| Neighbor { index: i, dist2: 0.0 };
        let perfect = vec![vec![vec![hit(1), hit(3), hit(5)], vec![]]];
        assert_eq!(recall(&perfect, &truth), 1.0);
        let partial = vec![vec![vec![hit(1), hit(7)], vec![]]];
        assert!((recall(&partial, &truth) - 1.0 / 3.0).abs() < 1e-12);
        let empty: ExactSets = vec![vec![vec![], vec![]]];
        assert_eq!(recall(&[vec![vec![], vec![]]], &empty), 1.0);
    }

    #[test]
    fn invalid_spec_is_rejected_not_panicked() {
        let mut spec = tiny_spec();
        spec.num_pes = vec![0];
        assert!(run_sweep(&spec, 2).is_err());
    }

    #[test]
    fn clamped_heights_share_one_engine_pass() {
        // 6 KiB tree buffer -> the feasibility range caps well below
        // either request, so h_t = 20 and h_t = 30 clamp to the SAME
        // granted height and must share one memoized engine pass.
        let mut spec = tiny_spec();
        spec.top_heights = vec![20, 30];
        let (report, stats) = run_sweep_with_stats(&spec, 1).expect("sweep runs");
        assert_eq!(report.rows.len(), 8, "2 policies x 2 PE counts x 2 requested heights");
        let grants: Vec<usize> = report.rows.iter().map(|r| r.top_height_used).collect();
        assert!(
            grants.windows(2).all(|w| w[0] == w[1]),
            "both requests must clamp to one grant: {grants:?}"
        );
        // unique passes = PE counts only: maintenance, aggregation, and
        // the two clamped h_t requests all collapse onto the same key
        assert_eq!(
            stats.engine_passes, 2,
            "requested heights clamping to the same grant must not re-run the engine"
        );
        // ... and the deduplication is observable in the rows: sibling
        // rows differing only in requested h_t carry identical engine
        // columns (they ARE the same pass)
        for pe_rows in report.rows.chunks(2) {
            assert_eq!(pe_rows[0].engine_cycles, pe_rows[1].engine_cycles);
            assert_eq!(pe_rows[0].engine_digest, pe_rows[1].engine_digest);
            assert_eq!(pe_rows[0].engine_recall, pe_rows[1].engine_recall);
        }
    }

    #[test]
    fn timings_cover_every_point_without_touching_the_report() {
        let spec = tiny_spec();
        let (report, stats, timings) = run_sweep_timed(&spec, 2).expect("sweep runs");
        // one clock per row, keyed by the row's global grid index
        assert_eq!(timings.points.len(), report.rows.len());
        for ((index, _), row) in timings.points.iter().zip(&report.rows) {
            assert_eq!(*index, row.index);
        }
        // one setup entry per visited scenario, in scenario order
        let labels: Vec<&str> = timings.setup.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(labels, vec!["registered"]);
        // the stats totals are the timings totals
        assert_eq!(stats.setup_nanos, timings.setup_nanos());
        assert_eq!(stats.point_nanos, timings.point_nanos());
        assert!(timings.total_nanos >= timings.setup_nanos());
        // observing the clock must not perturb the bytes
        let untimed = run_sweep(&spec, 2).expect("sweep runs");
        assert_eq!(report.to_json(), untimed.to_json());
        // a shard's timings carry the shard rows' GLOBAL indices
        let (shard, _, shard_timings) = run_sweep_shard_timed(&spec, 2, 3, 1).expect("shard runs");
        assert_eq!(shard_timings.points.len(), shard.rows.len());
        for ((index, _), row) in shard_timings.points.iter().zip(&shard.rows) {
            assert_eq!(*index, row.index);
        }
    }

    #[test]
    fn stats_report_the_effective_worker_count() {
        let spec = tiny_spec();
        let (report, stats) = run_sweep_with_stats(&spec, 64).expect("sweep runs");
        assert_eq!(stats.points, report.rows.len());
        assert_eq!(stats.workers, report.rows.len(), "pool clamps to the point count");
        let (_, one) = run_sweep_with_stats(&spec, 1).expect("sweep runs");
        assert_eq!(one.workers, 1);
    }

    #[test]
    fn shard_rows_keep_global_indices_and_match_the_whole_run() {
        let spec = tiny_spec();
        let whole = run_sweep(&spec, 1).expect("sweep runs");
        let mut seen = vec![false; whole.rows.len()];
        for index in 1..=3 {
            let (shard, _) = run_sweep_shard(&spec, index, 3, 2).expect("shard runs");
            let info = shard.shard.expect("shard report carries its coordinates");
            assert_eq!((info.index, info.count), (index, 3));
            for row in &shard.rows {
                assert_eq!(row.index % 3, index - 1, "round-robin projection");
                assert!(!seen[row.index], "row {} covered twice", row.index);
                seen[row.index] = true;
                let reference = &whole.rows[row.index];
                assert_eq!(row.digest, reference.digest);
                assert_eq!(row.pipelined_cycles, reference.pipelined_cycles);
                assert_eq!(row.engine_digest, reference.engine_digest);
                assert_eq!(row.to_json().to_compact(), reference.to_json().to_compact());
            }
        }
        assert!(seen.iter().all(|&s| s), "three shards cover the whole grid");
        assert!(run_sweep_shard(&spec, 4, 3, 1).is_err(), "index out of range");
        assert!(run_sweep_shard(&spec, 0, 3, 1).is_err(), "indices are 1-based");
    }
}
