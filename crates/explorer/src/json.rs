//! Minimal deterministic JSON emission.
//!
//! The workspace's `serde` is an offline marker stub (no `serde_json`),
//! and the sweep report needs *byte*-stable output anyway — the CI gate
//! compares reports with an exact comparator, so the serializer must be
//! a pure function of the data with no map-ordering, locale, or
//! float-formatting wiggle room. This hand-rolled value tree gives
//! exactly that: objects keep insertion order, floats print through
//! Rust's shortest-roundtrip formatter (deterministic for a given
//! value), and there is no configuration that could perturb the bytes.

use std::fmt::Write as _;

/// A JSON value with deterministic serialization (object keys keep
/// insertion order).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (e.g. an absent optional like an unbounded neighbor cap).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every counter in the reports).
    U64(u64),
    /// A finite double. Non-finite values serialize as `null` — the
    /// modeled metrics never produce them, and `null` keeps the output
    /// parseable instead of silently invalid.
    F64(f64),
    /// A string (escaped on write).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An ordered object.
    Object(Vec<(&'static str, Json)>),
}

impl Json {
    /// Serializes compactly (no whitespace), appending to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The compact serialization as an owned string.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

/// Writes a double using Rust's shortest-roundtrip formatting, which is
/// deterministic for a given bit pattern; integral values gain a `.0` so
/// they stay typed as floats on re-read.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
        // `{:?}` already emits `.0` for integral floats (e.g. "4.0"),
        // so nothing further is needed; this branch exists only to keep
        // the non-finite fallback below explicit.
    } else {
        out.push_str("null");
    }
}

/// Writes `s` as a quoted JSON string with the mandatory escapes.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting() {
        let v = Json::Object(vec![
            ("ok", Json::Bool(true)),
            ("n", Json::U64(42)),
            ("x", Json::F64(20.48)),
            ("whole", Json::F64(4.0)),
            ("s", Json::from("hi")),
            ("a", Json::Array(vec![Json::U64(1), Json::U64(2)])),
        ]);
        assert_eq!(
            v.to_compact(),
            r#"{"ok":true,"n":42,"x":20.48,"whole":4.0,"s":"hi","a":[1,2]}"#
        );
    }

    #[test]
    fn object_order_is_insertion_order() {
        let a = Json::Object(vec![("b", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(a.to_compact(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn null_is_null() {
        assert_eq!(Json::Null.to_compact(), "null");
        let v = Json::Object(vec![("cap", Json::Null)]);
        assert_eq!(v.to_compact(), r#"{"cap":null}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let v = Json::from("quote\" slash\\ nl\n tab\t bell\u{7}");
        assert_eq!(v.to_compact(), "\"quote\\\" slash\\\\ nl\\n tab\\t bell\\u0007\"");
    }

    #[test]
    fn floats_are_shortest_roundtrip_and_finite_guarded() {
        assert_eq!(Json::F64(0.1).to_compact(), "0.1");
        assert_eq!(Json::F64(6.25 / 3.0).to_compact(), format!("{:?}", 6.25_f64 / 3.0));
        assert_eq!(Json::F64(f64::NAN).to_compact(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn serialization_is_reproducible() {
        let v = Json::Array((0..64).map(|i| Json::F64(i as f64 * 0.3)).collect());
        assert_eq!(v.to_compact(), v.to_compact());
    }
}
